//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the narrow slice of proptest that the workspace's
//! property tests use: the [`Strategy`] trait with `prop_map`, range and
//! tuple strategies, [`arbitrary::any`], [`collection::vec`], the
//! [`proptest!`] test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Differences from real proptest, by design:
//!
//! * Inputs are drawn from a deterministic per-test RNG (seeded from the
//!   test name), so runs are exactly reproducible with no persistence
//!   files.
//! * There is **no shrinking** — a failing case panics with the assertion
//!   message and the values printed by the assertion itself.
//! * `prop_assume!` skips the current case rather than drawing a
//!   replacement, so heavy assumption use reduces the effective case
//!   count; the workspace's tests assume rarely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    //! Test-runner configuration and the deterministic RNG.

    /// Stand-in for `proptest::test_runner::Config` (aliased to
    /// `ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property is checked against.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic splitmix64 RNG seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from `name` (FNV-1a), so every test gets a
        /// distinct but fully reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

use test_runner::TestRng;

/// A generator of random values (stand-in for `proptest::strategy::Strategy`).
///
/// Real proptest strategies produce shrinkable value *trees*; this
/// stand-in produces plain values, which is all the workspace's tests
/// observe.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (stand-in for `prop_map`).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u8);

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod arbitrary {
    //! The `any::<T>()` entry point for type-directed generation.

    use super::{PhantomData, Strategy, TestRng};

    /// Types with a canonical "generate anything" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Strategies for collections (only `vec` is provided).

    use super::{Range, Strategy, TestRng};

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Defines property tests (stand-in for `proptest::proptest!`).
///
/// Supports the block form with an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pat in strategy, ...) { body }` items carrying outer
/// attributes (`#[test]`, doc comments, …).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let mut __proptest_rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..config.cases {
                    let _ = __proptest_case;
                    let ($($pat,)*) = (
                        $($crate::Strategy::generate(&($strat), &mut __proptest_rng),)*
                    );
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($rest)*
        }
    };
}

/// `assert!` that reports through the property harness (stand-in: panics
/// immediately, since there is no shrinking to drive).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when `cond` does not hold. Must appear
/// directly inside a `proptest!` test body (it expands to `continue` on
/// the case loop).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let u = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&u));
            let f = (-2.0f64..4.5).generate(&mut rng);
            assert!((-2.0..4.5).contains(&f));
            let i = (-5i32..9).generate(&mut rng);
            assert!((-5..9).contains(&i));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = crate::test_runner::TestRng::deterministic("map");
        let strat = (1usize..5, any::<bool>()).prop_map(|(n, b)| if b { n * 2 } else { n });
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..10).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::test_runner::TestRng::deterministic("vecs");
        let strat = crate::collection::vec(0.0f64..1.0, 2..6);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        let mut c = crate::test_runner::TestRng::deterministic("different");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, assertions, and assume all work.
        #[test]
        fn macro_end_to_end(
            (a, b) in (0usize..10, 0usize..10).prop_map(|(x, y)| (x, x + y)),
            flip in any::<bool>(),
        ) {
            prop_assume!(a + 1 < 12);
            prop_assert!(b >= a, "b {b} must dominate a {a}");
            prop_assert_eq!(a.min(b), a);
            let _ = flip;
        }
    }
}
