//! Offline stand-in for [serde](https://crates.io/crates/serde).
//!
//! Provides just the names the workspace imports — the `Serialize` /
//! `Deserialize` traits and (behind the `derive` feature, matching real
//! serde's layout) the same-named derive macros from `serde_derive`.
//! The traits are deliberately empty: no code in the tree serializes
//! anything yet, the derives only need to resolve and expand cleanly.
//! Replacing this crate with real serde is a `[workspace.dependencies]`
//! change only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
