//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Implements the subset of criterion's API that `tea-bench`'s five
//! benchmark suites use — [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple mean-of-samples
//! wall-clock harness instead of criterion's statistical machinery.
//!
//! Behaviour worth knowing:
//!
//! * `cargo bench -- --test` runs every benchmark body exactly once and
//!   reports `ok` — this is what CI's bench-smoke job uses, so benches
//!   are compile- and run-checked without paying measurement time.
//! * Without `--test`, each benchmark is warmed up once and then timed
//!   over `sample_size` samples; the mean time per iteration is printed
//!   in criterion-like `group/name  time: […]` lines.
//! * A `--filter`-style positional argument restricts which benchmarks
//!   run, matching criterion's substring semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (stand-in for `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Builds a `Criterion` from the process arguments, honouring the
    /// `--test` flag and a positional substring filter; all other flags
    /// that the real criterion accepts are ignored.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => c.test_mode = true,
                // flags with a value we deliberately ignore
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                s if s.starts_with("--") => {}
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(self.test_mode, &self.filter, &id.full_name(None), 10, f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            self.criterion.test_mode,
            &self.criterion.filter,
            &id.full_name(Some(&self.name)),
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through (stand-in for
    /// criterion's input-aware variant).
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (a no-op here; criterion finalises reports).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self, group: Option<&str>) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if let Some(g) = group {
            parts.push(g);
        }
        if let Some(n) = &self.name {
            parts.push(n);
        }
        if let Some(p) = &self.parameter {
            parts.push(p);
        }
        parts.join("/")
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            name: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            name: Some(s),
            parameter: None,
        }
    }
}

/// Hands the benchmark body its timing loop.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the accumulated duration and iteration count.
    /// In `--test` mode `f` runs exactly once, untimed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.iters = 1;
            return;
        }
        // one warm-up call, then `samples` timed calls
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    test_mode: bool,
    filter: &Option<String>,
    name: &str,
    samples: usize,
    mut f: F,
) {
    if let Some(needle) = filter {
        if !name.contains(needle.as_str()) {
            return;
        }
    }
    let mut b = Bencher {
        test_mode,
        samples: samples.max(1),
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if test_mode {
        println!("test {name} ... ok");
    } else if b.iters > 0 {
        let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
        println!("{name}  time: [{}]", human_time(per_iter));
    } else {
        println!("{name}  (no iterations measured)");
    }
}

fn human_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Re-export point so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Bundles benchmark functions into a group runner (stand-in for
/// criterion's macro of the same name; only the plain
/// `criterion_group!(name, target, ...)` form is supported).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main()` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_compose() {
        assert_eq!(BenchmarkId::new("f", 8).full_name(Some("g")), "g/f/8");
        assert_eq!(BenchmarkId::from_parameter(64).full_name(Some("g")), "g/64");
        assert_eq!(BenchmarkId::from("plain").full_name(None), "plain");
    }

    #[test]
    fn groups_run_bodies() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::from_parameter(5), &5, |b, &x| {
                b.iter(|| ran += x)
            });
            g.finish();
        }
        assert_eq!(ran, 6); // test mode: each body exactly once (1 + 5)
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("match_me".into()),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("match_me_exactly", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn timed_mode_counts_iterations() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(4);
            g.bench_function("count", |b| b.iter(|| calls += 1));
        }
        assert_eq!(calls, 5); // 1 warm-up + 4 samples
    }
}
