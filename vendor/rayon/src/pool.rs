//! The execution runtime: lazily-initialized thread configuration plus
//! the scoped worker teams that carry every parallel region.
//!
//! # Design: persistent configuration, scoped workers, zero `unsafe`
//!
//! The runtime is split in two:
//!
//! * a **persistent, lazily-initialized configuration** — the worker
//!   count, read once from `TEA_NUM_THREADS` (default: all available
//!   cores) and overridable at run time with [`set_num_threads`];
//! * **scoped worker teams** raised per parallel region with
//!   [`std::thread::scope`], one worker per contiguous part of the
//!   iteration space (static chunking), with part 0 executed by the
//!   calling thread itself.
//!
//! Scoped threads are what lets the whole crate keep
//! `#![forbid(unsafe_code)]`: kernels hand the runtime borrowed,
//! non-`'static` data (`&mut [f64]` rows of a field that lives on the
//! caller's stack), and only a scope can prove to the compiler that the
//! workers are joined before those borrows expire. A pool of *parked*
//! OS threads would have to launder those lifetimes through a channel of
//! `'static` jobs — exactly the `unsafe` transmute real rayon hides
//! inside its registry. At this crate's dispatch granularity (sweeps are
//! only parallelised above `tea-core`'s `PAR_THRESHOLD`, i.e. tens of
//! thousands of cells and up) the scoped spawn costs microseconds
//! against sweeps that cost milliseconds, so the trade is safety for a
//! measured overhead of a few percent.
//!
//! With one worker the team never spawns: the calling thread runs the
//! whole region sequentially, which is why `TEA_NUM_THREADS=1` is
//! *exactly* the old sequential stand-in, instruction for instruction.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker count; `0` until first use, then the resolved configuration.
static NUM_THREADS: OnceLock<AtomicUsize> = OnceLock::new();

fn cell() -> &'static AtomicUsize {
    NUM_THREADS.get_or_init(|| AtomicUsize::new(threads_from_env()))
}

/// Hard ceiling on the worker count. Oversubscription is allowed (it is
/// how the 1-core CI container still exercises real threading), but an
/// unbounded count would let a deck typo ask every sweep to spawn tens
/// of thousands of scoped threads and abort the run when `spawn` fails.
pub const MAX_THREADS: usize = 1024;

/// Resolves the initial worker count: `TEA_NUM_THREADS` if set to a
/// positive integer, otherwise the number of available cores.
fn threads_from_env() -> usize {
    std::env::var("TEA_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .min(MAX_THREADS)
}

/// The number of worker threads parallel regions currently use.
///
/// Mirrors `rayon::current_num_threads`. Resolved lazily on first call:
/// `TEA_NUM_THREADS` if set, else the available cores.
pub fn current_num_threads() -> usize {
    cell().load(Ordering::Relaxed)
}

/// Overrides the worker count for subsequent parallel regions.
///
/// `1` makes every region run sequentially on the calling thread —
/// bit-for-bit the behaviour of the old sequential stand-in. Values are
/// clamped to `1..=`[`MAX_THREADS`]. (crates.io rayon configures this
/// through `ThreadPoolBuilder` instead; this shim exists so benchmarks
/// and tests can flip thread counts within one process.)
pub fn set_num_threads(threads: usize) {
    cell().store(threads.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Runs `work` over every part on a scoped worker team and returns the
/// results **in part order**.
///
/// Part 0 runs on the calling thread; parts 1.. each get a scoped worker.
/// Panics in workers propagate to the caller.
pub(crate) fn run_team<P, R, F>(parts: Vec<P>, work: F) -> Vec<R>
where
    P: Send,
    R: Send,
    F: Fn(P) -> R + Sync,
{
    let mut parts = parts.into_iter();
    let Some(first) = parts.next() else {
        return Vec::new();
    };
    std::thread::scope(|scope| {
        let work = &work;
        let handles: Vec<_> = parts.map(|p| scope.spawn(move || work(p))).collect();
        let mut out = Vec::with_capacity(handles.len() + 1);
        out.push(work(first));
        for h in handles {
            out.push(h.join().expect("parallel worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn team_preserves_part_order() {
        let parts: Vec<usize> = (0..16).collect();
        let out = run_team(parts, |p| p * 10);
        assert_eq!(out, (0..16).map(|p| p * 10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_team_is_fine() {
        let out: Vec<usize> = run_team(Vec::<usize>::new(), |p| p);
        assert!(out.is_empty());
    }

    // NOTE: no test here asserts on `current_num_threads()` — the count
    // is process-global and sibling tests in this binary legitimately
    // flip it concurrently, so such an assert would be flaky. The
    // clamping behaviour is asserted in `tea-core::runtime`, whose test
    // binary has no other writers.
}
