//! Exact-length, splittable parallel iterators.
//!
//! Covers the indexed subset of rayon's iterator model this workspace
//! uses: base iterators over slices (`par_iter`, `par_iter_mut`,
//! `par_chunks`, `par_chunks_mut`) and integer ranges (`into_par_iter`),
//! the `enumerate` / `zip` / `map` adaptors, and the `for_each` /
//! `collect` / `sum` consumers.
//!
//! Everything here is built on one primitive: [`ParallelIterator::split_at`],
//! which divides the remaining iteration space into two disjoint halves.
//! A consumer splits the space into `current_num_threads()` contiguous
//! parts of near-equal size (**static chunking** — part boundaries depend
//! only on the length and the worker count, never on scheduling), then
//! drives each part with the ordinary sequential iterator. Consumers that
//! produce values ([`ParallelIterator::collect`]) reassemble the parts in
//! part order, so output ordering is identical to sequential execution no
//! matter how many workers ran — which is what lets `tea-core` keep its
//! deterministic row-ordered reductions bit-for-bit under threading.

use crate::pool;

/// An exact-length splittable parallel iterator.
///
/// One trait plays the roles of rayon's `ParallelIterator` +
/// `IndexedParallelIterator` (every iterator in this subset is indexed).
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;
    /// The sequential iterator driving one part.
    type Seq: Iterator<Item = Self::Item>;

    /// Remaining number of items.
    fn len(&self) -> usize;
    /// Whether no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Splits into the first `index` items and the rest.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Degrades into the equivalent sequential iterator.
    fn seq(self) -> Self::Seq;

    /// Pairs each item with its global index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Iterates two parallel iterators in lock-step.
    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        Zip { a: self, b: other }
    }

    /// Maps each item through `f`.
    ///
    /// `f` must be `Clone` (splitting a mapped iterator clones it into
    /// both halves); closures qualify whenever their captures do, which
    /// covers captures by shared reference.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Clone + Send + Sync,
    {
        Map { base: self, f }
    }

    /// Consumes every item on the worker team.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let parts = split_parts(self);
        if parts.len() == 1 {
            for part in parts {
                part.seq().for_each(&f);
            }
        } else {
            pool::run_team(parts, |part: Self| part.seq().for_each(&f));
        }
    }

    /// Collects into a container, preserving sequential order.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self)
    }

    /// Sums the items with a **deterministic, sequential-order fold**:
    /// parts produce ordered partial vectors which are folded left to
    /// right on the calling thread.
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item>,
        Self::Item: Send,
    {
        let items: Vec<Self::Item> = self.collect();
        items.into_iter().sum()
    }
}

/// Splits `iter` into `current_num_threads()` contiguous, near-equal
/// parts (never more parts than items; at least one part).
fn split_parts<I: ParallelIterator>(iter: I) -> Vec<I> {
    let len = iter.len();
    let workers = pool::current_num_threads().min(len).max(1);
    let mut parts = Vec::with_capacity(workers);
    let mut rest = iter;
    let (base, extra) = (len / workers, len % workers);
    for i in 0..workers - 1 {
        let take = base + usize::from(i < extra);
        let (head, tail) = rest.split_at(take);
        parts.push(head);
        rest = tail;
    }
    parts.push(rest);
    parts
}

/// Conversion from a parallel iterator, order-preserving.
pub trait FromParallelIterator<T: Send> {
    /// Builds the container from `iter`'s items in sequential order.
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<I: ParallelIterator<Item = T>>(iter: I) -> Self {
        let total = iter.len();
        let parts = split_parts(iter);
        if parts.len() == 1 {
            return parts
                .into_iter()
                .next()
                .map(|p| p.seq().collect())
                .unwrap_or_default();
        }
        let chunks = pool::run_team(parts, |part: I| part.seq().collect::<Vec<T>>());
        let mut out = Vec::with_capacity(total);
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

/// Types convertible into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The produced parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

// ---------------------------------------------------------------------------
// Base iterators: slices
// ---------------------------------------------------------------------------

/// Parallel `&[T]` iterator (`par_iter`).
pub struct Iter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for Iter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index.min(self.slice.len()));
        (Iter { slice: a }, Iter { slice: b })
    }
    fn seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Parallel `&mut [T]` iterator (`par_iter_mut`).
pub struct IterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for IterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = index.min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        (IterMut { slice: a }, IterMut { slice: b })
    }
    fn seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// Parallel shared-chunk iterator (`par_chunks`).
pub struct Chunks<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];
    type Seq = std::slice::Chunks<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at(mid);
        let size = self.size;
        (Chunks { slice: a, size }, Chunks { slice: b, size })
    }
    fn seq(self) -> Self::Seq {
        self.slice.chunks(self.size)
    }
}

/// Parallel mutable-chunk iterator (`par_chunks_mut`) — the workhorse of
/// the row sweeps: each chunk is one padded field row, and splitting
/// hands each worker a disjoint contiguous block of rows.
pub struct ChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];
    type Seq = std::slice::ChunksMut<'a, T>;
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = (index * self.size).min(self.slice.len());
        let (a, b) = self.slice.split_at_mut(mid);
        let size = self.size;
        (ChunksMut { slice: a, size }, ChunksMut { slice: b, size })
    }
    fn seq(self) -> Self::Seq {
        self.slice.chunks_mut(self.size)
    }
}

pub(crate) fn par_iter_impl<T: Sync>(slice: &[T]) -> Iter<'_, T> {
    Iter { slice }
}

pub(crate) fn par_iter_mut_impl<T: Send>(slice: &mut [T]) -> IterMut<'_, T> {
    IterMut { slice }
}

pub(crate) fn par_chunks_impl<T: Sync>(slice: &[T], size: usize) -> Chunks<'_, T> {
    assert!(size != 0, "chunk size must be non-zero");
    Chunks { slice, size }
}

pub(crate) fn par_chunks_mut_impl<T: Send>(slice: &mut [T], size: usize) -> ChunksMut<'_, T> {
    assert!(size != 0, "chunk size must be non-zero");
    ChunksMut { slice, size }
}

// ---------------------------------------------------------------------------
// Base iterators: integer ranges
// ---------------------------------------------------------------------------

/// Parallel iterator over an integer range.
pub struct RangeIter<T> {
    range: std::ops::Range<T>,
}

macro_rules! range_impl {
    ($t:ty) => {
        impl ParallelIterator for RangeIter<$t> {
            type Item = $t;
            type Seq = std::ops::Range<$t>;
            fn len(&self) -> usize {
                if self.range.end > self.range.start {
                    (self.range.end - self.range.start) as usize
                } else {
                    0
                }
            }
            fn split_at(self, index: usize) -> (Self, Self) {
                let mid = self
                    .range
                    .start
                    .saturating_add(index.min(self.len()) as $t)
                    .min(self.range.end);
                (
                    RangeIter {
                        range: self.range.start..mid,
                    },
                    RangeIter {
                        range: mid..self.range.end,
                    },
                )
            }
            fn seq(self) -> Self::Seq {
                self.range
            }
        }

        impl IntoParallelIterator for std::ops::Range<$t> {
            type Item = $t;
            type Iter = RangeIter<$t>;
            fn into_par_iter(self) -> RangeIter<$t> {
                RangeIter { range: self }
            }
        }
    };
}

range_impl!(usize);
range_impl!(isize);
range_impl!(u32);
range_impl!(i32);
range_impl!(u64);
range_impl!(i64);

// ---------------------------------------------------------------------------
// Adaptors
// ---------------------------------------------------------------------------

/// `enumerate` adaptor: items paired with their global index.
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

/// Sequential side of [`Enumerate`].
pub struct SeqEnumerate<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for SeqEnumerate<I> {
    type Item = (usize, I::Item);
    fn next(&mut self) -> Option<Self::Item> {
        let item = self.inner.next()?;
        let idx = self.next;
        self.next += 1;
        Some((idx, item))
    }
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    type Seq = SeqEnumerate<I::Seq>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Enumerate {
                base: a,
                offset: self.offset,
            },
            Enumerate {
                base: b,
                offset: self.offset + index,
            },
        )
    }
    fn seq(self) -> Self::Seq {
        SeqEnumerate {
            inner: self.base.seq(),
            next: self.offset,
        }
    }
}

/// `zip` adaptor: lock-step pairs, truncated to the shorter side.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn seq(self) -> Self::Seq {
        self.a.seq().zip(self.b.seq())
    }
}

/// `map` adaptor.
pub struct Map<I, F> {
    base: I,
    f: F,
}

/// Sequential side of [`Map`].
pub struct SeqMap<I, F> {
    inner: I,
    f: F,
}

impl<I, F, R> Iterator for SeqMap<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;
    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(x))
    }
}

impl<I, F, R> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    F: Fn(I::Item) -> R + Clone + Send + Sync,
    R: Send,
{
    type Item = R;
    type Seq = SeqMap<I::Seq, F>;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(index);
        (
            Map {
                base: a,
                f: self.f.clone(),
            },
            Map { base: b, f: self.f },
        )
    }
    fn seq(self) -> Self::Seq {
        SeqMap {
            inner: self.base.seq(),
            f: self.f,
        }
    }
}
