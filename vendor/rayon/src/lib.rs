//! Offline stand-in for [rayon](https://crates.io/crates/rayon) — now a
//! **real data-parallel runtime**, not a sequential shim.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors an API-compatible subset of rayon's
//! parallel-iterator surface. Since PR 2 that subset actually executes in
//! parallel: a lazily-initialized runtime ([`pool`]) raises scoped
//! `std::thread` worker teams per parallel region, and the iterator layer
//! ([`iter`]) splits the iteration space into contiguous statically-chunked
//! parts, one per worker.
//!
//! Guarantees the kernels in `tea-core` rely on:
//!
//! * **Determinism** — part boundaries depend only on the length and the
//!   worker count; consumers reassemble results in part order. Combined
//!   with the kernels' per-row partials folded in row order, every solve
//!   is bit-identical for any `TEA_NUM_THREADS`.
//! * **Exact serial fallback** — one worker (or `TEA_NUM_THREADS=1`)
//!   degrades every `par_*` call to the plain standard-library iterator
//!   with no thread machinery touched.
//! * **No `unsafe`** — parallel regions borrow non-`'static` field data,
//!   proven sound by `std::thread::scope` (see [`pool`] for why a parked
//!   persistent pool is impossible without `unsafe`).
//!
//! Configuration: `TEA_NUM_THREADS` (read once, default = available
//! cores) or [`set_num_threads`] at run time.
//!
//! When real rayon becomes available, deleting this crate from
//! `[workspace.dependencies]` restores crates.io rayon with no kernel
//! source changes — every API used by the workspace exists there with
//! identical semantics (only the [`set_num_threads`] shim differs:
//! crates.io rayon configures threads via `ThreadPoolBuilder`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iter;
pub mod pool;

pub use iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
pub use pool::{current_num_threads, set_num_threads, MAX_THREADS};

/// Alias: in real rayon `enumerate`/`zip` live on a second trait; here a
/// single trait plays both roles, so the names are interchangeable.
pub use iter::ParallelIterator as IndexedParallelIterator;

/// Drop-in for `rayon::prelude`: the extension traits that add `par_*`
/// methods to slices and vectors plus the iterator traits themselves.
pub mod prelude {
    pub use crate::iter::{FromParallelIterator, IntoParallelIterator, ParallelIterator};
    pub use crate::{
        IndexedParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelSlice, ParallelSliceMut,
    };
}

/// `par_iter()` — borrowing parallel iterator over a collection.
pub trait IntoParallelRefIterator<'a> {
    /// The item type yielded by the iterator.
    type Item: Send + 'a;
    /// The iterator type returned by [`Self::par_iter`].
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Returns a parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = iter::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        iter::par_iter_impl(self)
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = iter::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        iter::par_iter_impl(self)
    }
}

/// `par_iter_mut()` — mutably borrowing parallel iterator.
pub trait IntoParallelRefMutIterator<'a> {
    /// The item type yielded by the iterator.
    type Item: Send + 'a;
    /// The iterator type returned by [`Self::par_iter_mut`].
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Returns a parallel iterator over `&mut self`'s elements.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = iter::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        iter::par_iter_mut_impl(self)
    }
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = iter::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        iter::par_iter_mut_impl(self)
    }
}

/// `par_chunks()` — parallel iterator over `chunk_size`-sized pieces.
pub trait ParallelSlice<T: Sync> {
    /// Returns a parallel iterator over `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> iter::Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> iter::Chunks<'_, T> {
        iter::par_chunks_impl(self, chunk_size)
    }
}

/// `par_chunks_mut()` — parallel iterator over mutable
/// `chunk_size`-sized pieces.
pub trait ParallelSliceMut<T: Send> {
    /// Returns a parallel iterator over mutable `chunk_size`-sized
    /// chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> iter::ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> iter::ChunksMut<'_, T> {
        iter::par_chunks_mut_impl(self, chunk_size)
    }
}

/// Runs both closures, potentially in parallel, and returns both results.
///
/// With more than one configured worker, `b` runs on a scoped thread
/// while the calling thread runs `a`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join(b) panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_matches_chunks_mut() {
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_iter_collects_in_order() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn zip_of_mut_iters_works() {
        let mut out = vec![0.0f64; 4];
        let inp = [1.0, 2.0, 3.0, 4.0];
        out.par_iter_mut()
            .zip(inp.par_iter())
            .for_each(|(o, &i)| *o = i * i);
        assert_eq!(out, vec![1.0, 4.0, 9.0, 16.0]);
    }

    #[test]
    fn range_collect_preserves_order_across_thread_counts() {
        let reference: Vec<isize> = (-3..1000).map(|k| k * 7).collect();
        for threads in [1, 2, 3, 8, 64] {
            crate::set_num_threads(threads);
            let got: Vec<isize> = (-3isize..1000).into_par_iter().map(|k| k * 7).collect();
            assert_eq!(got, reference, "threads = {threads}");
        }
        crate::set_num_threads(1);
    }

    #[test]
    fn chunked_writes_cover_every_element_threaded() {
        crate::set_num_threads(4);
        let mut v = vec![0usize; 1003]; // not divisible by chunk or team size
        v.par_chunks_mut(10).enumerate().for_each(|(i, c)| {
            for (off, x) in c.iter_mut().enumerate() {
                *x = i * 10 + off;
            }
        });
        crate::set_num_threads(1);
        assert_eq!(v, (0..1003).collect::<Vec<_>>());
    }

    #[test]
    fn zip_chunks_with_per_chunk_slots_is_disjoint() {
        // the apply_fused_dot pattern: chunk sweep zipped with a
        // per-chunk partials slot
        crate::set_num_threads(3);
        let mut data = vec![1.0f64; 700];
        let mut partials = vec![0.0f64; 70];
        data.par_chunks_mut(10)
            .zip(partials.par_iter_mut())
            .enumerate()
            .for_each(|(i, (chunk, slot))| {
                for x in chunk.iter_mut() {
                    *x += i as f64;
                }
                *slot = chunk.iter().sum();
            });
        crate::set_num_threads(1);
        for (i, p) in partials.iter().enumerate() {
            assert_eq!(*p, 10.0 * (1.0 + i as f64), "slot {i}");
        }
    }

    #[test]
    fn deterministic_sum_across_thread_counts() {
        // catastrophic-cancellation-prone values: any reassociation
        // would change the bits
        let v: Vec<f64> = (0..10_000usize)
            .map(|i| ((i.wrapping_mul(2654435761)) % 1000) as f64 * 1e-3 - 0.5)
            .collect();
        crate::set_num_threads(1);
        let s1: f64 = v.par_iter().map(|&x| x * x * 1e3 - x).sum();
        for threads in [2, 4, 7] {
            crate::set_num_threads(threads);
            let st: f64 = v.par_iter().map(|&x| x * x * 1e3 - x).sum();
            assert_eq!(s1.to_bits(), st.to_bits(), "threads = {threads}");
        }
        crate::set_num_threads(1);
    }

    #[test]
    fn join_runs_both_sides() {
        crate::set_num_threads(2);
        let (a, b) = crate::join(|| 1 + 1, || "b");
        crate::set_num_threads(1);
        assert_eq!((a, b), (2, "b"));
    }
}
