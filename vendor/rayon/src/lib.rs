//! Offline stand-in for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors a minimal, API-compatible subset of rayon's
//! parallel-iterator surface. Every `par_*` method returns the ordinary
//! **sequential** standard-library iterator, which keeps call sites
//! (`par_chunks_mut(..).enumerate().zip(..).for_each(..)`,
//! `par_iter().map(..).collect()`, …) compiling and semantically
//! identical — the kernels in `tea-core` already fold their partials in a
//! deterministic order, so sequential execution changes timing only, not
//! results.
//!
//! When real rayon becomes available, deleting this crate from
//! `[workspace.dependencies]` restores true data parallelism with no
//! source changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Drop-in for `rayon::prelude`: the extension traits that add `par_*`
/// methods to slices and vectors.
pub mod prelude {
    pub use crate::{
        IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// `par_iter()` — sequential stand-in returning [`std::slice::Iter`].
pub trait IntoParallelRefIterator<'a> {
    /// The item type yielded by the iterator.
    type Item: 'a;
    /// The iterator type returned by [`Self::par_iter`].
    type Iter: Iterator<Item = Self::Item>;
    /// Returns a (sequential) iterator over `&self`'s elements.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a + Sync> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

/// `par_iter_mut()` — sequential stand-in returning [`std::slice::IterMut`].
pub trait IntoParallelRefMutIterator<'a> {
    /// The item type yielded by the iterator.
    type Item: 'a;
    /// The iterator type returned by [`Self::par_iter_mut`].
    type Iter: Iterator<Item = Self::Item>;
    /// Returns a (sequential) iterator over `&mut self`'s elements.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.iter_mut()
    }
}

impl<'a, T: 'a + Send> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = std::slice::IterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> Self::Iter {
        self.iter_mut()
    }
}

/// `par_chunks()` — sequential stand-in returning [`std::slice::Chunks`].
pub trait ParallelSlice<T> {
    /// Returns a (sequential) iterator over `chunk_size`-sized chunks.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// `par_chunks_mut()` — sequential stand-in returning
/// [`std::slice::ChunksMut`].
pub trait ParallelSliceMut<T> {
    /// Returns a (sequential) iterator over mutable `chunk_size`-sized
    /// chunks.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Runs both closures (sequentially, `a` first) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_matches_chunks_mut() {
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn par_iter_collects_in_order() {
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|&x| 2 * x).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn zip_of_mut_iters_works() {
        let mut out = vec![0.0f64; 4];
        let inp = [1.0, 2.0, 3.0, 4.0];
        out.par_iter_mut()
            .zip(inp.par_iter())
            .for_each(|(o, &i)| *o = i * i);
        assert_eq!(out, vec![1.0, 4.0, 9.0, 16.0]);
    }
}
