//! Offline stand-in for [serde_derive](https://crates.io/crates/serde_derive).
//!
//! The workspace derives `Serialize`/`Deserialize` on its protocol and
//! model types so that a future (networked) build can serialize traces
//! and decks to JSON. Nothing in the tree calls a serializer yet, so
//! these stand-in derives validate the attribute position and expand to
//! **no code at all** — no trait impls are generated, and none are
//! required. Swapping real serde back in is a `[workspace.dependencies]`
//! change only.

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Stand-in for `#[derive(Serialize)]`: expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Stand-in for `#[derive(Deserialize)]`: expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
