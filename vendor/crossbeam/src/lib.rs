//! Offline stand-in for [crossbeam](https://crates.io/crates/crossbeam).
//!
//! Only the `channel` module subset that `tea-comms` uses is provided:
//! [`channel::unbounded`] MPMC channels whose [`channel::Sender`] and
//! [`channel::Receiver`] are both `Send + Sync + Clone`, with blocking
//! `recv` and disconnect detection on both ends. The implementation is a
//! `Mutex<VecDeque>` + `Condvar` queue — slower than crossbeam's
//! lock-free channel but behaviourally equivalent for the simulated-MPI
//! workload (per-pair FIFO ordering, blocking receive, error on
//! disconnected peer).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        available: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: Debug/Display without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates an unbounded MPMC FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            available: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, waking one blocked receiver. Fails only if
        /// every [`Receiver`] has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.queue.lock().expect("channel mutex poisoned");
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.items.push_back(value);
            drop(st);
            self.inner.available.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value is available or every [`Sender`] has been
        /// dropped and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(v) = st.items.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .inner
                    .available
                    .wait(st)
                    .expect("channel mutex poisoned");
            }
        }

        /// Returns a value if one is immediately available.
        pub fn try_recv(&self) -> Option<T> {
            self.inner
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.queue.lock().expect("channel mutex poisoned");
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                // wake receivers so they can observe the disconnect
                self.inner.available.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.inner
                .queue
                .lock()
                .expect("channel mutex poisoned")
                .receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError};

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_blocks_until_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn disconnect_detected_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(7).is_err());
    }

    #[test]
    fn clones_share_the_queue() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx2.send(5).unwrap();
        assert_eq!(rx2.recv().unwrap(), 5);
        drop(tx);
        drop(tx2);
        assert!(rx.recv().is_err());
    }
}
