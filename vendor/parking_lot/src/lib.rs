//! Offline stand-in for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! Wraps `std::sync::{Mutex, Condvar}` behind parking_lot's ergonomics:
//! [`Mutex::lock`] returns the guard directly (no `Result` — a poisoned
//! lock panics, which real parking_lot sidesteps by not tracking poison
//! at all) and [`Condvar::wait`] takes `&mut MutexGuard` and re-acquires
//! in place. Only the surface used by `tea-comms`' threaded communicator
//! is provided.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is a moveability shim: [`Condvar::wait`] must hand
/// the guard to `std::sync::Condvar::wait` by value and put the returned
/// guard back through a `&mut` borrow. It is `None` only transiently
/// inside that call.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().expect("mutex poisoned")),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().expect("mutex poisoned")
    }
}

/// A condition variable compatible with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and blocks until notified;
    /// the lock is re-acquired (in place, per parking_lot's signature)
    /// before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let owned = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.inner.wait(owned).expect("mutex poisoned"));
    }

    /// Wakes one blocked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every blocked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter_and_reacquires_in_place() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            *ready
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(h.join().unwrap());
    }

    #[test]
    fn notify_one_releases_a_single_waiter() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut n = lock.lock();
            while *n == 0 {
                cv.wait(&mut n);
            }
            *n
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = 9;
        cv.notify_one();
        assert_eq!(h.join().unwrap(), 9);
    }
}
