//! # TeaLeaf-rs
//!
//! A from-scratch Rust reproduction of the TeaLeaf mini-application
//! (McIntosh-Smith et al., *TeaLeaf: A Mini-Application to Enable
//! Design-Space Explorations for Iterative Sparse Linear Solvers*, IEEE
//! CLUSTER 2017): matrix-free iterative sparse linear solvers for the
//! implicit heat-conduction equation on structured grids, including the
//! paper's communication-avoiding CPPCG solver with block-Jacobi
//! preconditioning and matrix-powers deep halos, a simulated distributed
//! runtime, a multigrid baseline, and calibrated performance models of
//! the paper's three petascale machines.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`mesh`] (`tea-mesh`) — fields, decomposition, geometry, coefficients
//! * [`comms`] (`tea-comms`) — simulated MPI: halo exchange, reductions
//! * [`solvers`] (`tea-core`) — Jacobi, CG, Chebyshev, CPPCG, preconditioners
//! * [`amg`] (`tea-amg`) — multigrid-preconditioned CG baseline
//! * [`tune`] (`tea-tune`) — run-time auto-tuning: the `auto` pseudo-solver
//! * [`perfmodel`] (`tea-perfmodel`) — machine models, scaling simulator
//! * [`app`] (`tea-app`) — input decks, driver, diagnostics, output
//!
//! The solver design space is a first-class API: every method
//! implements [`solvers::IterativeSolver`], is selectable by name from
//! the [`solvers::SolverRegistry`] (decks: `tl_solver=<name>`; CLI:
//! `--solver <name>`, `--list-solvers`), and the [`solvers::Solve`]
//! builder is the one-expression way to run one solve.
//!
//! ## Quickstart: one solve
//!
//! ```
//! use tealeaf::solvers::{crooked_pipe_system, Solve};
//!
//! let (op, b) = crooked_pipe_system(32, 0.04, 8);
//! let mut u = b.clone();
//! let result = Solve::on(&op)
//!     .with_solver("ppcg")
//!     .halo_depth(8)
//!     .eps(1e-12)
//!     .run(&mut u, &b)
//!     .expect("ppcg is a registered solver");
//! assert!(result.converged);
//! ```
//!
//! ## Quickstart: auto-tuning
//!
//! `tl_solver=auto` (CLI `--solver auto`) races the tunable methods and
//! adopts the cheapest converged one — see the README's "Auto-tuning"
//! section:
//!
//! ```
//! use tealeaf::solvers::{crooked_pipe_system, Solve, SolverRegistry};
//!
//! let mut registry = SolverRegistry::builtin();
//! tealeaf::tune::register_auto(&mut registry);
//! let (op, b) = crooked_pipe_system(16, 0.04, 8);
//! let mut u = b.clone();
//! let result = Solve::on(&op)
//!     .with_registry(&registry)
//!     .with_solver("auto")
//!     .halo_depth(8)
//!     .run(&mut u, &b)
//!     .expect("auto is registered");
//! assert!(result.converged);
//! ```
//!
//! ## Quickstart: the full time-stepping driver
//!
//! ```
//! use tealeaf::app::{crooked_pipe_deck, run_serial};
//!
//! let mut deck = crooked_pipe_deck(32, "ppcg");
//! deck.control.end_step = 2;
//! deck.control.ppcg_halo_depth = 4;
//! let out = run_serial(&deck).expect("deck runs");
//! assert!(out.steps.iter().all(|s| s.converged));
//! println!("avg temperature = {}", out.final_summary.average_temperature());
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use tea_amg as amg;
pub use tea_app as app;
pub use tea_comms as comms;
pub use tea_core as solvers;
pub use tea_mesh as mesh;
pub use tea_perfmodel as perfmodel;
pub use tea_tune as tune;
