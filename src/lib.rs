//! # TeaLeaf-rs
//!
//! A from-scratch Rust reproduction of the TeaLeaf mini-application
//! (McIntosh-Smith et al., *TeaLeaf: A Mini-Application to Enable
//! Design-Space Explorations for Iterative Sparse Linear Solvers*, IEEE
//! CLUSTER 2017): matrix-free iterative sparse linear solvers for the
//! implicit heat-conduction equation on structured grids, including the
//! paper's communication-avoiding CPPCG solver with block-Jacobi
//! preconditioning and matrix-powers deep halos, a simulated distributed
//! runtime, a multigrid baseline, and calibrated performance models of
//! the paper's three petascale machines.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`mesh`] (`tea-mesh`) — fields, decomposition, geometry, coefficients
//! * [`comms`] (`tea-comms`) — simulated MPI: halo exchange, reductions
//! * [`solvers`] (`tea-core`) — Jacobi, CG, Chebyshev, CPPCG, preconditioners
//! * [`amg`] (`tea-amg`) — multigrid-preconditioned CG baseline
//! * [`perfmodel`] (`tea-perfmodel`) — machine models, scaling simulator
//! * [`app`] (`tea-app`) — input decks, driver, diagnostics, output
//!
//! ## Quickstart
//!
//! ```
//! use tealeaf::app::{crooked_pipe_deck, run_serial, SolverKind};
//!
//! let mut deck = crooked_pipe_deck(32, SolverKind::Ppcg);
//! deck.control.end_step = 2;
//! deck.control.ppcg_halo_depth = 4;
//! let out = run_serial(&deck);
//! assert!(out.steps.iter().all(|s| s.converged));
//! println!("avg temperature = {}", out.final_summary.average_temperature());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use tea_amg as amg;
pub use tea_app as app;
pub use tea_comms as comms;
pub use tea_core as solvers;
pub use tea_mesh as mesh;
pub use tea_perfmodel as perfmodel;
