//! Quickstart: solve one implicit heat-conduction step on the crooked
//! pipe with every registered solver and compare their communication
//! protocols — the design space as a first-class API.
//!
//! The `Solve` builder is the one-expression way in; under it sit the
//! string-keyed `SolverRegistry` and the `IterativeSolver` trait every
//! method implements (see the README architecture section).
//!
//! Run with: `cargo run --release --example quickstart`

use tealeaf::solvers::{crooked_pipe_system, PreconKind, Solve, SolveResult};

fn main() {
    let n = 128;
    println!("crooked pipe, {n}x{n} cells, one implicit step (dt = 0.04)\n");

    // one assembled operator serves every solver; halo 8 is deep enough
    // for the PPCG-8 matrix-powers schedule
    let (op, b) = crooked_pipe_system(n, 0.04, 8);

    println!(
        "{:<22} {:>8} {:>10} {:>12} {:>12}",
        "solver", "iters", "sweeps", "reductions", "exchanges"
    );

    // the design-space floor needs a relaxed cap: Jacobi converges slowly
    let mut u = b.clone();
    let r = Solve::on(&op)
        .with_solver("jacobi")
        .eps(1e-10)
        .max_iters(200_000)
        .run(&mut u, &b)
        .expect("registered");
    report("Jacobi", &r);

    // every Krylov-family method through the same builder
    for (label, name, precon) in [
        ("CG", "cg", PreconKind::None),
        ("CG + block-Jacobi", "cg", PreconKind::BlockJacobi),
        ("CG (fused reductions)", "cg_fused", PreconKind::None),
        ("Chebyshev", "chebyshev", PreconKind::None),
        ("Richardson", "richardson", PreconKind::Diagonal),
    ] {
        let mut u = b.clone();
        let r = Solve::on(&op)
            .with_solver(name)
            .precon(precon)
            .eps(1e-10)
            .max_iters(200_000)
            .run(&mut u, &b)
            .expect("registered");
        report(label, &r);
    }

    // CPPCG at depths 1 and 8
    for depth in [1usize, 8] {
        let mut u = b.clone();
        let r = Solve::on(&op)
            .with_solver("ppcg")
            .halo_depth(depth)
            .eps(1e-10)
            .run(&mut u, &b)
            .expect("registered");
        report(&format!("CPPCG (depth {depth})"), &r);
    }

    println!(
        "\nNote how CPPCG pays a few extra stencil sweeps to slash global\n\
         reductions (the strong-scaling bottleneck), and how deeper matrix\n\
         powers cut halo exchange counts further — the paper's Figs. 5-7."
    );

    fn report(name: &str, r: &SolveResult) {
        assert!(r.converged, "{name} failed to converge");
        println!(
            "{:<22} {:>8} {:>10} {:>12} {:>12}",
            name,
            r.iterations,
            r.trace.spmv.total(),
            r.trace.reductions,
            r.trace.total_halo_exchanges()
        );
    }
}
