//! Quickstart: solve one implicit heat-conduction step on the crooked
//! pipe with each of the stand-alone solvers and compare their
//! communication protocols.
//!
//! Run with: `cargo run --release --example quickstart`

use tealeaf::comms::{HaloLayout, SerialComm};
use tealeaf::mesh::{
    crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D,
};
use tealeaf::solvers::{
    cg_fused_solve, cg_solve, chebyshev_solve, jacobi_solve, ppcg_solve, ChebyOpts, PpcgOpts,
    PreconKind, Preconditioner, SolveOpts, Tile, TileBounds, TileOperator, Workspace,
};

fn main() {
    let n = 128;
    println!("crooked pipe, {n}x{n} cells, one implicit step (dt = 0.04)\n");

    // --- set up the problem exactly as the driver does ---
    let problem = crooked_pipe(n);
    let mesh = Mesh2D::serial(n, n, problem.extent);
    let halo = 8; // deep enough for PPCG-8
    let mut density = Field2D::new(n, n, halo);
    let mut energy = Field2D::new(n, n, halo);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, halo);
    let op = TileOperator::new(coeffs, TileBounds::new(&mesh, halo));

    // right-hand side: u0 = density * energy
    let mut b = Field2D::new(n, n, halo);
    for k in 0..n as isize {
        for j in 0..n as isize {
            b.set(j, k, density.at(j, k) * energy.at(j, k));
        }
    }

    let decomp = Decomposition2D::with_grid(n, n, 1, 1);
    let layout = HaloLayout::new(&decomp, 0);
    let comm = SerialComm::new();
    let tile = Tile::new(&op, &layout, &comm);
    let opts = SolveOpts::with_eps(1e-10);

    println!(
        "{:<22} {:>8} {:>10} {:>12} {:>12}",
        "solver", "iters", "sweeps", "reductions", "exchanges"
    );

    let mut ws = Workspace::new(n, n, halo);

    // Jacobi: the design-space floor
    let mut u = b.clone();
    let r = jacobi_solve(
        &tile,
        &mut u,
        &b,
        &mut ws,
        SolveOpts {
            eps: 1e-10,
            max_iters: 200_000,
        },
    );
    report("Jacobi", &r);

    // plain CG
    let ident = Preconditioner::setup(PreconKind::None, &op, 0);
    let mut u = b.clone();
    let r = cg_solve(&tile, &mut u, &b, &ident, &mut ws, opts);
    report("CG", &r);

    // CG + block-Jacobi
    let block = Preconditioner::setup(PreconKind::BlockJacobi, &op, 0);
    let mut u = b.clone();
    let r = cg_solve(&tile, &mut u, &b, &block, &mut ws, opts);
    report("CG + block-Jacobi", &r);

    // single-reduction CG (the paper's §VII future-work restructuring)
    let mut u = b.clone();
    let r = cg_fused_solve(&tile, &mut u, &b, &ident, &mut ws, opts);
    report("CG (fused reductions)", &r);

    // Chebyshev (CG presteps for eigenvalues, then no dot products)
    let mut u = b.clone();
    let r = chebyshev_solve(
        &tile,
        &mut u,
        &b,
        &ident,
        &mut ws,
        opts,
        ChebyOpts::default(),
    );
    report("Chebyshev", &r);

    // CPPCG at depths 1 and 8
    for depth in [1usize, 8] {
        let mut u = b.clone();
        let r = ppcg_solve(
            &tile,
            &mut u,
            &b,
            &ident,
            &mut ws,
            opts,
            PpcgOpts::with_depth(depth),
        );
        report(&format!("CPPCG (depth {depth})"), &r);
    }

    println!(
        "\nNote how CPPCG pays a few extra stencil sweeps to slash global\n\
         reductions (the strong-scaling bottleneck), and how deeper matrix\n\
         powers cut halo exchange counts further — the paper's Figs. 5-7."
    );

    fn report(name: &str, r: &tealeaf::solvers::SolveResult) {
        assert!(r.converged, "{name} failed to converge");
        println!(
            "{:<22} {:>8} {:>10} {:>12} {:>12}",
            name,
            r.iterations,
            r.trace.spmv.total(),
            r.trace.reductions,
            r.trace.total_halo_exchanges()
        );
    }
}
