//! Deck-driven workflow: build a custom two-material problem as a
//! `tea.in`-style deck string, parse it, run it, and print diagnostics —
//! the workflow a TeaLeaf user follows with input files.
//!
//! Run with: `cargo run --release --example deck_driven`

use tealeaf::app::{parse_deck, render_deck, run_serial};

const DECK: &str = r#"
! A hot disc inside a cold conducting plate, solved with CG + block-Jacobi.
*tea
state 1 density=1.0  energy=1.0
state 2 density=0.2  energy=50.0 geometry=circular xcentre=5.0 ycentre=5.0 radius=1.5
state 3 density=10.0 energy=0.1  geometry=rectangle xmin=0.0 xmax=10.0 ymin=8.5 ymax=10.0
x_cells=96
y_cells=96
xmin=0.0
xmax=10.0
ymin=0.0
ymax=10.0
initial_timestep=0.02
end_step=12
tl_solver=cg
tl_preconditioner_type=jac_block
tl_eps=1e-10
tl_max_iters=20000
tl_coefficient=1
summary_frequency=4
*endtea
"#;

fn main() {
    let deck = parse_deck(DECK).expect("deck must parse");
    println!("parsed deck:\n{}", render_deck(&deck));

    let out = run_serial(&deck).expect("deck runs");

    println!(
        "{:>6} {:>9} {:>7} {:>16}",
        "step", "time", "iters", "avg temperature"
    );
    for s in &out.steps {
        if let Some(sum) = s.summary {
            println!(
                "{:>6} {:>9.3} {:>7} {:>16.9}",
                s.step,
                s.time,
                s.iterations,
                sum.average_temperature()
            );
        }
    }

    let s = out.final_summary;
    println!(
        "\nfinal: mass = {:.6e}, internal energy = {:.6e}",
        s.mass, s.internal_energy
    );
    println!(
        "solver: {} outer iterations, {} reductions, {} halo exchanges",
        out.trace.outer_iterations,
        out.trace.reductions,
        out.trace.total_halo_exchanges()
    );

    // conservation sanity: insulated boundaries conserve Σ u·vol
    let first = out.steps.iter().find_map(|s| s.summary).unwrap();
    let last = out.final_summary;
    let drift = (last.temperature - first.temperature).abs() / first.temperature.abs();
    println!("temperature-integral drift over the run: {drift:.2e}");
    assert!(drift < 1e-6, "insulated boundaries must conserve heat");
}
