//! The 3D (7-point stencil) solver path: a kinked conducting channel
//! through a dense cube, stepped implicitly with CG — the paper's §II
//! "two and three dimensions" scope.
//!
//! Run with: `cargo run --release --example heat3d -- [cells] [steps]`

use tealeaf::mesh::{crooked_pipe_3d, Coefficients3D, Field3D, Mesh3D};
use tealeaf::solvers::{cg_solve_3d, SolveOpts, TileOperator3D};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let steps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);

    let problem = crooked_pipe_3d(n);
    problem.validate().expect("valid 3D problem");
    let mesh = Mesh3D::new(n, n, n, problem.extent);
    let mut density = Field3D::new(n, n, n, 1);
    let mut energy = Field3D::new(n, n, n, 1);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let dt = 0.04;
    let (rx, ry, rz) = mesh.timestep_scalings(dt);
    let coeffs = Coefficients3D::assemble(&mesh, &density, problem.coefficient, rx, ry, rz, 1);
    let op = TileOperator3D::new(coeffs);

    println!(
        "3D crooked pipe: {n}^3 cells ({} unknowns), {steps} steps of dt = {dt}",
        n * n * n
    );
    println!(
        "{:>6} {:>8} {:>14} {:>16}",
        "step", "iters", "residual", "total heat"
    );

    let mut u = Field3D::new(n, n, n, 1);
    let mut b = Field3D::new(n, n, n, 1);
    let mut initial_heat = None;
    for step in 1..=steps {
        // b = rho * e ; warm start u = b
        for i in 0..n as isize {
            for k in 0..n as isize {
                for j in 0..n as isize {
                    b.set(j, k, i, density.at(j, k, i) * energy.at(j, k, i));
                }
            }
        }
        let heat = b.interior_sum();
        initial_heat.get_or_insert(heat);
        for i in 0..n as isize {
            for k in 0..n as isize {
                for j in 0..n as isize {
                    u.set(j, k, i, b.at(j, k, i));
                }
            }
        }
        let res = cg_solve_3d(&op, &mut u, &b, SolveOpts::with_eps(1e-10));
        assert!(res.converged, "3D CG failed at step {step}");
        // e = u / rho
        for i in 0..n as isize {
            for k in 0..n as isize {
                for j in 0..n as isize {
                    energy.set(j, k, i, u.at(j, k, i) / density.at(j, k, i));
                }
            }
        }
        println!(
            "{:>6} {:>8} {:>14.3e} {:>16.8}",
            step,
            res.iterations,
            res.final_residual,
            u.interior_sum()
        );
    }

    let drift = (u.interior_sum() - initial_heat.unwrap()).abs() / initial_heat.unwrap();
    println!("\nheat conservation drift over the run: {drift:.2e} (insulated boundaries)");
    assert!(drift < 1e-8);

    // heat travelled along the kinked channel: probe inlet vs exit vs wall
    let probe = |j: isize, k: isize, i: isize| u.at(j, k, i);
    let inlet = probe(1, (n / 10 * 3 / 2) as isize, 3 * n as isize / 20);
    let wall = probe(n as isize - 2, 1, 1);
    println!("inlet-region u = {inlet:.3e}, far-wall u = {wall:.3e}");
    assert!(inlet > wall, "heat must follow the 3D pipe");
}
