//! The paper's crooked-pipe workload (Fig. 3): a dense low-conductivity
//! wall crossed by a high-conductivity pipe with kinks, driven by a hot
//! source at the inlet. Runs the full time-stepping driver on simulated
//! MPI ranks and writes a heat-map image of the final temperature field.
//!
//! Run with:
//! `cargo run --release --example crooked_pipe -- [cells] [steps] [ranks] [out_dir]`
//!
//! Outputs land under `out_dir` (default `target/example-out`, which is
//! gitignored) so example runs never litter the repository root.

use std::path::PathBuf;
use tealeaf::app::{
    crooked_pipe_deck, run_serial, run_threaded_ranks, write_field_csv, write_field_ppm,
};
use tealeaf::solvers::PreconKind;

fn main() {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(192);
    let steps: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(25);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    let mut deck = crooked_pipe_deck(cells, "ppcg");
    deck.control.end_step = steps;
    deck.control.ppcg_halo_depth = 4;
    deck.control.precon = PreconKind::None;
    deck.control.summary_frequency = 5;

    println!(
        "crooked pipe: {cells}x{cells} cells, {steps} steps of dt = {}, {ranks} rank(s), CPPCG-4",
        deck.control.dt
    );

    let out = if ranks <= 1 {
        run_serial(&deck).expect("deck runs")
    } else {
        run_threaded_ranks(&deck, ranks)
            .expect("deck runs")
            .into_iter()
            .next()
            .unwrap()
    };

    println!(
        "\n{:>6} {:>9} {:>7} {:>16}",
        "step", "time", "iters", "avg temperature"
    );
    for s in &out.steps {
        if let Some(sum) = s.summary {
            println!(
                "{:>6} {:>9.3} {:>7} {:>16.9}",
                s.step,
                s.time,
                s.iterations,
                sum.average_temperature()
            );
        }
    }

    let u = out.final_u.expect("rank 0 gathers the field");
    let out_dir = std::env::args()
        .nth(4)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/example-out"));
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let ppm = out_dir.join("crooked_pipe.ppm");
    let csv = out_dir.join("crooked_pipe.csv");
    write_field_ppm(&u, &ppm).expect("write ppm");
    write_field_csv(&u, &csv).expect("write csv");
    println!(
        "\nwrote {} (heat map, log-scaled like the paper's Fig. 3) and {}",
        ppm.display(),
        csv.display()
    );

    // the physics sanity check the figure shows: heat has travelled along
    // the pipe, so the pipe interior is hotter than the wall
    let n = cells as isize;
    let pipe_cell = u.at(n / 10, n * 3 / 20); // inside the inlet leg
    let wall_cell = u.at(n - 2, n - 2); // far wall corner
    println!("pipe u = {pipe_cell:.4e}, far-wall u = {wall_cell:.4e}");
    assert!(pipe_cell > wall_cell, "heat must follow the pipe");
}
