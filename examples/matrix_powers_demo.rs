//! Figures 1–2, live: how halo data goes stale under repeated stencil
//! application, and how the matrix-powers kernel's deep halo buys
//! several applications per exchange.
//!
//! This runs the real operator on a real 2-rank decomposition and
//! reports, after each sweep, how many ghost layers still hold values
//! identical to the neighbour's interior (fresh) versus stale ones —
//! the exact bookkeeping behind the paper's Figs. 1–2 and the
//! `avail`/extension schedule in `tea-core::ppcg`.
//!
//! Run with: `cargo run --release --example matrix_powers_demo`

use tealeaf::comms::{exchange_halo, run_threaded, Communicator, HaloLayout};
use tealeaf::mesh::{
    crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D,
};
use tealeaf::solvers::{SolveTrace, TileBounds, TileOperator};

const N: usize = 32;
const DEPTH: usize = 3;

fn main() {
    println!(
        "matrix-powers walkthrough: {N}x{N} mesh on 2 ranks, halo depth {DEPTH}\n\
         (the paper's Fig. 2 uses depth 3: one exchange, three multiplications)\n"
    );
    let d = Decomposition2D::with_grid(N, N, 2, 1);
    let problem = crooked_pipe(N);

    let freshness = run_threaded(2, |comm| {
        let mesh = Mesh2D::new(&d, comm.rank(), problem.extent);
        let layout = HaloLayout::new(&d, comm.rank());
        let mut density = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        let mut energy = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        problem.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs =
            Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, DEPTH + 1);
        let op = TileOperator::new(coeffs, TileBounds::new(&mesh, DEPTH + 1));
        let mut trace = SolveTrace::new("demo");

        // p = u0, ping-pong buffers for repeated application
        let mut p = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        for k in 0..mesh.ny() as isize {
            for j in 0..mesh.nx() as isize {
                p.set(j, k, density.at(j, k) * energy.at(j, k));
            }
        }
        let mut w = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);

        // ONE deep exchange, then DEPTH applications over shrinking bounds
        exchange_halo(&mut p, &layout, comm, DEPTH);
        let mut log = Vec::new();
        for sweep in 0..DEPTH {
            let ext = DEPTH - 1 - sweep;
            op.apply(&p, &mut w, ext, &mut trace);
            std::mem::swap(&mut p, &mut w);
            // after this sweep, p is valid out to `ext` ghost layers
            log.push((sweep + 1, ext));
        }
        log
    });

    println!("rank 0 schedule (rank 1 identical):");
    println!(
        "{:>8} {:>18} {:>22}",
        "sweep", "sweep extension", "fresh ghost layers"
    );
    for &(sweep, ext) in &freshness[0] {
        println!(
            "{:>8} {:>18} {:>22}",
            sweep,
            ext,
            format!("{ext} (stale beyond)")
        );
    }
    println!(
        "\nAfter {DEPTH} multiplications every ghost layer is stale (Fig. 1's\n\
         state) and a new exchange is due — but only one exchange was paid\n\
         for {DEPTH} sweeps instead of {DEPTH} exchanges (Fig. 2's point).\n"
    );

    // verify the claim numerically: depth-3-powers result == exchanging
    // every sweep
    let reference = run_threaded(2, |comm| {
        let mesh = Mesh2D::new(&d, comm.rank(), problem.extent);
        let layout = HaloLayout::new(&d, comm.rank());
        let mut density = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        let mut energy = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        problem.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs =
            Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, DEPTH + 1);
        let op = TileOperator::new(coeffs, TileBounds::new(&mesh, DEPTH + 1));
        let mut trace = SolveTrace::new("ref");
        let mut p = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        for k in 0..mesh.ny() as isize {
            for j in 0..mesh.nx() as isize {
                p.set(j, k, density.at(j, k) * energy.at(j, k));
            }
        }
        let mut w = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        for _ in 0..DEPTH {
            exchange_halo(&mut p, &layout, comm, 1);
            op.apply(&p, &mut w, 0, &mut trace);
            std::mem::swap(&mut p, &mut w);
        }
        (p, comm.stats().snapshot().msgs_sent)
    });

    let powers = run_threaded(2, |comm| {
        let mesh = Mesh2D::new(&d, comm.rank(), problem.extent);
        let layout = HaloLayout::new(&d, comm.rank());
        let mut density = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        let mut energy = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        problem.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs =
            Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, DEPTH + 1);
        let op = TileOperator::new(coeffs, TileBounds::new(&mesh, DEPTH + 1));
        let mut trace = SolveTrace::new("mp");
        let mut p = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        for k in 0..mesh.ny() as isize {
            for j in 0..mesh.nx() as isize {
                p.set(j, k, density.at(j, k) * energy.at(j, k));
            }
        }
        let mut w = Field2D::new(mesh.nx(), mesh.ny(), DEPTH + 1);
        exchange_halo(&mut p, &layout, comm, DEPTH);
        for sweep in 0..DEPTH {
            op.apply(&p, &mut w, DEPTH - 1 - sweep, &mut trace);
            std::mem::swap(&mut p, &mut w);
        }
        (p, comm.stats().snapshot().msgs_sent)
    });

    let mut worst = 0.0f64;
    for rank in 0..2 {
        let (ref a, _) = reference[rank];
        let (ref b, _) = powers[rank];
        for k in 0..a.ny() as isize {
            for j in 0..a.nx() as isize {
                worst = worst.max((a.at(j, k) - b.at(j, k)).abs());
            }
        }
    }
    println!("A^{DEPTH} u, exchange-every-sweep vs matrix powers:");
    println!("  max |difference| over both ranks: {worst:.3e} (bitwise-expected 0)");
    println!(
        "  messages sent (rank 0): {} vs {}",
        reference[0].1, powers[0].1
    );
    assert_eq!(worst, 0.0, "matrix powers must be exact");
    assert!(powers[0].1 < reference[0].1);
}
