//! The eigenvalue machinery behind CPPCG (paper §III.C-D): estimate the
//! spectrum of the crooked-pipe operator from CG coefficients, quantify
//! the block-Jacobi preconditioner's condition-number cut, and check the
//! paper's iteration-bound formulas (Eqs. 6-7).
//!
//! Run with: `cargo run --release --example eigenvalue_tools -- [cells]`

use tealeaf::comms::{HaloLayout, SerialComm};
use tealeaf::mesh::{
    crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D,
};
use tealeaf::solvers::{
    cg_iteration_bound, cg_solve_recording, estimate_from_cg, PreconKind, Preconditioner,
    SolveOpts, Tile, TileBounds, TileOperator, Workspace,
};

fn main() {
    let cells: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(96);

    let problem = crooked_pipe(cells);
    let mesh = Mesh2D::serial(cells, cells, problem.extent);
    let mut density = Field2D::new(cells, cells, 1);
    let mut energy = Field2D::new(cells, cells, 1);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, 1);
    let op = TileOperator::new(coeffs, TileBounds::serial(cells, cells));
    let mut b = Field2D::new(cells, cells, 1);
    for k in 0..cells as isize {
        for j in 0..cells as isize {
            b.set(j, k, density.at(j, k) * energy.at(j, k));
        }
    }
    let decomp = Decomposition2D::with_grid(cells, cells, 1, 1);
    let layout = HaloLayout::new(&decomp, 0);
    let comm = SerialComm::new();
    let tile = Tile::new(&op, &layout, &comm);

    println!("crooked pipe {cells}x{cells}, dt = 0.04\n");
    println!(
        "{:<14} {:>12} {:>12} {:>10} {:>10}",
        "operator", "λmin", "λmax", "κ", "iters"
    );

    let mut kappas = Vec::new();
    for kind in [
        PreconKind::None,
        PreconKind::Diagonal,
        PreconKind::BlockJacobi,
    ] {
        let precon = Preconditioner::setup(kind, &op, 0);
        let mut ws = Workspace::new(cells, cells, 1);
        let mut u = b.clone();
        // run enough CG iterations for tight Lanczos bounds
        let (res, coeffs) = cg_solve_recording(
            &tile,
            &mut u,
            &b,
            &precon,
            &mut ws,
            SolveOpts::with_eps(1e-10),
            80,
        );
        let (al, be) = coeffs.for_lanczos();
        let est = estimate_from_cg(al, be, 0.0);
        println!(
            "{:<14} {:>12.6} {:>12.6} {:>10.3} {:>10}",
            match kind {
                PreconKind::None => "A",
                PreconKind::Diagonal => "diag⁻¹A",
                PreconKind::BlockJacobi => "M_block⁻¹A",
            },
            est.min,
            est.max,
            est.condition_number(),
            res.iterations
        );
        kappas.push(est.condition_number());
    }

    let cut = 100.0 * (1.0 - kappas[2] / kappas[0]);
    println!(
        "\nblock-Jacobi cuts the condition number by {cut:.1}% \
         (paper §IV.C.1 reports ≈ 40%)"
    );

    // Eqs. 6-7: CG iteration bound and the outer/inner ratio
    let eps = 1e-10;
    let k_total = cg_iteration_bound(kappas[0], eps);
    println!("\nEq. 6 bound on CG iterations:        {k_total:.0}");
    for m in [4usize, 10, 16] {
        // the m-step Chebyshev preconditioner reduces kappa to roughly
        // ((1+c^m)/(1-c^m))^2 with c the per-step contraction
        let kappa = kappas[0];
        let c = ((kappa.sqrt() - 1.0) / (kappa.sqrt() + 1.0)).powi(m as i32);
        let kappa_pcg = ((1.0 + c) / (1.0 - c)).powi(2);
        let k_outer = cg_iteration_bound(kappa_pcg, eps);
        println!(
            "Eq. 7 bound on CPPCG outer iterations (m = {m:>2}): {k_outer:>6.0}  \
             (reduction ratio ≈ {:.1}x)",
            k_total / k_outer
        );
    }
}
