//! A miniature of the paper's strong-scaling study (Figs. 5-8): measure
//! real solver traces on a laptop-sized mesh, then replay them on the
//! modelled Titan and Piz Daint at 1..8192 nodes.
//!
//! Run with: `cargo run --release --example scaling_study -- [cells] [steps]`

use tealeaf::app::{crooked_pipe_deck, run_serial};
use tealeaf::perfmodel::{piz_daint, solver_elem_bytes, titan, KernelBytes, ScalingSeries};

fn main() {
    let mut args = std::env::args().skip(1);
    let cells: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let steps: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);

    println!("measuring solver protocols on a {cells}x{cells} crooked pipe ({steps} steps)...\n");

    // measure real traces; each leg carries its element width so the
    // replay prices f32/mixed protocols at 4 B/element, not 8
    let mut configs: Vec<(String, tealeaf::solvers::SolveTrace, f64)> = Vec::new();
    {
        let mut deck = crooked_pipe_deck(cells, "cg");
        deck.control.end_step = steps;
        deck.control.summary_frequency = 0;
        let out = run_serial(&deck).expect("deck runs");
        configs.push(("CG - 1".into(), out.trace, solver_elem_bytes("cg")));
    }
    for depth in [1usize, 4, 16] {
        let mut deck = crooked_pipe_deck(cells, "ppcg");
        deck.control.end_step = steps;
        deck.control.ppcg_halo_depth = depth;
        deck.control.summary_frequency = 0;
        let out = run_serial(&deck).expect("deck runs");
        configs.push((
            format!("PPCG - {depth}"),
            out.trace,
            solver_elem_bytes("ppcg"),
        ));
    }
    {
        let mut deck = crooked_pipe_deck(cells, "mixed_ppcg");
        deck.control.end_step = steps;
        deck.control.summary_frequency = 0;
        let out = run_serial(&deck).expect("deck runs");
        configs.push((
            "mPPCG f32".into(),
            out.trace,
            solver_elem_bytes("mixed_ppcg"),
        ));
    }

    let global = (cells, cells);
    for machine in [titan(), piz_daint()] {
        println!("== {} (to {} nodes) ==", machine.name, machine.max_nodes);
        println!(
            "{:>8} {}",
            "nodes",
            configs
                .iter()
                .map(|(l, _, _)| format!("{l:>12}"))
                .collect::<String>()
        );
        let series: Vec<ScalingSeries> = configs
            .iter()
            .map(|(label, trace, width)| {
                ScalingSeries::sweep_width(
                    label.clone(),
                    &machine,
                    trace,
                    global,
                    KernelBytes::for_width(*width),
                    *width,
                )
            })
            .collect();
        for (i, point) in series[0].points.iter().enumerate() {
            print!("{:>8}", point.nodes);
            for s in &series {
                print!("{:>12.5}", s.points[i].total());
            }
            println!();
        }
        for s in &series {
            println!("   {} fastest at {} nodes", s.label, s.best_nodes());
        }
        println!();
    }

    println!(
        "The shapes to look for (paper Figs. 5-6): CG flattens early on\n\
         reduction latency; deeper matrix powers keep scaling further; the\n\
         fixed-size problem has a knee where tiles get too small."
    );
}
