//! Failure injection: the library must fail loudly and informatively,
//! not silently produce wrong physics.

use tealeaf::app::{crooked_pipe_deck, parse_deck, run_serial};
use tealeaf::comms::{Communicator, HaloLayout, SerialComm};
use tealeaf::mesh::{
    crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D,
};
use tealeaf::solvers::{
    PreconKind, Preconditioner, Solve, SolveOpts, Tile, TileBounds, TileOperator, Workspace,
};

fn small_problem(n: usize) -> (TileOperator, Field2D) {
    let p = crooked_pipe(n);
    let mesh = Mesh2D::serial(n, n, p.extent);
    let mut density = Field2D::new(n, n, 1);
    let mut energy = Field2D::new(n, n, 1);
    p.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, 1);
    let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
    let mut b = Field2D::new(n, n, 1);
    for k in 0..n as isize {
        for j in 0..n as isize {
            b.set(j, k, density.at(j, k) * energy.at(j, k));
        }
    }
    (op, b)
}

#[test]
fn iteration_cap_reports_non_convergence() {
    let (op, b) = small_problem(32);
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(32, 32, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let tile = Tile::new(&op, &layout, &comm);
    let mut ws = Workspace::new(32, 32, 1);
    let mut u = b.clone();
    let res = Solve::on(&op)
        .with_solver("cg")
        .eps(1e-14)
        .max_iters(3)
        .run_with(&tile, &mut u, &b, &mut ws)
        .expect("cg is registered");
    assert!(!res.converged, "3 iterations cannot hit 1e-14");
    assert_eq!(res.iterations, 3);
    assert!(res.final_residual > 0.0);
    assert!(
        res.final_residual < res.initial_residual,
        "but it must make progress"
    );
}

#[test]
fn driver_records_unconverged_steps_without_panicking() {
    let mut deck = crooked_pipe_deck(24, "cg");
    deck.control.end_step = 2;
    deck.control.opts.max_iters = 2;
    deck.control.summary_frequency = 1;
    let out = run_serial(&deck).expect("deck runs");
    assert_eq!(out.steps.len(), 2);
    assert!(out.steps.iter().all(|s| !s.converged));
}

#[test]
fn bad_decks_name_the_line() {
    let cases: &[(&str, &str)] = &[
        ("*tea\nstate 1 density=1 energy=1\nzzz=1\n*endtea", "unknown deck key"),
        ("*tea\nstate 1 density=-1 energy=1\nx_cells=4\ny_cells=4\n*endtea", "density"),
        ("*tea\nstate 1 density=1 energy=1\nx_cells=abc\n*endtea", "bad integer"),
        ("*tea\nx_cells=4\ny_cells=4\n*endtea", "no states"),
        (
            "*tea\nstate 1 density=1 energy=1\nstate 2 density=1 energy=1 geometry=wedge\n*endtea",
            "unknown geometry",
        ),
        (
            "*tea\nstate 2 density=1 energy=1 geometry=rectangle xmin=0 xmax=1 ymin=0 ymax=1\nx_cells=4\ny_cells=4\n*endtea",
            "state numbering must start at 1",
        ),
        (
            "*tea\nstate 1 density=1 energy=1\nstate 2 density=1 energy=1\n*endtea",
            "needs geometry",
        ),
    ];
    for (text, needle) in cases {
        let err = parse_deck(text).expect_err(text);
        assert!(
            err.contains(needle),
            "error {err:?} should mention {needle:?}"
        );
    }
}

#[test]
#[should_panic(expected = "more x ranks")]
fn over_decomposition_is_rejected() {
    let _ = Decomposition2D::with_grid(4, 4, 8, 1);
}

#[test]
#[should_panic(expected = "rank thread panicked")]
fn halo_deeper_than_tile_is_rejected() {
    // the per-rank assertion "tile ... smaller than exchange depth"
    // propagates through the harness as a rank-thread panic
    // 8 cells over 4 ranks in x -> 2-wide tiles; depth 3 must panic
    let d = Decomposition2D::with_grid(8, 8, 4, 1);
    tealeaf::comms::run_threaded(4, |comm| {
        let layout = HaloLayout::new(&d, comm.rank());
        let mut f = Field2D::new(2, 8, 3);
        tealeaf::comms::exchange_halo(&mut f, &layout, comm, 3);
    });
}

#[test]
#[should_panic(expected = "reads face coefficients one cell beyond")]
fn decomposed_diagonal_precon_rejects_full_depth_extension() {
    // on a decomposed tile the diagonal at matrix-powers extension h
    // reads Kx(j+1) one layer past the coefficient halo; the setup must
    // refuse with a clear message instead of an opaque slice panic
    // (serial tiles clamp extensions to the domain boundary, so only a
    // real interior tile edge can trigger this)
    let n = 32;
    let halo = 4;
    let p = crooked_pipe(n);
    let d = Decomposition2D::with_grid(n, n, 2, 2);
    let mesh = Mesh2D::new(&d, 0, p.extent);
    let mut density = Field2D::new(mesh.nx(), mesh.ny(), halo);
    let mut energy = Field2D::new(mesh.nx(), mesh.ny(), halo);
    p.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, halo);
    let op = TileOperator::new(coeffs, TileBounds::new(&mesh, halo));
    let _ = Preconditioner::setup(PreconKind::Diagonal, &op, halo);
}

#[test]
#[should_panic(expected = "block-Jacobi cannot be combined with matrix powers")]
fn ppcg_rejects_block_jacobi_with_deep_halos() {
    let (op, b) = small_problem(32);
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(32, 32, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let tile = Tile::new(&op, &layout, &comm);
    let mut ws = Workspace::new(32, 32, 8);
    let mut u = b.clone();
    let _ = Solve::on(&op)
        .with_solver("ppcg")
        .precon(PreconKind::BlockJacobi)
        .halo_depth(8)
        .run_with(&tile, &mut u, &b, &mut ws);
}

#[test]
#[should_panic(expected = "workspace halo")]
fn ppcg_rejects_shallow_workspace() {
    let (op, b) = small_problem(32);
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(32, 32, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let tile = Tile::new(&op, &layout, &comm);
    let mut ws = Workspace::new(32, 32, 1); // too shallow for depth 8
    let mut u = b.clone();
    let _ = Solve::on(&op)
        .with_solver("ppcg")
        .halo_depth(8)
        .run_with(&tile, &mut u, &b, &mut ws);
}

#[test]
fn eigen_estimation_handles_tiny_runs() {
    // one CG iteration gives a 1x1 Lanczos matrix; bounds must still be
    // finite and positive for an SPD operator
    use tealeaf::solvers::{cg_solve_recording, estimate_from_cg};
    let (op, b) = small_problem(16);
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(16, 16, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let tile = Tile::new(&op, &layout, &comm);
    let m = Preconditioner::setup(PreconKind::None, &op, 0);
    let mut ws = Workspace::new(16, 16, 1);
    let mut u = b.clone();
    let (_, coeffs) = cg_solve_recording(&tile, &mut u, &b, &m, &mut ws, SolveOpts::default(), 1);
    let (al, be) = coeffs.for_lanczos();
    let est = estimate_from_cg(al, be, 0.1);
    assert!(est.min > 0.0 && est.max.is_finite() && est.max >= est.min * 0.99);
}

#[test]
fn comms_interleaved_stress() {
    // 9 ranks in a 3x3 grid: interleave deep halo exchanges, fused
    // reductions and barriers for many rounds; any ordering bug
    // deadlocks or trips a tag assertion
    use tealeaf::comms::{exchange_halo_many, run_threaded};
    let d = Decomposition2D::with_grid(24, 24, 3, 3);
    let sums = run_threaded(9, |comm| {
        let layout = HaloLayout::new(&d, comm.rank());
        let mesh = Mesh2D::new(&d, comm.rank(), tealeaf::mesh::Extent2D::unit());
        let mut a = Field2D::new(mesh.nx(), mesh.ny(), 2);
        let mut b = Field2D::new(mesh.nx(), mesh.ny(), 2);
        a.fill_interior(comm.rank() as f64);
        b.fill_interior(1.0);
        let mut acc = 0.0;
        for round in 0..50 {
            let depth = 1 + (round % 2);
            exchange_halo_many(&mut [&mut a, &mut b], &layout, comm, depth);
            acc += comm.allreduce_sum(a.at(0, 0));
            if round % 10 == 0 {
                comm.barrier();
            }
            let v = comm.allreduce_sum_many(&[round as f64, comm.rank() as f64]);
            acc += v[1];
        }
        acc
    });
    // deterministic: every rank computed the same accumulator
    assert!(sums.windows(2).all(|w| w[0] == w[1]));
}
