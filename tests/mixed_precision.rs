//! Golden mixed-vs-f64 equivalence through the full driver.
//!
//! The mixed-precision contract: an `f32` preconditioner (or `f32`
//! PPCG inner smoothing) must not cost accuracy — every step still
//! converges to the deck's `tl_eps`, and the final temperature field
//! matches the all-f64 run far beyond `f32` resolution. Two decks
//! (different mesh sizes, solvers, preconditioners and tolerances)
//! pin this down end to end, plus the honest counterexample: the
//! all-`f32` solver must *fail* the same bar.

use tealeaf::app::{crooked_pipe_deck, run_serial, Control, Deck};
use tealeaf::solvers::{Precision, PreconKind};

fn deck(
    n: usize,
    solver: &str,
    precision: Option<Precision>,
    precon: PreconKind,
    depth: usize,
    eps: f64,
    steps: u64,
) -> Deck {
    let mut deck = crooked_pipe_deck(n, solver);
    deck.control = Control {
        solver: solver.into(),
        precision,
        precon,
        ppcg_halo_depth: depth,
        ppcg_inner_steps: 8,
        presteps: 12,
        end_step: steps,
        summary_frequency: 0,
        ..Control::default()
    };
    deck.control.opts.eps = eps;
    deck
}

/// Runs the f64 deck and its mixed twin; asserts per-step convergence
/// to the same `tl_eps` and final-field agreement beyond f32 precision.
fn assert_mixed_matches_f64(base: Deck) {
    let mut mixed = base.clone();
    mixed.control.precision = Some(Precision::Mixed);
    let eps = base.control.opts.eps;

    let out64 = run_serial(&base).expect("deck runs");
    let outmx = run_serial(&mixed).expect("deck runs");

    for (s64, smx) in out64.steps.iter().zip(&outmx.steps) {
        assert!(s64.converged, "f64 step {} unconverged", s64.step);
        assert!(smx.converged, "mixed step {} unconverged", smx.step);
        // both met the same relative target; their final residuals agree
        // to within that target's scale
        assert!(
            smx.final_residual <= eps * smx.initial_residual,
            "mixed step {}: {} > eps * {}",
            smx.step,
            smx.final_residual,
            smx.initial_residual
        );
        assert!(
            s64.final_residual <= eps * s64.initial_residual,
            "f64 step {} missed its own tolerance",
            s64.step
        );
    }

    let u64f = out64.final_u.expect("serial run gathers");
    let umx = outmx.final_u.expect("serial run gathers");
    let diff = umx.interior_max_rel_diff(&u64f);
    assert!(
        diff < 1e-6,
        "mixed field must match f64 beyond f32 resolution, worst rel diff {diff:e}"
    );
}

#[test]
fn mixed_cg_matches_f64_on_the_crooked_pipe() {
    assert_mixed_matches_f64(deck(32, "cg", None, PreconKind::BlockJacobi, 1, 1e-10, 3));
}

#[test]
fn mixed_ppcg_matches_f64_on_a_deeper_halo_deck() {
    assert_mixed_matches_f64(deck(24, "ppcg", None, PreconKind::None, 4, 1e-9, 2));
}

#[test]
fn f32_leg_fails_the_f64_bar_honestly() {
    // the same deck at tl_precision=f32 must NOT reach the f64-grade
    // tolerance — if it ever does, the mixed path has no reason to
    // exist and the sweep's story is wrong
    let base = deck(
        32,
        "cg",
        Some(Precision::F32),
        PreconKind::None,
        1,
        1e-10,
        1,
    );
    let out = run_serial(&base).expect("deck runs");
    assert!(
        out.steps.iter().any(|s| !s.converged),
        "all-f32 CG should stall below tl_eps=1e-10, got {:?}",
        out.steps
            .iter()
            .map(|s| (s.converged, s.final_residual))
            .collect::<Vec<_>>()
    );
}

#[test]
fn mixed_deck_key_drives_the_whole_pipeline() {
    // tl_precision in actual deck text → parse → driver → converged run
    let text = "\
*tea
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=3.5 ymin=1.0 ymax=2.0
x_cells=24
y_cells=24
end_step=2
summary_frequency=0
tl_solver=cg
tl_precision=mixed
tl_preconditioner_type=jac_block
tl_eps=1e-9
*endtea
";
    let deck = tealeaf::app::parse_deck(text).expect("deck parses");
    assert_eq!(deck.control.effective_solver().unwrap(), "mixed_cg");
    let out = run_serial(&deck).expect("deck runs");
    assert!(out.steps.iter().all(|s| s.converged), "{:?}", out.steps);
}
