//! Cross-crate integration: every solver, serial and decomposed, must
//! produce the same physics.

use tealeaf::app::{crooked_pipe_deck, run_serial, run_threaded_ranks, Control, Deck};
use tealeaf::solvers::PreconKind;

fn deck(n: usize, solver: &str, steps: u64) -> Deck {
    let mut d = crooked_pipe_deck(n, solver);
    d.control = Control {
        solver: solver.into(),
        end_step: steps,
        summary_frequency: 1,
        ..Default::default()
    };
    d
}

fn max_rel_diff(a: &tealeaf::mesh::Field2D, b: &tealeaf::mesh::Field2D) -> f64 {
    let mut worst = 0.0f64;
    for k in 0..a.ny() as isize {
        for j in 0..a.nx() as isize {
            let (x, y) = (a.at(j, k), b.at(j, k));
            worst = worst.max((x - y).abs() / y.abs().max(1e-12));
        }
    }
    worst
}

#[test]
fn every_solver_reaches_the_same_temperature_field() {
    let n = 24;
    let reference = run_serial(&deck(n, "cg", 3)).expect("deck runs");
    let uref = reference.final_u.unwrap();
    for solver in ["jacobi", "chebyshev", "ppcg", "amg"] {
        let mut d = deck(n, solver, 3);
        if solver == "jacobi" {
            d.control.opts.max_iters = 500_000;
        }
        let out = run_serial(&d).expect("deck runs");
        assert!(
            out.steps.iter().all(|s| s.converged),
            "{solver} did not converge"
        );
        let diff = max_rel_diff(out.final_u.as_ref().unwrap(), &uref);
        assert!(diff < 2e-4, "{solver} diverged from CG reference by {diff}");
    }
}

#[test]
fn rank_counts_agree_for_cg() {
    let d = deck(30, "cg", 2);
    let serial = run_serial(&d).expect("deck runs");
    let us = serial.final_u.unwrap();
    for ranks in [2usize, 3, 4, 6] {
        let out = run_threaded_ranks(&d, ranks).expect("deck runs");
        let ut = out[0].final_u.as_ref().unwrap();
        let diff = max_rel_diff(ut, &us);
        assert!(diff < 1e-8, "{ranks} ranks differ from serial by {diff}");
        // non-root ranks gather nothing
        assert!(out[1..].iter().all(|o| o.final_u.is_none()));
    }
}

#[test]
fn matrix_powers_depths_agree_across_a_decomposition() {
    // PPCG-1 vs PPCG-2/4/8 on 4 real ranks: the matrix-powers kernel is a
    // communication schedule, not a different algorithm (paper Figs. 1-2)
    let n = 32;
    let mut reference_field = None;
    for depth in [1usize, 2, 4, 8] {
        let mut d = deck(n, "ppcg", 2);
        d.control.ppcg_halo_depth = depth;
        let out = run_threaded_ranks(&d, 4).expect("deck runs");
        assert!(out[0].steps.iter().all(|s| s.converged), "depth {depth}");
        let u = out[0].final_u.as_ref().unwrap().clone();
        match &reference_field {
            None => reference_field = Some(u),
            Some(uref) => {
                let diff = max_rel_diff(&u, uref);
                assert!(diff < 1e-7, "depth {depth} drifted from depth 1 by {diff}");
            }
        }
    }
}

#[test]
fn preconditioners_do_not_change_the_answer() {
    let n = 28;
    let mut fields = Vec::new();
    for precon in [
        PreconKind::None,
        PreconKind::Diagonal,
        PreconKind::BlockJacobi,
    ] {
        let mut d = deck(n, "cg", 2);
        d.control.precon = precon;
        let out = run_serial(&d).expect("deck runs");
        assert!(out.steps.iter().all(|s| s.converged));
        fields.push(out.final_u.unwrap());
    }
    assert!(max_rel_diff(&fields[1], &fields[0]) < 1e-6);
    assert!(max_rel_diff(&fields[2], &fields[0]) < 1e-6);
}

#[test]
fn heat_is_conserved_for_every_solver() {
    for solver in ["cg", "ppcg", "amg"] {
        let out = run_serial(&deck(20, solver, 5)).expect("deck runs");
        let t0 = out.steps[0].summary.unwrap().temperature;
        let t4 = out.steps[4].summary.unwrap().temperature;
        let drift = (t4 - t0).abs() / t0.abs();
        assert!(
            drift < 1e-7,
            "{solver} lost heat through insulated boundaries: {drift}"
        );
    }
}

#[test]
fn decomposed_ppcg_with_block_jacobi_depth1() {
    // the paper's PPCG-1 + block-Jacobi combination, on real ranks
    let n = 32;
    let mut d = deck(n, "ppcg", 2);
    d.control.precon = PreconKind::BlockJacobi;
    d.control.ppcg_halo_depth = 1;
    let serial = run_serial(&d).expect("deck runs");
    let threaded = run_threaded_ranks(&d, 4).expect("deck runs");
    let diff = max_rel_diff(
        threaded[0].final_u.as_ref().unwrap(),
        serial.final_u.as_ref().unwrap(),
    );
    assert!(diff < 1e-7, "block-Jacobi PPCG-1 decomposed drift {diff}");
}

#[test]
fn solver_traces_tell_the_communication_story() {
    // the paper's core quantitative claim, measured end-to-end through
    // the driver: CPPCG needs far fewer reductions per stencil sweep
    let cg = run_serial(&deck(48, "cg", 2)).expect("deck runs");
    let mut d = deck(48, "ppcg", 2);
    d.control.ppcg_halo_depth = 8;
    let pp = run_serial(&d).expect("deck runs");
    let cg_ratio = cg.trace.reductions as f64 / cg.trace.spmv.total() as f64;
    let pp_ratio = pp.trace.reductions as f64 / pp.trace.spmv.total() as f64;
    assert!(
        pp_ratio < 0.6 * cg_ratio,
        "CPPCG must slash reductions per sweep: {pp_ratio:.3} vs {cg_ratio:.3}"
    );
}
