//! Golden equivalence suite for the `IterativeSolver` registry.
//!
//! Two guarantees, both **bit-exact**:
//!
//! 1. every registry-resolved solver (name → factory → trait object)
//!    behaves identically to direct struct construction with the same
//!    configuration — identical residual histories, iteration counts,
//!    traces and temperature fields — at the solve level and through
//!    the multi-step driver on several decks;
//! 2. factory parameterisation ([`SolverParams`]) maps onto each
//!    solver's own options exactly as its constructor does.
//!
//! (The original PR-3 suite compared against the since-removed
//! `*_solve` free functions; direct construction is the same golden
//! reference — the structs wrap what those functions were.)

use tealeaf::app::{crooked_pipe_deck, run_serial, Control, Deck};
use tealeaf::comms::{Communicator, HaloLayout, SerialComm};
use tealeaf::mesh::{timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D};
use tealeaf::solvers::{
    crooked_pipe_system, Cg, CgFused, ChebyOpts, Chebyshev, DynTile, IterativeSolver, Jacobi,
    MixedCg, Ppcg, PpcgOpts, PreconKind, Richardson, RichardsonOpts, SolveContext, SolveOpts,
    SolveResult, SolveTrace, SolverParams, Tile, TileBounds, TileOperator, Workspace,
};

fn field_bits(f: &Field2D) -> Vec<u64> {
    let mut bits = Vec::with_capacity(f.nx() * f.ny());
    for k in 0..f.ny() as isize {
        for j in 0..f.nx() as isize {
            bits.push(f.at(j, k).to_bits());
        }
    }
    bits
}

fn assert_results_identical(name: &str, old: &SolveResult, new: &SolveResult) {
    assert_eq!(old.iterations, new.iterations, "{name}: iterations differ");
    assert_eq!(old.converged, new.converged, "{name}: convergence differs");
    assert_eq!(
        old.initial_residual.to_bits(),
        new.initial_residual.to_bits(),
        "{name}: initial residual differs"
    );
    assert_eq!(
        old.final_residual.to_bits(),
        new.final_residual.to_bits(),
        "{name}: final residual differs"
    );
    assert_eq!(old.trace, new.trace, "{name}: solve trace differs");
}

/// Builds the directly-constructed twin of each registry entry for the
/// given parameterisation.
fn direct_solver(name: &str, precon: PreconKind, depth: usize) -> Box<dyn IterativeSolver> {
    match name {
        "jacobi" => Box::new(Jacobi::new()),
        "cg" => Box::new(Cg::new(precon)),
        "cg_fused" => Box::new(CgFused::new(precon)),
        "mixed_cg" => Box::new(MixedCg::new(precon)),
        "chebyshev" => Box::new(Chebyshev::new(
            precon,
            ChebyOpts {
                presteps: 12,
                ..Default::default()
            },
        )),
        "ppcg" => Box::new(Ppcg::new(
            precon,
            PpcgOpts {
                inner_steps: 8,
                halo_depth: depth,
                presteps: 12,
                ..Default::default()
            },
        )),
        other => panic!("no direct twin for '{other}'"),
    }
}

/// Every comparable registry solver vs its directly-constructed twin,
/// one solve, on two differently-shaped systems (sizes, timestep,
/// preconditioner, matrix-powers depth).
#[test]
fn registry_solvers_match_direct_construction_bitwise() {
    // (n, dt, precon, ppcg depth)
    let systems = [
        (16usize, 0.04, PreconKind::Diagonal, 2usize),
        (24usize, 0.02, PreconKind::None, 4usize),
    ];
    let opts = SolveOpts::with_eps(1e-9);
    let names = ["jacobi", "cg", "cg_fused", "mixed_cg", "chebyshev", "ppcg"];

    for &(n, dt, precon, depth) in &systems {
        let (op, b) = crooked_pipe_system(n, dt, depth);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let dyn_tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::new(&dyn_tile);
        let registry = tealeaf::app::solver_registry();
        let params = SolverParams {
            precon,
            halo_depth: depth,
            inner_steps: 8,
            presteps: 12,
            ..SolverParams::default()
        };

        for name in names {
            let mut u_old = b.clone();
            let mut ws_old = Workspace::new(n, n, depth);
            let mut direct = direct_solver(name, precon, depth);
            let mut t_old = SolveTrace::new(direct.label());
            direct.prepare(&ctx, &opts);
            let old = direct.solve(&ctx, &mut u_old, &b, &mut ws_old, &mut t_old);

            let mut u_new = b.clone();
            let mut ws_new = Workspace::new(n, n, depth);
            let mut solver = registry.create(name, &params).expect("registered");
            let mut acc = SolveTrace::new(solver.label());
            solver.prepare(&ctx, &opts);
            let new = solver.solve(&ctx, &mut u_new, &b, &mut ws_new, &mut acc);

            assert_results_identical(&format!("{name} (n={n})"), &old, &new);
            assert_eq!(
                field_bits(&u_old),
                field_bits(&u_new),
                "{name} (n={n}): temperature fields differ"
            );
        }
    }
}

/// The registry-driven driver vs a hand-rolled replica that constructs
/// each solver struct directly and drives it through the trait over
/// multiple time steps: per-step residual histories, iteration counts
/// and the final gathered field must agree bit for bit.
#[test]
fn driver_matches_direct_construction_loop_on_decks() {
    // four decks spanning the dispatch arms, including a mixed one
    let decks: &[(&str, usize, u64, PreconKind, usize)] = &[
        ("cg", 24, 3, PreconKind::BlockJacobi, 1),
        ("ppcg", 32, 2, PreconKind::None, 4),
        ("chebyshev", 16, 2, PreconKind::Diagonal, 1),
        ("mixed_cg", 24, 2, PreconKind::BlockJacobi, 1),
    ];

    for &(solver_name, n, steps, precon, depth) in decks {
        let mut deck = crooked_pipe_deck(n, solver_name);
        deck.control = Control {
            solver: solver_name.into(),
            end_step: steps,
            precon,
            ppcg_halo_depth: depth,
            ppcg_inner_steps: 8,
            presteps: 12,
            summary_frequency: 0,
            ..Control::default()
        };

        let new = run_serial(&deck).expect("deck runs");
        let old = replica_driver(&deck);

        assert_eq!(new.steps.len(), old.len(), "{solver_name}: step counts");
        for (s_new, s_old) in new.steps.iter().zip(&old) {
            assert_eq!(
                s_new.iterations, s_old.iterations,
                "{solver_name} step {}: iterations",
                s_new.step
            );
            assert_eq!(
                s_new.converged, s_old.converged,
                "{solver_name} step {}: convergence",
                s_new.step
            );
            assert_eq!(
                s_new.initial_residual.to_bits(),
                s_old.initial_residual.to_bits(),
                "{solver_name} step {}: initial residual",
                s_new.step
            );
            assert_eq!(
                s_new.final_residual.to_bits(),
                s_old.final_residual.to_bits(),
                "{solver_name} step {}: final residual",
                s_new.step
            );
        }
        let u_new = new.final_u.expect("serial run gathers the field");
        let u_old = old.last().expect("ran steps").final_u.clone();
        assert_eq!(
            field_bits(&u_new),
            field_bits(&u_old),
            "{solver_name}: final fields differ"
        );
    }
}

/// One replica step record of the direct-construction driver.
struct ReplicaStep {
    iterations: u64,
    converged: bool,
    initial_residual: f64,
    final_residual: f64,
    final_u: Field2D,
}

/// The driver loop with hand-constructed solver structs: assemble per
/// step, prepare, solve through the trait, fold back.
fn replica_driver(deck: &Deck) -> Vec<ReplicaStep> {
    let problem = &deck.problem;
    let control = &deck.control;
    let n = problem.x_cells;
    let decomp = Decomposition2D::with_grid(n, problem.y_cells, 1, 1);
    let comm = SerialComm::new();
    let mesh = Mesh2D::new(&decomp, 0, problem.extent);
    let layout = HaloLayout::new(&decomp, 0);
    let mut solver = direct_solver(
        &control.solver,
        control.precon,
        control.ppcg_halo_depth.max(1),
    );
    let halo = solver.halo_depth().max(1);
    let (nx, ny) = (mesh.nx(), mesh.ny());

    let mut density = Field2D::new(nx, ny, halo);
    let mut energy = Field2D::new(nx, ny, halo);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, control.dt);
    let bounds = TileBounds::new(&mesh, halo);

    let mut u = Field2D::new(nx, ny, halo);
    let mut b = Field2D::new(nx, ny, halo);
    let mut ws = Workspace::new(nx, ny, halo);
    let mut out = Vec::new();
    let mut trace = SolveTrace::new(solver.label());

    for _step in 1..=control.steps() {
        let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, halo);
        let op = TileOperator::new(coeffs, bounds);
        let dyn_tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::new(&dyn_tile);
        for k in 0..ny as isize {
            let dr = density.row(k, 0, nx as isize);
            let er = energy.row(k, 0, nx as isize);
            let br = b.row_mut(k, 0, nx as isize);
            for i in 0..br.len() {
                br[i] = dr[i] * er[i];
            }
        }
        u.copy_interior_from(&b);

        solver.prepare(&ctx, &control.opts);
        let result = solver.solve(&ctx, &mut u, &b, &mut ws, &mut trace);

        for k in 0..ny as isize {
            let ur = u.row(k, 0, nx as isize);
            let dr = density.row(k, 0, nx as isize);
            let er = energy.row_mut(k, 0, nx as isize);
            for i in 0..er.len() {
                er[i] = ur[i] / dr[i];
            }
        }

        let mut interior = Field2D::new(nx, ny, 0);
        interior.copy_interior_from(&u);
        out.push(ReplicaStep {
            iterations: result.iterations,
            converged: result.converged,
            initial_residual: result.initial_residual,
            final_residual: result.final_residual,
            final_u: interior,
        });
    }
    out
}

/// The AMG baseline (the one solver needing assembly info): registry
/// construction vs direct `AmgPcg::new`, including the accumulated
/// V-cycle trace through the type-erased diagnostics hook.
#[test]
fn amg_registry_path_matches_direct_construction_bitwise() {
    use tealeaf::amg::{AmgPcg, AmgPcgOpts};
    use tealeaf::solvers::Assembly;

    let n = 24;
    let problem = tealeaf::mesh::crooked_pipe(n);
    let mesh = Mesh2D::serial(n, n, problem.extent);
    let mut density = Field2D::new(n, n, 1);
    let mut energy = Field2D::new(n, n, 1);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, 0.04);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, 1);
    let op = TileOperator::new(coeffs, TileBounds::new(&mesh, 1));
    let mut b = Field2D::new(n, n, 1);
    for k in 0..n as isize {
        for j in 0..n as isize {
            b.set(j, k, density.at(j, k) * energy.at(j, k));
        }
    }
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(n, n, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let opts = SolveOpts::with_eps(1e-9);

    let dyn_tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
    let ctx = SolveContext::with_assembly(
        &dyn_tile,
        Assembly {
            density: &density,
            coefficient: problem.coefficient,
            rx,
            ry,
        },
    );

    let mut direct = AmgPcg::new(AmgPcgOpts::default());
    let mut u_old = b.clone();
    let mut ws_old = Workspace::new(n, n, 1);
    let mut t_old = SolveTrace::new(direct.label());
    direct.prepare(&ctx, &opts);
    let old = direct.solve(&ctx, &mut u_old, &b, &mut ws_old, &mut t_old);
    let old_mg = direct.take_mg_trace().expect("a solve ran");

    let mut solver = tealeaf::app::solver_registry()
        .create("boomeramg", &SolverParams::default()) // alias resolves too
        .expect("amg is registered");
    let mut u_new = b.clone();
    let mut ws_new = Workspace::new(n, n, 1);
    let mut acc = SolveTrace::new(solver.label());
    solver.prepare(&ctx, &opts);
    let new = solver.solve(&ctx, &mut u_new, &b, &mut ws_new, &mut acc);

    assert_results_identical("amg", &old, &new);
    assert_eq!(field_bits(&u_old), field_bits(&u_new), "amg fields differ");

    // the V-cycle trace survives the trait boundary via the
    // type-erased diagnostics hook (the same path the driver uses)
    let mg = *solver
        .take_diagnostics()
        .expect("a solve ran")
        .downcast::<tealeaf::amg::MgTrace>()
        .expect("the AMG solver's diagnostics payload is its MgTrace");
    assert_eq!(mg.vcycles, old_mg.vcycles, "V-cycle counts differ");
    assert_eq!(mg.setup_cells, old_mg.setup_cells, "setup work differs");
}

/// Registry round-trip (name → solver → solve) vs direct struct
/// construction: the trait object built by the factory must behave bit
/// for bit like the hand-built struct — shown on Richardson, the solver
/// that only exists post-redesign.
#[test]
fn registry_roundtrip_matches_direct_construction() {
    let n = 24;
    let (op, b) = crooked_pipe_system(n, 0.04, 1);
    let comm = SerialComm::new();
    let d = Decomposition2D::with_grid(n, n, 1, 1);
    let layout = HaloLayout::new(&d, 0);
    let tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
    let ctx = SolveContext::new(&tile);
    let opts = SolveOpts::with_eps(1e-8);
    let params = SolverParams {
        precon: PreconKind::Diagonal,
        presteps: 8,
        ..SolverParams::default()
    };

    // through the registry, as a trait object
    let mut via_registry = tealeaf::app::solver_registry()
        .create("richardson", &params)
        .expect("richardson is registered");
    assert_eq!(via_registry.name(), "richardson");
    let mut u1 = b.clone();
    let mut ws1 = Workspace::new(n, n, 1);
    let mut t1 = SolveTrace::new(via_registry.label());
    via_registry.prepare(&ctx, &opts);
    let r1 = via_registry.solve(&ctx, &mut u1, &b, &mut ws1, &mut t1);

    // direct construction
    let mut direct = Richardson::new(
        PreconKind::Diagonal,
        RichardsonOpts {
            presteps: 8,
            ..Default::default()
        },
    );
    let mut u2 = b.clone();
    let mut ws2 = Workspace::new(n, n, 1);
    let mut t2 = SolveTrace::new(direct.label());
    direct.prepare(&ctx, &opts);
    let r2 = direct.solve(&ctx, &mut u2, &b, &mut ws2, &mut t2);

    assert!(r1.converged && r2.converged, "both paths must converge");
    assert_results_identical("richardson round-trip", &r2, &r1);
    assert_eq!(field_bits(&u1), field_bits(&u2), "fields differ");
    assert_eq!(t1, t2, "accumulated traces differ");
}
