//! The threaded runtime's determinism contract: every solver must
//! produce **bit-identical** results for any worker-thread count and any
//! parallel-threshold setting.
//!
//! Baseline: 1 thread with the threshold forced to `usize::MAX` — that
//! is exactly the pre-threading sequential behaviour (no `par_*` call
//! ever takes the parallel branch). Every other configuration, including
//! "every sweep parallel" (`threshold = 1`) on 2 and 4 workers, must
//! reproduce its temperature field, iteration counts, and solve trace to
//! the last bit.
//!
//! Everything runs inside a single `#[test]` because thread count and
//! threshold are process-global runtime knobs; concurrent tests mutating
//! them would still be *correct* (results are config-independent) but
//! the failure messages would attribute configs wrongly.

use tealeaf::app::{crooked_pipe_deck, run_serial, Deck};
use tealeaf::mesh::{hot_ball, Coefficients3D, Field3D, Mesh3D};
use tealeaf::solvers as runtime;
use tealeaf::solvers::{SolveOpts, SolveTrace, TileOperator3D};

fn deck(n: usize, solver: &str) -> Deck {
    let mut d = crooked_pipe_deck(n, solver);
    d.control.end_step = 1;
    d.control.summary_frequency = 0;
    // cap the work so unconverged configurations still compare equal
    // amounts of Krylov arithmetic quickly, even in debug builds
    d.control.opts.max_iters = 60;
    if solver.ends_with("ppcg") {
        d.control.ppcg_halo_depth = 4;
        d.control.ppcg_inner_steps = 8;
        d.control.opts.max_iters = 12;
    }
    d
}

/// Interior temperature field as raw bits: any reassociated reduction or
/// racy write shows up as an exact mismatch.
fn run_bits(deck: &Deck) -> (Vec<u64>, u64, SolveTrace) {
    let out = run_serial(deck).expect("deck runs");
    let u = out.final_u.expect("serial run gathers the field");
    let mut bits = Vec::with_capacity(u.nx() * u.ny());
    for k in 0..u.ny() as isize {
        for j in 0..u.nx() as isize {
            bits.push(u.at(j, k).to_bits());
        }
    }
    let iters = out.steps.iter().map(|s| s.iterations).sum();
    (bits, iters, out.trace)
}

fn build_3d(n: usize) -> (TileOperator3D, Field3D) {
    let p = hot_ball(n);
    let mesh = Mesh3D::new(n, n, n, p.extent);
    let mut density = Field3D::new(n, n, n, 1);
    let mut energy = Field3D::new(n, n, n, 1);
    p.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry, rz) = mesh.timestep_scalings(0.002);
    let coeffs = Coefficients3D::assemble(&mesh, &density, p.coefficient, rx, ry, rz, 1);
    let op = TileOperator3D::new(coeffs);
    let mut b = Field3D::new(n, n, n, 1);
    for i in 0..n as isize {
        for k in 0..n as isize {
            for j in 0..n as isize {
                b.set(j, k, i, density.at(j, k, i) * energy.at(j, k, i));
            }
        }
    }
    (op, b)
}

fn field3d_bits(f: &Field3D) -> Vec<u64> {
    let mut bits = Vec::with_capacity(f.nx() * f.ny() * f.nz());
    for i in 0..f.nz() as isize {
        for k in 0..f.ny() as isize {
            for j in 0..f.nx() as isize {
                bits.push(f.at(j, k, i).to_bits());
            }
        }
    }
    bits
}

#[test]
fn solvers_are_bit_identical_across_threads_and_thresholds() {
    let n = 48;
    // mixed_ppcg exercises the native-f32 halo exchange path (the inner
    // Chebyshev smoothing's deep-halo payloads travel at 4-byte width):
    // it must be exactly as thread-deterministic as the f64 solvers
    let solvers = ["cg", "cg_fused", "ppcg", "chebyshev", "mixed_ppcg"];
    // thread counts the ISSUE pins, crossed with "everything parallel",
    // the default crossover, and "everything serial"
    let thresholds = [1usize, runtime::PAR_THRESHOLD, usize::MAX];
    let threads = [1usize, 2, 4];

    for solver in solvers {
        let d = deck(n, solver);

        // today's behaviour, exactly: sequential branch everywhere
        runtime::set_num_threads(1);
        runtime::set_par_threshold(usize::MAX);
        let (base_bits, base_iters, base_trace) = run_bits(&d);
        assert!(base_iters > 0, "{solver} did no work");

        for &threshold in &thresholds {
            for &nthreads in &threads {
                runtime::set_par_threshold(threshold);
                runtime::set_num_threads(nthreads);
                let (bits, iters, trace) = run_bits(&d);
                assert_eq!(
                    iters, base_iters,
                    "{solver}: iteration count drifted at threads={nthreads}, threshold={threshold}"
                );
                assert_eq!(
                    trace, base_trace,
                    "{solver}: solve trace drifted at threads={nthreads}, threshold={threshold}"
                );
                assert!(
                    bits == base_bits,
                    "{solver}: temperature field not bit-identical at \
                     threads={nthreads}, threshold={threshold}"
                );
            }
        }
    }

    // the 3D operator: fused sweep + dot through the same matrix
    let (op, b) = build_3d(16); // 4096 cells: parallel once threshold = 1
    runtime::set_num_threads(1);
    runtime::set_par_threshold(usize::MAX);
    let mut w = Field3D::new(16, 16, 16, 1);
    let mut t = SolveTrace::new("t");
    let base_dot = op.apply_fused_dot(&b, &mut w, &mut t);
    let base_w = field3d_bits(&w);
    let mut u = b.clone();
    let base_res = runtime::cg_solve_3d(&op, &mut u, &b, SolveOpts::with_eps(1e-8));
    let base_u = field3d_bits(&u);
    for &nthreads in &[1usize, 2, 4] {
        runtime::set_par_threshold(1);
        runtime::set_num_threads(nthreads);
        let mut w2 = Field3D::new(16, 16, 16, 1);
        let dot = op.apply_fused_dot(&b, &mut w2, &mut t);
        assert_eq!(
            dot.to_bits(),
            base_dot.to_bits(),
            "3D fused dot drifted at threads={nthreads}"
        );
        assert!(
            field3d_bits(&w2) == base_w,
            "3D sweep not bit-identical at threads={nthreads}"
        );
        let mut u2 = b.clone();
        let res = runtime::cg_solve_3d(&op, &mut u2, &b, SolveOpts::with_eps(1e-8));
        assert_eq!(res.iterations, base_res.iterations);
        assert!(
            field3d_bits(&u2) == base_u,
            "3D CG solve not bit-identical at threads={nthreads}"
        );
    }

    // leave the process-global knobs at their defaults
    runtime::set_par_threshold(runtime::PAR_THRESHOLD);
    runtime::set_num_threads(1);
}
