//! Property-based tests (proptest) over the core numerical invariants.

use proptest::prelude::*;
use tealeaf::comms::{Communicator, HaloLayout, SerialComm};
use tealeaf::mesh::{
    choose_process_grid, split_extent, Coefficient, Coefficients, Decomposition2D, Extent2D,
    Field2D, Mesh2D,
};
use tealeaf::solvers::{
    lanczos_tridiagonal, sturm_count, tridiag_all_eigenvalues, Cg, DynTile, IterativeSolver,
    PreconKind, Preconditioner, SolveContext, SolveOpts, SolveTrace, Tile, TileBounds,
    TileOperator, Workspace,
};

/// A random diffusion problem: positive density field, a mesh size, a
/// time step — everything the operator assembly consumes.
fn arb_problem() -> impl Strategy<Value = (usize, Vec<f64>, f64, bool)> {
    (4usize..24, 0.001f64..0.5, any::<bool>(), any::<u64>()).prop_map(|(n, dt, recip, seed)| {
        // deterministic pseudo-random densities from the seed
        let mut state = seed | 1;
        let mut densities = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // densities spread over three decades, always positive
            let t = (state >> 40) as f64 / (1u64 << 24) as f64;
            densities.push(0.05 + 100.0 * t * t);
        }
        (n, densities, dt, recip)
    })
}

fn build_operator(n: usize, densities: &[f64], dt: f64, recip: bool) -> TileOperator {
    let mesh = Mesh2D::serial(n, n, Extent2D::unit());
    let mut density = Field2D::filled(n, n, 1, 1.0);
    for k in 0..n {
        for j in 0..n {
            density.set(j as isize, k as isize, densities[k * n + j]);
        }
    }
    density.reflect_boundaries(1);
    let (rx, ry) = tealeaf::mesh::timestep_scalings(&mesh, dt);
    let kind = if recip {
        Coefficient::RecipConductivity
    } else {
        Coefficient::Conductivity
    };
    let coeffs = Coefficients::assemble(&mesh, &density, kind, rx, ry, 1);
    TileOperator::new(coeffs, TileBounds::serial(n, n))
}

fn fill_from(seed: u64, n: usize) -> Field2D {
    let mut f = Field2D::new(n, n, 1);
    let mut state = seed | 1;
    for k in 0..n as isize {
        for j in 0..n as isize {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            f.set(j, k, ((state >> 33) as f64 / (1u64 << 30) as f64) - 2.0);
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ⟨Ap, q⟩ = ⟨p, Aq⟩ for arbitrary diffusion operators and vectors.
    #[test]
    fn operator_is_always_symmetric(
        (n, densities, dt, recip) in arb_problem(),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let op = build_operator(n, &densities, dt, recip);
        let p = fill_from(s1, n);
        let q = fill_from(s2, n);
        let mut ap = Field2D::new(n, n, 1);
        let mut aq = Field2D::new(n, n, 1);
        let mut t = SolveTrace::new("t");
        op.apply(&p, &mut ap, 0, &mut t);
        op.apply(&q, &mut aq, 0, &mut t);
        let lhs = ap.interior_dot(&q);
        let rhs = p.interior_dot(&aq);
        let scale = lhs.abs().max(rhs.abs()).max(1.0);
        prop_assert!((lhs - rhs).abs() <= 1e-11 * scale, "{lhs} vs {rhs}");
    }

    /// ⟨Ap, p⟩ > 0 for nonzero p (positive definiteness), and the
    /// operator fixes constants (row sums are exactly 1).
    #[test]
    fn operator_is_positive_definite_and_stochastic(
        (n, densities, dt, recip) in arb_problem(),
        s in any::<u64>(),
    ) {
        let op = build_operator(n, &densities, dt, recip);
        let p = fill_from(s, n);
        let mut ap = Field2D::new(n, n, 1);
        let mut t = SolveTrace::new("t");
        let pap = op.apply_fused_dot(&p, &mut ap, &mut t);
        let pp = p.interior_dot(&p);
        prop_assert!(pap > 0.0 || pp == 0.0, "not PD: pAp = {pap}");
        // A * 1 = 1
        let ones = Field2D::filled(n, n, 1, 1.0);
        let mut a1 = Field2D::new(n, n, 1);
        op.apply(&ones, &mut a1, 0, &mut t);
        for k in 0..n as isize {
            for j in 0..n as isize {
                prop_assert!((a1.at(j, k) - 1.0).abs() < 1e-11);
            }
        }
    }

    /// CG solves every random SPD diffusion system, and the solution
    /// satisfies the residual tolerance it reports.
    #[test]
    fn cg_converges_on_random_problems(
        (n, densities, dt, recip) in arb_problem(),
        s in any::<u64>(),
    ) {
        let op = build_operator(n, &densities, dt, recip);
        let b = fill_from(s, n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::new(&tile);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = Field2D::new(n, n, 1);
        let mut solver = Cg::new(PreconKind::BlockJacobi);
        solver.prepare(&ctx, &SolveOpts { eps: 1e-9, max_iters: 50_000 });
        let mut acc = SolveTrace::new("run");
        let res = solver.solve(&ctx, &mut u, &b, &mut ws, &mut acc);
        prop_assert!(res.converged, "CG failed: {res:?}");
        let mut t = SolveTrace::new("t");
        let mut r = Field2D::new(n, n, 1);
        op.residual(&u, &b, &mut r, 0, &mut t);
        let rel = r.interior_norm() / b.interior_norm().max(1e-300);
        prop_assert!(rel < 1e-6, "reported convergence but residual is {rel}");
    }

    /// Preconditioners stay symmetric positive definite on random
    /// operators.
    #[test]
    fn preconditioners_stay_spd(
        (n, densities, dt, recip) in arb_problem(),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
    ) {
        let op = build_operator(n, &densities, dt, recip);
        for kind in [PreconKind::Diagonal, PreconKind::BlockJacobi] {
            let m = Preconditioner::setup(kind, &op, 0);
            let a = fill_from(s1, n);
            let bb = fill_from(s2, n);
            let mut ma = Field2D::new(n, n, 1);
            let mut mb = Field2D::new(n, n, 1);
            let mut t = SolveTrace::new("t");
            m.apply(&a, &mut ma, &op.bounds, 0, &mut t);
            m.apply(&bb, &mut mb, &op.bounds, 0, &mut t);
            let lhs = ma.interior_dot(&bb);
            let rhs = a.interior_dot(&mb);
            prop_assert!((lhs - rhs).abs() <= 1e-10 * lhs.abs().max(rhs.abs()).max(1.0));
            prop_assert!(ma.interior_dot(&a) >= 0.0);
        }
    }

    /// Decompositions tile the global grid exactly: no gaps, no overlap,
    /// for arbitrary grid shapes and rank counts.
    #[test]
    fn decompositions_tile_exactly(
        nx in 1usize..200,
        ny in 1usize..200,
        ranks in 1usize..32,
    ) {
        let ranks = ranks.min(nx * ny);
        let (px, py) = choose_process_grid(ranks, nx, ny);
        prop_assume!(px <= nx && py <= ny);
        let d = Decomposition2D::with_grid(nx, ny, px, py);
        let mut covered = vec![0u8; nx * ny];
        for s in d.subdomains() {
            for gy in s.y_range() {
                for gx in s.x_range() {
                    covered[gy * nx + gx] += 1;
                }
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));
    }

    /// split_extent is a partition for any extent/parts.
    #[test]
    fn split_extent_partitions(n in 1usize..10_000, parts in 1usize..64) {
        let parts = parts.min(n);
        let mut next = 0;
        for i in 0..parts {
            let (off, len) = split_extent(n, parts, i);
            prop_assert_eq!(off, next);
            prop_assert!(len > 0);
            next = off + len;
        }
        prop_assert_eq!(next, n);
    }

    /// The Sturm count is monotone in x and the extracted eigenvalues
    /// bracket correctly for random symmetric tridiagonals.
    #[test]
    fn sturm_bisection_invariants(
        diag in proptest::collection::vec(-10.0f64..10.0, 1..20),
        seed in any::<u64>(),
    ) {
        let n = diag.len();
        let mut state = seed | 1;
        let off: Vec<f64> = (0..n.saturating_sub(1)).map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 4.0 - 2.0
        }).collect();
        let eigs = tridiag_all_eigenvalues(&diag, &off);
        // sorted
        for w in eigs.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-9);
        }
        // counts consistent: below the smallest is 0, above the largest is n
        prop_assert_eq!(sturm_count(&diag, &off, eigs[0] - 1.0), 0);
        prop_assert_eq!(sturm_count(&diag, &off, eigs[n - 1] + 1.0), n);
        // trace identity: sum of eigenvalues equals trace
        let tr: f64 = diag.iter().sum();
        let es: f64 = eigs.iter().sum();
        prop_assert!((tr - es).abs() <= 1e-6 * tr.abs().max(es.abs()).max(1.0),
            "trace {tr} vs eigen sum {es}");
    }

    /// Lanczos construction accepts any positive alphas / non-negative
    /// betas and produces a matrix with the right shape.
    #[test]
    fn lanczos_shapes(
        alphas in proptest::collection::vec(0.01f64..10.0, 1..30),
    ) {
        let betas: Vec<f64> = alphas.windows(2).map(|w| (w[0] / w[1]).min(4.0) * 0.1).collect();
        let (d, e) = lanczos_tridiagonal(&alphas, &betas);
        prop_assert_eq!(d.len(), alphas.len());
        prop_assert_eq!(e.len(), alphas.len() - 1);
        prop_assert!(d.iter().all(|v| v.is_finite()));
        prop_assert!(e.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Deck render → parse round-trips for random control settings.
    #[test]
    fn deck_roundtrip(
        cells in 4usize..256,
        eps_exp in 4i32..14,
        inner in 1usize..32,
        depth in 1usize..16,
        solver_idx in 0usize..6,
    ) {
        use tealeaf::app::{parse_deck, render_deck, crooked_pipe_deck};
        let solver = ["jacobi", "cg", "chebyshev", "ppcg", "amg", "richardson"][solver_idx];
        let mut deck = crooked_pipe_deck(cells, solver);
        deck.control.opts.eps = 10f64.powi(-eps_exp);
        deck.control.ppcg_inner_steps = inner;
        deck.control.ppcg_halo_depth = depth;
        let text = render_deck(&deck);
        let re = parse_deck(&text).expect("render must parse");
        prop_assert_eq!(re.problem, deck.problem);
        prop_assert_eq!(re.control.solver, deck.control.solver);
        prop_assert_eq!(re.control.opts.eps, deck.control.opts.eps);
        prop_assert_eq!(re.control.ppcg_inner_steps, inner);
        prop_assert_eq!(re.control.ppcg_halo_depth, depth);
    }
}
