//! Workspace smoke test: the root-crate quickstart path end to end.
//!
//! This is the one test a fresh checkout must pass for the workspace to
//! count as alive: build the paper's crooked-pipe problem through the
//! umbrella crate's re-exports, run the CPPCG solver serially for two
//! steps, and converge. It intentionally mirrors the `tealeaf` crate's
//! front-page doctest so the documented quickstart can never drift from
//! a tested path.

use tealeaf::app::{crooked_pipe_deck, run_serial};

#[test]
fn quickstart_ppcg_converges_in_two_steps() {
    let mut deck = crooked_pipe_deck(32, "ppcg");
    deck.control.end_step = 2;
    deck.control.ppcg_halo_depth = 4;

    let out = run_serial(&deck).expect("deck runs");

    assert!(out.steps.len() <= 2, "end_step must cap the run");
    assert!(
        !out.steps.is_empty(),
        "the driver must take at least a step"
    );
    assert!(
        out.steps.iter().all(|s| s.converged),
        "every PPCG step must converge on the 32x32 crooked pipe"
    );
    let avg = out.final_summary.average_temperature();
    assert!(
        avg.is_finite() && avg > 0.0,
        "average temperature must be physical, got {avg}"
    );
}

#[test]
fn umbrella_reexports_cover_every_member() {
    // One symbol through each re-exported member crate, so a missing
    // workspace wiring shows up here and not in a downstream example.
    let _ = tealeaf::mesh::crooked_pipe(8);
    let _ = tealeaf::comms::SerialComm::new();
    let _ = tealeaf::solvers::SolveOpts::default();
    let _ = tealeaf::amg::MgOpts::default();
    let _ = tealeaf::perfmodel::all_machines();
    let _ = tealeaf::app::crooked_pipe_deck(8, "cg");
}
