//! Depth-*n* halo exchange — TeaLeaf's `update_halo`.
//!
//! The exchange is two-phase, exactly like the reference code:
//!
//! 1. **X phase**: west/east edge strips of width `depth` and interior
//!    height are swapped with the x neighbours.
//! 2. **Y phase**: south/north strips of height `depth` spanning the
//!    *extended* width `[-depth, nx+depth)` — including the columns just
//!    received — are swapped with the y neighbours. This is what
//!    transports corner data to diagonal neighbours without messaging
//!    them directly, which the deep-halo matrix-powers kernel requires.
//!
//! Multiple fields can be fused into a single message per direction
//! (TeaLeaf's `fields` mask): fewer, larger messages, the same trade the
//! paper's communication-avoidance study is about.
//!
//! The exchange is generic over the field's [`WireScalar`]: an
//! `f32` field's strips travel as native 4-byte elements — half the
//! message volume of `f64`, with no conversion staging on either side.
//! The message tag encodes direction, depth, field count **and element
//! width**, so a send/recv pair that disagrees on precision fails
//! loudly at the tag assertion, and payload decoding double-checks the
//! width with a structured [`WireError`](crate::WireError) rather than
//! ever reinterpreting bytes.
//!
//! Sends are buffered and non-blocking, so the send-all-then-receive-all
//! order below cannot deadlock.

use crate::wire::WireScalar;
use crate::{Communicator, Payload};
use tea_mesh::{Decomposition2D, Dir, Field2};

/// Per-rank halo-exchange context: which decomposition tile this rank
/// owns and who its neighbours are.
#[derive(Debug, Clone)]
pub struct HaloLayout {
    rank: usize,
    neighbors: [Option<usize>; 4],
    nx: usize,
    ny: usize,
}

impl HaloLayout {
    /// Builds the layout for `rank` of `decomp`.
    pub fn new(decomp: &Decomposition2D, rank: usize) -> Self {
        let sub = decomp.subdomain(rank);
        HaloLayout {
            rank,
            neighbors: [
                decomp.neighbor(rank, Dir::West),
                decomp.neighbor(rank, Dir::East),
                decomp.neighbor(rank, Dir::South),
                decomp.neighbor(rank, Dir::North),
            ],
            nx: sub.nx,
            ny: sub.ny,
        }
    }

    /// Owning rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Neighbour in `dir`, if any.
    pub fn neighbor(&self, dir: Dir) -> Option<usize> {
        self.neighbors[dir_index(dir)]
    }

    /// Tile interior extent.
    pub fn tile(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }
}

fn dir_index(dir: Dir) -> usize {
    match dir {
        Dir::West => 0,
        Dir::East => 1,
        Dir::South => 2,
        Dir::North => 3,
    }
}

/// Encodes the protocol tag for one fused exchange message: direction,
/// depth, fused field count, and the element width in bytes. Including
/// the width means a mismatched-precision send/recv pair trips the
/// receiver's tag assertion immediately instead of silently accepting a
/// wrong-width payload.
fn tag_for(dir: Dir, depth: usize, nfields: usize, elem_bytes: usize) -> u64 {
    (dir_index(dir) as u64)
        | ((depth as u64) << 4)
        | ((nfields as u64) << 20)
        | ((elem_bytes as u64) << 36)
}

/// Exchanges depth-`depth` halos of a single field (any [`WireScalar`]
/// precision; `f32` fields move 4-byte wire elements).
pub fn exchange_halo<S: WireScalar, C: Communicator + ?Sized>(
    field: &mut Field2<S>,
    layout: &HaloLayout,
    comm: &C,
    depth: usize,
) {
    let mut fields = [field];
    exchange_halo_many(&mut fields, layout, comm, depth);
}

/// Exchanges depth-`depth` halos of several fields fused into one message
/// per direction.
///
/// # Panics
/// Panics if any field's halo is shallower than `depth`, if a tile
/// dimension is smaller than `depth` (a strip would overrun the
/// neighbour's interior — the same restriction the reference imposes), or
/// if the fields disagree on interior extent.
pub fn exchange_halo_many<S: WireScalar, C: Communicator + ?Sized>(
    fields: &mut [&mut Field2<S>],
    layout: &HaloLayout,
    comm: &C,
    depth: usize,
) {
    if depth == 0 || fields.is_empty() {
        return;
    }
    let (nx, ny) = layout.tile();
    for f in fields.iter() {
        assert!(
            f.halo() >= depth,
            "field halo {} shallower than exchange depth {depth}",
            f.halo()
        );
        assert_eq!(f.nx(), nx, "field/tile extent mismatch");
        assert_eq!(f.ny(), ny, "field/tile extent mismatch");
    }
    assert!(
        nx >= depth && ny >= depth,
        "tile {nx}x{ny} smaller than exchange depth {depth}"
    );
    let d = depth as isize;
    let (nxi, nyi) = (nx as isize, ny as isize);
    let nf = fields.len();

    let tag = |dir: Dir| tag_for(dir, depth, nf, S::BYTES);

    // --- X phase: interior-height strips ---
    let west = layout.neighbor(Dir::West);
    let east = layout.neighbor(Dir::East);
    if let Some(w) = west {
        let mut buf = Vec::new();
        for f in fields.iter() {
            buf.extend(f.pack_rect(0, d, 0, nyi));
        }
        comm.send(w, tag(Dir::West), S::into_payload(buf));
    }
    if let Some(e) = east {
        let mut buf = Vec::new();
        for f in fields.iter() {
            buf.extend(f.pack_rect(nxi - d, nxi, 0, nyi));
        }
        comm.send(e, tag(Dir::East), S::into_payload(buf));
    }
    if let Some(w) = west {
        // west neighbour sent us its east strip, travelling East
        let buf = comm.recv(w, tag(Dir::East));
        unpack_many(fields, buf, -d, 0, 0, nyi);
    }
    if let Some(e) = east {
        let buf = comm.recv(e, tag(Dir::West));
        unpack_many(fields, buf, nxi, nxi + d, 0, nyi);
    }

    // --- Y phase: extended-width strips carry the corners ---
    let south = layout.neighbor(Dir::South);
    let north = layout.neighbor(Dir::North);
    if let Some(s) = south {
        let mut buf = Vec::new();
        for f in fields.iter() {
            buf.extend(f.pack_rect(-d, nxi + d, 0, d));
        }
        comm.send(s, tag(Dir::South), S::into_payload(buf));
    }
    if let Some(n) = north {
        let mut buf = Vec::new();
        for f in fields.iter() {
            buf.extend(f.pack_rect(-d, nxi + d, nyi - d, nyi));
        }
        comm.send(n, tag(Dir::North), S::into_payload(buf));
    }
    if let Some(s) = south {
        let buf = comm.recv(s, tag(Dir::North));
        unpack_many(fields, buf, -d, nxi + d, -d, 0);
    }
    if let Some(n) = north {
        let buf = comm.recv(n, tag(Dir::South));
        unpack_many(fields, buf, -d, nxi + d, nyi, nyi + d);
    }
}

fn unpack_many<S: WireScalar>(
    fields: &mut [&mut Field2<S>],
    payload: Payload,
    x_lo: isize,
    x_hi: isize,
    y_lo: isize,
    y_hi: isize,
) {
    // A width mismatch here means a raw send bypassed the tag protocol;
    // fail with the structured error, never reinterpret the bytes.
    let buf: Vec<S> = payload
        .try_into_vec()
        .unwrap_or_else(|err| panic!("halo decode failed: {err}"));
    let per_field = ((x_hi - x_lo) * (y_hi - y_lo)) as usize;
    assert_eq!(
        buf.len(),
        per_field * fields.len(),
        "fused halo message has wrong size"
    );
    for (i, f) in fields.iter_mut().enumerate() {
        f.unpack_rect(
            &buf[i * per_field..(i + 1) * per_field],
            x_lo,
            x_hi,
            y_lo,
            y_hi,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_threaded;
    use tea_mesh::{Decomposition2D, Extent2D, Field2D, Field2F, Mesh2D};

    /// Fills a tile's interior with a function of global coordinates.
    fn fill_global(field: &mut Field2D, mesh: &Mesh2D, f: impl Fn(isize, isize) -> f64) {
        let (ox, oy) = mesh.subdomain().offset;
        for k in 0..mesh.ny() as isize {
            for j in 0..mesh.nx() as isize {
                field.set(j, k, f(j + ox as isize, k + oy as isize));
            }
        }
    }

    fn check_halo(field: &Field2D, mesh: &Mesh2D, depth: isize, f: impl Fn(isize, isize) -> f64) {
        let (gnx, gny) = mesh.global_cells();
        let (ox, oy) = mesh.subdomain().offset;
        let (nx, ny) = (mesh.nx() as isize, mesh.ny() as isize);
        for k in -depth..ny + depth {
            for j in -depth..nx + depth {
                let (gj, gk) = (j + ox as isize, k + oy as isize);
                // only cells inside the global domain are defined
                if gj < 0 || gk < 0 || gj >= gnx as isize || gk >= gny as isize {
                    continue;
                }
                // interior plus any ghost belonging to a neighbour tile
                assert_eq!(
                    field.at(j, k),
                    f(gj, gk),
                    "halo value wrong at local ({j},{k}) global ({gj},{gk}) rank {}",
                    mesh.subdomain().rank
                );
            }
        }
    }

    #[test]
    fn depth1_exchange_fills_edges_and_corners() {
        let d = Decomposition2D::with_grid(8, 8, 2, 2);
        let f = |gj: isize, gk: isize| (gj * 100 + gk) as f64;
        run_threaded(4, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let layout = HaloLayout::new(&d, comm.rank());
            let mut field = Field2D::new(mesh.nx(), mesh.ny(), 1);
            fill_global(&mut field, &mesh, f);
            exchange_halo(&mut field, &layout, comm, 1);
            check_halo(&field, &mesh, 1, f);
        });
    }

    #[test]
    fn deep_exchange_depth_4_on_3x2_grid() {
        let d = Decomposition2D::with_grid(24, 16, 3, 2);
        let f = |gj: isize, gk: isize| (gj * 1000 + gk) as f64;
        run_threaded(6, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let layout = HaloLayout::new(&d, comm.rank());
            let mut field = Field2D::new(mesh.nx(), mesh.ny(), 4);
            fill_global(&mut field, &mesh, f);
            exchange_halo(&mut field, &layout, comm, 4);
            check_halo(&field, &mesh, 4, f);
        });
    }

    #[test]
    fn fused_multi_field_exchange() {
        let d = Decomposition2D::with_grid(12, 12, 2, 2);
        let fa = |gj: isize, gk: isize| (gj + gk) as f64;
        let fb = |gj: isize, gk: isize| (gj * gk) as f64;
        let snaps = run_threaded(4, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let layout = HaloLayout::new(&d, comm.rank());
            let mut a = Field2D::new(mesh.nx(), mesh.ny(), 2);
            let mut b = Field2D::new(mesh.nx(), mesh.ny(), 2);
            fill_global(&mut a, &mesh, fa);
            fill_global(&mut b, &mesh, fb);
            exchange_halo_many(&mut [&mut a, &mut b], &layout, comm, 2);
            check_halo(&a, &mesh, 2, fa);
            check_halo(&b, &mesh, 2, fb);
            comm.stats().snapshot()
        });
        // interior rank 0 has 2 neighbours (east, north): 2 sends
        assert_eq!(snaps[0].msgs_sent, 2);
        // fused: one message per direction regardless of field count
        let d1 = run_threaded(4, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let layout = HaloLayout::new(&d, comm.rank());
            let mut a = Field2D::new(mesh.nx(), mesh.ny(), 2);
            fill_global(&mut a, &mesh, fa);
            exchange_halo(&mut a, &layout, comm, 2);
            comm.stats().snapshot()
        });
        assert_eq!(snaps[0].msgs_sent, d1[0].msgs_sent);
        assert_eq!(snaps[0].elems_sent_f64, 2 * d1[0].elems_sent_f64);
    }

    #[test]
    fn depth_zero_is_a_no_op() {
        let d = Decomposition2D::with_grid(8, 8, 2, 1);
        run_threaded(2, |comm| {
            let layout = HaloLayout::new(&d, comm.rank());
            let mut field = Field2D::filled(4.max(layout.tile().0), 8, 1, 1.0);
            exchange_halo(&mut field, &layout, comm, 0);
            assert_eq!(comm.stats().snapshot().msgs_sent, 0);
        });
    }

    #[test]
    fn deeper_halos_send_fewer_larger_messages_per_step() {
        // the communication-avoidance arithmetic: depth d sends ~d times
        // the data of depth 1 in a single exchange
        let d = Decomposition2D::with_grid(32, 32, 2, 1);
        for depth in [1usize, 4, 8] {
            let snaps = run_threaded(2, |comm| {
                let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
                let layout = HaloLayout::new(&d, comm.rank());
                let mut f = Field2D::new(mesh.nx(), mesh.ny(), depth);
                exchange_halo(&mut f, &layout, comm, depth);
                comm.stats().snapshot()
            });
            assert_eq!(snaps[0].msgs_sent, 1);
            assert_eq!(snaps[0].elems_sent_f64 as usize, depth * 32);
        }
    }

    #[test]
    fn f32_exchange_is_native_and_half_width() {
        let d = Decomposition2D::with_grid(16, 16, 2, 2);
        let f = |gj: isize, gk: isize| (gj * 100 + gk) as f64;
        let snaps = run_threaded(4, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let layout = HaloLayout::new(&d, comm.rank());
            let mut f64field = Field2D::new(mesh.nx(), mesh.ny(), 2);
            fill_global(&mut f64field, &mesh, f);
            let mut f32field: Field2F = f64field.convert();
            exchange_halo(&mut f32field, &layout, comm, 2);
            // every exchanged ghost must equal the neighbour's interior
            // value demoted to f32 — the exchange moves values verbatim
            exchange_halo(&mut f64field, &layout, comm, 2);
            let demoted: Field2F = f64field.convert();
            assert_eq!(
                f32field.raw(),
                demoted.raw(),
                "f32 exchange must be bit-identical to demoted f64 exchange"
            );
            comm.stats().snapshot()
        });
        // same message count and element count per width, 4 bytes/elem
        assert_eq!(snaps[0].elems_sent_f32, snaps[0].elems_sent_f64);
        assert_eq!(
            snaps[0].bytes_sent(),
            snaps[0].elems_sent_f64 * 8 + snaps[0].elems_sent_f32 * 4
        );
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn mismatched_precision_pair_fails_loudly() {
        // rank 0 exchanges an f64 field while rank 1 exchanges f32: the
        // width-encoded tags disagree, so the receiver rejects the
        // message instead of silently reinterpreting its bytes
        let d = Decomposition2D::with_grid(8, 8, 2, 1);
        run_threaded(2, |comm| {
            let layout = HaloLayout::new(&d, comm.rank());
            if comm.rank() == 0 {
                let mut f = Field2D::new(4, 8, 1);
                exchange_halo(&mut f, &layout, comm, 1);
            } else {
                let mut f = Field2F::new(4, 8, 1);
                exchange_halo(&mut f, &layout, comm, 1);
            }
        });
    }

    #[test]
    fn wrong_width_payload_is_a_structured_decode_error() {
        // a raw send that forges the right tag but packs the wrong
        // element width must fail at decode with the structured
        // WireError naming both formats, never by reinterpreting bytes
        let errs = run_threaded(2, |comm| {
            if comm.rank() == 0 {
                // forge the tag a depth-1 f64 exchange would use, but
                // ship f32 elements
                let tag = tag_for(Dir::West, 1, 1, 8);
                comm.send(1, tag, vec![0.0f32; 8].into());
                None
            } else {
                let payload = comm.recv(0, tag_for(Dir::West, 1, 1, 8));
                Some(payload.try_into_vec::<f64>().unwrap_err())
            }
        });
        let err = errs[1].clone().expect("rank 1 decoded");
        assert_eq!(
            err,
            crate::WireError::WidthMismatch {
                expected: "f64",
                received: "f32",
                len: 8,
            }
        );
        assert!(err.to_string().contains("wire precision mismatch"));
    }

    #[test]
    fn tag_encodes_element_width() {
        let t64 = tag_for(Dir::West, 3, 2, 8);
        let t32 = tag_for(Dir::West, 3, 2, 4);
        assert_ne!(t64, t32, "width must separate otherwise-equal tags");
        // width occupies its own bit field: masking it off recovers the
        // width-independent part
        assert_eq!(t64 & ((1 << 36) - 1), t32 & ((1 << 36) - 1));
    }

    #[test]
    #[should_panic]
    fn shallow_field_halo_panics() {
        let d = Decomposition2D::with_grid(8, 8, 2, 1);
        run_threaded(2, |comm| {
            let layout = HaloLayout::new(&d, comm.rank());
            let mut field = Field2D::new(layout.tile().0, layout.tile().1, 1);
            exchange_halo(&mut field, &layout, comm, 2);
        });
    }

    #[test]
    fn layout_reports_neighbors() {
        let d = Decomposition2D::with_grid(8, 8, 2, 2);
        let l0 = HaloLayout::new(&d, 0);
        assert_eq!(l0.neighbor(Dir::East), Some(1));
        assert_eq!(l0.neighbor(Dir::North), Some(2));
        assert_eq!(l0.neighbor(Dir::West), None);
        assert_eq!(l0.rank(), 0);
        assert_eq!(l0.tile(), (4, 4));
    }
}
