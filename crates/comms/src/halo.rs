//! Depth-*n* halo exchange — TeaLeaf's `update_halo`.
//!
//! The exchange is two-phase, exactly like the reference code:
//!
//! 1. **X phase**: west/east edge strips of width `depth` and interior
//!    height are swapped with the x neighbours.
//! 2. **Y phase**: south/north strips of height `depth` spanning the
//!    *extended* width `[-depth, nx+depth)` — including the columns just
//!    received — are swapped with the y neighbours. This is what
//!    transports corner data to diagonal neighbours without messaging
//!    them directly, which the deep-halo matrix-powers kernel requires.
//!
//! Multiple fields can be fused into a single message per direction
//! (TeaLeaf's `fields` mask): fewer, larger messages, the same trade the
//! paper's communication-avoidance study is about.
//!
//! Sends are buffered and non-blocking, so the send-all-then-receive-all
//! order below cannot deadlock.

use crate::Communicator;
use tea_mesh::{Decomposition2D, Dir, Field2D};

/// Per-rank halo-exchange context: which decomposition tile this rank
/// owns and who its neighbours are.
#[derive(Debug, Clone)]
pub struct HaloLayout {
    rank: usize,
    neighbors: [Option<usize>; 4],
    nx: usize,
    ny: usize,
}

impl HaloLayout {
    /// Builds the layout for `rank` of `decomp`.
    pub fn new(decomp: &Decomposition2D, rank: usize) -> Self {
        let sub = decomp.subdomain(rank);
        HaloLayout {
            rank,
            neighbors: [
                decomp.neighbor(rank, Dir::West),
                decomp.neighbor(rank, Dir::East),
                decomp.neighbor(rank, Dir::South),
                decomp.neighbor(rank, Dir::North),
            ],
            nx: sub.nx,
            ny: sub.ny,
        }
    }

    /// Owning rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Neighbour in `dir`, if any.
    pub fn neighbor(&self, dir: Dir) -> Option<usize> {
        self.neighbors[dir_index(dir)]
    }

    /// Tile interior extent.
    pub fn tile(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }
}

fn dir_index(dir: Dir) -> usize {
    match dir {
        Dir::West => 0,
        Dir::East => 1,
        Dir::South => 2,
        Dir::North => 3,
    }
}

/// Encodes the protocol tag for one fused exchange message.
fn tag_for(dir: Dir, depth: usize, nfields: usize) -> u64 {
    (dir_index(dir) as u64) | ((depth as u64) << 4) | ((nfields as u64) << 20)
}

/// Exchanges depth-`depth` halos of a single field.
pub fn exchange_halo<C: Communicator + ?Sized>(
    field: &mut Field2D,
    layout: &HaloLayout,
    comm: &C,
    depth: usize,
) {
    let mut fields = [field];
    exchange_halo_many(&mut fields, layout, comm, depth);
}

/// Exchanges depth-`depth` halos of several fields fused into one message
/// per direction.
///
/// # Panics
/// Panics if any field's halo is shallower than `depth`, if a tile
/// dimension is smaller than `depth` (a strip would overrun the
/// neighbour's interior — the same restriction the reference imposes), or
/// if the fields disagree on interior extent.
pub fn exchange_halo_many<C: Communicator + ?Sized>(
    fields: &mut [&mut Field2D],
    layout: &HaloLayout,
    comm: &C,
    depth: usize,
) {
    if depth == 0 || fields.is_empty() {
        return;
    }
    let (nx, ny) = layout.tile();
    for f in fields.iter() {
        assert!(
            f.halo() >= depth,
            "field halo {} shallower than exchange depth {depth}",
            f.halo()
        );
        assert_eq!(f.nx(), nx, "field/tile extent mismatch");
        assert_eq!(f.ny(), ny, "field/tile extent mismatch");
    }
    assert!(
        nx >= depth && ny >= depth,
        "tile {nx}x{ny} smaller than exchange depth {depth}"
    );
    let d = depth as isize;
    let (nxi, nyi) = (nx as isize, ny as isize);
    let nf = fields.len();

    // --- X phase: interior-height strips ---
    let west = layout.neighbor(Dir::West);
    let east = layout.neighbor(Dir::East);
    if let Some(w) = west {
        let mut buf = Vec::new();
        for f in fields.iter() {
            buf.extend(f.pack_rect(0, d, 0, nyi));
        }
        comm.send(w, tag_for(Dir::West, depth, nf), buf);
    }
    if let Some(e) = east {
        let mut buf = Vec::new();
        for f in fields.iter() {
            buf.extend(f.pack_rect(nxi - d, nxi, 0, nyi));
        }
        comm.send(e, tag_for(Dir::East, depth, nf), buf);
    }
    if let Some(w) = west {
        // west neighbour sent us its east strip, travelling East
        let buf = comm.recv(w, tag_for(Dir::East, depth, nf));
        unpack_many(fields, &buf, -d, 0, 0, nyi);
    }
    if let Some(e) = east {
        let buf = comm.recv(e, tag_for(Dir::West, depth, nf));
        unpack_many(fields, &buf, nxi, nxi + d, 0, nyi);
    }

    // --- Y phase: extended-width strips carry the corners ---
    let south = layout.neighbor(Dir::South);
    let north = layout.neighbor(Dir::North);
    if let Some(s) = south {
        let mut buf = Vec::new();
        for f in fields.iter() {
            buf.extend(f.pack_rect(-d, nxi + d, 0, d));
        }
        comm.send(s, tag_for(Dir::South, depth, nf), buf);
    }
    if let Some(n) = north {
        let mut buf = Vec::new();
        for f in fields.iter() {
            buf.extend(f.pack_rect(-d, nxi + d, nyi - d, nyi));
        }
        comm.send(n, tag_for(Dir::North, depth, nf), buf);
    }
    if let Some(s) = south {
        let buf = comm.recv(s, tag_for(Dir::North, depth, nf));
        unpack_many(fields, &buf, -d, nxi + d, -d, 0);
    }
    if let Some(n) = north {
        let buf = comm.recv(n, tag_for(Dir::South, depth, nf));
        unpack_many(fields, &buf, -d, nxi + d, nyi, nyi + d);
    }
}

fn unpack_many(
    fields: &mut [&mut Field2D],
    buf: &[f64],
    x_lo: isize,
    x_hi: isize,
    y_lo: isize,
    y_hi: isize,
) {
    let per_field = ((x_hi - x_lo) * (y_hi - y_lo)) as usize;
    assert_eq!(
        buf.len(),
        per_field * fields.len(),
        "fused halo message has wrong size"
    );
    for (i, f) in fields.iter_mut().enumerate() {
        f.unpack_rect(
            &buf[i * per_field..(i + 1) * per_field],
            x_lo,
            x_hi,
            y_lo,
            y_hi,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_threaded;
    use tea_mesh::{Decomposition2D, Extent2D, Mesh2D};

    /// Fills a tile's interior with a function of global coordinates.
    fn fill_global(field: &mut Field2D, mesh: &Mesh2D, f: impl Fn(isize, isize) -> f64) {
        let (ox, oy) = mesh.subdomain().offset;
        for k in 0..mesh.ny() as isize {
            for j in 0..mesh.nx() as isize {
                field.set(j, k, f(j + ox as isize, k + oy as isize));
            }
        }
    }

    fn check_halo(field: &Field2D, mesh: &Mesh2D, depth: isize, f: impl Fn(isize, isize) -> f64) {
        let (gnx, gny) = mesh.global_cells();
        let (ox, oy) = mesh.subdomain().offset;
        let (nx, ny) = (mesh.nx() as isize, mesh.ny() as isize);
        for k in -depth..ny + depth {
            for j in -depth..nx + depth {
                let (gj, gk) = (j + ox as isize, k + oy as isize);
                // only cells inside the global domain are defined
                if gj < 0 || gk < 0 || gj >= gnx as isize || gk >= gny as isize {
                    continue;
                }
                // interior plus any ghost belonging to a neighbour tile
                assert_eq!(
                    field.at(j, k),
                    f(gj, gk),
                    "halo value wrong at local ({j},{k}) global ({gj},{gk}) rank {}",
                    mesh.subdomain().rank
                );
            }
        }
    }

    #[test]
    fn depth1_exchange_fills_edges_and_corners() {
        let d = Decomposition2D::with_grid(8, 8, 2, 2);
        let f = |gj: isize, gk: isize| (gj * 100 + gk) as f64;
        run_threaded(4, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let layout = HaloLayout::new(&d, comm.rank());
            let mut field = Field2D::new(mesh.nx(), mesh.ny(), 1);
            fill_global(&mut field, &mesh, f);
            exchange_halo(&mut field, &layout, comm, 1);
            check_halo(&field, &mesh, 1, f);
        });
    }

    #[test]
    fn deep_exchange_depth_4_on_3x2_grid() {
        let d = Decomposition2D::with_grid(24, 16, 3, 2);
        let f = |gj: isize, gk: isize| (gj * 1000 + gk) as f64;
        run_threaded(6, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let layout = HaloLayout::new(&d, comm.rank());
            let mut field = Field2D::new(mesh.nx(), mesh.ny(), 4);
            fill_global(&mut field, &mesh, f);
            exchange_halo(&mut field, &layout, comm, 4);
            check_halo(&field, &mesh, 4, f);
        });
    }

    #[test]
    fn fused_multi_field_exchange() {
        let d = Decomposition2D::with_grid(12, 12, 2, 2);
        let fa = |gj: isize, gk: isize| (gj + gk) as f64;
        let fb = |gj: isize, gk: isize| (gj * gk) as f64;
        let snaps = run_threaded(4, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let layout = HaloLayout::new(&d, comm.rank());
            let mut a = Field2D::new(mesh.nx(), mesh.ny(), 2);
            let mut b = Field2D::new(mesh.nx(), mesh.ny(), 2);
            fill_global(&mut a, &mesh, fa);
            fill_global(&mut b, &mesh, fb);
            exchange_halo_many(&mut [&mut a, &mut b], &layout, comm, 2);
            check_halo(&a, &mesh, 2, fa);
            check_halo(&b, &mesh, 2, fb);
            comm.stats().snapshot()
        });
        // interior rank 0 has 2 neighbours (east, north): 2 sends
        assert_eq!(snaps[0].msgs_sent, 2);
        // fused: one message per direction regardless of field count
        let d1 = run_threaded(4, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let layout = HaloLayout::new(&d, comm.rank());
            let mut a = Field2D::new(mesh.nx(), mesh.ny(), 2);
            fill_global(&mut a, &mesh, fa);
            exchange_halo(&mut a, &layout, comm, 2);
            comm.stats().snapshot()
        });
        assert_eq!(snaps[0].msgs_sent, d1[0].msgs_sent);
        assert_eq!(snaps[0].doubles_sent, 2 * d1[0].doubles_sent);
    }

    #[test]
    fn depth_zero_is_a_no_op() {
        let d = Decomposition2D::with_grid(8, 8, 2, 1);
        run_threaded(2, |comm| {
            let layout = HaloLayout::new(&d, comm.rank());
            let mut field = Field2D::filled(4.max(layout.tile().0), 8, 1, 1.0);
            exchange_halo(&mut field, &layout, comm, 0);
            assert_eq!(comm.stats().snapshot().msgs_sent, 0);
        });
    }

    #[test]
    fn deeper_halos_send_fewer_larger_messages_per_step() {
        // the communication-avoidance arithmetic: depth d sends ~d times
        // the data of depth 1 in a single exchange
        let d = Decomposition2D::with_grid(32, 32, 2, 1);
        for depth in [1usize, 4, 8] {
            let snaps = run_threaded(2, |comm| {
                let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
                let layout = HaloLayout::new(&d, comm.rank());
                let mut f = Field2D::new(mesh.nx(), mesh.ny(), depth);
                exchange_halo(&mut f, &layout, comm, depth);
                comm.stats().snapshot()
            });
            assert_eq!(snaps[0].msgs_sent, 1);
            assert_eq!(snaps[0].doubles_sent as usize, depth * 32);
        }
    }

    #[test]
    #[should_panic]
    fn shallow_field_halo_panics() {
        let d = Decomposition2D::with_grid(8, 8, 2, 1);
        run_threaded(2, |comm| {
            let layout = HaloLayout::new(&d, comm.rank());
            let mut field = Field2D::new(layout.tile().0, layout.tile().1, 1);
            exchange_halo(&mut field, &layout, comm, 2);
        });
    }

    #[test]
    fn layout_reports_neighbors() {
        let d = Decomposition2D::with_grid(8, 8, 2, 2);
        let l0 = HaloLayout::new(&d, 0);
        assert_eq!(l0.neighbor(Dir::East), Some(1));
        assert_eq!(l0.neighbor(Dir::North), Some(2));
        assert_eq!(l0.neighbor(Dir::West), None);
        assert_eq!(l0.rank(), 0);
        assert_eq!(l0.tile(), (4, 4));
    }
}
