//! Communication counters.
//!
//! Every primitive on a [`crate::Communicator`] bumps these counters.
//! Point-to-point payload volume is accounted **by element width**: a
//! [`crate::Payload`] of `f64` elements counts 8 bytes each, an `f32`
//! payload 4 — real accounting, not an assumed wire format. They serve
//! two purposes: validation (tests assert the matrix-powers kernel
//! really sends fewer, larger messages, and that `f32` halos really
//! halve the byte volume) and calibration input for the `tea-perfmodel`
//! scaling simulator.

use crate::wire::Payload;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic per-rank communication counters (interior mutability so the
/// communicator can be shared immutably).
#[derive(Debug, Default)]
pub struct CommStats {
    msgs_sent: AtomicU64,
    elems_sent_f64: AtomicU64,
    elems_sent_f32: AtomicU64,
    msgs_received: AtomicU64,
    elems_received_f64: AtomicU64,
    elems_received_f32: AtomicU64,
    reductions: AtomicU64,
    reduction_elems_f64: AtomicU64,
    reduction_elems_f32: AtomicU64,
    barriers: AtomicU64,
}

/// A point-in-time copy of [`CommStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// `f64` payload elements sent (8 wire bytes each).
    pub elems_sent_f64: u64,
    /// `f32` payload elements sent (4 wire bytes each).
    pub elems_sent_f32: u64,
    /// Point-to-point messages received.
    pub msgs_received: u64,
    /// `f64` payload elements received.
    pub elems_received_f64: u64,
    /// `f32` payload elements received.
    pub elems_received_f32: u64,
    /// Number of allreduce operations (fused counts once).
    pub reductions: u64,
    /// `f64` scalar elements reduced (8 wire bytes each).
    pub reduction_elems_f64: u64,
    /// `f32` scalar elements reduced (4 wire bytes each).
    pub reduction_elems_f32: u64,
    /// Barrier operations.
    pub barriers: u64,
}

impl StatsSnapshot {
    /// Total payload elements sent, any width.
    pub fn elems_sent(&self) -> u64 {
        self.elems_sent_f64 + self.elems_sent_f32
    }

    /// Total payload elements received, any width.
    pub fn elems_received(&self) -> u64 {
        self.elems_received_f64 + self.elems_received_f32
    }

    /// Total scalar elements reduced, any width.
    pub fn reduction_elements(&self) -> u64 {
        self.reduction_elems_f64 + self.reduction_elems_f32
    }

    /// Reduction traffic in bytes, accounted by element width — one
    /// contribution per rank per element (what each rank puts on the
    /// wire, matching the point-to-point accounting).
    pub fn reduction_bytes(&self) -> u64 {
        self.reduction_elems_f64 * 8 + self.reduction_elems_f32 * 4
    }

    /// Payload bytes sent, accounted by element width (8 per `f64`
    /// element, 4 per `f32`).
    pub fn bytes_sent(&self) -> u64 {
        self.elems_sent_f64 * 8 + self.elems_sent_f32 * 4
    }

    /// Payload bytes received, accounted by element width.
    pub fn bytes_received(&self) -> u64 {
        self.elems_received_f64 * 8 + self.elems_received_f32 * 4
    }

    /// Mean payload bytes per element sent — 8.0 for pure-`f64` traffic,
    /// 4.0 for pure-`f32`, in between for mixed runs. `NaN`-free: returns
    /// 0.0 when nothing was sent.
    pub fn mean_bytes_per_elem_sent(&self) -> f64 {
        let elems = self.elems_sent();
        if elems == 0 {
            0.0
        } else {
            self.bytes_sent() as f64 / elems as f64
        }
    }

    /// Adds every counter of `other` into this snapshot — the one way to
    /// aggregate per-rank snapshots into machine-wide totals.
    pub fn merge(&mut self, other: &StatsSnapshot) {
        let StatsSnapshot {
            msgs_sent,
            elems_sent_f64,
            elems_sent_f32,
            msgs_received,
            elems_received_f64,
            elems_received_f32,
            reductions,
            reduction_elems_f64,
            reduction_elems_f32,
            barriers,
        } = other;
        self.msgs_sent += msgs_sent;
        self.elems_sent_f64 += elems_sent_f64;
        self.elems_sent_f32 += elems_sent_f32;
        self.msgs_received += msgs_received;
        self.elems_received_f64 += elems_received_f64;
        self.elems_received_f32 += elems_received_f32;
        self.reductions += reductions;
        self.reduction_elems_f64 += reduction_elems_f64;
        self.reduction_elems_f32 += reduction_elems_f32;
        self.barriers += barriers;
    }
}

impl CommStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sent message, attributing its elements to the payload's
    /// width bucket.
    pub fn count_send(&self, payload: &Payload) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        let n = payload.len() as u64;
        match payload {
            Payload::F64(_) => self.elems_sent_f64.fetch_add(n, Ordering::Relaxed),
            Payload::F32(_) => self.elems_sent_f32.fetch_add(n, Ordering::Relaxed),
        };
    }

    /// Records a received message, attributing its elements to the
    /// payload's width bucket.
    pub fn count_recv(&self, payload: &Payload) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        let n = payload.len() as u64;
        match payload {
            Payload::F64(_) => self.elems_received_f64.fetch_add(n, Ordering::Relaxed),
            Payload::F32(_) => self.elems_received_f32.fetch_add(n, Ordering::Relaxed),
        };
    }

    /// Records one allreduce of `elements` fused `f64` scalars (the
    /// historical wire width; width-native reductions go through
    /// [`CommStats::count_reduction_payload`]).
    pub fn count_reduction(&self, elements: usize) {
        self.reductions.fetch_add(1, Ordering::Relaxed);
        self.reduction_elems_f64
            .fetch_add(elements as u64, Ordering::Relaxed);
    }

    /// Records one allreduce, attributing its elements to the payload's
    /// width bucket.
    pub fn count_reduction_payload(&self, locals: &Payload) {
        self.reductions.fetch_add(1, Ordering::Relaxed);
        let n = locals.len() as u64;
        match locals {
            Payload::F64(_) => self.reduction_elems_f64.fetch_add(n, Ordering::Relaxed),
            Payload::F32(_) => self.reduction_elems_f32.fetch_add(n, Ordering::Relaxed),
        };
    }

    /// Records a barrier.
    pub fn count_barrier(&self) {
        self.barriers.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            elems_sent_f64: self.elems_sent_f64.load(Ordering::Relaxed),
            elems_sent_f32: self.elems_sent_f32.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            elems_received_f64: self.elems_received_f64.load(Ordering::Relaxed),
            elems_received_f32: self.elems_received_f32.load(Ordering::Relaxed),
            reductions: self.reductions.load(Ordering::Relaxed),
            reduction_elems_f64: self.reduction_elems_f64.load(Ordering::Relaxed),
            reduction_elems_f32: self.reduction_elems_f32.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.msgs_sent.store(0, Ordering::Relaxed);
        self.elems_sent_f64.store(0, Ordering::Relaxed);
        self.elems_sent_f32.store(0, Ordering::Relaxed);
        self.msgs_received.store(0, Ordering::Relaxed);
        self.elems_received_f64.store(0, Ordering::Relaxed);
        self.elems_received_f32.store(0, Ordering::Relaxed);
        self.reductions.store(0, Ordering::Relaxed);
        self.reduction_elems_f64.store(0, Ordering::Relaxed);
        self.reduction_elems_f32.store(0, Ordering::Relaxed);
        self.barriers.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = CommStats::new();
        s.count_send(&Payload::F64(vec![0.0; 100]));
        s.count_send(&Payload::F64(vec![0.0; 50]));
        s.count_recv(&Payload::F64(vec![0.0; 100]));
        s.count_reduction(3);
        s.count_reduction_payload(&Payload::F32(vec![0.0; 2]));
        s.count_barrier();
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 2);
        assert_eq!(snap.elems_sent_f64, 150);
        assert_eq!(snap.elems_sent(), 150);
        assert_eq!(snap.bytes_sent(), 1200);
        assert_eq!(snap.msgs_received, 1);
        assert_eq!(snap.reductions, 2);
        assert_eq!(snap.reduction_elems_f64, 3);
        assert_eq!(snap.reduction_elems_f32, 2);
        assert_eq!(snap.reduction_elements(), 5);
        assert_eq!(snap.reduction_bytes(), 3 * 8 + 2 * 4);
        assert_eq!(snap.barriers, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn merge_sums_every_counter() {
        let a = CommStats::new();
        a.count_send(&Payload::F64(vec![0.0; 4]));
        a.count_recv(&Payload::F32(vec![0.0; 6]));
        a.count_reduction(2);
        a.count_barrier();
        let b = CommStats::new();
        b.count_send(&Payload::F32(vec![0.0; 10]));
        b.count_recv(&Payload::F64(vec![0.0; 3]));
        b.count_reduction_payload(&Payload::F32(vec![0.0; 4]));
        let mut total = a.snapshot();
        total.merge(&b.snapshot());
        assert_eq!(total.msgs_sent, 2);
        assert_eq!(total.elems_sent_f64, 4);
        assert_eq!(total.elems_sent_f32, 10);
        assert_eq!(total.msgs_received, 2);
        assert_eq!(total.elems_received_f64, 3);
        assert_eq!(total.elems_received_f32, 6);
        assert_eq!(total.reductions, 2);
        assert_eq!(total.reduction_elems_f64, 2);
        assert_eq!(total.reduction_elems_f32, 4);
        assert_eq!(total.reduction_elements(), 6);
        assert_eq!(total.barriers, 1);
        assert_eq!(total.bytes_sent(), 4 * 8 + 10 * 4);
    }

    #[test]
    fn bytes_account_by_element_width() {
        let s = CommStats::new();
        s.count_send(&Payload::F64(vec![0.0; 10]));
        s.count_send(&Payload::F32(vec![0.0; 10]));
        s.count_recv(&Payload::F32(vec![0.0; 6]));
        let snap = s.snapshot();
        assert_eq!(snap.elems_sent_f64, 10);
        assert_eq!(snap.elems_sent_f32, 10);
        // 10 doubles + 10 singles: 80 + 40 bytes, not 160
        assert_eq!(snap.bytes_sent(), 120);
        assert_eq!(snap.bytes_received(), 24);
        assert_eq!(snap.mean_bytes_per_elem_sent(), 6.0);
        assert_eq!(StatsSnapshot::default().mean_bytes_per_elem_sent(), 0.0);
    }
}
