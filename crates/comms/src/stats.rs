//! Communication counters.
//!
//! Every primitive on a [`crate::Communicator`] bumps these counters.
//! They serve two purposes: validation (tests assert the matrix-powers
//! kernel really sends fewer, larger messages) and calibration input for
//! the `tea-perfmodel` scaling simulator.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic per-rank communication counters (interior mutability so the
/// communicator can be shared immutably).
#[derive(Debug, Default)]
pub struct CommStats {
    msgs_sent: AtomicU64,
    doubles_sent: AtomicU64,
    msgs_received: AtomicU64,
    doubles_received: AtomicU64,
    reductions: AtomicU64,
    reduction_elements: AtomicU64,
    barriers: AtomicU64,
}

/// A point-in-time copy of [`CommStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Point-to-point messages sent.
    pub msgs_sent: u64,
    /// Total `f64` payload elements sent.
    pub doubles_sent: u64,
    /// Point-to-point messages received.
    pub msgs_received: u64,
    /// Total `f64` payload elements received.
    pub doubles_received: u64,
    /// Number of allreduce operations (fused counts once).
    pub reductions: u64,
    /// Total scalar elements reduced.
    pub reduction_elements: u64,
    /// Barrier operations.
    pub barriers: u64,
}

impl StatsSnapshot {
    /// Payload bytes sent (8 bytes per `f64`).
    pub fn bytes_sent(&self) -> u64 {
        self.doubles_sent * 8
    }
}

impl CommStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a sent message of `doubles` payload elements.
    pub fn count_send(&self, doubles: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.doubles_sent
            .fetch_add(doubles as u64, Ordering::Relaxed);
    }

    /// Records a received message of `doubles` payload elements.
    pub fn count_recv(&self, doubles: usize) {
        self.msgs_received.fetch_add(1, Ordering::Relaxed);
        self.doubles_received
            .fetch_add(doubles as u64, Ordering::Relaxed);
    }

    /// Records one allreduce of `elements` fused scalars.
    pub fn count_reduction(&self, elements: usize) {
        self.reductions.fetch_add(1, Ordering::Relaxed);
        self.reduction_elements
            .fetch_add(elements as u64, Ordering::Relaxed);
    }

    /// Records a barrier.
    pub fn count_barrier(&self) {
        self.barriers.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            doubles_sent: self.doubles_sent.load(Ordering::Relaxed),
            msgs_received: self.msgs_received.load(Ordering::Relaxed),
            doubles_received: self.doubles_received.load(Ordering::Relaxed),
            reductions: self.reductions.load(Ordering::Relaxed),
            reduction_elements: self.reduction_elements.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.msgs_sent.store(0, Ordering::Relaxed);
        self.doubles_sent.store(0, Ordering::Relaxed);
        self.msgs_received.store(0, Ordering::Relaxed);
        self.doubles_received.store(0, Ordering::Relaxed);
        self.reductions.store(0, Ordering::Relaxed);
        self.reduction_elements.store(0, Ordering::Relaxed);
        self.barriers.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = CommStats::new();
        s.count_send(100);
        s.count_send(50);
        s.count_recv(100);
        s.count_reduction(3);
        s.count_barrier();
        let snap = s.snapshot();
        assert_eq!(snap.msgs_sent, 2);
        assert_eq!(snap.doubles_sent, 150);
        assert_eq!(snap.bytes_sent(), 1200);
        assert_eq!(snap.msgs_received, 1);
        assert_eq!(snap.reductions, 1);
        assert_eq!(snap.reduction_elements, 3);
        assert_eq!(snap.barriers, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
