//! Gathering decomposed fields onto a root rank.
//!
//! Used for diagnostics and figure output: each rank ships its interior
//! to rank 0, which assembles the global field. The reference TeaLeaf
//! does the same for its VisIt dumps.

use crate::Communicator;
use tea_mesh::{Decomposition2D, Field2D};

const GATHER_TAG: u64 = 0x6A77;

/// Gathers the interiors of every rank's `field` into a single global
/// field (halo 0) on rank 0. Other ranks return `None`.
///
/// Must be called collectively. The field extents must match each rank's
/// subdomain in `decomp`.
pub fn gather_to_root<C: Communicator + ?Sized>(
    field: &Field2D,
    decomp: &Decomposition2D,
    comm: &C,
) -> Option<Field2D> {
    let sub = decomp.subdomain(comm.rank());
    assert_eq!(field.nx(), sub.nx, "field does not match subdomain");
    assert_eq!(field.ny(), sub.ny, "field does not match subdomain");

    let (gnx, gny) = decomp.global_cells();
    if comm.rank() != 0 {
        let buf = field.pack_rect(0, field.nx() as isize, 0, field.ny() as isize);
        comm.send(0, GATHER_TAG, buf);
        return None;
    }

    let mut global = Field2D::new(gnx, gny, 0);
    // own interior
    place(
        &mut global,
        sub.offset,
        field.pack_rect(0, sub.nx as isize, 0, sub.ny as isize),
        sub.nx,
        sub.ny,
    );
    // everyone else in rank order
    for r in 1..comm.size() {
        let s = decomp.subdomain(r);
        let buf = comm.recv(r, GATHER_TAG);
        assert_eq!(buf.len(), s.nx * s.ny, "gather payload size mismatch");
        place(&mut global, s.offset, buf, s.nx, s.ny);
    }
    Some(global)
}

fn place(global: &mut Field2D, offset: (usize, usize), buf: Vec<f64>, nx: usize, ny: usize) {
    global.unpack_rect(
        &buf,
        offset.0 as isize,
        (offset.0 + nx) as isize,
        offset.1 as isize,
        (offset.1 + ny) as isize,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_threaded, SerialComm};
    use tea_mesh::{Extent2D, Mesh2D};

    #[test]
    fn gather_reassembles_global_field() {
        let d = Decomposition2D::with_grid(10, 6, 3, 2);
        let results = run_threaded(6, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let mut f = Field2D::new(mesh.nx(), mesh.ny(), 0);
            let (ox, oy) = mesh.subdomain().offset;
            for k in 0..mesh.ny() as isize {
                for j in 0..mesh.nx() as isize {
                    f.set(j, k, ((ox as isize + j) * 37 + (oy as isize + k)) as f64);
                }
            }
            gather_to_root(&f, &d, comm)
        });
        let global = results[0].as_ref().expect("rank 0 gets the field");
        assert!(results[1..].iter().all(|r| r.is_none()));
        for k in 0..6isize {
            for j in 0..10isize {
                assert_eq!(global.at(j, k), (j * 37 + k) as f64);
            }
        }
    }

    #[test]
    fn serial_gather_is_a_copy() {
        let d = Decomposition2D::with_grid(4, 4, 1, 1);
        let comm = SerialComm::new();
        let mut f = Field2D::new(4, 4, 2);
        f.set(1, 1, 42.0);
        let g = gather_to_root(&f, &d, &comm).unwrap();
        assert_eq!(g.at(1, 1), 42.0);
        assert_eq!(g.halo(), 0);
    }
}
