//! Gathering decomposed fields onto a root rank.
//!
//! Used for diagnostics and figure output: each rank ships its interior
//! to rank 0, which assembles the global field. The reference TeaLeaf
//! does the same for its VisIt dumps.

use crate::wire::WireScalar;
use crate::Communicator;
use tea_mesh::{Decomposition2D, Field2, Scalar};

/// Gather messages tag the element width like halo messages do, so a
/// root expecting one precision rejects a rank shipping another.
fn gather_tag(elem_bytes: usize) -> u64 {
    0x6A77 | ((elem_bytes as u64) << 36)
}

/// Gathers the interiors of every rank's `field` into a single global
/// field (halo 0) on rank 0, at the field's native precision. Other
/// ranks return `None`.
///
/// Must be called collectively. The field extents must match each rank's
/// subdomain in `decomp`.
pub fn gather_to_root<S: WireScalar, C: Communicator + ?Sized>(
    field: &Field2<S>,
    decomp: &Decomposition2D,
    comm: &C,
) -> Option<Field2<S>> {
    let sub = decomp.subdomain(comm.rank());
    assert_eq!(field.nx(), sub.nx, "field does not match subdomain");
    assert_eq!(field.ny(), sub.ny, "field does not match subdomain");

    let (gnx, gny) = decomp.global_cells();
    if comm.rank() != 0 {
        let buf = field.pack_rect(0, field.nx() as isize, 0, field.ny() as isize);
        comm.send(0, gather_tag(S::BYTES), S::into_payload(buf));
        return None;
    }

    let mut global = Field2::<S>::new(gnx, gny, 0);
    // own interior
    place(
        &mut global,
        sub.offset,
        field.pack_rect(0, sub.nx as isize, 0, sub.ny as isize),
        sub.nx,
        sub.ny,
    );
    // everyone else in rank order
    for r in 1..comm.size() {
        let s = decomp.subdomain(r);
        let buf: Vec<S> = comm
            .recv(r, gather_tag(S::BYTES))
            .try_into_vec()
            .unwrap_or_else(|err| panic!("gather decode failed: {err}"));
        assert_eq!(buf.len(), s.nx * s.ny, "gather payload size mismatch");
        place(&mut global, s.offset, buf, s.nx, s.ny);
    }
    Some(global)
}

fn place<S: Scalar>(
    global: &mut Field2<S>,
    offset: (usize, usize),
    buf: Vec<S>,
    nx: usize,
    ny: usize,
) {
    global.unpack_rect(
        &buf,
        offset.0 as isize,
        (offset.0 + nx) as isize,
        offset.1 as isize,
        (offset.1 + ny) as isize,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_threaded, SerialComm};
    use tea_mesh::{Extent2D, Field2D, Field2F, Mesh2D};

    #[test]
    fn gather_reassembles_global_field() {
        let d = Decomposition2D::with_grid(10, 6, 3, 2);
        let results = run_threaded(6, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let mut f = Field2D::new(mesh.nx(), mesh.ny(), 0);
            let (ox, oy) = mesh.subdomain().offset;
            for k in 0..mesh.ny() as isize {
                for j in 0..mesh.nx() as isize {
                    f.set(j, k, ((ox as isize + j) * 37 + (oy as isize + k)) as f64);
                }
            }
            gather_to_root(&f, &d, comm)
        });
        let global = results[0].as_ref().expect("rank 0 gets the field");
        assert!(results[1..].iter().all(|r| r.is_none()));
        for k in 0..6isize {
            for j in 0..10isize {
                assert_eq!(global.at(j, k), (j * 37 + k) as f64);
            }
        }
    }

    #[test]
    fn f32_gather_moves_half_width_payloads() {
        let d = Decomposition2D::with_grid(8, 8, 2, 1);
        let results = run_threaded(2, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::unit());
            let mut f = Field2F::new(mesh.nx(), mesh.ny(), 0);
            let (ox, _) = mesh.subdomain().offset;
            for k in 0..mesh.ny() as isize {
                for j in 0..mesh.nx() as isize {
                    f.set(j, k, (ox as isize + j + k) as f32);
                }
            }
            let g = gather_to_root(&f, &d, comm);
            (g, comm.stats().snapshot())
        });
        let global = results[0].0.as_ref().expect("rank 0 gets the field");
        for k in 0..8isize {
            for j in 0..8isize {
                assert_eq!(global.at(j, k), (j + k) as f32);
            }
        }
        // rank 1 shipped its 4x8 interior as f32: 32 elements, 128 bytes
        let s1 = results[1].1;
        assert_eq!(s1.elems_sent_f32, 32);
        assert_eq!(s1.elems_sent_f64, 0);
        assert_eq!(s1.bytes_sent(), 128);
    }

    #[test]
    fn serial_gather_is_a_copy() {
        let d = Decomposition2D::with_grid(4, 4, 1, 1);
        let comm = SerialComm::new();
        let mut f = Field2D::new(4, 4, 2);
        f.set(1, 1, 42.0);
        let g = gather_to_root(&f, &d, &comm).unwrap();
        assert_eq!(g.at(1, 1), 42.0);
        assert_eq!(g.halo(), 0);
    }
}
