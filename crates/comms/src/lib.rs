//! # tea-comms — simulated distributed message-passing runtime
//!
//! TeaLeaf's evaluation ran on MPI machines (Titan, Piz Daint, Spruce).
//! This crate substitutes a faithful in-process runtime: every rank is a
//! real thread with its own tile, point-to-point messages travel over
//! channels, and global reductions are deterministic (summed in rank
//! order, independent of thread scheduling). The same [`Communicator`]
//! trait also has a trivial serial backend so solvers are written once.
//!
//! On top of the raw primitives sit the TeaLeaf-specific collectives:
//! depth-*n* [`halo`] exchange (the x-then-y two-phase pattern whose
//! second phase carries the corner data, exactly as the Fortran
//! `update_halo` does) and field [`gather`] for diagnostics/output.
//!
//! The wire format is **precision-native**: point-to-point messages
//! carry a typed [`Payload`] of `f64` *or* `f32` elements, and the
//! collectives are generic over [`WireScalar`], so an `f32` field's
//! halo travels at 4 bytes per element with no staging conversion. A
//! mismatched send/recv precision pair fails loudly (the message tag
//! encodes the element width, and decoding checks it — see
//! [`WireError`]).
//!
//! Every operation is counted ([`CommStats`]), with payload volume
//! accounted in real bytes by element width, so the performance model in
//! `tea-perfmodel` can replay a run's exact communication structure on a
//! modelled machine.
//!
//! ## Example: four ranks summing their ranks
//!
//! ```
//! use tea_comms::{run_threaded, Communicator};
//!
//! let results = run_threaded(4, |comm| comm.allreduce_sum(comm.rank() as f64));
//! assert!(results.iter().all(|&r| r == 6.0));
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod gather;
pub mod halo;
pub mod serial;
pub mod stats;
pub mod threaded;
pub mod wire;

pub use gather::gather_to_root;
pub use halo::{exchange_halo, exchange_halo_many, HaloLayout};
pub use serial::SerialComm;
pub use stats::{CommStats, StatsSnapshot};
pub use threaded::{run_threaded, run_threaded_tapped, PayloadTap, ThreadedComm};
pub use wire::{Payload, WireError, WireScalar, WIRE_MAGIC};

/// A rank's handle onto the simulated machine.
///
/// Mirrors the slice of MPI that TeaLeaf uses: rank/size introspection,
/// deterministic allreduce, point-to-point sends for halo data, and a
/// barrier. All collectives must be called by every rank in the same
/// order (as in MPI).
pub trait Communicator {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Total number of ranks.
    fn size(&self) -> usize;

    /// Global sum of one value per rank. Deterministic: contributions are
    /// combined in rank order regardless of arrival order.
    fn allreduce_sum(&self, local: f64) -> f64 {
        self.allreduce_sum_many(&[local])[0]
    }

    /// Fused global sum of several values (one latency for many dot
    /// products — the optimisation the paper's future-work section
    /// describes). Deterministic like [`Communicator::allreduce_sum`].
    fn allreduce_sum_many(&self, locals: &[f64]) -> Vec<f64>;

    /// Precision-native fused global sum: the reduction analogue of the
    /// typed point-to-point path. An `F32` payload travels (and is
    /// accounted) at 4 bytes per element; every rank must deposit the
    /// same width, and the fold runs in the payload's own precision so
    /// single-rank results are exactly the local values.
    ///
    /// The default routes through [`Communicator::allreduce_sum_many`],
    /// widening `f32` contributions to `f64` on the wire — correct for
    /// any backend, but paying the 8-byte width. The in-tree backends
    /// override it with genuinely width-native reductions.
    fn allreduce_sum_payload(&self, locals: Payload) -> Payload {
        match locals {
            Payload::F64(v) => Payload::F64(self.allreduce_sum_many(&v)),
            Payload::F32(v) => {
                let wide: Vec<f64> = v.iter().map(|&x| f64::from(x)).collect();
                Payload::F32(
                    self.allreduce_sum_many(&wide)
                        .into_iter()
                        .map(|x| x as f32)
                        .collect(),
                )
            }
        }
    }

    /// Global minimum.
    fn allreduce_min(&self, local: f64) -> f64;

    /// Global maximum.
    fn allreduce_max(&self, local: f64) -> f64;

    /// Blocks until every rank reaches the barrier.
    fn barrier(&self);

    /// Non-blocking ordered send of a typed `data` payload to rank `to`.
    /// `tag` must match the receiver's expectation; the runtime asserts
    /// protocol agreement. Raw `Vec<f64>` / `Vec<f32>` buffers convert
    /// with `.into()`.
    fn send(&self, to: usize, tag: u64, data: Payload);

    /// Receives the next message from rank `from`, asserting it carries
    /// `tag`. Blocks until the message arrives. The payload keeps the
    /// precision the sender packed; decode with
    /// [`Payload::try_into_vec`].
    fn recv(&self, from: usize, tag: u64) -> Payload;

    /// Communication counters for this rank.
    fn stats(&self) -> &CommStats;

    /// This communicator as a type-erased trait object — the form the
    /// `IterativeSolver` trait objects in `tea-core` are written
    /// against. Implementations return `self`.
    fn as_dyn(&self) -> &dyn Communicator;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    #[test]
    fn serial_default_allreduce_uses_many() {
        let c = SerialComm::new();
        assert_eq!(c.allreduce_sum(2.5), 2.5);
        assert_eq!(c.allreduce_sum_many(&[1.0, 2.0]), vec![1.0, 2.0]);
    }
}
