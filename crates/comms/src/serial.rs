//! Single-rank communicator.
//!
//! All collectives are identities and point-to-point messaging is a
//! protocol error (a single tile has no neighbours). Lets the solver
//! stack run without threads, which is also the configuration used for
//! reference solutions in tests.

use crate::stats::CommStats;
use crate::wire::Payload;
use crate::Communicator;

/// The trivial one-rank communicator.
#[derive(Debug, Default)]
pub struct SerialComm {
    stats: CommStats,
}

impl SerialComm {
    /// Creates a serial communicator.
    pub fn new() -> Self {
        SerialComm {
            stats: CommStats::new(),
        }
    }
}

impl Communicator for SerialComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn allreduce_sum_many(&self, locals: &[f64]) -> Vec<f64> {
        self.stats.count_reduction(locals.len());
        locals.to_vec()
    }

    fn allreduce_sum_payload(&self, locals: Payload) -> Payload {
        // identity, but width-accounted: an f32 reduction is counted at
        // 4 bytes/element here exactly as on the threaded backend
        self.stats.count_reduction_payload(&locals);
        locals
    }

    fn allreduce_min(&self, local: f64) -> f64 {
        self.stats.count_reduction(1);
        local
    }

    fn allreduce_max(&self, local: f64) -> f64 {
        self.stats.count_reduction(1);
        local
    }

    fn barrier(&self) {
        self.stats.count_barrier();
    }

    fn send(&self, to: usize, _tag: u64, _data: Payload) {
        panic!("SerialComm cannot send (to rank {to}): a single tile has no neighbours");
    }

    fn recv(&self, from: usize, _tag: u64) -> Payload {
        panic!("SerialComm cannot recv (from rank {from}): a single tile has no neighbours");
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }

    fn as_dyn(&self) -> &dyn Communicator {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_collectives() {
        let c = SerialComm::new();
        assert_eq!(c.rank(), 0);
        assert_eq!(c.size(), 1);
        assert_eq!(c.allreduce_sum(3.25), 3.25);
        assert_eq!(c.allreduce_min(-1.0), -1.0);
        assert_eq!(c.allreduce_max(-1.0), -1.0);
        c.barrier();
        let s = c.stats().snapshot();
        assert_eq!(s.reductions, 3);
        assert_eq!(s.barriers, 1);
    }

    #[test]
    fn payload_reduction_is_identity_and_width_accounted() {
        let c = SerialComm::new();
        let out = c.allreduce_sum_payload(Payload::F32(vec![1.5, -2.0]));
        assert_eq!(out, Payload::F32(vec![1.5, -2.0]));
        let out = c.allreduce_sum_payload(Payload::F64(vec![0.25]));
        assert_eq!(out, Payload::F64(vec![0.25]));
        let s = c.stats().snapshot();
        assert_eq!(s.reductions, 2);
        assert_eq!(s.reduction_elems_f32, 2);
        assert_eq!(s.reduction_elems_f64, 1);
    }

    #[test]
    #[should_panic]
    fn send_panics() {
        SerialComm::new().send(0, 0, Payload::F64(vec![]));
    }

    #[test]
    #[should_panic]
    fn recv_panics() {
        let _ = SerialComm::new().recv(0, 0);
    }
}
