//! Multi-rank communicator backed by OS threads and channels.
//!
//! [`run_threaded`] spawns one thread per rank, hands each a
//! [`ThreadedComm`] handle, and joins them — the in-process equivalent of
//! `mpirun -n R`. Point-to-point messages travel over dedicated
//! per-(sender, receiver) FIFO channels, so message order between a pair
//! of ranks is preserved exactly as MPI guarantees for matching
//! signatures.
//!
//! Reductions are **deterministic**: each rank deposits its contribution
//! into a rank-indexed slot and the last arrival folds the slots in rank
//! order. The result is therefore bit-identical from run to run for a
//! fixed rank count — the property TeaLeaf relies on when validating
//! decomposed runs against serial ones.

use crate::stats::CommStats;
use crate::wire::{Payload, WireScalar};
use crate::Communicator;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// One point-to-point message: a typed payload travelling under a tag.
struct Msg {
    tag: u64,
    data: Payload,
}

/// Reduction / barrier rendezvous state (generation-counted). Slots are
/// typed payloads so an f32 reduction folds in f32 end to end.
struct ReduceState {
    generation: u64,
    deposited: usize,
    slots: Vec<Payload>,
    result: Payload,
}

/// What to fold during a rendezvous.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ReduceOp {
    Sum,
    Min,
    Max,
    Barrier,
}

/// An interception hook on every point-to-point payload of a threaded
/// machine: `send` passes the outgoing payload through the tap before
/// it enters the channel. Production runs install no tap (a `None`
/// check per send); fault-injection harnesses use it to corrupt or
/// blank halo traffic deterministically.
pub trait PayloadTap: Send + Sync {
    /// Transforms one in-flight payload. `from`/`to` are ranks, `tag`
    /// is the protocol tag the receiver will match on. Returning the
    /// payload unchanged makes the tap a no-op for that message.
    fn tap(&self, from: usize, to: usize, tag: u64, data: Payload) -> Payload;
}

/// State shared by every rank of one simulated machine.
struct Shared {
    size: usize,
    /// senders[from][to]
    senders: Vec<Vec<Sender<Msg>>>,
    /// receivers[to][from]
    receivers: Vec<Vec<Receiver<Msg>>>,
    reduce: Mutex<ReduceState>,
    reduce_cv: Condvar,
    tap: Option<Arc<dyn PayloadTap>>,
}

impl Shared {
    fn new(size: usize, tap: Option<Arc<dyn PayloadTap>>) -> Arc<Self> {
        let mut senders: Vec<Vec<Sender<Msg>>> = (0..size).map(|_| Vec::new()).collect();
        let mut receivers: Vec<Vec<Receiver<Msg>>> = (0..size).map(|_| Vec::new()).collect();
        for from in 0..size {
            for _to in 0..size {
                let (tx, rx) = unbounded();
                senders[from].push(tx);
                receivers[from].push(rx);
            }
        }
        // receivers currently indexed [from][to]; transpose to [to][from]
        let mut transposed: Vec<Vec<Receiver<Msg>>> = (0..size).map(|_| Vec::new()).collect();
        for row in receivers.into_iter() {
            for (to, rx) in row.into_iter().enumerate() {
                transposed[to].push(rx);
            }
        }
        Arc::new(Shared {
            size,
            senders,
            receivers: transposed,
            reduce: Mutex::new(ReduceState {
                generation: 0,
                deposited: 0,
                slots: vec![Payload::F64(Vec::new()); size],
                result: Payload::F64(Vec::new()),
            }),
            reduce_cv: Condvar::new(),
            tap,
        })
    }

    /// Generic rendezvous: every rank deposits `locals`; the last arrival
    /// folds all slots in rank order with `op`; everyone returns the
    /// folded payload. Every rank must deposit the same width and length
    /// — a mismatch is a protocol error and panics.
    fn rendezvous(&self, rank: usize, locals: Payload, op: ReduceOp) -> Payload {
        let mut st = self.reduce.lock();
        st.slots[rank] = locals;
        st.deposited += 1;
        if st.deposited == self.size {
            // fold in rank order for determinism, in the deposited width
            let result = match &st.slots[0] {
                Payload::F64(_) => fold_slots::<f64>(&st.slots, op),
                Payload::F32(_) => fold_slots::<f32>(&st.slots, op),
            };
            st.result = result.clone();
            st.deposited = 0;
            st.generation = st.generation.wrapping_add(1);
            self.reduce_cv.notify_all();
            result
        } else {
            let my_gen = st.generation;
            while st.generation == my_gen {
                self.reduce_cv.wait(&mut st);
            }
            st.result.clone()
        }
    }
}

/// Folds rank-ordered slots element-wise in the payload's own precision.
/// The accumulator starts from rank 0's contribution, so no width-specific
/// identity constants are needed and a single-rank fold returns the local
/// values bit-exactly.
fn fold_slots<S: WireScalar>(slots: &[Payload], op: ReduceOp) -> Payload {
    let first = S::payload_slice(&slots[0]).expect("fold width chosen from slot 0");
    let mut result: Vec<S> = first.to_vec();
    for (r, slot) in slots.iter().enumerate().skip(1) {
        let vals = match S::payload_slice(slot) {
            Ok(v) => v,
            Err(e) => panic!(
                "rank {r} joined a {} reduction with a mismatched deposit — {e} \
                 (every rank must deposit the same wire precision)",
                S::NAME,
            ),
        };
        assert_eq!(
            vals.len(),
            result.len(),
            "rank {r} joined a reduction with mismatched element count"
        );
        for (acc, &v) in result.iter_mut().zip(vals) {
            match op {
                ReduceOp::Sum | ReduceOp::Barrier => *acc += v,
                ReduceOp::Min => {
                    if v < *acc {
                        *acc = v;
                    }
                }
                ReduceOp::Max => {
                    if v > *acc {
                        *acc = v;
                    }
                }
            }
        }
    }
    S::into_payload(result)
}

/// Per-rank handle onto the threaded machine.
pub struct ThreadedComm {
    rank: usize,
    shared: Arc<Shared>,
    stats: CommStats,
}

impl std::fmt::Debug for ThreadedComm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedComm")
            .field("rank", &self.rank)
            .field("size", &self.shared.size)
            .finish()
    }
}

impl Communicator for ThreadedComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn allreduce_sum_many(&self, locals: &[f64]) -> Vec<f64> {
        self.stats.count_reduction(locals.len());
        self.shared
            .rendezvous(self.rank, Payload::F64(locals.to_vec()), ReduceOp::Sum)
            .try_into_vec()
            .expect("f64 deposit folds to an f64 result")
    }

    fn allreduce_sum_payload(&self, locals: Payload) -> Payload {
        // width-native: an F32 deposit is accounted at 4 bytes/element
        // and folded in f32, never touching f64 on the "wire"
        self.stats.count_reduction_payload(&locals);
        self.shared.rendezvous(self.rank, locals, ReduceOp::Sum)
    }

    fn allreduce_min(&self, local: f64) -> f64 {
        self.stats.count_reduction(1);
        match self
            .shared
            .rendezvous(self.rank, Payload::F64(vec![local]), ReduceOp::Min)
        {
            Payload::F64(v) => v[0],
            Payload::F32(_) => unreachable!("f64 deposit folds to an f64 result"),
        }
    }

    fn allreduce_max(&self, local: f64) -> f64 {
        self.stats.count_reduction(1);
        match self
            .shared
            .rendezvous(self.rank, Payload::F64(vec![local]), ReduceOp::Max)
        {
            Payload::F64(v) => v[0],
            Payload::F32(_) => unreachable!("f64 deposit folds to an f64 result"),
        }
    }

    fn barrier(&self) {
        self.stats.count_barrier();
        self.shared
            .rendezvous(self.rank, Payload::F64(Vec::new()), ReduceOp::Barrier);
    }

    fn send(&self, to: usize, tag: u64, data: Payload) {
        assert!(to < self.shared.size, "send to rank {to} out of range");
        assert_ne!(to, self.rank, "self-sends are a protocol error");
        let data = match &self.shared.tap {
            Some(tap) => tap.tap(self.rank, to, tag, data),
            None => data,
        };
        self.stats.count_send(&data);
        self.shared.senders[self.rank][to]
            .send(Msg { tag, data })
            .expect("receiver rank terminated while messages were in flight");
    }

    fn recv(&self, from: usize, tag: u64) -> Payload {
        assert!(
            from < self.shared.size,
            "recv from rank {from} out of range"
        );
        let msg = self.shared.receivers[self.rank][from]
            .recv()
            .expect("sender rank terminated before sending expected message");
        assert_eq!(
            msg.tag,
            tag,
            "protocol mismatch: rank {} expected tag {tag} from {from}, got {} \
             (a {}-element {} payload)",
            self.rank,
            msg.tag,
            msg.data.len(),
            msg.data.scalar_name()
        );
        self.stats.count_recv(&msg.data);
        msg.data
    }

    fn stats(&self) -> &CommStats {
        &self.stats
    }

    fn as_dyn(&self) -> &dyn Communicator {
        self
    }
}

/// Runs `f` on `ranks` threads, each with its own [`ThreadedComm`].
/// Returns the per-rank results in rank order.
///
/// Panics in any rank propagate after all threads complete or unwind
/// (matching `mpirun` aborting the job).
pub fn run_threaded<T, F>(ranks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ThreadedComm) -> T + Sync,
{
    run_threaded_tapped(ranks, None, f)
}

/// [`run_threaded`] with an optional [`PayloadTap`] installed on every
/// rank's point-to-point sends — the fault-injection entry point. Pass
/// `None` for byte-identical behaviour to `run_threaded`.
pub fn run_threaded_tapped<T, F>(ranks: usize, tap: Option<Arc<dyn PayloadTap>>, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&ThreadedComm) -> T + Sync,
{
    assert!(ranks > 0, "need at least one rank");
    let shared = Shared::new(ranks, tap);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let shared = Arc::clone(&shared);
                let f = &f;
                scope.spawn(move || {
                    let comm = ThreadedComm {
                        rank,
                        shared,
                        stats: CommStats::new(),
                    };
                    f(&comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sum_is_deterministic_and_correct() {
        for _ in 0..20 {
            let results = run_threaded(5, |c| c.allreduce_sum((c.rank() + 1) as f64));
            assert!(results.iter().all(|&r| r == 15.0));
        }
    }

    #[test]
    fn min_max_reductions() {
        let mins = run_threaded(4, |c| c.allreduce_min(c.rank() as f64 - 1.5));
        assert!(mins.iter().all(|&r| r == -1.5));
        let maxs = run_threaded(4, |c| c.allreduce_max(c.rank() as f64));
        assert!(maxs.iter().all(|&r| r == 3.0));
    }

    #[test]
    fn fused_reduction_matches_individual() {
        let fused = run_threaded(3, |c| {
            c.allreduce_sum_many(&[c.rank() as f64, 2.0 * c.rank() as f64, 1.0])
        });
        for r in fused {
            assert_eq!(r, vec![3.0, 6.0, 3.0]);
        }
    }

    #[test]
    fn repeated_reductions_stay_in_sync() {
        let results = run_threaded(4, |c| {
            let mut acc = 0.0;
            for i in 0..100 {
                acc += c.allreduce_sum(i as f64 + c.rank() as f64);
            }
            acc
        });
        let expected: f64 = (0..100).map(|i| 4.0 * i as f64 + 6.0).sum();
        assert!(results.iter().all(|&r| r == expected));
    }

    #[test]
    fn point_to_point_ring() {
        let results = run_threaded(4, |c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send(next, 7, vec![c.rank() as f64].into());
            let got: Vec<f64> = c.recv(prev, 7).try_into_vec().unwrap();
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn message_order_preserved_per_pair() {
        let results = run_threaded(2, |c| {
            if c.rank() == 0 {
                for i in 0..50 {
                    c.send(1, i, vec![i as f64].into());
                }
                0.0
            } else {
                let mut last = -1.0;
                for i in 0..50 {
                    let d: Vec<f64> = c.recv(0, i).try_into_vec().unwrap();
                    assert!(d[0] > last);
                    last = d[0];
                }
                last
            }
        });
        assert_eq!(results[1], 49.0);
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        run_threaded(4, |c| {
            before.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // after the barrier every rank must observe all 4 increments
            assert_eq!(before.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn stats_count_messages() {
        let snaps = run_threaded(2, |c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![1.0f64, 2.0, 3.0].into());
                c.send(1, 1, vec![1.0f32, 2.0].into());
            } else {
                let _ = c.recv(0, 0);
                let _ = c.recv(0, 1);
            }
            c.barrier();
            c.stats().snapshot()
        });
        assert_eq!(snaps[0].msgs_sent, 2);
        assert_eq!(snaps[0].elems_sent_f64, 3);
        assert_eq!(snaps[0].elems_sent_f32, 2);
        assert_eq!(snaps[0].bytes_sent(), 3 * 8 + 2 * 4);
        assert_eq!(snaps[1].msgs_received, 2);
        assert_eq!(snaps[1].elems_received_f64, 3);
        assert_eq!(snaps[1].elems_received_f32, 2);
        assert_eq!(snaps[1].bytes_received(), 32);
        assert_eq!(snaps[0].barriers, 1);
    }

    #[test]
    fn f32_payload_reduction_folds_natively() {
        let results = run_threaded(4, |c| {
            let local = Payload::F32(vec![c.rank() as f32 + 0.5, 1.0]);
            let folded = c.allreduce_sum_payload(local);
            let snap = c.stats().snapshot();
            (folded, snap)
        });
        for (folded, snap) in results {
            // rank-order f32 fold: 0.5 + 1.5 + 2.5 + 3.5, exactly
            assert_eq!(folded, Payload::F32(vec![8.0, 4.0]));
            assert_eq!(snap.reductions, 1);
            assert_eq!(snap.reduction_elems_f32, 2);
            assert_eq!(snap.reduction_elems_f64, 0);
            assert_eq!(snap.reduction_bytes(), 2 * 4);
        }
    }

    #[test]
    fn f64_payload_reduction_matches_allreduce_sum_many() {
        let results = run_threaded(3, |c| {
            let locals = vec![c.rank() as f64, 2.0 * c.rank() as f64];
            let many = c.allreduce_sum_many(&locals);
            let payload = c.allreduce_sum_payload(Payload::F64(locals));
            (many, payload)
        });
        for (many, payload) in results {
            assert_eq!(Payload::F64(many), payload);
        }
    }

    #[test]
    #[should_panic(expected = "same wire precision")]
    fn mixed_width_reduction_is_a_protocol_error() {
        // exercised on the fold directly: in a live rendezvous the panic
        // fires in whichever rank arrives last, like a tag mismatch
        fold_slots::<f64>(
            &[Payload::F64(vec![1.0]), Payload::F32(vec![1.0])],
            ReduceOp::Sum,
        );
    }

    #[test]
    #[should_panic]
    fn tag_mismatch_is_detected() {
        run_threaded(2, |c| {
            if c.rank() == 0 {
                c.send(1, 1, vec![0.0f64].into());
            } else {
                let _ = c.recv(0, 2);
            }
        });
    }

    #[test]
    fn single_rank_machine_works() {
        let r = run_threaded(1, |c| c.allreduce_sum(5.0));
        assert_eq!(r, vec![5.0]);
    }

    #[test]
    fn payload_tap_intercepts_point_to_point_only() {
        struct Doubler;
        impl PayloadTap for Doubler {
            fn tap(&self, _from: usize, _to: usize, _tag: u64, data: Payload) -> Payload {
                match data {
                    Payload::F64(v) => Payload::F64(v.into_iter().map(|x| 2.0 * x).collect()),
                    other => other,
                }
            }
        }
        let results = run_threaded_tapped(2, Some(Arc::new(Doubler)), |c| {
            let reduced = c.allreduce_sum(1.0); // reductions bypass the tap
            if c.rank() == 0 {
                c.send(1, 3, vec![21.0f64].into());
                reduced
            } else {
                let got: Vec<f64> = c.recv(0, 3).try_into_vec().unwrap();
                got[0] + reduced
            }
        });
        assert_eq!(results, vec![2.0, 44.0]);
    }
}
