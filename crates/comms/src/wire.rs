//! The precision-native wire format.
//!
//! Point-to-point messages carry a typed [`Payload`] — a packed vector
//! of `f64` **or** `f32` elements — instead of always widening to
//! `f64`. An `f32` halo strip therefore travels at 4 bytes per element
//! with no conversion sweep on either side, which halves the
//! mixed-precision solvers' message volume (the design-space point the
//! paper's communication study trades against iteration work).
//!
//! [`WireScalar`] connects `tea_mesh::Scalar` to the wire: it is the
//! bound the generic halo exchange and gather collectives use to pack a
//! `Field2<S>` strip into a payload and to decode one back. Decoding is
//! checked — a payload of the wrong element width produces a structured
//! [`WireError`] naming both formats instead of silently reinterpreting
//! bytes.

use std::fmt;
use tea_mesh::Scalar;

/// A typed point-to-point message payload: the elements exactly as the
/// sender packed them, tagged with their precision.
///
/// `From<Vec<f64>>` / `From<Vec<f32>>` wrap raw buffers for direct
/// [`crate::Communicator::send`] calls.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Double-precision elements (8 bytes each on the wire).
    F64(Vec<f64>),
    /// Single-precision elements (4 bytes each on the wire).
    F32(Vec<f32>),
}

impl Payload {
    /// Number of elements carried.
    pub fn len(&self) -> usize {
        match self {
            Payload::F64(v) => v.len(),
            Payload::F32(v) => v.len(),
        }
    }

    /// Whether the payload carries no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes per element of this payload's format.
    pub fn elem_bytes(&self) -> usize {
        match self {
            Payload::F64(_) => <f64 as Scalar>::BYTES,
            Payload::F32(_) => <f32 as Scalar>::BYTES,
        }
    }

    /// Total payload bytes on the wire (`len() * elem_bytes()`).
    pub fn byte_len(&self) -> usize {
        self.len() * self.elem_bytes()
    }

    /// The element format's name (`"f64"` / `"f32"`).
    pub fn scalar_name(&self) -> &'static str {
        match self {
            Payload::F64(_) => f64::NAME,
            Payload::F32(_) => f32::NAME,
        }
    }

    /// Decodes into a vector of `S`, failing with a structured
    /// [`WireError`] if the payload was packed at a different width.
    pub fn try_into_vec<S: WireScalar>(self) -> Result<Vec<S>, WireError> {
        S::from_payload(self)
    }

    /// Serialises the payload into a self-describing byte frame:
    /// the [`WIRE_MAGIC`], a one-byte element width (8 or 4), a
    /// little-endian `u32` element count, then the elements as
    /// little-endian bytes. [`Payload::decode`] reverses it bit-exactly.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + 4 + self.byte_len());
        out.extend_from_slice(&WIRE_MAGIC);
        out.push(self.elem_bytes() as u8);
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        match self {
            Payload::F64(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
            Payload::F32(v) => {
                for x in v {
                    out.extend_from_slice(&x.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses a byte frame produced by [`Payload::encode`], validating
    /// every structural property before touching the element bytes.
    ///
    /// # Errors
    /// [`WireError::BadMagic`] when the frame prefix is wrong,
    /// [`WireError::BadWidthTag`] for an element width other than 8 or
    /// 4, [`WireError::Truncated`] when the stream is shorter than the
    /// header promises, and [`WireError::TrailingBytes`] when it is
    /// longer. Arbitrary byte soup always yields one of these — never a
    /// panic, never a misinterpreted payload.
    pub fn decode(bytes: &[u8]) -> Result<Payload, WireError> {
        const HEADER: usize = 4 + 1 + 4;
        if bytes.len() < 4 || bytes[..4] != WIRE_MAGIC {
            let mut found = [0u8; 4];
            let n = bytes.len().min(4);
            found[..n].copy_from_slice(&bytes[..n]);
            return Err(WireError::BadMagic { found });
        }
        if bytes.len() < HEADER {
            return Err(WireError::Truncated {
                needed: HEADER,
                got: bytes.len(),
            });
        }
        let width = bytes[4];
        if width != 8 && width != 4 {
            return Err(WireError::BadWidthTag { tag: width });
        }
        let count = u32::from_le_bytes(bytes[5..9].try_into().expect("4 header bytes")) as usize;
        let needed = HEADER + count * width as usize;
        if bytes.len() < needed {
            return Err(WireError::Truncated {
                needed,
                got: bytes.len(),
            });
        }
        if bytes.len() > needed {
            return Err(WireError::TrailingBytes {
                extra: bytes.len() - needed,
            });
        }
        let body = &bytes[HEADER..];
        if width == 8 {
            let v = body
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().expect("exact chunk")))
                .collect();
            Ok(Payload::F64(v))
        } else {
            let v = body
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes(c.try_into().expect("exact chunk")))
                .collect();
            Ok(Payload::F32(v))
        }
    }
}

impl From<Vec<f64>> for Payload {
    fn from(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }
}

impl From<Vec<f32>> for Payload {
    fn from(v: Vec<f32>) -> Self {
        Payload::F32(v)
    }
}

/// A structured decoding failure: a payload arrived in a different
/// element format than the receiver expected, or a byte stream handed
/// to [`Payload::decode`] was malformed.
///
/// Carried as a value (not just a message) so protocol tests can assert
/// on the exact formats involved. Every malformed input maps onto one
/// of these variants — decoding never panics and never silently
/// reinterprets bytes at the wrong width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload was packed at a different element width than the
    /// receiver was decoding into — the precision analogue of a tag
    /// mismatch.
    WidthMismatch {
        /// Format the receiving side was decoding into.
        expected: &'static str,
        /// Format the payload was actually packed at.
        received: &'static str,
        /// Elements in the offending payload.
        len: usize,
    },
    /// The byte stream does not start with the frame magic.
    BadMagic {
        /// The four bytes found where the magic belongs (zero-padded
        /// if the stream was shorter than four bytes).
        found: [u8; 4],
    },
    /// The byte stream ended before the declared frame was complete.
    Truncated {
        /// Bytes the frame header promised.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The frame declares an element width that is neither `f64` nor
    /// `f32`.
    BadWidthTag {
        /// The width tag byte found in the header.
        tag: u8,
    },
    /// The byte stream continues past the end of the declared frame.
    TrailingBytes {
        /// Bytes left over after the frame.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::WidthMismatch {
                expected,
                received,
                len,
            } => write!(
                f,
                "wire precision mismatch: expected {expected} elements, received a \
                 {len}-element {received} payload (send and recv sides must agree on the \
                 exchange scalar)"
            ),
            WireError::BadMagic { found } => write!(
                f,
                "wire frame does not start with the TEA1 magic (found {found:?})"
            ),
            WireError::Truncated { needed, got } => write!(
                f,
                "wire frame truncated: header promises {needed} bytes, stream has {got}"
            ),
            WireError::BadWidthTag { tag } => write!(
                f,
                "wire frame declares unknown element width {tag} (must be 8 or 4)"
            ),
            WireError::TrailingBytes { extra } => write!(
                f,
                "wire frame followed by {extra} unexpected trailing bytes"
            ),
        }
    }
}

impl std::error::Error for WireError {}

/// Frame magic prefixed to every [`Payload::encode`] byte stream.
pub const WIRE_MAGIC: [u8; 4] = *b"TEA1";

/// A [`Scalar`] that can travel on the wire: packing into and checked
/// decoding out of a [`Payload`].
///
/// Implemented for `f64` and `f32` — exactly the formats [`Payload`]
/// carries. The generic halo exchange and gather collectives are
/// bounded on this trait, so a `Field2<f32>` halo moves at 4
/// bytes/element natively.
pub trait WireScalar: Scalar {
    /// Wraps a packed buffer into a typed payload (no copy).
    fn into_payload(buf: Vec<Self>) -> Payload;

    /// Decodes a payload back into elements, verifying the format.
    ///
    /// # Errors
    /// [`WireError`] when the payload was packed at a different width.
    fn from_payload(payload: Payload) -> Result<Vec<Self>, WireError>;

    /// Borrows a payload's elements without consuming it, verifying the
    /// format — how the reduction fold reads deposited slots in place.
    ///
    /// # Errors
    /// [`WireError`] when the payload was packed at a different width.
    fn payload_slice(payload: &Payload) -> Result<&[Self], WireError>;
}

impl WireScalar for f64 {
    fn into_payload(buf: Vec<Self>) -> Payload {
        Payload::F64(buf)
    }

    fn from_payload(payload: Payload) -> Result<Vec<Self>, WireError> {
        match payload {
            Payload::F64(v) => Ok(v),
            other => Err(WireError::WidthMismatch {
                expected: f64::NAME,
                received: other.scalar_name(),
                len: other.len(),
            }),
        }
    }

    fn payload_slice(payload: &Payload) -> Result<&[Self], WireError> {
        match payload {
            Payload::F64(v) => Ok(v),
            other => Err(WireError::WidthMismatch {
                expected: f64::NAME,
                received: other.scalar_name(),
                len: other.len(),
            }),
        }
    }
}

impl WireScalar for f32 {
    fn into_payload(buf: Vec<Self>) -> Payload {
        Payload::F32(buf)
    }

    fn from_payload(payload: Payload) -> Result<Vec<Self>, WireError> {
        match payload {
            Payload::F32(v) => Ok(v),
            other => Err(WireError::WidthMismatch {
                expected: f32::NAME,
                received: other.scalar_name(),
                len: other.len(),
            }),
        }
    }

    fn payload_slice(payload: &Payload) -> Result<&[Self], WireError> {
        match payload {
            Payload::F32(v) => Ok(v),
            other => Err(WireError::WidthMismatch {
                expected: f32::NAME,
                received: other.scalar_name(),
                len: other.len(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_reports_width_and_bytes() {
        let p64 = Payload::from(vec![1.0f64, 2.0]);
        assert_eq!(p64.len(), 2);
        assert_eq!(p64.elem_bytes(), 8);
        assert_eq!(p64.byte_len(), 16);
        assert_eq!(p64.scalar_name(), "f64");
        let p32 = Payload::from(vec![1.0f32, 2.0, 3.0]);
        assert_eq!(p32.elem_bytes(), 4);
        assert_eq!(p32.byte_len(), 12);
        assert_eq!(p32.scalar_name(), "f32");
        assert!(!p32.is_empty());
        assert!(Payload::F64(Vec::new()).is_empty());
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let v = vec![1.5f32, -0.0, f32::MIN_POSITIVE];
        let bits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
        let back: Vec<f32> = f32::into_payload(v).try_into_vec().unwrap();
        assert_eq!(bits, back.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn mismatched_decode_is_a_structured_error() {
        let err = f32::from_payload(Payload::F64(vec![1.0, 2.0])).unwrap_err();
        assert_eq!(
            err,
            WireError::WidthMismatch {
                expected: "f32",
                received: "f64",
                len: 2,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("expected f32"), "{msg}");
        assert!(msg.contains("f64 payload"), "{msg}");
        let err = f64::from_payload(Payload::F32(vec![0.5])).unwrap_err();
        assert_eq!(
            err,
            WireError::WidthMismatch {
                expected: "f64",
                received: "f32",
                len: 1,
            }
        );
    }

    #[test]
    fn encode_decode_roundtrips_both_widths() {
        let p64 = Payload::F64(vec![1.5, -0.0, f64::MIN_POSITIVE, f64::MAX]);
        assert_eq!(Payload::decode(&p64.encode()).unwrap(), p64);
        let p32 = Payload::F32(vec![2.25, f32::NAN]);
        // NaN payloads must survive bit-exactly, so compare bits not values
        let back = Payload::decode(&p32.encode()).unwrap();
        match (back, &p32) {
            (Payload::F32(a), Payload::F32(b)) => {
                assert_eq!(
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
                );
            }
            _ => panic!("width changed in the roundtrip"),
        }
        assert_eq!(
            Payload::decode(&Payload::F64(Vec::new()).encode()).unwrap(),
            Payload::F64(Vec::new())
        );
    }

    #[test]
    fn decode_rejects_malformed_frames_structurally() {
        assert_eq!(
            Payload::decode(b"NOPE\x08\x00\x00\x00\x00"),
            Err(WireError::BadMagic { found: *b"NOPE" })
        );
        assert_eq!(
            Payload::decode(b"TE"),
            Err(WireError::BadMagic {
                found: [b'T', b'E', 0, 0],
            })
        );
        assert_eq!(
            Payload::decode(b"TEA1\x08\x01"),
            Err(WireError::Truncated { needed: 9, got: 6 })
        );
        assert_eq!(
            Payload::decode(b"TEA1\x07\x00\x00\x00\x00"),
            Err(WireError::BadWidthTag { tag: 7 })
        );
        let mut frame = Payload::F32(vec![1.0, 2.0]).encode();
        frame.truncate(frame.len() - 3);
        assert_eq!(
            Payload::decode(&frame),
            Err(WireError::Truncated {
                needed: 17,
                got: 14
            })
        );
        let mut frame = Payload::F64(vec![4.0]).encode();
        frame.push(0xFF);
        assert_eq!(
            Payload::decode(&frame),
            Err(WireError::TrailingBytes { extra: 1 })
        );
    }
}
