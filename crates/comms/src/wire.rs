//! The precision-native wire format.
//!
//! Point-to-point messages carry a typed [`Payload`] — a packed vector
//! of `f64` **or** `f32` elements — instead of always widening to
//! `f64`. An `f32` halo strip therefore travels at 4 bytes per element
//! with no conversion sweep on either side, which halves the
//! mixed-precision solvers' message volume (the design-space point the
//! paper's communication study trades against iteration work).
//!
//! [`WireScalar`] connects `tea_mesh::Scalar` to the wire: it is the
//! bound the generic halo exchange and gather collectives use to pack a
//! `Field2<S>` strip into a payload and to decode one back. Decoding is
//! checked — a payload of the wrong element width produces a structured
//! [`WireError`] naming both formats instead of silently reinterpreting
//! bytes.

use std::fmt;
use tea_mesh::Scalar;

/// A typed point-to-point message payload: the elements exactly as the
/// sender packed them, tagged with their precision.
///
/// `From<Vec<f64>>` / `From<Vec<f32>>` wrap raw buffers for direct
/// [`crate::Communicator::send`] calls.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Double-precision elements (8 bytes each on the wire).
    F64(Vec<f64>),
    /// Single-precision elements (4 bytes each on the wire).
    F32(Vec<f32>),
}

impl Payload {
    /// Number of elements carried.
    pub fn len(&self) -> usize {
        match self {
            Payload::F64(v) => v.len(),
            Payload::F32(v) => v.len(),
        }
    }

    /// Whether the payload carries no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes per element of this payload's format.
    pub fn elem_bytes(&self) -> usize {
        match self {
            Payload::F64(_) => <f64 as Scalar>::BYTES,
            Payload::F32(_) => <f32 as Scalar>::BYTES,
        }
    }

    /// Total payload bytes on the wire (`len() * elem_bytes()`).
    pub fn byte_len(&self) -> usize {
        self.len() * self.elem_bytes()
    }

    /// The element format's name (`"f64"` / `"f32"`).
    pub fn scalar_name(&self) -> &'static str {
        match self {
            Payload::F64(_) => f64::NAME,
            Payload::F32(_) => f32::NAME,
        }
    }

    /// Decodes into a vector of `S`, failing with a structured
    /// [`WireError`] if the payload was packed at a different width.
    pub fn try_into_vec<S: WireScalar>(self) -> Result<Vec<S>, WireError> {
        S::from_payload(self)
    }
}

impl From<Vec<f64>> for Payload {
    fn from(v: Vec<f64>) -> Self {
        Payload::F64(v)
    }
}

impl From<Vec<f32>> for Payload {
    fn from(v: Vec<f32>) -> Self {
        Payload::F32(v)
    }
}

/// A payload arrived in a different element format than the receiver
/// expected — the precision analogue of a tag mismatch.
///
/// Carried as a value (not just a message) so protocol tests can assert
/// on the exact formats involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Format the receiving side was decoding into.
    pub expected: &'static str,
    /// Format the payload was actually packed at.
    pub received: &'static str,
    /// Elements in the offending payload.
    pub len: usize,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "wire precision mismatch: expected {} elements, received a {}-element {} payload \
             (send and recv sides must agree on the exchange scalar)",
            self.expected, self.len, self.received
        )
    }
}

impl std::error::Error for WireError {}

/// A [`Scalar`] that can travel on the wire: packing into and checked
/// decoding out of a [`Payload`].
///
/// Implemented for `f64` and `f32` — exactly the formats [`Payload`]
/// carries. The generic halo exchange and gather collectives are
/// bounded on this trait, so a `Field2<f32>` halo moves at 4
/// bytes/element natively.
pub trait WireScalar: Scalar {
    /// Wraps a packed buffer into a typed payload (no copy).
    fn into_payload(buf: Vec<Self>) -> Payload;

    /// Decodes a payload back into elements, verifying the format.
    ///
    /// # Errors
    /// [`WireError`] when the payload was packed at a different width.
    fn from_payload(payload: Payload) -> Result<Vec<Self>, WireError>;

    /// Borrows a payload's elements without consuming it, verifying the
    /// format — how the reduction fold reads deposited slots in place.
    ///
    /// # Errors
    /// [`WireError`] when the payload was packed at a different width.
    fn payload_slice(payload: &Payload) -> Result<&[Self], WireError>;
}

impl WireScalar for f64 {
    fn into_payload(buf: Vec<Self>) -> Payload {
        Payload::F64(buf)
    }

    fn from_payload(payload: Payload) -> Result<Vec<Self>, WireError> {
        match payload {
            Payload::F64(v) => Ok(v),
            other => Err(WireError {
                expected: f64::NAME,
                received: other.scalar_name(),
                len: other.len(),
            }),
        }
    }

    fn payload_slice(payload: &Payload) -> Result<&[Self], WireError> {
        match payload {
            Payload::F64(v) => Ok(v),
            other => Err(WireError {
                expected: f64::NAME,
                received: other.scalar_name(),
                len: other.len(),
            }),
        }
    }
}

impl WireScalar for f32 {
    fn into_payload(buf: Vec<Self>) -> Payload {
        Payload::F32(buf)
    }

    fn from_payload(payload: Payload) -> Result<Vec<Self>, WireError> {
        match payload {
            Payload::F32(v) => Ok(v),
            other => Err(WireError {
                expected: f32::NAME,
                received: other.scalar_name(),
                len: other.len(),
            }),
        }
    }

    fn payload_slice(payload: &Payload) -> Result<&[Self], WireError> {
        match payload {
            Payload::F32(v) => Ok(v),
            other => Err(WireError {
                expected: f32::NAME,
                received: other.scalar_name(),
                len: other.len(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_reports_width_and_bytes() {
        let p64 = Payload::from(vec![1.0f64, 2.0]);
        assert_eq!(p64.len(), 2);
        assert_eq!(p64.elem_bytes(), 8);
        assert_eq!(p64.byte_len(), 16);
        assert_eq!(p64.scalar_name(), "f64");
        let p32 = Payload::from(vec![1.0f32, 2.0, 3.0]);
        assert_eq!(p32.elem_bytes(), 4);
        assert_eq!(p32.byte_len(), 12);
        assert_eq!(p32.scalar_name(), "f32");
        assert!(!p32.is_empty());
        assert!(Payload::F64(Vec::new()).is_empty());
    }

    #[test]
    fn roundtrip_preserves_bits() {
        let v = vec![1.5f32, -0.0, f32::MIN_POSITIVE];
        let bits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
        let back: Vec<f32> = f32::into_payload(v).try_into_vec().unwrap();
        assert_eq!(bits, back.iter().map(|x| x.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn mismatched_decode_is_a_structured_error() {
        let err = f32::from_payload(Payload::F64(vec![1.0, 2.0])).unwrap_err();
        assert_eq!(
            err,
            WireError {
                expected: "f32",
                received: "f64",
                len: 2,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("expected f32"), "{msg}");
        assert!(msg.contains("f64 payload"), "{msg}");
        let err = f64::from_payload(Payload::F32(vec![0.5])).unwrap_err();
        assert_eq!(err.expected, "f64");
        assert_eq!(err.received, "f32");
        assert_eq!(err.len, 1);
    }
}
