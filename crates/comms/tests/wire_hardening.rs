//! Adversarial property tests for the byte-level wire codec: random
//! byte soup, forged headers and truncated frames must always come back
//! as a structured [`WireError`] — never a panic, never a payload
//! decoded at the wrong width or length.

use proptest::collection::vec;
use proptest::prelude::*;
use tea_comms::{Payload, WireError, WIRE_MAGIC};

/// The vendored proptest has no `u8` strategy; derive one from `u32`.
fn any_byte() -> impl Strategy<Value = u8> {
    any::<u32>().prop_map(|x| (x & 0xFF) as u8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics: every input is either a valid
    /// frame (in which case re-encoding reproduces the input exactly)
    /// or a structured error.
    #[test]
    fn byte_soup_never_panics(bytes in vec(any_byte(), 0..256)) {
        match Payload::decode(&bytes) {
            Ok(p) => prop_assert_eq!(p.encode(), bytes),
            Err(e) => {
                // errors format without panicking too
                let _ = e.to_string();
            }
        }
    }

    /// Round trip is bit-exact for f64 payloads, including non-finite
    /// values assembled from raw bits.
    #[test]
    fn f64_roundtrip_is_bit_exact(bits in vec(any::<u64>(), 0..64)) {
        let v: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let p = Payload::F64(v);
        let back = Payload::decode(&p.encode()).unwrap();
        match back {
            Payload::F64(w) => {
                let back_bits: Vec<u64> = w.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(back_bits, bits);
            }
            Payload::F32(_) => prop_assert!(false, "width changed in the roundtrip"),
        }
    }

    /// Round trip is bit-exact for f32 payloads.
    #[test]
    fn f32_roundtrip_is_bit_exact(bits in vec(any::<u32>(), 0..64)) {
        let v: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let p = Payload::F32(v);
        let back = Payload::decode(&p.encode()).unwrap();
        match back {
            Payload::F32(w) => {
                let back_bits: Vec<u32> = w.iter().map(|x| x.to_bits()).collect();
                prop_assert_eq!(back_bits, bits);
            }
            Payload::F64(_) => prop_assert!(false, "width changed in the roundtrip"),
        }
    }

    /// A forged width tag is rejected as [`WireError::BadWidthTag`] —
    /// the decoder must never interpret element bytes at a width the
    /// header does not legitimately declare.
    #[test]
    fn forged_width_tag_is_structured(tag_src in any::<u32>(), bits in vec(any::<u64>(), 0..8)) {
        let tag = (tag_src & 0xFF) as u8;
        prop_assume!(tag != 8 && tag != 4);
        let mut frame = Payload::F64(bits.iter().map(|&b| f64::from_bits(b)).collect()).encode();
        frame[4] = tag;
        prop_assert_eq!(Payload::decode(&frame), Err(WireError::BadWidthTag { tag }));
    }

    /// Every strict prefix of a non-empty valid frame is an error, and
    /// specifically a structured one (BadMagic while the magic itself is
    /// cut short, Truncated afterwards).
    #[test]
    fn truncation_is_always_an_error(bits in vec(any::<u32>(), 1..32), cut in any::<usize>()) {
        let frame = Payload::F32(bits.iter().map(|&b| f32::from_bits(b)).collect()).encode();
        let cut = cut % frame.len(); // strict prefix
        match Payload::decode(&frame[..cut]) {
            Err(WireError::BadMagic { .. }) => prop_assert!(cut < 4),
            Err(WireError::Truncated { needed, got }) => {
                prop_assert_eq!(got, cut);
                prop_assert!(needed > cut);
            }
            other => prop_assert!(false, "truncated frame must error, got {:?}", other),
        }
    }

    /// Appending bytes to a valid frame is rejected as TrailingBytes,
    /// unless the tail makes the count field lie (it cannot — count is
    /// fixed), so the frame boundary is authoritative.
    #[test]
    fn trailing_bytes_are_an_error(bits in vec(any::<u64>(), 0..16), tail in vec(any_byte(), 1..32)) {
        let mut frame = Payload::F64(bits.iter().map(|&b| f64::from_bits(b)).collect()).encode();
        let extra = tail.len();
        frame.extend_from_slice(&tail);
        prop_assert_eq!(Payload::decode(&frame), Err(WireError::TrailingBytes { extra }));
    }

    /// A wrong magic is always BadMagic, whatever follows.
    #[test]
    fn wrong_magic_is_always_bad_magic(prefix in vec(any_byte(), 4..64)) {
        prop_assume!(prefix[..4] != WIRE_MAGIC);
        let mut found = [0u8; 4];
        found.copy_from_slice(&prefix[..4]);
        prop_assert_eq!(Payload::decode(&prefix), Err(WireError::BadMagic { found }));
    }
}
