//! Property tests for the comms layer: the halo-exchange protocol and
//! its byte accounting, over random decompositions, depths, fused field
//! counts, and both wire scalars.
//!
//! The central property is *transport correctness*: after one fused
//! exchange on fields tagged with a unique function of their global
//! coordinates (a rank checkerboard — every rank's interior values
//! differ from every other's), every in-domain halo cell must hold
//! exactly the owning neighbour's interior value. Checking the full
//! extended region `[-d, n+d)²` covers the corner cells that only the
//! two-phase Y sweep can deliver (diagonal neighbours are never
//! messaged directly).
//!
//! The second property pins the wire format: an `f32` exchange is
//! bit-identical to demoting the fields *after* an `f64` exchange — the
//! wire moves values verbatim at native width, it never converts.
//!
//! The third pins [`CommStats`] byte accounting to the closed form
//! `2·d·(nx+ny+2d)·nfields·size_of::<S>()` for an interior rank.

use proptest::prelude::*;
use tea_comms::{exchange_halo_many, run_threaded, Communicator, HaloLayout, SerialComm};
use tea_mesh::{Decomposition2D, Field2, Field2D, Field2F, Scalar};

/// Unique value for global cell `(gj, gk)` of field `i` — every cell of
/// every field gets a distinct, exactly-representable value (integers
/// below 2^22 survive the f32 round trip bit-exactly).
fn tag(i: usize, gj: isize, gk: isize) -> f64 {
    (gj * 257 + gk * 3 + i as isize * 65_537) as f64
}

/// Builds rank `rank`'s fields with interiors tagged by global
/// coordinates and ghosts zeroed.
fn tagged_fields<S: Scalar>(
    decomp: &Decomposition2D,
    rank: usize,
    nfields: usize,
    halo: usize,
) -> Vec<Field2<S>> {
    let sub = decomp.subdomain(rank);
    let (ox, oy) = sub.offset;
    (0..nfields)
        .map(|i| {
            let mut f = Field2::<S>::new(sub.nx, sub.ny, halo);
            for k in 0..sub.ny as isize {
                for j in 0..sub.nx as isize {
                    f.set(j, k, S::from_f64(tag(i, j + ox as isize, k + oy as isize)));
                }
            }
            f
        })
        .collect()
}

/// Asserts every in-domain cell of the extended region — interior plus
/// depth-`d` halo, corners included — holds the value its owning rank
/// tagged it with.
fn check_transport<S: Scalar>(
    fields: &[Field2<S>],
    decomp: &Decomposition2D,
    rank: usize,
    depth: isize,
) {
    let sub = decomp.subdomain(rank);
    let (gnx, gny) = decomp.global_cells();
    let (ox, oy) = (sub.offset.0 as isize, sub.offset.1 as isize);
    for (i, f) in fields.iter().enumerate() {
        for k in -depth..sub.ny as isize + depth {
            for j in -depth..sub.nx as isize + depth {
                let (gj, gk) = (j + ox, k + oy);
                if gj < 0 || gk < 0 || gj >= gnx as isize || gk >= gny as isize {
                    continue; // outside the global domain: owned by no rank
                }
                assert_eq!(
                    f.at(j, k).to_f64(),
                    tag(i, gj, gk),
                    "field {i} wrong at local ({j},{k}) = global ({gj},{gk}) on rank {rank}"
                );
            }
        }
    }
}

/// One fused exchange of `nfields` fields at `depth` on every rank of
/// `decomp`; checks transport and returns per-rank stats snapshots.
fn exchange_and_check<S: tea_comms::WireScalar>(
    decomp: &Decomposition2D,
    depth: usize,
    nfields: usize,
) -> Vec<tea_comms::StatsSnapshot> {
    run_threaded(decomp.ranks(), |comm| {
        let layout = HaloLayout::new(decomp, comm.rank());
        let mut fields = tagged_fields::<S>(decomp, comm.rank(), nfields, depth);
        let mut refs: Vec<&mut Field2<S>> = fields.iter_mut().collect();
        exchange_halo_many(&mut refs, &layout, comm, depth);
        check_transport(&fields, decomp, comm.rank(), depth as isize);
        comm.stats().snapshot()
    })
}

/// The closed-form payload a rank with all four neighbours sends in one
/// fused depth-`d` exchange: two x strips of `d·ny` plus two extended y
/// strips of `d·(nx+2d)`, per field.
fn full_interior_elems(d: usize, nx: usize, ny: usize, nfields: usize) -> u64 {
    (2 * d * (nx + ny + 2 * d) * nfields) as u64
}

/// Per-rank expected element count, accounting for missing neighbours on
/// the domain boundary.
fn expected_elems(decomp: &Decomposition2D, rank: usize, d: usize, nfields: usize) -> u64 {
    use tea_mesh::Dir;
    let sub = decomp.subdomain(rank);
    let has = |dir| decomp.neighbor(rank, dir).is_some() as usize;
    let x_strips = (has(Dir::West) + has(Dir::East)) * d * sub.ny;
    let y_strips = (has(Dir::South) + has(Dir::North)) * d * (sub.nx + 2 * d);
    ((x_strips + y_strips) * nfields) as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random decomposition × depth 1..=8 × 1..=4 fused fields: the f64
    /// exchange delivers exactly the neighbours' interior values in
    /// every halo cell, corners included, and the byte accounting
    /// matches the per-rank closed form.
    #[test]
    fn f64_exchange_transports_and_counts(
        (px, py) in (1usize..4, 1usize..4),
        depth in 1usize..9,
        nfields in 1usize..5,
        (ex, ey) in (0usize..4, 0usize..4),
    ) {
        // tile extents ≥ depth on every rank: exact multiples of the grid
        let decomp = Decomposition2D::with_grid(px * (depth + ex), py * (depth + ey), px, py);
        let snaps = exchange_and_check::<f64>(&decomp, depth, nfields);
        for (rank, s) in snaps.iter().enumerate() {
            let elems = expected_elems(&decomp, rank, depth, nfields);
            prop_assert_eq!(s.elems_sent_f64, elems);
            prop_assert_eq!(s.elems_sent_f32, 0);
            prop_assert_eq!(s.bytes_sent(), elems * 8);
        }
        // conservation: every element sent is received by its neighbour
        let sent: u64 = snaps.iter().map(|s| s.elems_sent()).sum();
        let received: u64 = snaps.iter().map(|s| s.elems_received()).sum();
        prop_assert_eq!(sent, received);
    }

    /// The same transport property at f32, and the wire-format pin:
    /// exchanging demoted fields is bit-identical to demoting exchanged
    /// fields (the wire never converts), at half the byte volume.
    #[test]
    fn f32_exchange_matches_demoted_f64_bitwise(
        (px, py) in (1usize..4, 1usize..4),
        depth in 1usize..9,
        nfields in 1usize..5,
        (ex, ey) in (0usize..4, 0usize..4),
    ) {
        let decomp = Decomposition2D::with_grid(px * (depth + ex), py * (depth + ey), px, py);
        let snaps = run_threaded(decomp.ranks(), |comm| {
            let layout = HaloLayout::new(&decomp, comm.rank());
            let mut f64s = tagged_fields::<f64>(&decomp, comm.rank(), nfields, depth);
            let mut f32s: Vec<Field2F> = f64s.iter().map(|f| f.convert()).collect();

            let mut refs32: Vec<&mut Field2F> = f32s.iter_mut().collect();
            exchange_halo_many(&mut refs32, &layout, comm, depth);
            check_transport(&f32s, &decomp, comm.rank(), depth as isize);

            let mut refs64: Vec<&mut Field2D> = f64s.iter_mut().collect();
            exchange_halo_many(&mut refs64, &layout, comm, depth);
            for (a, b) in f32s.iter().zip(&f64s) {
                let demoted: Field2F = b.convert();
                let bits = |f: &Field2F| f.raw().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    bits(a),
                    bits(&demoted),
                    "f32 exchange must be bit-identical to demoted f64 exchange"
                );
            }
            comm.stats().snapshot()
        });
        for (rank, s) in snaps.iter().enumerate() {
            let elems = expected_elems(&decomp, rank, depth, nfields);
            // one exchange per width: equal element counts, 4 vs 8 bytes
            prop_assert_eq!(s.elems_sent_f32, elems);
            prop_assert_eq!(s.elems_sent_f64, elems);
            prop_assert_eq!(s.bytes_sent(), elems * 12);
        }
    }
}

/// The ISSUE's closed form, pinned exactly: a rank with all four
/// neighbours (centre of a 3×3 grid) sends
/// `2·d·(nx+ny+2d)·nfields·size_of::<S>()` bytes per fused exchange —
/// for both scalars.
#[test]
fn interior_rank_bytes_match_closed_form() {
    for depth in [1usize, 2, 5] {
        for nfields in [1usize, 3] {
            let decomp = Decomposition2D::with_grid(3 * (depth + 2), 3 * (depth + 3), 3, 3);
            let sub = decomp.subdomain(4); // centre rank of the 3×3 grid
            let elems = full_interior_elems(depth, sub.nx, sub.ny, nfields);

            let snaps64 = exchange_and_check::<f64>(&decomp, depth, nfields);
            assert_eq!(snaps64[4].elems_sent_f64, elems);
            assert_eq!(
                snaps64[4].bytes_sent(),
                elems * std::mem::size_of::<f64>() as u64
            );
            assert_eq!(snaps64[4].msgs_sent, 4);

            let snaps32 = exchange_and_check::<f32>(&decomp, depth, nfields);
            assert_eq!(snaps32[4].elems_sent_f32, elems);
            assert_eq!(
                snaps32[4].bytes_sent(),
                elems * std::mem::size_of::<f32>() as u64
            );
            assert_eq!(
                snaps32[4].bytes_sent() * 2,
                snaps64[4].bytes_sent(),
                "f32 exchange must move exactly half the bytes"
            );
        }
    }
}

/// Serial leg of the accounting satellite: a single-rank exchange has no
/// neighbours, sends nothing, and counts zero bytes at either width.
#[test]
fn serial_exchange_counts_zero_bytes() {
    let decomp = Decomposition2D::with_grid(12, 12, 1, 1);
    let comm = SerialComm::new();
    let layout = HaloLayout::new(&decomp, 0);

    let mut f64s = tagged_fields::<f64>(&decomp, 0, 2, 3);
    let mut refs: Vec<&mut Field2D> = f64s.iter_mut().collect();
    exchange_halo_many(&mut refs, &layout, &comm, 3);

    let mut f32s = tagged_fields::<f32>(&decomp, 0, 2, 3);
    let mut refs: Vec<&mut Field2F> = f32s.iter_mut().collect();
    exchange_halo_many(&mut refs, &layout, &comm, 3);

    let s = comm.stats().snapshot();
    assert_eq!(s.msgs_sent, 0);
    assert_eq!(s.elems_sent_f64 + s.elems_sent_f32, 0);
    assert_eq!(s.bytes_sent(), 0);
}
