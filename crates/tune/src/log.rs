//! The [`TuneLog`]: an auditable record of every tuning decision.
//!
//! The tuner never decides silently: each candidate it skips, races,
//! rejects, adopts or escalates away from becomes a [`TuneDecision`],
//! and the log travels out of the solve through
//! [`tea_core::IterativeSolver::take_diagnostics`] into run summaries,
//! serve outcomes and the bench reports.

use crate::monitor::Verdict;
use serde::{Deserialize, Serialize};

/// What the tuner did about one candidate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TuneAction {
    /// Ran a trial solve; `cost` is `iterations ×` the candidate's
    /// bytes-per-iteration prior.
    Raced {
        /// Iterations the trial used (capped by the best cost so far).
        iterations: u64,
        /// Modelled cost of the trial.
        cost: f64,
    },
    /// Never ran: the cost cap implied by the best candidate so far is
    /// below the minimum iterations at which this method could even
    /// report (its eigen-estimation presteps).
    SkippedByPrior,
    /// Adopted as the cheapest converged candidate so far.
    Selected {
        /// Modelled cost at adoption time.
        cost: f64,
    },
    /// Abandoned (by the serving layer) in favour of the next precision
    /// rung of the same family.
    Escalated {
        /// Solver escalated away from.
        from: String,
        /// Solver escalated to.
        to: String,
    },
}

/// One entry of the [`TuneLog`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneDecision {
    /// Candidate label (see [`crate::Candidate::label`]).
    pub candidate: String,
    /// How the trajectory/result read at decision time.
    pub verdict: Verdict,
    /// What was done about it.
    pub action: TuneAction,
}

impl std::fmt::Display for TuneDecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.action {
            TuneAction::Raced { iterations, cost } => write!(
                f,
                "raced {:<16} {:?} in {} iters (cost {:.3e})",
                self.candidate, self.verdict, iterations, cost
            ),
            TuneAction::SkippedByPrior => {
                write!(f, "skip  {:<16} prior cannot beat best", self.candidate)
            }
            TuneAction::Selected { cost } => {
                write!(f, "pick  {:<16} cost {:.3e}", self.candidate, cost)
            }
            TuneAction::Escalated { from, to } => {
                write!(f, "esc   {from} -> {to}")
            }
        }
    }
}

/// The full decision record of one tuning run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TuneLog {
    /// Seed the candidate order was derived from.
    pub seed: u64,
    /// Every decision, in the order it was made.
    pub decisions: Vec<TuneDecision>,
    /// Label of the adopted winner, if any candidate converged.
    pub winner: Option<String>,
    /// Solves served by the adopted winner after the race.
    pub reuses: u64,
}

impl TuneLog {
    /// Candidate labels that actually ran a trial, in race order.
    pub fn raced(&self) -> Vec<&str> {
        self.decisions
            .iter()
            .filter(|d| matches!(d.action, TuneAction::Raced { .. }))
            .map(|d| d.candidate.as_str())
            .collect()
    }

    /// One human-readable line per decision plus a winner line, for
    /// run summaries and the serve CLI.
    pub fn summary_lines(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .decisions
            .iter()
            .map(|d| format!("tune: {d}"))
            .collect();
        match &self.winner {
            Some(w) => lines.push(format!(
                "tune: winner {w} (seed {}, reused {}x)",
                self.seed, self.reuses
            )),
            None => lines.push(format!("tune: no candidate converged (seed {})", self.seed)),
        }
        lines
    }
}

impl std::fmt::Display for TuneLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for line in self.summary_lines() {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuneLog {
        TuneLog {
            seed: 9,
            decisions: vec![
                TuneDecision {
                    candidate: "cg_f32".into(),
                    verdict: Verdict::Stalling { since: 120 },
                    action: TuneAction::Raced {
                        iterations: 120,
                        cost: 120.0 * 88.0,
                    },
                },
                TuneDecision {
                    candidate: "cg".into(),
                    verdict: Verdict::Converged { iterations: 80 },
                    action: TuneAction::Raced {
                        iterations: 80,
                        cost: 80.0 * 176.0,
                    },
                },
                TuneDecision {
                    candidate: "cg".into(),
                    verdict: Verdict::Converged { iterations: 80 },
                    action: TuneAction::Selected { cost: 80.0 * 176.0 },
                },
                TuneDecision {
                    candidate: "ppcg@d8".into(),
                    verdict: Verdict::Pending,
                    action: TuneAction::SkippedByPrior,
                },
            ],
            winner: Some("cg".into()),
            reuses: 3,
        }
    }

    #[test]
    fn raced_filters_to_trials_in_order() {
        assert_eq!(sample().raced(), vec!["cg_f32", "cg"]);
    }

    #[test]
    fn summary_names_winner_seed_and_reuses() {
        let text = sample().to_string();
        assert!(text.contains("winner cg (seed 9, reused 3x)"), "{text}");
        assert!(text.contains("raced cg_f32"), "{text}");
        assert!(text.contains("skip  ppcg@d8"), "{text}");
    }

    #[test]
    fn empty_log_reports_no_winner() {
        let text = TuneLog::default().to_string();
        assert!(text.contains("no candidate converged"), "{text}");
    }
}
