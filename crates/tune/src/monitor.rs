//! Residual-trajectory classification: the tuner's eyes.
//!
//! Generalizes the stagnation detector buried in `cg_f32` (no ≥0.1%
//! improvement for a bounded number of iterations ⇒ the run has hit its
//! round-off floor) into a reusable monitor that any residual stream can
//! feed, and pairs it with the CG iteration bound from the paper's Eq. 6
//! so a condition estimate from the CG-Lanczos prelude converts directly
//! into a projected iterations-to-tolerance.

use serde::{Deserialize, Serialize};
use tea_core::{cg_iteration_bound, SolveResult, SolveStatus};

/// Relative improvement a residual must make to reset the stall
/// counter — the same 0.1% threshold as the `cg_f32` guard.
const IMPROVEMENT: f64 = 0.999;

/// Growth factor over the initial residual that counts as divergence
/// even while every value stays finite.
const GROWTH_LIMIT: f64 = 10.0;

/// What a residual trajectory is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Too few observations to say anything.
    Pending,
    /// Shrinking geometrically; `projected_iterations` estimates the
    /// total iteration count at which the target tolerance is reached.
    Converging {
        /// Projected total iterations to tolerance.
        projected_iterations: u64,
    },
    /// Reached the target tolerance.
    Converged {
        /// Iteration at which the target was met.
        iterations: u64,
    },
    /// No meaningful improvement for the stall window — the run has hit
    /// a round-off floor or lost its descent direction.
    Stalling {
        /// Iteration at which the stall was declared.
        since: u64,
    },
    /// Non-finite residual, or growth past 10× the initial residual.
    Diverging {
        /// Iteration at which divergence was detected.
        iteration: u64,
    },
}

/// Classifies a residual trajectory fed one observation at a time.
///
/// The first observation fixes the initial residual; the target is
/// `eps ×` that (matching every solver's relative convergence test).
#[derive(Debug, Clone)]
pub struct ConvergenceMonitor {
    eps: f64,
    stall_limit: u64,
    initial: Option<f64>,
    first: (u64, f64),
    last: (u64, f64),
    best: f64,
    stalled: u64,
    stalled_since: Option<u64>,
    converged_at: Option<u64>,
    diverged_at: Option<u64>,
    observations: u64,
}

impl ConvergenceMonitor {
    /// A monitor targeting a relative residual reduction of `eps`, with
    /// the same 100-iteration stall window as the `cg_f32` guard.
    pub fn new(eps: f64) -> Self {
        ConvergenceMonitor::with_stall_limit(eps, 100)
    }

    /// A monitor with an explicit stall window.
    pub fn with_stall_limit(eps: f64, stall_limit: u64) -> Self {
        ConvergenceMonitor {
            eps,
            stall_limit: stall_limit.max(1),
            initial: None,
            first: (0, f64::INFINITY),
            last: (0, f64::INFINITY),
            best: f64::INFINITY,
            stalled: 0,
            stalled_since: None,
            converged_at: None,
            diverged_at: None,
            observations: 0,
        }
    }

    /// Feeds one `(iteration, residual)` observation.
    pub fn observe(&mut self, iteration: u64, residual: f64) {
        self.observations += 1;
        if !residual.is_finite() {
            self.diverged_at.get_or_insert(iteration);
            return;
        }
        let initial = *self.initial.get_or_insert(residual);
        if self.observations == 1 {
            self.first = (iteration, residual);
            self.best = residual;
        }
        self.last = (iteration, residual);
        if residual > GROWTH_LIMIT * initial {
            self.diverged_at.get_or_insert(iteration);
            return;
        }
        if residual <= self.eps * initial {
            self.converged_at.get_or_insert(iteration);
            return;
        }
        if residual < IMPROVEMENT * self.best {
            self.best = residual;
            self.stalled = 0;
        } else {
            self.stalled += 1;
            if self.stalled >= self.stall_limit {
                self.stalled_since.get_or_insert(iteration);
            }
        }
    }

    /// Number of observations fed so far.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// The current classification, in priority order: diverging beats
    /// converged beats stalling beats converging.
    pub fn verdict(&self) -> Verdict {
        if let Some(iteration) = self.diverged_at {
            return Verdict::Diverging { iteration };
        }
        if let Some(iterations) = self.converged_at {
            return Verdict::Converged { iterations };
        }
        if let Some(since) = self.stalled_since {
            return Verdict::Stalling { since };
        }
        match self.projected_iterations() {
            Some(projected_iterations) => Verdict::Converging {
                projected_iterations,
            },
            None if self.observations >= 2 => Verdict::Stalling { since: self.last.0 },
            None => Verdict::Pending,
        }
    }

    /// Geometric-rate projection of the total iterations to tolerance,
    /// from the first and latest observations. `None` until two
    /// distinct iterations are seen or while the trajectory is flat or
    /// growing.
    pub fn projected_iterations(&self) -> Option<u64> {
        let initial = self.initial?;
        let (i0, r0) = self.first;
        let (i1, r1) = self.last;
        if i1 <= i0 || r0 <= 0.0 || r1 <= 0.0 {
            return None;
        }
        let rate = (r1 / r0).powf(1.0 / (i1 - i0) as f64);
        if !(rate > 0.0 && rate < 1.0) {
            return None;
        }
        let target = self.eps * initial;
        if r1 <= target {
            return Some(i1);
        }
        let remaining = (target / r1).ln() / rate.ln();
        Some(i1 + remaining.ceil() as u64)
    }
}

/// Projected CG iterations-to-tolerance from a condition-number
/// estimate (paper Eq. 6) — how the CG-Lanczos eigen prelude's estimate
/// enters the tuner without any extra solve.
pub fn projected_from_condition(kappa: f64, eps: f64) -> u64 {
    cg_iteration_bound(kappa.max(1.0), eps.clamp(f64::MIN_POSITIVE, 1.0)).ceil() as u64
}

/// Classifies a completed [`SolveResult`] the way the monitor would have
/// classified its trajectory. `max_iters` is the cap the solve ran
/// under: a run that gave up *before* the cap without converging hit an
/// internal stagnation guard, which the tuner treats as stalling.
pub fn classify_result(result: &SolveResult, max_iters: u64) -> Verdict {
    match result.status {
        SolveStatus::Converged => Verdict::Converged {
            iterations: result.iterations,
        },
        SolveStatus::Diverged { iteration } => Verdict::Diverging { iteration },
        SolveStatus::Cancelled { .. } => Verdict::Pending,
        SolveStatus::IterationLimit => {
            if result.iterations < max_iters {
                Verdict::Stalling {
                    since: result.iterations,
                }
            } else if result.final_residual < result.initial_residual {
                let mut m = ConvergenceMonitor::new(f64::MIN_POSITIVE);
                m.observe(0, result.initial_residual);
                m.observe(result.iterations, result.final_residual);
                match m.projected_iterations() {
                    Some(projected_iterations) => Verdict::Converging {
                        projected_iterations,
                    },
                    None => Verdict::Stalling {
                        since: result.iterations,
                    },
                }
            } else {
                Verdict::Stalling {
                    since: result.iterations,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_decay_projects_iterations() {
        // residual halves per iteration from 1.0 toward eps 1e-6:
        // ~20 iterations total
        let mut m = ConvergenceMonitor::new(1e-6);
        for i in 0..8u64 {
            m.observe(i, 0.5f64.powi(i as i32));
        }
        match m.verdict() {
            Verdict::Converging {
                projected_iterations,
            } => {
                assert!(
                    (19..=21).contains(&projected_iterations),
                    "projected {projected_iterations}"
                );
            }
            v => panic!("expected converging, got {v:?}"),
        }
    }

    #[test]
    fn flat_trajectory_stalls_after_the_window() {
        let mut m = ConvergenceMonitor::with_stall_limit(1e-10, 5);
        m.observe(0, 1.0);
        for i in 1..=6u64 {
            m.observe(i, 0.9999); // < 0.1% improvement every step
        }
        assert!(matches!(m.verdict(), Verdict::Stalling { .. }), "{m:?}");
    }

    #[test]
    fn improvement_resets_the_stall_counter() {
        let mut m = ConvergenceMonitor::with_stall_limit(1e-10, 5);
        m.observe(0, 1.0);
        for i in 1..20u64 {
            // every 4th step improves by 1%: never 5 flat steps in a row
            let r = if i % 4 == 0 {
                0.99f64.powi(i as i32)
            } else {
                0.999
            };
            m.observe(i, r);
        }
        assert!(
            !matches!(m.verdict(), Verdict::Stalling { .. }),
            "{:?}",
            m.verdict()
        );
    }

    #[test]
    fn nan_and_growth_both_diverge() {
        let mut m = ConvergenceMonitor::new(1e-6);
        m.observe(0, 1.0);
        m.observe(1, f64::NAN);
        assert_eq!(m.verdict(), Verdict::Diverging { iteration: 1 });

        let mut m = ConvergenceMonitor::new(1e-6);
        m.observe(0, 1.0);
        m.observe(1, 50.0); // finite but 50x growth
        assert_eq!(m.verdict(), Verdict::Diverging { iteration: 1 });
    }

    #[test]
    fn reaching_target_is_converged() {
        let mut m = ConvergenceMonitor::new(1e-4);
        m.observe(0, 1.0);
        m.observe(10, 5e-5);
        assert_eq!(m.verdict(), Verdict::Converged { iterations: 10 });
    }

    #[test]
    fn condition_projection_matches_eq6() {
        // kappa 100, eps 1e-10: 5 ln(2e10) ~ 118.6 -> 119
        assert_eq!(projected_from_condition(100.0, 1e-10), 119);
        // better conditioning projects fewer iterations
        assert!(projected_from_condition(10.0, 1e-10) < projected_from_condition(1000.0, 1e-10));
    }
}
