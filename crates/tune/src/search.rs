//! The seeded, wall-clock-free candidate search.
//!
//! The design space is exactly what the registry says it is: every
//! `tunable` entry, expanded over the matrix-powers halo-depth axis for
//! the deep-halo methods. Candidates are ordered by the `tea-perfmodel`
//! bytes-per-iteration prior (cheapest first, so the cost cap prunes
//! expensive candidates early), with ties broken by a seeded
//! [`splitmix64`] hash — the same deterministic-generator discipline as
//! `tea-fault`'s `FaultPlan`, so the race never reads a clock and the
//! same seed always explores in the same order.

use serde::{Deserialize, Serialize};
use tea_core::{SolverParams, SolverRegistry};
use tea_perfmodel::{predicted_iteration_bytes, KernelBytes};

/// Halo depths tried for methods with `deep_halo` metadata (the paper's
/// `PPCG-n` axis); everything else runs at the standard depth 1.
pub const DEEP_HALO_DEPTHS: [usize; 3] = [1, 4, 8];

/// One point of the design space the tuner may race.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Canonical registry name.
    pub solver: String,
    /// Matrix-powers halo depth (1 for non-deep-halo methods).
    pub halo_depth: usize,
    /// Inner steps per outer iteration the bytes prior was priced at.
    pub inner_steps: usize,
    /// `tea-perfmodel` prior: bytes moved per counted iteration.
    pub bytes_per_iteration: f64,
    /// Whether the method runs a CG-Lanczos eigen prelude (such
    /// candidates need `presteps + 2` iterations before a trial can
    /// say anything, so tighter cost caps skip them outright).
    pub needs_eigen_estimate: bool,
}

impl Candidate {
    /// Display label: the solver name, suffixed with `@d<depth>` for
    /// deep-halo configurations (`"ppcg@d8"`).
    pub fn label(&self) -> String {
        if self.halo_depth > 1 {
            format!("{}@d{}", self.solver, self.halo_depth)
        } else {
            self.solver.clone()
        }
    }

    /// The solver parameters for this candidate: the caller's params
    /// with the halo depth swapped for the candidate's.
    pub fn params(&self, base: &SolverParams) -> SolverParams {
        SolverParams {
            halo_depth: self.halo_depth,
            ..base.clone()
        }
    }
}

/// One step of the splitmix64 output function — a high-quality 64-bit
/// hash (same constants as `tea-fault`'s generator). Used purely as a
/// seeded tie-breaker, so equal-prior candidates race in an order that
/// depends only on the seed.
pub fn splitmix64(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Expands `registry`'s tunable entries into the ordered candidate
/// list: tunable, non-serial metas × halo depths, sorted by the
/// bytes-per-iteration prior ascending with seeded tie-breaking.
pub fn plan_candidates(
    registry: &SolverRegistry,
    params: &SolverParams,
    seed: u64,
) -> Vec<Candidate> {
    let bytes = KernelBytes::default();
    let mut out = Vec::new();
    for meta in registry.iter() {
        if !meta.tunable || meta.serial_only {
            continue;
        }
        let depths: &[usize] = if meta.deep_halo {
            &DEEP_HALO_DEPTHS
        } else {
            &[1]
        };
        // how many inner steps one counted iteration of the method
        // performs, for the bytes prior: the PPCG family smooths
        // `inner_steps` times per outer iteration, the mixed
        // accelerators run one f32 block of `check_interval` sweeps
        let m = match meta.name {
            "ppcg" | "mixed_ppcg" => params.inner_steps,
            "mixed_chebyshev" | "mixed_richardson" => params.check_interval.max(1) as usize,
            _ => 1,
        };
        for &depth in depths {
            out.push(Candidate {
                solver: meta.name.to_string(),
                halo_depth: depth,
                inner_steps: m,
                bytes_per_iteration: predicted_iteration_bytes(meta.name, m, &bytes),
                needs_eigen_estimate: meta.needs_eigen_estimate,
            });
        }
    }
    let mut keyed: Vec<(u64, Candidate)> = out
        .into_iter()
        .enumerate()
        .map(|(i, c)| (splitmix64(seed ^ i as u64), c))
        .collect();
    keyed.sort_by(|(ta, a), (tb, b)| {
        a.bytes_per_iteration
            .partial_cmp(&b.bytes_per_iteration)
            .expect("priors are finite")
            .then(ta.cmp(tb))
    });
    keyed.into_iter().map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_tunable_meta_and_depth() {
        let reg = SolverRegistry::builtin();
        let plan = plan_candidates(&reg, &SolverParams::default(), 0);
        // 8 flat tunable methods at depth 1 + ppcg/mixed_ppcg at 3
        // depths each = 8 + 2*3 = 14
        assert_eq!(plan.len(), 14, "{plan:#?}");
        for meta in reg.iter() {
            let instances = plan.iter().filter(|c| c.solver == meta.name).count();
            let expect = match (meta.tunable && !meta.serial_only, meta.deep_halo) {
                (false, _) => 0,
                (true, false) => 1,
                (true, true) => DEEP_HALO_DEPTHS.len(),
            };
            assert_eq!(instances, expect, "{}", meta.name);
        }
        assert!(!plan.iter().any(|c| c.solver == "jacobi"));
    }

    #[test]
    fn plan_orders_by_prior_cheapest_first() {
        let reg = SolverRegistry::builtin();
        let plan = plan_candidates(&reg, &SolverParams::default(), 7);
        assert_eq!(plan[0].solver, "cg_f32", "cheapest prior races first");
        for pair in plan.windows(2) {
            assert!(
                pair[0].bytes_per_iteration <= pair[1].bytes_per_iteration,
                "{pair:#?}"
            );
        }
    }

    #[test]
    fn width_correct_prior_prefers_cg_f32_over_cg() {
        // regression for the precision-blind byte accounting: cg_f32
        // must be priced at 4 B/element — exactly half of cg — so it
        // races strictly before cg at every seed
        let reg = SolverRegistry::builtin();
        for seed in 0..16u64 {
            let plan = plan_candidates(&reg, &SolverParams::default(), seed);
            let pos = |n: &str| plan.iter().position(|c| c.solver == n).unwrap();
            assert!(pos("cg_f32") < pos("cg"), "seed {seed}: {plan:#?}");
        }
        let plan = plan_candidates(&reg, &SolverParams::default(), 0);
        let bytes = |n: &str| {
            plan.iter()
                .find(|c| c.solver == n)
                .unwrap()
                .bytes_per_iteration
        };
        assert!((bytes("cg_f32") - 0.5 * bytes("cg")).abs() < 1e-12);

        // and on a bandwidth-bound synthetic machine the half-width
        // trace replays in materially less time — the ordering the
        // prior encodes is the one the machine model agrees with
        let machine = tea_perfmodel::titan();
        let mut trace = tea_core::SolveTrace::new("cg-shape");
        for _ in 0..100 {
            trace.spmv.record(0);
            trace.vector_ops.record(0);
            trace.vector_ops.record(0);
            trace.vector_ops.record(0);
            trace.dot_kernels.record(0);
            trace.record_halo(1, 1);
            trace.record_reduction(1);
            trace.record_reduction(1);
        }
        let w64 = tea_perfmodel::solver_elem_bytes("cg");
        let w32 = tea_perfmodel::solver_elem_bytes("cg_f32");
        let t64 = tea_perfmodel::predict_width(
            &machine,
            &trace,
            (4000, 4000),
            1,
            KernelBytes::for_width(w64),
            w64,
        );
        let t32 = tea_perfmodel::predict_width(
            &machine,
            &trace,
            (4000, 4000),
            1,
            KernelBytes::for_width(w32),
            w32,
        );
        assert!(
            t32.total() < 0.75 * t64.total(),
            "f32 leg must be markedly cheaper on a bandwidth-bound machine: \
             {} vs {}",
            t32.total(),
            t64.total()
        );
    }

    #[test]
    fn plan_is_seed_deterministic_and_seed_sensitive_on_ties() {
        let reg = SolverRegistry::builtin();
        let params = SolverParams::default();
        let a = plan_candidates(&reg, &params, 42);
        let b = plan_candidates(&reg, &params, 42);
        assert_eq!(a, b, "same seed, same order");
        // equal-prior groups (e.g. the three ppcg depths) exist, so
        // some seed must reorder within a group
        let labels = |p: &[Candidate]| p.iter().map(Candidate::label).collect::<Vec<_>>();
        let base = labels(&a);
        let reordered = (0..64u64).any(|s| labels(&plan_candidates(&reg, &params, s)) != base);
        assert!(reordered, "tie-break never engaged across 64 seeds");
    }

    #[test]
    fn candidate_labels_and_params() {
        let c = Candidate {
            solver: "ppcg".into(),
            halo_depth: 8,
            inner_steps: 16,
            bytes_per_iteration: 1.0,
            needs_eigen_estimate: true,
        };
        assert_eq!(c.label(), "ppcg@d8");
        let p = c.params(&SolverParams::default());
        assert_eq!(p.halo_depth, 8);
        let flat = Candidate {
            halo_depth: 1,
            ..c.clone()
        };
        assert_eq!(flat.label(), "ppcg");
    }

    #[test]
    fn splitmix64_matches_reference_stream() {
        // first outputs of the splitmix64 reference for seed 0
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
