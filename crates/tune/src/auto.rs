//! The `"auto"` pseudo-solver: a registered [`IterativeSolver`] whose
//! method *is* the tuner.
//!
//! The first `solve` races the planned candidates — each trial is one
//! full solve from the caller's initial guess, capped so it is
//! abandoned once it costs more than the best converged candidate so
//! far — then adopts the cheapest converged one and answers with its
//! solution. Every later `solve` goes straight to the adopted winner,
//! so a session-cached `auto` solver (one per [`tea_core::SetupKey`])
//! pays the search exactly once per setup.

use crate::log::TuneLog;
use crate::policy::TuneState;
use crate::search::Candidate;
use std::any::Any;
use tea_core::{
    EigenEstimate, IterativeSolver, Precision, SolveContext, SolveOpts, SolveResult, SolveTrace,
    SolverMeta, SolverParams, SolverRegistry, Workspace,
};
use tea_mesh::Field2D;

/// Registry metadata of the `auto` pseudo-solver. `deep_halo` is set
/// because the race includes matrix-powers candidates, so fields and
/// workspace must be allocated at the deepest candidate depth.
/// `serial_only` is set because independent per-rank races could adopt
/// different winners (and thus different halo protocols) — distributed
/// tuning needs a rank-collective decision, which is a ROADMAP
/// follow-up.
pub const AUTO_META: SolverMeta = SolverMeta {
    name: "auto",
    aliases: &["tune", "autotune"],
    summary: "auto-tuned: races the tunable methods, adopts the cheapest converged one",
    preconditioned: true,
    needs_eigen_estimate: false,
    deep_halo: true,
    serial_only: true,
    precision: Precision::F64,
    tunable: false,
};

/// Registers the `auto` pseudo-solver into `registry` (deck
/// `tl_solver=auto`, CLI `--solver auto`).
pub fn register_auto(registry: &mut SolverRegistry) {
    registry.register(AUTO_META, |p| Box::new(AutoSolver::from_params(p)));
}

/// The solver behind `tl_solver=auto`. See the module docs for the
/// race protocol; [`AutoSolver::take_diagnostics`] yields the
/// [`TuneLog`].
pub struct AutoSolver {
    params: SolverParams,
    opts: SolveOpts,
    registry: SolverRegistry,
    state: Option<TuneState>,
    winner: Option<Box<dyn IterativeSolver>>,
    hint: Option<EigenEstimate>,
}

impl std::fmt::Debug for AutoSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoSolver")
            .field("params", &self.params)
            .field("winner", &self.winner.as_ref().map(|w| w.label()))
            .finish()
    }
}

impl AutoSolver {
    /// An auto-tuner racing tea-core's builtin tunable methods, seeded
    /// by `params.tune_seed`.
    pub fn from_params(params: &SolverParams) -> Self {
        AutoSolver {
            params: params.clone(),
            opts: SolveOpts::default(),
            registry: SolverRegistry::builtin(),
            state: None,
            winner: None,
            hint: None,
        }
    }

    /// The decision log so far (also available type-erased through
    /// [`AutoSolver::take_diagnostics`]).
    pub fn log(&self) -> Option<&TuneLog> {
        self.state.as_ref().map(|s| &s.log)
    }

    /// The adopted design point, once a race has produced one.
    pub fn winner(&self) -> Option<&Candidate> {
        self.state.as_ref().and_then(TuneState::winner)
    }

    fn race(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        let mut state = TuneState::plan(&self.registry, &self.params);
        let mut hint = self.hint;
        let mut best: Option<(SolveResult, Field2D, Box<dyn IterativeSolver>)> = None;
        for idx in 0..state.candidates().len() {
            let candidate = state.candidates()[idx].clone();
            let cap = state.trial_cap(&candidate, self.opts.max_iters);
            if cap < TuneState::min_useful_iters(&candidate, self.params.presteps) {
                state.record_skip(&candidate);
                continue;
            }
            let mut solver = self
                .registry
                .create(&candidate.solver, &candidate.params(&self.params))
                .expect("candidate planned from this registry");
            let trial_opts = SolveOpts {
                eps: self.opts.eps,
                max_iters: cap,
            };
            solver.prepare(ctx, &trial_opts);
            solver.set_eigen_hint(hint);
            let mut trial_u = u.clone();
            let result = solver.solve(ctx, &mut trial_u, b, ws, trace);
            if result.status.is_cancelled() {
                // leave the caller's iterate untouched: a cancelled race
                // adopted nothing
                self.state = Some(state);
                trace.solver = self.label();
                return result;
            }
            if hint.is_none() {
                if let Some((min, max)) = result.trace.eigen_bounds {
                    hint = Some(EigenEstimate { min, max });
                }
            }
            if state.record_trial(idx, &result, cap) {
                best = Some((result, trial_u, solver));
            }
        }
        self.hint = hint;
        let mut outcome = match best {
            Some((result, trial_u, solver)) => {
                *u = trial_u;
                self.winner = Some(solver);
                result
            }
            None => {
                // nothing converged within the caps: fall back to the
                // f64 baseline at the full iteration budget so auto is
                // never worse than `cg`
                let fallback = state
                    .candidates()
                    .iter()
                    .position(|c| c.solver == "cg")
                    .expect("cg is always planned");
                let candidate = state.candidates()[fallback].clone();
                let mut solver = self
                    .registry
                    .create("cg", &candidate.params(&self.params))
                    .expect("cg is registered");
                solver.prepare(ctx, &self.opts);
                solver.set_eigen_hint(hint);
                let result = solver.solve(ctx, u, b, ws, trace);
                state.record_trial(fallback, &result, self.opts.max_iters);
                self.winner = Some(solver);
                state.log.winner.get_or_insert_with(|| candidate.label());
                result
            }
        };
        self.state = Some(state);
        trace.solver = self.label();
        outcome.trace.solver = self.label();
        outcome
    }
}

impl IterativeSolver for AutoSolver {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn label(&self) -> String {
        match &self.winner {
            Some(w) => format!("auto[{}]", w.label()),
            None => "auto".to_string(),
        }
    }

    fn halo_depth(&self) -> usize {
        crate::search::plan_candidates(&self.registry, &self.params, self.params.tune_seed)
            .iter()
            .map(|c| c.halo_depth)
            .max()
            .unwrap_or(1)
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        if let Some(winner) = &mut self.winner {
            winner.prepare(ctx, opts);
        }
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if let Some(winner) = &mut self.winner {
            let result = winner.solve(ctx, u, b, ws, trace);
            if let Some(state) = &mut self.state {
                state.record_reuse();
            }
            return result;
        }
        self.race(ctx, u, b, ws, trace)
    }

    fn take_diagnostics(&mut self) -> Option<Box<dyn Any>> {
        self.state
            .as_ref()
            .map(|s| Box::new(s.log.clone()) as Box<dyn Any>)
    }

    fn set_eigen_hint(&mut self, hint: Option<EigenEstimate>) {
        self.hint = hint;
        if let Some(winner) = &mut self.winner {
            winner.set_eigen_hint(hint);
        }
    }

    fn last_eigen_estimate(&self) -> Option<EigenEstimate> {
        self.winner
            .as_ref()
            .and_then(|w| w.last_eigen_estimate())
            .or(self.hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::TuneAction;
    use tea_core::{crooked_pipe_system, Solve};

    fn tuned_registry() -> SolverRegistry {
        let mut reg = SolverRegistry::builtin();
        register_auto(&mut reg);
        reg
    }

    #[test]
    fn auto_is_registered_with_aliases() {
        let reg = tuned_registry();
        assert_eq!(reg.resolve("auto").unwrap().name, "auto");
        assert_eq!(reg.resolve("autotune").unwrap().name, "auto");
        assert!(!reg.resolve("auto").unwrap().tunable);
        let solver = reg.create("auto", &SolverParams::default()).unwrap();
        assert_eq!(solver.name(), "auto");
        assert_eq!(solver.label(), "auto");
        assert_eq!(solver.halo_depth(), 8, "deepest planned candidate");
    }

    #[test]
    fn auto_converges_and_logs_its_race() {
        let reg = tuned_registry();
        let (op, b) = crooked_pipe_system(24, 0.04, 8);
        let mut u = b.clone();
        let result = Solve::on(&op)
            .with_registry(&reg)
            .with_solver("auto")
            .halo_depth(8)
            .eps(1e-8)
            .run(&mut u, &b)
            .unwrap();
        assert!(result.converged, "{:?}", result.status);
        assert!(
            result.trace.solver.starts_with("auto["),
            "{}",
            result.trace.solver
        );
    }

    #[test]
    fn race_adopts_a_winner_and_reuses_it() {
        let (op, b) = crooked_pipe_system(24, 0.04, 8);
        let params = SolverParams {
            halo_depth: 8,
            tune_seed: 3,
            ..SolverParams::default()
        };
        let mut auto = AutoSolver::from_params(&params);
        let (nx, ny) = op.bounds.tile();
        let decomp = tea_mesh::Decomposition2D::with_grid(nx, ny, 1, 1);
        let layout = tea_comms::HaloLayout::new(&decomp, 0);
        let comm = tea_comms::SerialComm::new();
        use tea_comms::Communicator;
        let tile: tea_core::DynTile<'_> = tea_core::Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::new(&tile);
        let mut ws = Workspace::new(nx, ny, auto.halo_depth());
        auto.prepare(&ctx, &SolveOpts::with_eps(1e-8));
        let mut trace = SolveTrace::new("auto");
        let mut u = b.clone();
        let first = auto.solve(&ctx, &mut u, &b, &mut ws, &mut trace);
        assert!(first.converged);
        let log = auto.log().expect("race ran").clone();
        assert!(log.winner.is_some(), "{log}");
        assert!(!log.raced().is_empty());
        assert_eq!(log.reuses, 0);
        assert_eq!(log.seed, 3);
        // second solve goes straight to the winner
        let mut u2 = b.clone();
        let second = auto.solve(&ctx, &mut u2, &b, &mut ws, &mut trace);
        assert!(second.converged);
        let log2 = auto.log().unwrap();
        assert_eq!(log2.reuses, 1);
        assert_eq!(log2.raced().len(), log.raced().len(), "no second race");
        // the reused winner reproduces the adopted trial's answer
        assert_eq!(first.iterations, second.iterations);
        // diagnostics carry the log out type-erased
        let diag = auto.take_diagnostics().unwrap();
        let carried = diag.downcast::<TuneLog>().unwrap();
        assert_eq!(carried.winner, log.winner);
    }

    #[test]
    fn same_seed_same_race_different_seed_may_reorder() {
        let (op, b) = crooked_pipe_system(16, 0.04, 8);
        let run = |seed: u64| {
            let params = SolverParams {
                halo_depth: 8,
                tune_seed: seed,
                ..SolverParams::default()
            };
            let mut reg = SolverRegistry::builtin();
            register_auto(&mut reg);
            let mut u = b.clone();
            let result = Solve::on(&op)
                .with_registry(&reg)
                .with_solver("auto")
                .params(params)
                .eps(1e-8)
                .run(&mut u, &b)
                .unwrap();
            (result.iterations, result.final_residual, u)
        };
        let (i1, r1, u1) = run(11);
        let (i2, r2, u2) = run(11);
        assert_eq!(i1, i2);
        assert_eq!(r1.to_bits(), r2.to_bits(), "bit-identical residual");
        let (nx, ny) = op.bounds.tile();
        for j in 0..ny as isize {
            for i in 0..nx as isize {
                assert_eq!(u1.at(i, j).to_bits(), u2.at(i, j).to_bits());
            }
        }
    }

    #[test]
    fn cost_caps_prune_expensive_candidates() {
        let reg = tuned_registry();
        let (op, b) = crooked_pipe_system(24, 0.04, 8);
        let mut u = b.clone();
        let mut solver = reg
            .create(
                "auto",
                &SolverParams {
                    halo_depth: 8,
                    ..SolverParams::default()
                },
            )
            .unwrap();
        let (nx, ny) = op.bounds.tile();
        let decomp = tea_mesh::Decomposition2D::with_grid(nx, ny, 1, 1);
        let layout = tea_comms::HaloLayout::new(&decomp, 0);
        let comm = tea_comms::SerialComm::new();
        use tea_comms::Communicator;
        let tile: tea_core::DynTile<'_> = tea_core::Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::new(&tile);
        let mut ws = Workspace::new(nx, ny, solver.halo_depth());
        solver.prepare(&ctx, &SolveOpts::with_eps(1e-8));
        let mut trace = SolveTrace::new("auto");
        let result = solver.solve(&ctx, &mut u, &b, &mut ws, &mut trace);
        assert!(result.converged);
        let log = solver
            .take_diagnostics()
            .unwrap()
            .downcast::<TuneLog>()
            .unwrap();
        // on an easy problem the cheap early candidates win, so at
        // least one expensive eigen-prelude candidate must have been
        // skipped or abandoned by its cap
        let pruned = log.decisions.iter().any(|d| {
            matches!(d.action, TuneAction::SkippedByPrior)
                || matches!(d.action, TuneAction::Raced { iterations, .. }
                    if !matches!(d.verdict, crate::Verdict::Converged { .. })
                        && iterations < 10_000)
        });
        assert!(pruned, "{log}");
    }
}
