//! Run-time auto-tuning for the TeaLeaf solver design space.
//!
//! The paper frames TeaLeaf as a *design-space exploration* — solver ×
//! precision × halo depth — and after the registry/session/serving work
//! every axis is runtime-selectable but still hand-set per deck. This
//! crate closes the loop: `tl_solver=auto` (CLI `--solver auto`) makes
//! the run pick its own design point.
//!
//! Pieces, bottom up:
//!
//! * [`ConvergenceMonitor`] — consumes a per-iteration residual
//!   trajectory and classifies it as a [`Verdict`]: converging (with a
//!   projected iterations-to-tolerance), stalling (generalizing the
//!   `cg_f32` stagnation guard) or diverging. The CG-Lanczos condition
//!   estimate feeds the same projection through
//!   [`projected_from_condition`].
//! * [`TrajectoryProbe`] — a [`tea_core::SolveProbe`] that records the
//!   residual trajectory of any solve for the monitor to read.
//! * [`Candidate`]/[`plan_candidates`] — the seeded, wall-clock-free
//!   candidate search: every `tunable` registry entry expanded over the
//!   halo-depth axis, ordered by the `tea-perfmodel` bytes-per-iteration
//!   prior with seeded tie-breaking ([`splitmix64`], the same generator
//!   discipline as `tea-fault`).
//! * [`TuneState`] + [`AutoSolver`] — the policy object behind the
//!   registered `"auto"` pseudo-solver ([`register_auto`]): on the first
//!   solve it races the candidates (early-abandoning any that cannot
//!   beat the best cost so far), adopts the cheapest converged one, and
//!   reuses it for every subsequent solve. Because the adopted winner
//!   lives inside the prepared solver, a
//!   [`tea_core::SetupCache`]-pooled session remembers the tuned design
//!   point per [`tea_core::SetupKey`] — repeat jobs skip the search.
//! * [`TuneLog`] — every decision (candidate, trajectory verdict,
//!   action), surfaced through
//!   [`tea_core::IterativeSolver::take_diagnostics`].
//! * [`next_precision_rung`]/[`EscalationPolicy`] — the precision
//!   escalation ladder (f32 → mixed → f64 within a solver family) the
//!   serving stack consults on divergence, now owned by the tuner
//!   instead of being hardcoded in the scheduler.
//!
//! ```
//! use tea_core::{SolverRegistry, Solve, crooked_pipe_system};
//!
//! let mut registry = SolverRegistry::builtin();
//! tea_tune::register_auto(&mut registry);
//! let (op, b) = crooked_pipe_system(16, 0.04, 8);
//! let mut u = b.clone();
//! let result = Solve::on(&op)
//!     .with_registry(&registry)
//!     .with_solver("auto")
//!     .halo_depth(8)
//!     .eps(1e-8)
//!     .run(&mut u, &b)
//!     .expect("auto is registered");
//! assert!(result.converged);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod auto;
mod log;
mod monitor;
mod policy;
mod probe;
mod search;

pub use auto::{register_auto, AutoSolver, AUTO_META};
pub use log::{TuneAction, TuneDecision, TuneLog};
pub use monitor::{classify_result, projected_from_condition, ConvergenceMonitor, Verdict};
pub use policy::{next_precision_rung, EscalationPolicy, TuneState};
pub use probe::TrajectoryProbe;
pub use search::{plan_candidates, splitmix64, Candidate};
