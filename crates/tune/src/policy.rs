//! Tuning policy: the race bookkeeping ([`TuneState`]) and the
//! precision-escalation ladder ([`EscalationPolicy`]).
//!
//! [`TuneState`] owns everything about a candidate race except the
//! solves themselves: the planned candidate order, the best cost so
//! far, the cost caps that early-abandon expensive candidates, and the
//! [`TuneLog`]. The `auto` pseudo-solver drives it; the serving layer
//! consults [`EscalationPolicy`] for the same `f32 → mixed → f64`
//! ladder it used to hardcode.

use crate::log::{TuneAction, TuneDecision, TuneLog};
use crate::monitor::{classify_result, Verdict};
use crate::search::{plan_candidates, Candidate};
use tea_core::{solver_for_precision, Precision, SolveResult, SolverParams, SolverRegistry};

/// The next rung of the graceful-degradation ladder for `name`:
/// reduced-precision methods escalate towards the full-`f64` member of
/// their family (`cg_f32 → mixed_cg → cg`), full-precision methods
/// have nowhere further to go.
pub fn next_precision_rung(name: &str, registry: &SolverRegistry) -> Option<String> {
    let meta = registry.resolve(name).ok()?;
    let target = match meta.precision {
        Precision::F32 => Precision::Mixed,
        Precision::Mixed => Precision::F64,
        Precision::F64 => return None,
    };
    solver_for_precision(name, target, registry).ok()
}

/// The precision-escalation policy a serving scheduler walks when a
/// solve diverges: same ladder as [`next_precision_rung`], recording
/// each step as a [`TuneDecision`] when given a log.
#[derive(Debug, Clone, Copy)]
pub struct EscalationPolicy<'r> {
    registry: &'r SolverRegistry,
}

impl<'r> EscalationPolicy<'r> {
    /// A policy escalating within `registry`'s solver set.
    pub fn new(registry: &'r SolverRegistry) -> Self {
        EscalationPolicy { registry }
    }

    /// The solver to try after `failed` diverged, or `None` when the
    /// ladder is exhausted.
    pub fn next_rung(&self, failed: &str) -> Option<String> {
        next_precision_rung(failed, self.registry)
    }

    /// [`EscalationPolicy::next_rung`], recording the step (with the
    /// iteration the divergence was detected at) into `log`.
    pub fn escalate(&self, failed: &str, diverged_at: u64, log: &mut TuneLog) -> Option<String> {
        let to = self.next_rung(failed)?;
        log.decisions.push(TuneDecision {
            candidate: failed.to_string(),
            verdict: Verdict::Diverging {
                iteration: diverged_at,
            },
            action: TuneAction::Escalated {
                from: failed.to_string(),
                to: to.clone(),
            },
        });
        Some(to)
    }
}

/// Bookkeeping for one candidate race: planned order, best cost, cost
/// caps, and the decision log. The solves themselves are driven by
/// [`crate::AutoSolver`].
#[derive(Debug, Clone)]
pub struct TuneState {
    candidates: Vec<Candidate>,
    /// The decision record (public: the driver surfaces it).
    pub log: TuneLog,
    winner: Option<usize>,
    best_cost: f64,
}

impl TuneState {
    /// Plans the race: candidates from `registry` ordered by the bytes
    /// prior, seeded by `params.tune_seed`.
    pub fn plan(registry: &SolverRegistry, params: &SolverParams) -> Self {
        let seed = params.tune_seed;
        TuneState {
            candidates: plan_candidates(registry, params, seed),
            log: TuneLog {
                seed,
                ..TuneLog::default()
            },
            winner: None,
            best_cost: f64::INFINITY,
        }
    }

    /// The planned candidates in race order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// The adopted winner so far.
    pub fn winner(&self) -> Option<&Candidate> {
        self.winner.map(|i| &self.candidates[i])
    }

    /// Modelled cost of the adopted winner (infinite before any
    /// candidate converges).
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// Iteration cap for a trial of `candidate`: the caller's
    /// `max_iters`, tightened so the trial is abandoned once it costs
    /// more than the best candidate so far.
    pub fn trial_cap(&self, candidate: &Candidate, max_iters: u64) -> u64 {
        if self.best_cost.is_finite() {
            let by_cost = (self.best_cost / candidate.bytes_per_iteration).floor() as u64;
            by_cost.min(max_iters)
        } else {
            max_iters
        }
    }

    /// The fewest iterations at which a trial of `candidate` could
    /// possibly converge and report: eigen-estimating methods must
    /// finish their CG-Lanczos presteps first.
    pub fn min_useful_iters(candidate: &Candidate, presteps: u64) -> u64 {
        if candidate.needs_eigen_estimate {
            presteps + 2
        } else {
            2
        }
    }

    /// Records that `candidate` was skipped because its cap is below
    /// its minimum useful iterations.
    pub fn record_skip(&mut self, candidate: &Candidate) {
        self.log.decisions.push(TuneDecision {
            candidate: candidate.label(),
            verdict: Verdict::Pending,
            action: TuneAction::SkippedByPrior,
        });
    }

    /// Records a finished trial of candidate `idx` (run under iteration
    /// cap `cap`) and adopts it when it converged strictly cheaper than
    /// the best so far. Returns whether it was adopted.
    pub fn record_trial(&mut self, idx: usize, result: &SolveResult, cap: u64) -> bool {
        let candidate = &self.candidates[idx];
        let verdict = classify_result(result, cap);
        let cost = result.iterations as f64 * candidate.bytes_per_iteration;
        let label = candidate.label();
        self.log.decisions.push(TuneDecision {
            candidate: label.clone(),
            verdict,
            action: TuneAction::Raced {
                iterations: result.iterations,
                cost,
            },
        });
        let adopt = result.converged && cost < self.best_cost;
        if adopt {
            self.best_cost = cost;
            self.winner = Some(idx);
            self.log.decisions.push(TuneDecision {
                candidate: label.clone(),
                verdict,
                action: TuneAction::Selected { cost },
            });
            self.log.winner = Some(label);
        }
        adopt
    }

    /// Records one post-race solve served by the adopted winner.
    pub fn record_reuse(&mut self) {
        self.log.reuses += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_core::{SolveStatus, SolveTrace};

    fn converged(iterations: u64) -> SolveResult {
        SolveResult {
            converged: true,
            iterations,
            initial_residual: 1.0,
            final_residual: 1e-12,
            status: SolveStatus::Converged,
            trace: SolveTrace::new("test"),
        }
    }

    #[test]
    fn ladder_matches_the_historic_serve_ladder() {
        let reg = SolverRegistry::builtin();
        assert_eq!(
            next_precision_rung("cg_f32", &reg).as_deref(),
            Some("mixed_cg")
        );
        assert_eq!(next_precision_rung("mixed_cg", &reg).as_deref(), Some("cg"));
        assert_eq!(next_precision_rung("cg", &reg), None);
        assert_eq!(
            next_precision_rung("mixed_ppcg", &reg).as_deref(),
            Some("ppcg")
        );
        assert_eq!(
            next_precision_rung("mixed_chebyshev", &reg).as_deref(),
            Some("chebyshev")
        );
        assert_eq!(next_precision_rung("nonsense", &reg), None);
    }

    #[test]
    fn escalation_is_recorded_in_the_log() {
        let reg = SolverRegistry::builtin();
        let policy = EscalationPolicy::new(&reg);
        let mut log = TuneLog::default();
        let to = policy.escalate("cg_f32", 17, &mut log).unwrap();
        assert_eq!(to, "mixed_cg");
        assert_eq!(log.decisions.len(), 1);
        assert_eq!(
            log.decisions[0].action,
            TuneAction::Escalated {
                from: "cg_f32".into(),
                to: "mixed_cg".into()
            }
        );
        assert!(policy.escalate("cg", 0, &mut log).is_none());
        assert_eq!(log.decisions.len(), 1, "exhausted ladder logs nothing");
    }

    #[test]
    fn cost_cap_tightens_once_a_winner_exists() {
        let reg = SolverRegistry::builtin();
        let mut state = TuneState::plan(&reg, &SolverParams::default());
        let cheap = state
            .candidates()
            .iter()
            .position(|c| c.solver == "cg")
            .unwrap();
        let expensive_label = "ppcg@d8";
        let expensive = state.candidates()[state
            .candidates()
            .iter()
            .position(|c| c.label() == expensive_label)
            .unwrap()]
        .clone();
        assert_eq!(state.trial_cap(&expensive, 10_000), 10_000, "no cap yet");
        assert!(state.record_trial(cheap, &converged(50), 10_000));
        let cap = state.trial_cap(&expensive, 10_000);
        assert!(cap < 50, "ppcg moves >1x cg bytes per iteration, cap {cap}");
        assert!(state.best_cost().is_finite());
        assert_eq!(state.winner().unwrap().solver, "cg");
    }

    #[test]
    fn cheaper_winner_replaces_and_rejection_does_not() {
        let reg = SolverRegistry::builtin();
        let mut state = TuneState::plan(&reg, &SolverParams::default());
        let cg = state
            .candidates()
            .iter()
            .position(|c| c.solver == "cg")
            .unwrap();
        let cheby = state
            .candidates()
            .iter()
            .position(|c| c.solver == "chebyshev")
            .unwrap();
        assert!(state.record_trial(cg, &converged(100), 10_000));
        // chebyshev at 144 B/iter for 100 iters is cheaper than cg at 176
        assert!(state.record_trial(cheby, &converged(100), 10_000));
        assert_eq!(state.winner().unwrap().solver, "chebyshev");
        // a non-converged trial never replaces
        let failed = SolveResult {
            converged: false,
            status: SolveStatus::IterationLimit,
            ..converged(10)
        };
        assert!(!state.record_trial(cg, &failed, 10));
        assert_eq!(state.winner().unwrap().solver, "chebyshev");
        assert_eq!(state.log.winner.as_deref(), Some("chebyshev"));
    }

    #[test]
    fn min_useful_iters_respects_eigen_preludes() {
        let c = Candidate {
            solver: "chebyshev".into(),
            halo_depth: 1,
            inner_steps: 1,
            bytes_per_iteration: 144.0,
            needs_eigen_estimate: true,
        };
        assert_eq!(TuneState::min_useful_iters(&c, 30), 32);
        let plain = Candidate {
            needs_eigen_estimate: false,
            ..c
        };
        assert_eq!(TuneState::min_useful_iters(&plain, 30), 2);
    }
}
