//! A [`SolveProbe`] that records the residual trajectory of a solve.
//!
//! Solvers poke the probe once per iteration with the live solution and
//! residual fields; the probe records `(iteration, ‖r‖)` so a
//! [`ConvergenceMonitor`] can classify the run afterwards (or mid-run,
//! by feeding the trajectory so far). The probe is `Sync` behind a
//! mutex, matching the `&self` probe protocol.

use crate::monitor::ConvergenceMonitor;
use std::sync::Mutex;
use tea_core::lock_tolerant;
use tea_core::SolveProbe;
use tea_mesh::{Field2D, Field2F};

/// Records `(iteration, interior residual norm)` pairs from any solve
/// it is armed on (via [`tea_core::SolveControls`]).
#[derive(Debug, Default)]
pub struct TrajectoryProbe {
    samples: Mutex<Vec<(u64, f64)>>,
}

impl TrajectoryProbe {
    /// An empty probe.
    pub fn new() -> Self {
        TrajectoryProbe::default()
    }

    /// The trajectory recorded so far.
    pub fn trajectory(&self) -> Vec<(u64, f64)> {
        lock_tolerant(&self.samples).clone()
    }

    /// Takes the recorded trajectory, leaving the probe empty.
    pub fn take(&self) -> Vec<(u64, f64)> {
        std::mem::take(&mut *lock_tolerant(&self.samples))
    }

    /// Number of recorded observations.
    pub fn len(&self) -> usize {
        lock_tolerant(&self.samples).len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Feeds the recorded trajectory into `monitor` in order.
    pub fn feed(&self, monitor: &mut ConvergenceMonitor) {
        for (iteration, residual) in self.trajectory() {
            monitor.observe(iteration, residual);
        }
    }

    fn record(&self, iteration: u64, residual: f64) {
        lock_tolerant(&self.samples).push((iteration, residual));
    }
}

impl SolveProbe for TrajectoryProbe {
    fn on_iteration(&self, iteration: u64, _u: &mut Field2D, r: &mut Field2D) {
        self.record(iteration, r.interior_norm());
    }

    fn on_iteration_f32(&self, iteration: u64, _u: &mut Field2F, r: &mut Field2F) {
        self.record(iteration, f64::from(r.interior_norm()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::Verdict;
    use tea_comms::{Communicator, HaloLayout, SerialComm};
    use tea_core::{
        crooked_pipe_system, DynTile, SolveContext, SolveControls, SolveOpts, SolveTrace,
        SolverParams, SolverRegistry, Tile, Workspace,
    };
    use tea_mesh::Decomposition2D;

    #[test]
    fn probe_records_a_cg_trajectory_the_monitor_classifies() {
        let (op, b) = crooked_pipe_system(24, 0.04, 1);
        let mut u = b.clone();
        let probe = TrajectoryProbe::new();
        let (nx, ny) = op.bounds.tile();
        let decomp = Decomposition2D::with_grid(nx, ny, 1, 1);
        let layout = HaloLayout::new(&decomp, 0);
        let comm = SerialComm::new();
        let controls = SolveControls {
            stop: None,
            probe: Some(&probe),
        };
        let tile: DynTile<'_> = Tile::with_controls(&op, &layout, comm.as_dyn(), controls);
        let ctx = SolveContext::new(&tile);
        let mut solver = SolverRegistry::builtin()
            .create("cg", &SolverParams::default())
            .unwrap();
        let mut ws = Workspace::new(nx, ny, 1);
        solver.prepare(&ctx, &SolveOpts::with_eps(1e-8));
        let mut trace = SolveTrace::new("cg");
        let result = solver.solve(&ctx, &mut u, &b, &mut ws, &mut trace);
        assert!(result.converged);
        assert!(
            probe.len() as u64 >= result.iterations.saturating_sub(1),
            "one sample per iteration: {} vs {}",
            probe.len(),
            result.iterations
        );
        let mut m = ConvergenceMonitor::new(1e-3);
        probe.feed(&mut m);
        // the residual stream of a converging CG run must not read as
        // stalling or diverging
        match m.verdict() {
            Verdict::Converged { .. } | Verdict::Converging { .. } => {}
            v => panic!("CG trajectory misread as {v:?}"),
        }
        assert!(!probe.is_empty());
        let _ = probe.take();
        assert!(probe.is_empty());
    }
}
