//! `tea.in`-style input decks.
//!
//! The reference TeaLeaf reads a keyword deck between `*tea` and
//! `*endtea`. This parser accepts the same shape of file — states,
//! mesh extents, timestep controls and `tl_*` solver switches — mapped
//! onto this reproduction's option types. Unknown keys are reported as
//! errors rather than ignored, so decks stay honest.
//!
//! ```text
//! *tea
//! state 1 density=100.0 energy=0.0001
//! state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=3.5 ymin=1.0 ymax=2.0
//! x_cells=256
//! y_cells=256
//! xmin=0.0  xmax=10.0  ymin=0.0  ymax=10.0
//! initial_timestep=0.04
//! end_time=15.0
//! end_step=375
//! tl_use_ppcg
//! tl_ppcg_inner_steps=16
//! tl_ppcg_halo_depth=8
//! tl_preconditioner_type=jac_block
//! tl_eps=1e-10
//! tl_max_iters=10000
//! tl_coefficient=1
//! tl_num_threads=4
//! *endtea
//! ```
//!
//! `tl_num_threads` is an extension of this reproduction: it pins the
//! kernel worker-thread count for the run (the same knob as the
//! `TEA_NUM_THREADS` environment variable and the CLI `--threads` flag).

use std::collections::BTreeMap;
use tea_core::{Precision, PreconKind, SolveOpts, SolverParams};
use tea_mesh::{Coefficient, Extent2D, Problem, Shape, State};

/// Time-stepping and solver controls (the deck's non-geometry half).
#[derive(Debug, Clone)]
pub struct Control {
    /// Fixed time step (paper: 0.04 µs).
    pub dt: f64,
    /// Simulation end time (paper: 15 µs).
    pub end_time: f64,
    /// Step-count cap.
    pub end_step: u64,
    /// Solver selection: a registry name or alias resolved by
    /// [`crate::solver_registry`] (e.g. `"cg"`, `"ppcg"`, `"amg"`,
    /// `"richardson"`).
    pub solver: String,
    /// Arithmetic-precision override (deck `tl_precision`, CLI
    /// `--precision`). `None` (the default) takes [`Control::solver`]
    /// verbatim; an explicit value re-routes the solver within its
    /// family (`cg` → `mixed_cg`/`cg_f32`, `ppcg` → `mixed_ppcg`) via
    /// [`Control::effective_solver`].
    pub precision: Option<Precision>,
    /// Convergence options.
    pub opts: SolveOpts,
    /// Preconditioner for CG/Chebyshev/PPCG-inner.
    pub precon: PreconKind,
    /// PPCG inner smoothing steps.
    pub ppcg_inner_steps: usize,
    /// PPCG matrix-powers halo depth.
    pub ppcg_halo_depth: usize,
    /// Eigenvalue-estimation CG presteps (Chebyshev/PPCG).
    pub presteps: u64,
    /// Seed for the `auto` pseudo-solver's candidate search (deck
    /// `tl_tune_seed`, CLI `--tune-seed`). Ignored by concrete solvers.
    pub tune_seed: u64,
    /// Print a field summary every this many steps (0 = only at end).
    pub summary_frequency: u64,
    /// Worker threads for the kernel sweeps (`None` = leave the runtime
    /// default: `TEA_NUM_THREADS` or all available cores).
    pub threads: Option<usize>,
}

impl Default for Control {
    fn default() -> Self {
        Control {
            dt: 0.04,
            end_time: 15.0,
            end_step: u64::MAX,
            solver: "cg".into(),
            precision: None,
            opts: SolveOpts::default(),
            precon: PreconKind::None,
            ppcg_inner_steps: 16,
            ppcg_halo_depth: 1,
            presteps: 30,
            tune_seed: 0,
            summary_frequency: 10,
            threads: None,
        }
    }
}

impl Control {
    /// Number of steps implied by `end_time`/`end_step`.
    pub fn steps(&self) -> u64 {
        let by_time = (self.end_time / self.dt).ceil() as u64;
        by_time.min(self.end_step)
    }

    /// The registry name the driver actually runs: [`Control::solver`]
    /// re-routed for [`Control::precision`] (identity at the default
    /// `f64`).
    ///
    /// # Errors
    /// A message naming the solver and precision when no variant is
    /// registered (e.g. `tl_precision=mixed` with the serial-only AMG
    /// baseline), or listing the conflicting keys when the deck pins
    /// an axis the `auto` tuner owns (`tl_solver=auto` with
    /// `tl_precision=...`).
    pub fn effective_solver(&self) -> Result<String, String> {
        let resolved = crate::solver_registry()
            .resolve(&self.solver)
            .map_err(|e| e.to_string())?;
        if resolved.name == "auto" {
            // the auto-tuner explores the precision axis itself: an
            // explicit override is a conflict, not a routing request
            if let Some(p) = self.precision {
                return Err(format!(
                    "conflicting keys: tl_solver={} and tl_precision={} — the auto-tuner \
                     explores the precision axis itself; remove tl_precision",
                    self.solver,
                    p.label()
                ));
            }
            return Ok(resolved.name.to_string());
        }
        match self.precision {
            Some(p) => tea_core::solver_for_precision(&self.solver, p, crate::solver_registry())
                .map_err(|e| e.to_string()),
            None => Ok(resolved.name.to_string()),
        }
    }

    /// The generic solver parameters this deck configures — what the
    /// driver hands to [`tea_core::SolverRegistry::create`].
    pub fn solver_params(&self) -> SolverParams {
        SolverParams {
            precon: self.precon,
            inner_steps: self.ppcg_inner_steps,
            halo_depth: self.ppcg_halo_depth,
            presteps: self.presteps,
            tune_seed: self.tune_seed,
            ..SolverParams::default()
        }
    }
}

/// A parsed deck: the physical problem plus controls.
#[derive(Debug, Clone)]
pub struct Deck {
    /// Mesh, states and coefficient recipe.
    pub problem: Problem,
    /// Time stepping and solver controls.
    pub control: Control,
}

/// Parses a deck from text.
///
/// # Errors
/// Returns a message naming the offending line for unknown keys,
/// malformed values, missing `*tea` block or invalid problems.
pub fn parse_deck(text: &str) -> Result<Deck, String> {
    let mut in_block = false;
    let mut saw_block = false;

    let mut x_cells = 100usize;
    let mut y_cells = 100usize;
    let mut extent = Extent2D::square(10.0);
    let mut states: BTreeMap<usize, State> = BTreeMap::new();
    let mut coefficient = Coefficient::Conductivity;
    let mut control = Control::default();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('!').next().unwrap_or("").trim(); // `!` comments
        if line.is_empty() {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if lower == "*tea" {
            in_block = true;
            saw_block = true;
            continue;
        }
        if lower == "*endtea" {
            in_block = false;
            continue;
        }
        if !in_block {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);

        if let Some(rest) = lower.strip_prefix("state ") {
            let (idx, state) = parse_state(rest).map_err(err)?;
            states.insert(idx, state);
            continue;
        }

        // legacy bare solver switches: `tl_use_<name>` aliases
        // `tl_solver=<name>`, resolved against the same registry
        if let Some(name) = lower.strip_prefix("tl_use_") {
            control.solver = crate::solver_registry()
                .resolve(name)
                .map_err(|e| err(e.to_string()))?
                .name
                .to_string();
            continue;
        }

        let (key, value) = lower
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim()))
            .ok_or_else(|| err(format!("expected key=value, got '{line}'")))?;
        let fval = || -> Result<f64, String> {
            value
                .parse::<f64>()
                .map_err(|_| err(format!("bad number '{value}' for {key}")))
        };
        let ival = || -> Result<u64, String> {
            value
                .parse::<u64>()
                .map_err(|_| err(format!("bad integer '{value}' for {key}")))
        };
        match key {
            "x_cells" => x_cells = ival()? as usize,
            "y_cells" => y_cells = ival()? as usize,
            "xmin" => extent.x_min = fval()?,
            "xmax" => extent.x_max = fval()?,
            "ymin" => extent.y_min = fval()?,
            "ymax" => extent.y_max = fval()?,
            "initial_timestep" => control.dt = fval()?,
            "end_time" => control.end_time = fval()?,
            "end_step" => control.end_step = ival()?,
            "summary_frequency" => control.summary_frequency = ival()?,
            "tl_solver" => {
                control.solver = crate::solver_registry()
                    .resolve(value)
                    .map_err(|e| err(e.to_string()))?
                    .name
                    .to_string();
            }
            "tl_precision" => {
                control.precision = Some(Precision::parse(value).map_err(err)?);
            }
            "tl_eps" => control.opts.eps = fval()?,
            "tl_max_iters" => control.opts.max_iters = ival()?,
            "tl_ppcg_inner_steps" => control.ppcg_inner_steps = ival()? as usize,
            "tl_ppcg_halo_depth" => control.ppcg_halo_depth = ival()? as usize,
            "tl_ch_cg_presteps" => control.presteps = ival()?,
            "tl_tune_seed" => control.tune_seed = ival()?,
            "tl_num_threads" => control.threads = Some((ival()? as usize).max(1)),
            "tl_coefficient" => {
                coefficient = match value {
                    "1" | "conductivity" => Coefficient::Conductivity,
                    "2" | "recip_conductivity" => Coefficient::RecipConductivity,
                    other => return Err(err(format!("unknown coefficient '{other}'"))),
                }
            }
            "tl_preconditioner_type" => {
                control.precon = match value {
                    "none" => PreconKind::None,
                    "jac_diag" => PreconKind::Diagonal,
                    "jac_block" => PreconKind::BlockJacobi,
                    other => return Err(err(format!("unknown preconditioner '{other}'"))),
                }
            }
            other => return Err(err(format!("unknown deck key '{other}'"))),
        }
    }

    if !saw_block {
        return Err("no *tea block found".into());
    }
    let Some(first) = states.keys().next().copied() else {
        return Err("deck defines no states".into());
    };
    if first != 1 {
        return Err("state numbering must start at 1 (the background)".into());
    }
    let states: Vec<State> = states.into_values().collect();

    // surface solver × precision conflicts at parse time (order of
    // tl_solver / tl_precision in the deck must not matter, so this
    // check runs once both are known; it also rejects tl_solver=auto
    // combined with tl_precision, which pins an axis the tuner owns)
    control.effective_solver()?;

    let problem = Problem {
        x_cells,
        y_cells,
        extent,
        states,
        coefficient,
    };
    problem.validate()?;
    Ok(Deck { problem, control })
}

fn parse_state(rest: &str) -> Result<(usize, State), String> {
    let mut parts = rest.split_whitespace();
    let idx: usize = parts
        .next()
        .ok_or("state needs an index")?
        .parse()
        .map_err(|_| "bad state index".to_string())?;
    let mut density = None;
    let mut energy = None;
    let mut geometry = None;
    let mut vals: BTreeMap<&str, f64> = BTreeMap::new();
    for p in parts {
        let (k, v) = p
            .split_once('=')
            .ok_or_else(|| format!("expected key=value in state, got '{p}'"))?;
        match k {
            "density" => density = Some(v.parse().map_err(|_| "bad density")?),
            "energy" => energy = Some(v.parse().map_err(|_| "bad energy")?),
            "geometry" => geometry = Some(v.to_string()),
            "xmin" | "xmax" | "ymin" | "ymax" | "radius" | "xcentre" | "ycentre" | "x" | "y" => {
                vals.insert(
                    match k {
                        "xcentre" => "cx",
                        "ycentre" => "cy",
                        other => other,
                    },
                    v.parse::<f64>().map_err(|_| format!("bad number '{v}'"))?,
                );
            }
            other => return Err(format!("unknown state key '{other}'")),
        }
    }
    let density = density.ok_or("state missing density")?;
    let energy = energy.ok_or("state missing energy")?;
    let get = |k: &str| -> Result<f64, String> {
        vals.get(k).copied().ok_or(format!("state missing {k}"))
    };
    let shape = match geometry.as_deref() {
        None if idx == 1 => Shape::Background,
        None => return Err("non-background state needs geometry=".into()),
        Some("rectangle") => Shape::Rectangle {
            x_min: get("xmin")?,
            y_min: get("ymin")?,
            x_max: get("xmax")?,
            y_max: get("ymax")?,
        },
        Some("circular") | Some("circle") => Shape::Circle {
            cx: get("cx")?,
            cy: get("cy")?,
            radius: get("radius")?,
        },
        Some("point") => Shape::Point {
            x: get("x")?,
            y: get("y")?,
        },
        Some(other) => return Err(format!("unknown geometry '{other}'")),
    };
    Ok((
        idx,
        State {
            shape,
            density,
            energy,
        },
    ))
}

/// Renders a deck back to `tea.in` text (round-trip support and
/// experiment provenance logs).
pub fn render_deck(deck: &Deck) -> String {
    let mut out = String::from("*tea\n");
    for (i, s) in deck.problem.states.iter().enumerate() {
        out.push_str(&format!(
            "state {} density={} energy={}",
            i + 1,
            s.density,
            s.energy
        ));
        match s.shape {
            Shape::Background => {}
            Shape::Rectangle {
                x_min,
                y_min,
                x_max,
                y_max,
            } => out.push_str(&format!(
                " geometry=rectangle xmin={x_min} xmax={x_max} ymin={y_min} ymax={y_max}"
            )),
            Shape::Circle { cx, cy, radius } => out.push_str(&format!(
                " geometry=circular xcentre={cx} ycentre={cy} radius={radius}"
            )),
            Shape::Point { x, y } => out.push_str(&format!(" geometry=point x={x} y={y}")),
        }
        out.push('\n');
    }
    let p = &deck.problem;
    let c = &deck.control;
    out.push_str(&format!("x_cells={}\n", p.x_cells));
    out.push_str(&format!("y_cells={}\n", p.y_cells));
    out.push_str(&format!(
        "xmin={} xmax={} ymin={} ymax={}\n",
        p.extent.x_min, p.extent.x_max, p.extent.y_min, p.extent.y_max
    ));
    // render extent on separate lines for the parser
    out = out.replace(
        &format!(
            "xmin={} xmax={} ymin={} ymax={}\n",
            p.extent.x_min, p.extent.x_max, p.extent.y_min, p.extent.y_max
        ),
        &format!(
            "xmin={}\nxmax={}\nymin={}\nymax={}\n",
            p.extent.x_min, p.extent.x_max, p.extent.y_min, p.extent.y_max
        ),
    );
    out.push_str(&format!("initial_timestep={}\n", c.dt));
    out.push_str(&format!("end_time={}\n", c.end_time));
    if c.end_step != u64::MAX {
        out.push_str(&format!("end_step={}\n", c.end_step));
    }
    out.push_str(&format!("tl_eps={}\n", c.opts.eps));
    out.push_str(&format!("tl_max_iters={}\n", c.opts.max_iters));
    out.push_str(&format!(
        "tl_coefficient={}\n",
        match p.coefficient {
            Coefficient::Conductivity => 1,
            Coefficient::RecipConductivity => 2,
        }
    ));
    out.push_str(&format!("tl_preconditioner_type={}\n", c.precon.label()));
    out.push_str(&format!("tl_solver={}\n", c.solver));
    if let Some(p) = c.precision {
        out.push_str(&format!("tl_precision={}\n", p.label()));
    }
    out.push_str(&format!("tl_ppcg_inner_steps={}\n", c.ppcg_inner_steps));
    out.push_str(&format!("tl_ppcg_halo_depth={}\n", c.ppcg_halo_depth));
    out.push_str(&format!("tl_ch_cg_presteps={}\n", c.presteps));
    if c.tune_seed != 0 {
        out.push_str(&format!("tl_tune_seed={}\n", c.tune_seed));
    }
    out.push_str(&format!("summary_frequency={}\n", c.summary_frequency));
    out.push_str("*endtea\n");
    out
}

/// The paper's crooked-pipe benchmark deck at a given resolution and
/// solver (a registry name like `"cg"` or `"ppcg"`).
pub fn crooked_pipe_deck(n: usize, solver: impl Into<String>) -> Deck {
    Deck {
        problem: tea_mesh::crooked_pipe(n),
        control: Control {
            solver: solver.into(),
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
! the crooked pipe, scaled down
*tea
state 1 density=100.0 energy=0.0001
state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=3.5 ymin=1.0 ymax=2.0
state 3 density=0.1 energy=300.0 geometry=rectangle xmin=0.0 xmax=0.5 ymin=1.0 ymax=2.0
x_cells=64
y_cells=64
xmin=0.0
xmax=10.0
ymin=0.0
ymax=10.0
initial_timestep=0.04
end_time=0.4
tl_use_ppcg
tl_ppcg_inner_steps=16
tl_ppcg_halo_depth=8
tl_preconditioner_type=jac_diag
tl_eps=1e-9
tl_max_iters=5000
tl_coefficient=1
*endtea
"#;

    #[test]
    fn parses_the_sample_deck() {
        let deck = parse_deck(SAMPLE).expect("sample must parse");
        assert_eq!(deck.problem.x_cells, 64);
        assert_eq!(deck.problem.states.len(), 3);
        assert_eq!(deck.problem.states[0].shape, Shape::Background);
        assert_eq!(deck.control.solver, "ppcg");
        assert_eq!(deck.control.ppcg_halo_depth, 8);
        assert_eq!(deck.control.ppcg_inner_steps, 16);
        assert_eq!(deck.control.precon, tea_core::PreconKind::Diagonal);
        assert_eq!(deck.control.opts.eps, 1e-9);
        assert_eq!(deck.control.opts.max_iters, 5000);
        assert_eq!(deck.control.steps(), 10);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let deck = parse_deck(
            "*tea\nstate 1 density=1.0 energy=1.0\n! full comment\nx_cells=8 ! trailing\ny_cells=8\n*endtea",
        )
        .unwrap();
        assert_eq!(deck.problem.x_cells, 8);
    }

    #[test]
    fn unknown_keys_are_errors() {
        let e = parse_deck("*tea\nstate 1 density=1 energy=1\nbogus_key=3\n*endtea").unwrap_err();
        assert!(e.contains("unknown deck key"), "{e}");
        assert!(e.contains("line 3"), "{e}");
    }

    #[test]
    fn missing_block_is_an_error() {
        assert!(parse_deck("x_cells=8").unwrap_err().contains("*tea"));
    }

    #[test]
    fn state_shapes_parse() {
        let deck = parse_deck(
            "*tea\nstate 1 density=1 energy=1\n\
             state 2 density=2 energy=2 geometry=circular xcentre=5 ycentre=5 radius=1\n\
             state 3 density=3 energy=3 geometry=point x=1 y=2\n\
             x_cells=16\ny_cells=16\n*endtea",
        )
        .unwrap();
        assert!(matches!(deck.problem.states[1].shape, Shape::Circle { .. }));
        assert!(matches!(deck.problem.states[2].shape, Shape::Point { .. }));
    }

    #[test]
    fn state_without_geometry_must_be_background() {
        let e = parse_deck("*tea\nstate 1 density=1 energy=1\nstate 2 density=2 energy=2\n*endtea")
            .unwrap_err();
        assert!(e.contains("geometry"), "{e}");
    }

    #[test]
    fn roundtrip_render_parse() {
        let deck = crooked_pipe_deck(48, "ppcg");
        let text = render_deck(&deck);
        let re = parse_deck(&text).expect("rendered deck must parse");
        assert_eq!(re.problem, deck.problem);
        assert_eq!(re.control.solver, deck.control.solver);
        assert_eq!(re.control.dt, deck.control.dt);
        assert_eq!(re.control.ppcg_inner_steps, deck.control.ppcg_inner_steps);
    }

    #[test]
    fn solver_switches() {
        // legacy bare switches and the tl_solver key resolve to the
        // same canonical registry names
        for (text, name) in [
            ("tl_use_jacobi", "jacobi"),
            ("tl_use_cg", "cg"),
            ("tl_use_cg_fused", "cg_fused"),
            ("tl_use_chebyshev", "chebyshev"),
            ("tl_use_ppcg", "ppcg"),
            ("tl_use_amg", "amg"),
            ("tl_use_boomeramg", "amg"),
            ("tl_solver=richardson", "richardson"),
            ("tl_solver=cppcg", "ppcg"),
            ("tl_solver=BoomerAMG", "amg"),
        ] {
            let deck = parse_deck(&format!(
                "*tea\nstate 1 density=1 energy=1\nx_cells=8\ny_cells=8\n{text}\n*endtea"
            ))
            .unwrap();
            assert_eq!(deck.control.solver, name, "{text}");
        }
    }

    fn mini_deck(lines: &str) -> Result<Deck, String> {
        parse_deck(&format!(
            "*tea\nstate 1 density=1 energy=1\nx_cells=8\ny_cells=8\n{lines}\n*endtea"
        ))
    }

    #[test]
    fn tl_solver_auto_parses_and_conflicts_with_tl_precision() {
        // plain auto (and its aliases) parses and resolves
        let deck = mini_deck("tl_solver=auto").unwrap();
        assert_eq!(deck.control.effective_solver().unwrap(), "auto");
        let deck = mini_deck("tl_solver=autotune").unwrap();
        assert_eq!(deck.control.effective_solver().unwrap(), "auto");
        // combining it with an explicit precision is a conflict naming
        // both keys, in either key order
        let e = mini_deck("tl_solver=auto\ntl_precision=mixed").unwrap_err();
        assert!(e.contains("tl_solver=auto"), "{e}");
        assert!(e.contains("tl_precision=mixed"), "{e}");
        let e2 = mini_deck("tl_precision=f32\ntl_solver=auto").unwrap_err();
        assert!(e2.contains("tl_solver=auto"), "{e2}");
        assert!(e2.contains("tl_precision=f32"), "{e2}");
        // aliases are normalised at parse time, so the message reports
        // the canonical name
        let e3 = mini_deck("tl_solver=tune\ntl_precision=mixed").unwrap_err();
        assert!(e3.contains("tl_solver=auto"), "{e3}");
    }

    #[test]
    fn tl_tune_seed_parses_and_roundtrips() {
        assert_eq!(mini_deck("tl_solver=cg").unwrap().control.tune_seed, 0);
        let deck = mini_deck("tl_solver=auto\ntl_tune_seed=42").unwrap();
        assert_eq!(deck.control.tune_seed, 42);
        assert_eq!(deck.control.solver_params().tune_seed, 42);
        let re = parse_deck(&render_deck(&deck)).unwrap();
        assert_eq!(re.control.tune_seed, 42);
        assert_eq!(re.control.solver, "auto");
    }

    #[test]
    fn tl_precision_parses_and_defaults() {
        assert_eq!(mini_deck("tl_solver=cg").unwrap().control.precision, None);
        for (text, want) in [
            ("tl_precision=f64", Precision::F64),
            ("tl_precision=double", Precision::F64),
            ("tl_precision=f32", Precision::F32),
            ("tl_precision=single", Precision::F32),
            ("tl_precision=mixed", Precision::Mixed),
            ("tl_precision=MIXED", Precision::Mixed),
        ] {
            let deck = mini_deck(text).unwrap();
            assert_eq!(deck.control.precision, Some(want), "{text}");
        }
        // an explicitly named reduced-precision solver is NOT demoted by
        // the default (absent) precision override
        let deck = mini_deck("tl_solver=mixed_cg").unwrap();
        assert_eq!(deck.control.effective_solver().unwrap(), "mixed_cg");
    }

    #[test]
    fn tl_precision_routes_the_effective_solver() {
        let deck = mini_deck("tl_solver=cg\ntl_precision=mixed").unwrap();
        assert_eq!(deck.control.solver, "cg", "the deck keeps the request");
        assert_eq!(deck.control.effective_solver().unwrap(), "mixed_cg");
        // order must not matter
        let deck = mini_deck("tl_precision=mixed\ntl_use_ppcg").unwrap();
        assert_eq!(deck.control.effective_solver().unwrap(), "mixed_ppcg");
        let deck = mini_deck("tl_solver=cg\ntl_precision=f32").unwrap();
        assert_eq!(deck.control.effective_solver().unwrap(), "cg_f32");
    }

    #[test]
    fn tl_precision_unknown_value_is_an_error() {
        let e = mini_deck("tl_precision=f16").unwrap_err();
        assert!(e.contains("unknown precision 'f16'"), "{e}");
        assert!(e.contains("f64, f32, mixed"), "{e}");
        assert!(e.contains("line 5"), "{e}");
    }

    #[test]
    fn tl_precision_conflicts_with_serial_only_solver() {
        let e = mini_deck("tl_solver=amg\ntl_precision=mixed").unwrap_err();
        assert!(e.contains("amg"), "{e}");
        assert!(e.contains("mixed"), "{e}");
        assert!(e.contains("serial-only"), "{e}");
        // the conflict is caught regardless of key order
        let e2 = mini_deck("tl_precision=mixed\ntl_solver=amg").unwrap_err();
        assert!(e2.contains("serial-only"), "{e2}");
        // and methods with no reduced-precision variant are rejected too
        let e3 = mini_deck("tl_solver=jacobi\ntl_precision=f32").unwrap_err();
        assert!(e3.contains("jacobi"), "{e3}");
    }

    #[test]
    fn tl_precision_roundtrips_through_render() {
        let mut deck = crooked_pipe_deck(16, "cg");
        deck.control.precision = Some(Precision::Mixed);
        let re = parse_deck(&render_deck(&deck)).expect("rendered deck must parse");
        assert_eq!(re.control.precision, Some(Precision::Mixed));
        assert_eq!(re.control.effective_solver().unwrap(), "mixed_cg");
    }

    #[test]
    fn unknown_solver_lists_registered_names() {
        for line in ["tl_solver=sor", "tl_use_sor"] {
            let e = parse_deck(&format!(
                "*tea\nstate 1 density=1 energy=1\nx_cells=8\ny_cells=8\n{line}\n*endtea"
            ))
            .unwrap_err();
            assert!(e.contains("unknown solver 'sor'"), "{e}");
            for name in crate::solver_registry().names() {
                assert!(e.contains(name), "{e} should list {name}");
            }
            assert!(e.contains("line 5"), "{e}");
        }
    }

    #[test]
    fn control_steps_respects_end_step() {
        let mut c = Control {
            dt: 0.04,
            end_time: 15.0,
            ..Control::default()
        };
        assert_eq!(c.steps(), 375);
        c.end_step = 10;
        assert_eq!(c.steps(), 10);
    }
}
