//! The `tealeaf` command-line driver.
//!
//! Runs a heat-conduction simulation from a deck file or from built-in
//! crooked-pipe defaults, on one or many simulated ranks, and prints the
//! per-step diagnostics the reference prints.

use std::path::PathBuf;
use std::process::ExitCode;
use tea_app::{
    crooked_pipe_deck, find_repo_root, parse_deck, run_serial, run_threaded_ranks, semantic_audit,
    serve_decks_with_plan, solver_registry, write_field_csv, write_field_ppm, DeckJob, RankOutput,
};
use tea_core::{Precision, PreconKind, SolverParams};
use tea_fault::FaultPlan;
use tea_serve::ServeOptions;

const USAGE: &str = "\
tealeaf — TeaLeaf heat-conduction mini-app (Rust reproduction)

USAGE:
    tealeaf [OPTIONS]

OPTIONS:
    --deck <file>        read a tea.in-style deck (explicitly passed
                         flags below override its values)
    --cells <n>          mesh resolution n x n            [default: 128]
    --solver <s>         any registered solver name       [default: cg]
                         (see --list-solvers; 'auto' races the tunable
                         solvers and keeps the cheapest)
    --precon <p>         none | jac_diag | jac_block      [default: none]
    --precision <x>      f64 | f32 | mixed                [default: f64]
                         (mixed: f32 preconditioning, f64 recurrence)
    --depth <d>          PPCG matrix-powers halo depth    [default: 1]
    --inner <m>          PPCG inner steps                 [default: 16]
    --steps <n>          number of time steps             [default: 10]
    --dt <t>             time step                        [default: 0.04]
    --eps <e>            solver tolerance                 [default: 1e-10]
    --tune-seed <n>      seed for --solver auto's candidate
                         search order                     [default: 0]
    --ranks <r>          simulated MPI ranks (threads)    [default: 1]
    --threads <t>        kernel worker threads per rank
                         [default: TEA_NUM_THREADS or all cores]
    --out <prefix>       write <prefix>.ppm and <prefix>.csv of the final field
    --quiet              only print the final summary
    --list-solvers       print the registered solvers and exit
    --audit              run the semantic audits (solver registry,
                         deck-key drift, benchmark artefact schemas),
                         print the machine-readable report to stdout
                         and exit nonzero on any violation
    --help               show this help

SERVING (batched multi-solve mode):
    --serve <joblist>    drain a queue of decks instead of running one:
                         the joblist names one deck file per line
                         ('#' comments and blank lines are skipped;
                         repeat a line to resubmit the same deck).
                         Sessions are pooled across jobs with equal
                         setups; prints jobs/sec, latency percentiles
                         and the session-cache hit/miss counters.
    --workers <w>        concurrent jobs in flight  [default: all cores]
    --no-cache           build every job cold (baseline for comparing
                         the session cache's effect)
    --deadline <secs>    wall-clock budget per job attempt; an expired
                         solve is cancelled at its next iteration and
                         the job reports a timeout
    --retries <n>        extra attempts for transient failures (panics,
                         divergence)                      [default: 0]
    --fault-plan <s:r>   arm deterministic fault injection: seed s,
                         fault rate r in 0.0..=1.0 (e.g. 42:0.2) —
                         faulted jobs recover via retry and the
                         precision ladder; for testing the queue's
                         fault tolerance
";

/// Solver/stepping flags are `Option` so that, with `--deck`, only the
/// flags the user actually passed override the deck (as the usage text
/// promises); without a deck the documented defaults apply.
struct Args {
    deck_path: Option<PathBuf>,
    cells: usize,
    solver: Option<String>,
    precon: Option<PreconKind>,
    precision: Option<Precision>,
    depth: Option<usize>,
    inner: Option<usize>,
    steps: Option<u64>,
    dt: Option<f64>,
    eps: Option<f64>,
    tune_seed: Option<u64>,
    ranks: usize,
    threads: Option<usize>,
    out: Option<String>,
    quiet: bool,
    serve: Option<PathBuf>,
    workers: usize,
    no_cache: bool,
    deadline: Option<f64>,
    retries: u32,
    fault_plan: Option<FaultPlan>,
    audit: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deck_path: None,
        cells: 128,
        solver: None,
        precon: None,
        precision: None,
        depth: None,
        inner: None,
        steps: None,
        dt: None,
        eps: None,
        tune_seed: None,
        ranks: 1,
        threads: None,
        out: None,
        quiet: false,
        serve: None,
        workers: 0,
        no_cache: false,
        deadline: None,
        retries: 0,
        fault_plan: None,
        audit: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value =
            || -> Result<String, String> { it.next().ok_or(format!("{flag} needs a value")) };
        match flag.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--deck" => args.deck_path = Some(PathBuf::from(value()?)),
            "--cells" => args.cells = value()?.parse().map_err(|e| format!("--cells: {e}"))?,
            "--solver" => {
                // resolve eagerly so typos fail before any work happens,
                // with the registered names in the message
                args.solver = Some(
                    solver_registry()
                        .resolve(&value()?)
                        .map_err(|e| e.to_string())?
                        .name
                        .to_string(),
                );
            }
            "--precon" => {
                args.precon = Some(match value()?.as_str() {
                    "none" => PreconKind::None,
                    "jac_diag" | "diag" => PreconKind::Diagonal,
                    "jac_block" | "block" => PreconKind::BlockJacobi,
                    other => return Err(format!("unknown preconditioner '{other}'")),
                })
            }
            "--precision" => args.precision = Some(Precision::parse(&value()?)?),
            "--depth" => args.depth = Some(value()?.parse().map_err(|e| format!("--depth: {e}"))?),
            "--inner" => args.inner = Some(value()?.parse().map_err(|e| format!("--inner: {e}"))?),
            "--steps" => args.steps = Some(value()?.parse().map_err(|e| format!("--steps: {e}"))?),
            "--dt" => args.dt = Some(value()?.parse().map_err(|e| format!("--dt: {e}"))?),
            "--eps" => args.eps = Some(value()?.parse().map_err(|e| format!("--eps: {e}"))?),
            "--tune-seed" => {
                args.tune_seed = Some(value()?.parse().map_err(|e| format!("--tune-seed: {e}"))?)
            }
            "--ranks" => args.ranks = value()?.parse().map_err(|e| format!("--ranks: {e}"))?,
            "--threads" => {
                args.threads = Some(value()?.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--out" => args.out = Some(value()?),
            "--quiet" => args.quiet = true,
            "--serve" => args.serve = Some(PathBuf::from(value()?)),
            "--workers" => {
                args.workers = value()?.parse().map_err(|e| format!("--workers: {e}"))?
            }
            "--no-cache" => args.no_cache = true,
            "--deadline" => {
                args.deadline = Some(value()?.parse().map_err(|e| format!("--deadline: {e}"))?)
            }
            "--retries" => {
                args.retries = value()?.parse().map_err(|e| format!("--retries: {e}"))?
            }
            "--fault-plan" => args.fault_plan = Some(FaultPlan::parse(&value()?)?),
            "--audit" => args.audit = true,
            "--list-solvers" => {
                print_solvers();
                std::process::exit(0);
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok(args)
}

/// Prints each registered solver's name, aliases, metadata and the
/// default options it would run with (`--list-solvers`).
fn print_solvers() {
    let defaults = SolverParams::default();
    println!("registered solvers:\n");
    for meta in solver_registry().iter() {
        let aliases = if meta.aliases.is_empty() {
            String::new()
        } else {
            format!(" (aliases: {})", meta.aliases.join(", "))
        };
        println!("  {}{aliases}", meta.name);
        println!("      {}", meta.summary);
        let mut notes = Vec::new();
        if meta.preconditioned {
            notes.push(format!("precon={}", defaults.precon.label()));
        }
        if meta.needs_eigen_estimate {
            notes.push(format!(
                "presteps={} eigen_safety={}",
                defaults.presteps, defaults.eigen_safety
            ));
        }
        if meta.deep_halo {
            notes.push(format!(
                "halo_depth={} inner_steps={}",
                defaults.halo_depth, defaults.inner_steps
            ));
        }
        if meta.serial_only {
            notes.push("serial-only".into());
        }
        if meta.tunable {
            notes.push("tunable".into());
        }
        if meta.precision != Precision::F64 {
            notes.push(format!("precision={}", meta.precision.label()));
        }
        if !notes.is_empty() {
            println!("      defaults: {}", notes.join(", "));
        }
    }
    println!("\nselect with --solver <name>, or tl_solver=<name> in a deck");
    println!("'auto' races the solvers marked tunable and keeps the cheapest (--tune-seed)");
}

/// `--serve <joblist>`: drain a queue of deck files through the session
/// driver and print queue statistics. Exit code is FAILURE when the
/// joblist is unusable or any job failed.
fn run_serve(joblist: &std::path::Path, args: &Args) -> ExitCode {
    let text = match std::fs::read_to_string(joblist) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", joblist.display());
            return ExitCode::FAILURE;
        }
    };
    let mut jobs = Vec::new();
    let mut load_failures = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let loaded = std::fs::read_to_string(line)
            .map_err(|e| e.to_string())
            .and_then(|t| parse_deck(&t));
        match loaded {
            Ok(deck) => jobs.push(DeckJob {
                label: line.to_string(),
                deck,
            }),
            Err(e) => load_failures.push(format!("{line}: {e}")),
        }
    }
    for failure in &load_failures {
        eprintln!("error: {failure}");
    }
    if jobs.is_empty() {
        eprintln!("error: no runnable jobs in {}", joblist.display());
        return ExitCode::FAILURE;
    }

    let opts = ServeOptions {
        workers: args.workers,
        threads_per_job: args.threads,
        cache: !args.no_cache,
        deadline: args.deadline.map(std::time::Duration::from_secs_f64),
        retries: args.retries,
    };
    println!(
        "tealeaf --serve: {} job(s), {} worker(s), session cache {}{}{}",
        jobs.len(),
        opts.effective_workers(),
        if opts.cache { "on" } else { "off" },
        opts.deadline
            .map(|d| format!(", deadline {:.3}s", d.as_secs_f64()))
            .unwrap_or_default(),
        args.fault_plan
            .as_ref()
            .map(|p| format!(", fault plan seed {}", p.seed()))
            .unwrap_or_default(),
    );
    let report = serve_decks_with_plan(jobs, &opts, args.fault_plan.as_ref());

    for outcome in &report.outcomes {
        let out = match &outcome.result {
            Err(e) => {
                eprintln!("job {} failed: {e}", outcome.job);
                continue;
            }
            Ok(_) if args.quiet => continue,
            Ok(out) => out,
        };
        let converged = out.output.steps.iter().filter(|s| s.converged).count();
        let degraded = if out.escalations.is_empty() {
            String::new()
        } else {
            format!(
                " [degraded: {} → {}]",
                out.escalations.join(" → "),
                out.solver
            )
        };
        println!(
            "job {:>4}: {} step(s) ({converged} converged), {:.3}s{degraded}",
            outcome.job,
            out.output.steps.len(),
            outcome.wall_s,
        );
        if let Some(tune) = &out.tune {
            for line in tune.summary_lines() {
                println!("           {line}");
            }
        }
    }

    let s = report.stats;
    println!("\nqueue summary:");
    println!("  jobs             {} ({} failed)", s.jobs, s.failed);
    println!("  wall             {:.3} s", s.wall_s);
    println!("  throughput       {:.2} jobs/sec", s.jobs_per_sec);
    println!("  latency p50      {:.4} s", s.p50_latency_s);
    println!("  latency p99      {:.4} s", s.p99_latency_s);
    println!(
        "  session cache    {} hit(s), {} miss(es), {} prepare(s)",
        s.cache.hits, s.cache.misses, s.cache.prepares
    );
    if s.timeouts + s.retries + s.panics_recovered > 0 {
        println!(
            "  recovery         {} timeout(s), {} retry(ies), {} panic(s) recovered",
            s.timeouts, s.retries, s.panics_recovered
        );
    }

    if s.failed > 0 || !load_failures.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `tealeaf --audit`: run the semantic audits, print the
/// machine-readable report to stdout (human-readable findings go to
/// stderr) and exit nonzero on any violation.
fn run_audit() -> ExitCode {
    let root = find_repo_root();
    let report = semantic_audit(root.as_deref());
    for finding in &report.findings {
        eprintln!("{}", finding.render());
    }
    print!("{}", report.to_json(false));
    if report.passed(false) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if args.audit {
        return run_audit();
    }

    if let Some(joblist) = args.serve.clone() {
        return run_serve(&joblist, &args);
    }

    let mut deck = match &args.deck_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            match parse_deck(&text) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => crooked_pipe_deck(args.cells, "cg"),
    };
    // explicit flags override the deck; without a deck, unset flags fall
    // back to the documented defaults
    if args.deck_path.is_none() {
        deck.control.end_step = 10;
        deck.control.summary_frequency = 1;
    }
    // --quiet applies regardless of where the deck came from: it both
    // silences the per-step table and disables the per-step summary
    // reductions that feed it
    if args.quiet {
        deck.control.summary_frequency = 0;
    }
    if let Some(solver) = &args.solver {
        deck.control.solver = solver.clone();
    }
    if let Some(precon) = args.precon {
        deck.control.precon = precon;
    }
    if args.precision.is_some() {
        deck.control.precision = args.precision;
    }
    if let Some(depth) = args.depth {
        deck.control.ppcg_halo_depth = depth;
    }
    if let Some(inner) = args.inner {
        deck.control.ppcg_inner_steps = inner;
    }
    if let Some(steps) = args.steps {
        deck.control.end_step = steps;
    }
    if let Some(dt) = args.dt {
        deck.control.dt = dt;
    }
    if let Some(eps) = args.eps {
        deck.control.opts.eps = eps;
    }
    if let Some(seed) = args.tune_seed {
        deck.control.tune_seed = seed;
    }
    // CLI --threads overrides the deck's tl_num_threads, which overrides
    // the ambient TEA_NUM_THREADS / core count
    if args.threads.is_some() {
        deck.control.threads = args.threads;
    }
    if let Some(t) = deck.control.threads {
        tea_core::set_num_threads(t);
    }

    // resolve solver × precision before any work so conflicts (e.g.
    // --solver amg --precision mixed) fail with a message, not a panic
    let effective_solver = match deck.control.effective_solver() {
        Ok(name) => name,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let precision_label = if effective_solver == "auto" {
        "auto"
    } else {
        solver_registry()
            .resolve(&effective_solver)
            .map(|m| m.precision.label())
            .unwrap_or("f64")
    };
    println!(
        "tealeaf: {}x{} cells, solver {}, precision {}, {} steps, {} rank(s), {} worker thread(s)",
        deck.problem.x_cells,
        deck.problem.y_cells,
        effective_solver,
        precision_label,
        deck.control.steps(),
        args.ranks,
        tea_core::num_threads(),
    );

    let started = std::time::Instant::now();
    // per-rank comm counters, summed machine-wide for the summary
    let (output, halo): (RankOutput, tea_comms::StatsSnapshot) = if args.ranks <= 1 {
        match run_serial(&deck) {
            Ok(out) => {
                let halo = out.comm;
                (out, halo)
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match run_threaded_ranks(&deck, args.ranks) {
            Ok(outs) => {
                let mut halo = tea_comms::StatsSnapshot::default();
                for o in &outs {
                    halo.merge(&o.comm);
                }
                match outs.into_iter().next() {
                    Some(first) => (first, halo),
                    None => {
                        eprintln!("error: no rank produced output");
                        return ExitCode::FAILURE;
                    }
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    let elapsed = started.elapsed().as_secs_f64();

    if !args.quiet {
        println!(
            "{:>6} {:>10} {:>8} {:>14} {:>14}",
            "step", "time", "iters", "avg temp", "wall(s)"
        );
        for s in &output.steps {
            let temp = s
                .summary
                .map(|x| format!("{:14.8}", x.average_temperature()))
                .unwrap_or_else(|| " ".repeat(14));
            println!(
                "{:>6} {:>10.4} {:>8} {} {:>14.6}",
                s.step, s.time, s.iterations, temp, s.wall
            );
        }
    }

    let s = output.final_summary;
    println!("\nfield summary:");
    println!("  volume           {:.6e}", s.volume);
    println!("  mass             {:.6e}", s.mass);
    println!("  internal energy  {:.6e}", s.internal_energy);
    println!("  temperature      {:.6e}", s.temperature);
    println!("  avg temperature  {:.8}", s.average_temperature());
    println!("\nsolver protocol:");
    println!("  outer iterations {}", output.trace.outer_iterations);
    println!("  inner iterations {}", output.trace.inner_iterations);
    println!("  stencil sweeps   {}", output.trace.spmv.total());
    println!("  halo exchanges   {}", output.trace.total_halo_exchanges());
    if halo.msgs_sent > 0 {
        // real per-width accounting: f32 halos cost 4 bytes per element
        println!(
            "  halo bytes       {} ({} f64 + {} f32 elems, all ranks)",
            halo.bytes_sent(),
            halo.elems_sent_f64,
            halo.elems_sent_f32,
        );
    }
    println!("  reductions       {}", output.trace.reductions);
    println!(
        "  threading        {} worker(s), parallel above {} cells",
        tea_core::num_threads(),
        tea_core::par_threshold()
    );
    println!("  wall time        {elapsed:.3}s");

    if let Some(tune) = &output.tune {
        println!("\nauto-tuning:");
        for line in tune.summary_lines() {
            println!("  {line}");
        }
    }

    if let (Some(prefix), Some(u)) = (&args.out, &output.final_u) {
        let ppm = PathBuf::from(format!("{prefix}.ppm"));
        let csv = PathBuf::from(format!("{prefix}.csv"));
        if let Err(e) = write_field_ppm(u, &ppm).and_then(|_| write_field_csv(u, &csv)) {
            eprintln!("error writing output: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} and {}", ppm.display(), csv.display());
    }
    ExitCode::SUCCESS
}
