//! The semantic audit behind `tealeaf --audit`: the three
//! cross-artefact contract checks combined into one [`AuditReport`].
//!
//! * **registry** — [`SolverRegistry::audit`] over the application's
//!   full registry (every tea-core builtin, tea-amg, the `auto`
//!   pseudo-solver): unique names/aliases, metadata consistency,
//!   precision routing closure.
//! * **deck_keys** — `tea_audit::deck_key_audit`: every `tl_*` key the
//!   deck parser knows appears in the README table and vice versa.
//! * **bench_artifacts** — `tea_audit::bench_artifact_audit`: the
//!   committed `BENCH_*.json` claim artefacts parse and carry the
//!   shared envelope.
//!
//! The textual linter is *not* run here — it wants source trees, not a
//! built binary, and stays `cargo run -p tea-audit`'s job. The two
//! file-based checks degrade gracefully when the binary runs outside a
//! source checkout (no deck.rs/README to read): they report a finding
//! saying so rather than silently passing.
//!
//! [`SolverRegistry::audit`]: tea_core::SolverRegistry::audit

use std::path::{Path, PathBuf};
use tea_audit::{AuditReport, Finding};

/// Locates the source checkout this binary belongs to: the nearest
/// ancestor of the current directory (then the build-time manifest
/// path) that has both `crates/` and `README.md`.
pub fn find_repo_root() -> Option<PathBuf> {
    let looks_right = |d: &Path| d.join("crates").is_dir() && d.join("README.md").is_file();
    if let Ok(mut dir) = std::env::current_dir() {
        loop {
            if looks_right(&dir) {
                return Some(dir);
            }
            if !dir.pop() {
                break;
            }
        }
    }
    let built_from = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    looks_right(&built_from).then_some(built_from)
}

/// Runs the full semantic audit and returns the machine-readable
/// report. `root` is the source checkout; pass [`find_repo_root`]'s
/// result (a `None` root still audits the registry and reports the
/// missing checkout as a finding).
pub fn semantic_audit(root: Option<&Path>) -> AuditReport {
    let mut report = AuditReport::new();

    let registry_findings: Vec<Finding> = crate::solver_registry()
        .audit()
        .into_iter()
        .map(|msg| Finding::deny("registry", "<solver registry>", 0, msg))
        .collect();
    report.record("registry", registry_findings);

    match root {
        Some(root) => {
            match tea_audit::deck_key_audit(root) {
                Ok(findings) => report.record("deck_keys", findings),
                Err(e) => report.record(
                    "deck_keys",
                    vec![Finding::deny(
                        "deck_keys",
                        "<repo root>",
                        0,
                        format!("audit could not read the checkout: {e}"),
                    )],
                ),
            }
            match tea_audit::bench_artifact_audit(root) {
                Ok(findings) => report.record("bench_artifacts", findings),
                Err(e) => report.record(
                    "bench_artifacts",
                    vec![Finding::deny(
                        "bench_artifacts",
                        "<repo root>",
                        0,
                        format!("audit could not read the checkout: {e}"),
                    )],
                ),
            }
        }
        None => report.record(
            "deck_keys",
            vec![Finding::deny(
                "deck_keys",
                "<repo root>",
                0,
                "no source checkout found — run from inside the repository \
                 (file-based audits need deck.rs and README.md)",
            )],
        ),
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_registry_passes_its_own_audit() {
        let findings = crate::solver_registry().audit();
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn semantic_audit_passes_on_the_checkout() {
        let root = find_repo_root().expect("tests run inside the checkout");
        let report = semantic_audit(Some(&root));
        assert!(
            report.passed(true),
            "{}",
            report
                .findings
                .iter()
                .map(|f| f.render())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(report.checks.len(), 3);
    }

    #[test]
    fn missing_checkout_is_a_finding_not_a_pass() {
        let report = semantic_audit(None);
        assert!(!report.passed(false));
        assert!(report.findings.iter().any(|f| f.rule == "deck_keys"));
    }
}
