//! # tea-app — the TeaLeaf application layer
//!
//! Ties the substrates together into the mini-app the paper describes:
//! `tea.in`-style input [`deck`]s, the time-stepping [`driver`] (serial
//! or one thread per simulated MPI rank), `field_summary` diagnostics
//! ([`summary`]) and field/series [`output`] writers.
//!
//! The `tealeaf` binary in this crate is the command-line entry point:
//!
//! ```text
//! tealeaf --cells 256 --solver ppcg --depth 8 --steps 10 --ranks 4
//! tealeaf --deck tea.in
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deck;
pub mod driver;
pub mod output;
pub mod summary;

pub use deck::{crooked_pipe_deck, parse_deck, render_deck, Control, Deck, SolverKind};
pub use driver::{run_rank, run_serial, run_threaded_ranks, RankOutput, StepRecord};
pub use output::{write_field_csv, write_field_ppm, write_field_vtk, write_series_csv};
pub use summary::{field_summary, FieldSummary};
