//! # tea-app — the TeaLeaf application layer
//!
//! Ties the substrates together into the mini-app the paper describes:
//! `tea.in`-style input [`deck`]s, the time-stepping [`driver`] (serial
//! or one thread per simulated MPI rank), `field_summary` diagnostics
//! ([`summary`]) and field/series [`output`] writers.
//!
//! The `tealeaf` binary in this crate is the command-line entry point:
//!
//! ```text
//! tealeaf --cells 256 --solver ppcg --depth 8 --steps 10 --ranks 4
//! tealeaf --deck tea.in
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod deck;
pub mod driver;
pub mod output;
pub mod serve;
pub mod summary;

pub use audit::{find_repo_root, semantic_audit};
pub use deck::{crooked_pipe_deck, parse_deck, render_deck, Control, Deck};
pub use driver::{
    run_rank, run_serial, run_serial_session, run_serial_session_with, run_threaded_ranks,
    DriverError, RankOutput, StepRecord,
};
pub use output::{write_field_csv, write_field_ppm, write_field_vtk, write_series_csv};
pub use serve::{serve_decks, serve_decks_with_plan, DeckJob, DeckOutcome};
pub use summary::{field_summary, FieldSummary};

use std::sync::OnceLock;
use tea_core::SolverRegistry;

/// The application's solver registry: every tea-core builtin (Jacobi,
/// CG, fused CG, Chebyshev, CPPCG, Richardson and the mixed/f32
/// variants), the tea-amg baseline, and the tea-tune `auto`
/// pseudo-solver. The deck parser (`tl_solver=<name>` and the legacy
/// `tl_use_*` switches), the driver, and the `tealeaf` CLI
/// (`--solver`, `--list-solvers`) all resolve names against this one
/// table, so a solver registered here is selectable everywhere.
pub fn solver_registry() -> &'static SolverRegistry {
    static REGISTRY: OnceLock<SolverRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut reg = tea_amg::full_registry();
        tea_tune::register_auto(&mut reg);
        reg
    })
}
