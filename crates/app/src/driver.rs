//! The TeaLeaf application driver.
//!
//! Per time step (matching the reference `tea_solve` loop):
//!
//! 1. `u⁰ = ρ·e` — build the right-hand side from the state fields;
//! 2. assemble face coefficients `Kx, Ky` from density and `dt`;
//! 3. solve `A·u = u⁰` with the configured solver (warm start `u = u⁰`);
//! 4. `e = u/ρ` — fold the new temperature back into energy;
//! 5. field summary (reduced diagnostics) at the reporting cadence.
//!
//! The same [`run_rank`] body executes serially ([`run_serial`]) or as
//! one thread per rank ([`run_threaded_ranks`]); decomposed runs gather
//! the final temperature field to rank 0 for output.

use crate::deck::Deck;
use crate::summary::{field_summary, FieldSummary};
use tea_amg::MgTrace;
use tea_comms::{
    gather_to_root, run_threaded as comm_run, Communicator, HaloLayout, SerialComm, StatsSnapshot,
};
use tea_core::{
    Assembly, DynTile, SessionSpec, SetupCache, SetupKey, SolveContext, SolveControls,
    SolveSession, SolveStatus, SolveTrace, Tile, TileBounds, TileOperator, Workspace,
};
use tea_mesh::{timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D};
use tea_tune::TuneLog;

/// Why a deck could not be driven. Until this type existed the driver
/// panicked on malformed decks, which is unacceptable once a serving
/// queue feeds it jobs from untrusted lists — one bad deck must fail
/// its own job, not the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// The deck's problem definition failed validation.
    InvalidProblem(String),
    /// The solver name or precision did not resolve in the registry.
    Solver(String),
    /// A serial-only solver was asked to run decomposed.
    SerialOnly {
        /// The offending solver's canonical name.
        solver: String,
        /// Communicator size of the attempted run.
        ranks: usize,
    },
    /// The decomposition does not match the communicator size.
    DecompositionMismatch {
        /// Ranks in the decomposition.
        decomp: usize,
        /// Ranks in the communicator.
        comm: usize,
    },
    /// A solve produced a non-finite residual instead of converging —
    /// the structured form of what used to burn the whole iteration
    /// cap on NaNs. The serving layer escalates these along the
    /// precision ladder.
    Diverged {
        /// Canonical name of the solver that diverged.
        solver: String,
        /// 1-based time step whose solve diverged.
        step: u64,
        /// Outer iteration at which divergence was detected.
        iteration: u64,
    },
    /// A solve was cancelled by its stop handle (deadline or explicit
    /// cancellation) before finishing.
    Cancelled {
        /// 1-based time step whose solve was cancelled.
        step: u64,
    },
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::InvalidProblem(why) => write!(f, "invalid problem: {why}"),
            DriverError::Solver(why) => write!(f, "solver selection failed: {why}"),
            DriverError::SerialOnly { solver, ranks } => write!(
                f,
                "the {solver} solver runs serially (see its docs), got {ranks} ranks"
            ),
            DriverError::DecompositionMismatch { decomp, comm } => write!(
                f,
                "decomposition has {decomp} ranks but the communicator has {comm}"
            ),
            DriverError::Diverged {
                solver,
                step,
                iteration,
            } => write!(
                f,
                "{solver} diverged (non-finite residual) at step {step}, iteration {iteration}"
            ),
            DriverError::Cancelled { step } => {
                write!(f, "solve cancelled at step {step} (deadline or stop)")
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// Per-step record of the driver.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// 1-based step index.
    pub step: u64,
    /// Simulation time after the step.
    pub time: f64,
    /// Solver iterations spent.
    pub iterations: u64,
    /// Whether the solve converged.
    pub converged: bool,
    /// Euclidean norm of the solve's initial residual.
    pub initial_residual: f64,
    /// Euclidean norm of the solve's final residual.
    pub final_residual: f64,
    /// Diagnostics (present on reporting steps).
    pub summary: Option<FieldSummary>,
    /// Wall-clock seconds for the solve.
    pub wall: f64,
}

/// Everything a rank returns from a run.
#[derive(Debug)]
pub struct RankOutput {
    /// Per-step records.
    pub steps: Vec<StepRecord>,
    /// Accumulated solver protocol over all steps.
    pub trace: SolveTrace,
    /// Accumulated multigrid protocol (AMG runs only).
    pub mg_trace: Option<MgTrace>,
    /// Auto-tuning decision record (`tl_solver=auto` runs only).
    pub tune: Option<TuneLog>,
    /// Final gathered temperature field (rank 0 only).
    pub final_u: Option<Field2D>,
    /// Final summary.
    pub final_summary: FieldSummary,
    /// This rank's communication counters over the whole run, with
    /// point-to-point volume accounted in real bytes by element width
    /// (native `f32` halo exchanges count 4 bytes per element).
    pub comm: StatsSnapshot,
}

/// Runs the deck on one rank of `decomp`.
///
/// The solver is resolved by name from [`crate::solver_registry`] and
/// driven entirely through the [`tea_core::IterativeSolver`] trait —
/// the driver
/// contains no per-solver dispatch, so registering a new method makes
/// it deck- and CLI-selectable without touching this file.
///
/// # Errors
/// [`DriverError`] when the deck's problem fails validation, the solver
/// name or precision does not resolve, the decomposition does not match
/// the communicator, or a serial-only solver is run decomposed.
pub fn run_rank<C: Communicator + ?Sized>(
    deck: &Deck,
    decomp: &Decomposition2D,
    comm: &C,
) -> Result<RankOutput, DriverError> {
    let problem = &deck.problem;
    let control = &deck.control;
    problem.validate().map_err(DriverError::InvalidProblem)?;
    if decomp.ranks() != comm.size() {
        return Err(DriverError::DecompositionMismatch {
            decomp: decomp.ranks(),
            comm: comm.size(),
        });
    }

    let registry = crate::solver_registry();
    // tl_precision re-routes within the solver family (cg → mixed_cg /
    // cg_f32, ppcg → mixed_ppcg); at the default f64 this is the
    // identity on the deck's solver name
    let solver_name = control.effective_solver().map_err(DriverError::Solver)?;
    let meta = registry
        .resolve(&solver_name)
        .map_err(|e| DriverError::Solver(e.to_string()))?;
    if meta.serial_only && comm.size() != 1 {
        return Err(DriverError::SerialOnly {
            solver: meta.name.to_string(),
            ranks: comm.size(),
        });
    }
    let mut solver = registry
        .create(&solver_name, &control.solver_params())
        .map_err(|e| DriverError::Solver(e.to_string()))?;

    let mesh = Mesh2D::new(decomp, comm.rank(), problem.extent);
    let layout = HaloLayout::new(decomp, comm.rank());
    let halo = solver.halo_depth().max(1);
    let (nx, ny) = (mesh.nx(), mesh.ny());

    // State fields and face coefficients carry one ghost layer more than
    // the solver's halo: the operator diagonal at matrix-powers extension
    // `halo` reads `Kx(j+1)` / `Ky(k+1)`, so a Diagonal preconditioner on
    // a decomposed tile needs coefficients assembled a layer deeper. The
    // per-cell values are depth-independent, so solver results are
    // unchanged; only the loud assert on deep-halo setups goes away.
    let mut density = Field2D::new(nx, ny, halo + 1);
    let mut energy = Field2D::new(nx, ny, halo + 1);
    problem.apply_states(&mesh, &mut density, &mut energy);

    let (rx, ry) = timestep_scalings(&mesh, control.dt);
    let bounds = TileBounds::new(&mesh, halo);

    let mut u = Field2D::new(nx, ny, halo);
    let mut b = Field2D::new(nx, ny, halo);
    let mut ws = Workspace::new(nx, ny, halo);

    let mut trace = SolveTrace::new(solver.label());
    let mut steps = Vec::new();

    let nsteps = control.steps();
    let mut time = 0.0;
    for step in 1..=nsteps {
        // 1-2. rhs and operator (density is constant but the reference
        // reassembles every step; we follow it)
        let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, halo + 1);
        let op = TileOperator::new(coeffs, bounds);
        let tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::with_assembly(
            &tile,
            Assembly {
                density: &density,
                coefficient: problem.coefficient,
                rx,
                ry,
            },
        );
        for k in 0..ny as isize {
            let dr = density.row(k, 0, nx as isize);
            let er = energy.row(k, 0, nx as isize);
            let br = b.row_mut(k, 0, nx as isize);
            for i in 0..br.len() {
                br[i] = dr[i] * er[i];
            }
        }
        u.copy_interior_from(&b);

        // 3. the solve, through the uniform trait protocol
        let started = std::time::Instant::now();
        solver.prepare(&ctx, &control.opts);
        let result = solver.solve(&ctx, &mut u, &b, &mut ws, &mut trace);
        let wall = started.elapsed().as_secs_f64();

        // 4. fold back into energy
        for k in 0..ny as isize {
            let ur = u.row(k, 0, nx as isize);
            let dr = density.row(k, 0, nx as isize);
            let er = energy.row_mut(k, 0, nx as isize);
            for i in 0..er.len() {
                er[i] = ur[i] / dr[i];
            }
        }

        time += control.dt;
        let report = control.summary_frequency > 0 && step % control.summary_frequency == 0;
        let summary = if report || step == nsteps {
            Some(field_summary(&mesh, &density, &energy, &u, comm))
        } else {
            None
        };
        steps.push(StepRecord {
            step,
            time,
            iterations: result.iterations,
            converged: result.converged,
            initial_residual: result.initial_residual,
            final_residual: result.final_residual,
            summary,
            wall,
        });
    }

    // solver-specific diagnostics come back type-erased through the
    // trait hook; the driver only knows the payload types it reports
    let (mg_trace, tune) = split_diagnostics(solver.take_diagnostics());

    // snapshot the counters before the diagnostic gather below, so the
    // record reflects the solver protocol's traffic, not output shipping
    let comm_stats = comm.stats().snapshot();

    let final_summary = field_summary(&mesh, &density, &energy, &u, comm);
    let final_u = gather_to_root(
        &{
            // strip to interior for gathering
            let mut interior = Field2D::new(nx, ny, 0);
            interior.copy_interior_from(&u);
            interior
        },
        decomp,
        comm,
    );

    Ok(RankOutput {
        steps,
        trace,
        mg_trace,
        tune,
        final_u,
        final_summary,
        comm: comm_stats,
    })
}

/// Sorts a solver's type-erased diagnostics into the payload types the
/// driver reports: the AMG V-cycle trace or the auto-tuner's decision
/// log.
fn split_diagnostics(diag: Option<Box<dyn std::any::Any>>) -> (Option<MgTrace>, Option<TuneLog>) {
    match diag {
        None => (None, None),
        Some(d) => match d.downcast::<MgTrace>() {
            Ok(mg) => (Some(*mg), None),
            Err(d) => match d.downcast::<TuneLog>() {
                Ok(tune) => (None, Some(*tune)),
                Err(_) => (None, None),
            },
        },
    }
}

/// Applies the deck's thread-count override (if any) to the kernel
/// runtime. Called once per run entry point; a deck without the setting
/// leaves the ambient configuration (`TEA_NUM_THREADS` / cores) alone.
fn apply_thread_config(deck: &Deck) {
    if let Some(threads) = deck.control.threads {
        tea_core::set_num_threads(threads);
    }
}

/// Runs the deck on a single rank.
///
/// # Errors
/// [`DriverError`] as for [`run_rank`].
pub fn run_serial(deck: &Deck) -> Result<RankOutput, DriverError> {
    // validate before building the decomposition — zero-cell problems
    // must surface as an error, not a decomposition assert
    deck.problem
        .validate()
        .map_err(DriverError::InvalidProblem)?;
    apply_thread_config(deck);
    let decomp = Decomposition2D::with_grid(deck.problem.x_cells, deck.problem.y_cells, 1, 1);
    let comm = SerialComm::new();
    run_rank(deck, &decomp, &comm)
}

/// Runs the deck on `ranks` threaded ranks; returns per-rank outputs
/// (rank 0 holds the gathered field).
///
/// Each simulated rank is its own OS thread and each rank's sweeps use
/// the full configured worker count, so `ranks × threads` can
/// oversubscribe physical cores; pin `threads` (deck `tl_num_threads`,
/// CLI `--threads`, or `TEA_NUM_THREADS`) to `cores / ranks` for
/// node-realistic hybrid runs.
///
/// # Errors
/// [`DriverError`] as for [`run_rank`] — every rank hits the same deck
/// checks, so the first rank's error is returned.
pub fn run_threaded_ranks(deck: &Deck, ranks: usize) -> Result<Vec<RankOutput>, DriverError> {
    deck.problem
        .validate()
        .map_err(DriverError::InvalidProblem)?;
    apply_thread_config(deck);
    let decomp = Decomposition2D::new(deck.problem.x_cells, deck.problem.y_cells, ranks);
    comm_run(decomp.ranks(), |comm| run_rank(deck, &decomp, comm))
        .into_iter()
        .collect()
}

/// Runs the deck serially through a reusable [`SolveSession`] checked
/// out of `cache` — the serving-queue counterpart of [`run_serial`].
///
/// The session path assembles the operator once per run (the reference
/// loop reassembles per step, but density is constant so the
/// coefficient values — and therefore the results — are identical),
/// prepares the solver only when the cache misses, and memoises the
/// Chebyshev-family eigenvalue analysis across repeated right-hand
/// sides. The session's communication counters are reset at checkout so
/// [`RankOutput::comm`] reports this run's solver traffic only, and the
/// session is checked back in before returning.
///
/// Unlike [`run_serial`] this does **not** apply the deck's thread
/// override: the kernel thread pool is process-global, and a serving
/// queue owns that budget for all jobs at once.
///
/// # Errors
/// [`DriverError`] as for [`run_rank`].
pub fn run_serial_session(deck: &Deck, cache: &SetupCache) -> Result<RankOutput, DriverError> {
    run_serial_session_with(deck, cache, SolveControls::default())
}

/// [`run_serial_session`] with an armed [`SolveControls`] bundle — the
/// fault-tolerant serving path. Per-step solves observe the stop
/// handle (deadlines/cancellation → [`DriverError::Cancelled`]) and
/// the probe (fault injection), and a solve that detects a non-finite
/// residual surfaces as [`DriverError::Diverged`] instead of burning
/// the iteration cap. On either failure the session is dropped rather
/// than checked back into `cache`: a poisoned or half-cancelled
/// session must never be handed to a later clean job.
///
/// # Errors
/// [`DriverError`] as for [`run_rank`], plus `Diverged`/`Cancelled`.
pub fn run_serial_session_with(
    deck: &Deck,
    cache: &SetupCache,
    controls: SolveControls<'_>,
) -> Result<RankOutput, DriverError> {
    let problem = &deck.problem;
    let control = &deck.control;
    problem.validate().map_err(DriverError::InvalidProblem)?;

    let registry = crate::solver_registry();
    let solver_name = control.effective_solver().map_err(DriverError::Solver)?;
    let spec = SessionSpec {
        solver: solver_name.clone(),
        // effective_solver already folded tl_precision into the name
        precision: None,
        opts: control.opts,
        params: control.solver_params(),
    };

    let decomp = Decomposition2D::with_grid(problem.x_cells, problem.y_cells, 1, 1);
    let mesh = Mesh2D::new(&decomp, 0, problem.extent);
    let (nx, ny) = (mesh.nx(), mesh.ny());
    // the *solver's* halo depth, not the deck's matrix-powers knob: the
    // auto pseudo-solver races deep-halo candidates regardless of the
    // deck's `tl_ppcg_halo_depth`, so fields must carry its full depth
    let halo = registry
        .create(&solver_name, &spec.params)
        .map_err(|e| DriverError::Solver(e.to_string()))?
        .halo_depth()
        .max(spec.params.halo_depth)
        .max(1);

    // same layout as run_rank: coefficients one layer deeper than the
    // solver halo so Diagonal preconditioning works at full depth
    let mut density = Field2D::new(nx, ny, halo + 1);
    let mut energy = Field2D::new(nx, ny, halo + 1);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, control.dt);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, halo + 1);
    let op = TileOperator::new(coeffs, TileBounds::new(&mesh, halo));

    let key = SetupKey::probe_with(&op, &spec, registry)
        .map_err(|e| DriverError::Solver(e.to_string()))?;
    let mut session = match cache.checkout(&key) {
        Some(session) => session,
        None => SolveSession::with_registry(op, &spec, registry)
            .map_err(|e| DriverError::Solver(e.to_string()))?
            .with_assembly(density.clone(), problem.coefficient, rx, ry),
    };
    session.reset_comm_stats();

    let summary_comm = SerialComm::new();
    let mut u = Field2D::new(nx, ny, halo);
    let mut b = Field2D::new(nx, ny, halo);
    let mut trace = SolveTrace::new(session.solver_label());
    let mut steps = Vec::new();

    let nsteps = control.steps();
    let mut time = 0.0;
    for step in 1..=nsteps {
        for k in 0..ny as isize {
            let dr = density.row(k, 0, nx as isize);
            let er = energy.row(k, 0, nx as isize);
            let br = b.row_mut(k, 0, nx as isize);
            for i in 0..br.len() {
                br[i] = dr[i] * er[i];
            }
        }
        u.copy_interior_from(&b);

        let started = std::time::Instant::now();
        let result = session.solve_controlled(&mut u, &b, controls);
        let wall = started.elapsed().as_secs_f64();
        trace.merge(&result.trace);

        // a diverged or cancelled session is dropped here (early
        // return, no checkin): its workspace may carry non-finite
        // state and must not be pooled for later jobs
        match result.status {
            SolveStatus::Diverged { iteration } => {
                return Err(DriverError::Diverged {
                    solver: solver_name,
                    step,
                    iteration,
                });
            }
            SolveStatus::Cancelled { .. } => return Err(DriverError::Cancelled { step }),
            SolveStatus::Converged | SolveStatus::IterationLimit => {}
        }

        for k in 0..ny as isize {
            let ur = u.row(k, 0, nx as isize);
            let dr = density.row(k, 0, nx as isize);
            let er = energy.row_mut(k, 0, nx as isize);
            for i in 0..er.len() {
                er[i] = ur[i] / dr[i];
            }
        }

        time += control.dt;
        let report = control.summary_frequency > 0 && step % control.summary_frequency == 0;
        let summary = if report || step == nsteps {
            Some(field_summary(&mesh, &density, &energy, &u, &summary_comm))
        } else {
            None
        };
        steps.push(StepRecord {
            step,
            time,
            iterations: result.iterations,
            converged: result.converged,
            initial_residual: result.initial_residual,
            final_residual: result.final_residual,
            summary,
            wall,
        });
    }

    let (mg_trace, tune) = split_diagnostics(session.take_diagnostics());
    let comm_stats = session.comm_stats();
    let final_summary = field_summary(&mesh, &density, &energy, &u, &summary_comm);
    let final_u = {
        let mut interior = Field2D::new(nx, ny, 0);
        interior.copy_interior_from(&u);
        Some(interior)
    };

    cache.checkin(session);

    Ok(RankOutput {
        steps,
        trace,
        mg_trace,
        tune,
        final_u,
        final_summary,
        comm: comm_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::{crooked_pipe_deck, Control};

    fn small_deck(n: usize, solver: &str, steps: u64) -> Deck {
        let mut deck = crooked_pipe_deck(n, solver);
        deck.control = Control {
            solver: solver.into(),
            end_step: steps,
            summary_frequency: 1,
            ..Default::default()
        };
        deck
    }

    #[test]
    fn serial_cg_run_conserves_energy() {
        let deck = small_deck(24, "cg", 3);
        let out = run_serial(&deck).expect("deck runs");
        assert_eq!(out.steps.len(), 3);
        assert!(out.steps.iter().all(|s| s.converged));
        // insulated boundaries: the temperature integral Σ u·vol is
        // conserved by the implicit step (A's row sums are 1)
        let t0 = out.steps[0].summary.unwrap().temperature;
        let t2 = out.steps[2].summary.unwrap().temperature;
        assert!(
            (t0 - t2).abs() < 1e-6 * t0.abs(),
            "temperature integral must be conserved: {t0} vs {t2}"
        );
        assert!(out.final_u.is_some());
    }

    #[test]
    fn heat_flows_down_the_pipe() {
        let deck = small_deck(32, "cg", 8);
        let out = run_serial(&deck).expect("deck runs");
        let u = out.final_u.unwrap();
        // the pipe inlet region must stay warmer than the far wall corner
        let inlet = u.at(3, 4); // inside the source
        let far_wall = u.at(31, 31);
        assert!(
            inlet > 10.0 * far_wall.max(1e-30),
            "inlet {inlet} vs far {far_wall}"
        );
    }

    #[test]
    fn all_solvers_agree_on_the_final_field() {
        let reference = run_serial(&small_deck(16, "cg", 2)).expect("deck runs");
        let uref = reference.final_u.unwrap();
        for solver in ["chebyshev", "ppcg", "amg"] {
            let out = run_serial(&small_deck(16, solver, 2)).expect("deck runs");
            let u = out.final_u.unwrap();
            for k in 0..16isize {
                for j in 0..16isize {
                    let (a, b) = (u.at(j, k), uref.at(j, k));
                    assert!(
                        (a - b).abs() <= 1e-5 * b.abs().max(1e-12),
                        "{solver} differs from CG at ({j},{k}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_run_matches_serial() {
        let deck = small_deck(24, "cg", 2);
        let serial = run_serial(&deck).expect("deck runs");
        let ranks = run_threaded_ranks(&deck, 4).expect("deck runs");
        let us = serial.final_u.unwrap();
        let ut = ranks[0].final_u.as_ref().unwrap();
        for k in 0..24isize {
            for j in 0..24isize {
                let (a, b) = (ut.at(j, k), us.at(j, k));
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1e-12),
                    "threaded differs at ({j},{k}): {a} vs {b}"
                );
            }
        }
        // summaries agree too
        let (s, t) = (serial.final_summary, ranks[0].final_summary);
        assert!((s.temperature - t.temperature).abs() <= 1e-9 * s.temperature.abs());
    }

    #[test]
    fn ppcg_deep_halo_runs_decomposed() {
        let mut deck = small_deck(32, "ppcg", 2);
        deck.control.ppcg_halo_depth = 4;
        let serial = run_serial(&deck).expect("deck runs");
        let ranks = run_threaded_ranks(&deck, 4).expect("deck runs");
        let us = serial.final_u.unwrap();
        let ut = ranks[0].final_u.as_ref().unwrap();
        for k in 0..32isize {
            for j in 0..32isize {
                let (a, b) = (ut.at(j, k), us.at(j, k));
                assert!(
                    (a - b).abs() <= 1e-8 * b.abs().max(1e-10),
                    "matrix-powers decomposed run differs at ({j},{k}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn diagonal_precon_deep_halo_runs_decomposed() {
        // regression: this configuration used to die in Diagonal setup
        // ("reads face coefficients one cell beyond") on decomposed
        // tiles; coefficients are now assembled one layer deeper than
        // the solver halo, so it must run and agree with serial
        let mut deck = small_deck(32, "ppcg", 2);
        deck.control.ppcg_halo_depth = 4;
        deck.control.precon = tea_core::PreconKind::Diagonal;
        let serial = run_serial(&deck).expect("deck runs");
        let ranks = run_threaded_ranks(&deck, 4).expect("deck runs");
        assert!(serial.steps.iter().all(|s| s.converged));
        assert!(ranks[0].steps.iter().all(|s| s.converged));
        let us = serial.final_u.unwrap();
        let ut = ranks[0].final_u.as_ref().unwrap();
        for k in 0..32isize {
            for j in 0..32isize {
                let (a, b) = (ut.at(j, k), us.at(j, k));
                assert!(
                    (a - b).abs() <= 1e-8 * b.abs().max(1e-10),
                    "preconditioned matrix-powers run differs at ({j},{k}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn mixed_ppcg_decomposed_matches_serial() {
        // end-to-end proof of the native-f32 deep-halo wire: a 4-rank
        // mixed_ppcg run (inner smoothing halos exchanged as 4-byte
        // payloads) must reproduce the serial answer to solver accuracy
        let mut deck = small_deck(32, "mixed_ppcg", 2);
        deck.control.ppcg_halo_depth = 4;
        let serial = run_serial(&deck).expect("deck runs");
        let ranks = run_threaded_ranks(&deck, 4).expect("deck runs");
        assert!(serial.steps.iter().all(|s| s.converged));
        assert!(ranks[0].steps.iter().all(|s| s.converged));
        let us = serial.final_u.unwrap();
        let ut = ranks[0].final_u.as_ref().unwrap();
        for k in 0..32isize {
            for j in 0..32isize {
                let (a, b) = (ut.at(j, k), us.at(j, k));
                assert!(
                    (a - b).abs() <= 1e-7 * b.abs().max(1e-10),
                    "mixed decomposed run differs at ({j},{k}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn decomposed_runs_record_halo_bytes_by_width() {
        // pure-f64 solver: every payload element is 8 bytes
        let deck = small_deck(24, "cg", 1);
        let ranks = run_threaded_ranks(&deck, 4).expect("deck runs");
        for r in &ranks {
            assert!(r.comm.bytes_sent() > 0, "decomposed ranks must exchange");
            assert_eq!(r.comm.elems_sent_f32, 0);
            assert_eq!(r.comm.bytes_sent(), r.comm.elems_sent_f64 * 8);
        }
        // mixed PPCG: the inner smoothing halos travel at native f32
        // width while the outer f64 recurrence still exchanges f64
        let mut deck = small_deck(24, "mixed_ppcg", 1);
        deck.control.ppcg_halo_depth = 2;
        let ranks = run_threaded_ranks(&deck, 4).expect("deck runs");
        for r in &ranks {
            assert!(r.comm.elems_sent_f32 > 0, "inner halos must be f32");
            assert!(r.comm.elems_sent_f64 > 0, "outer halos stay f64");
        }
        // serial runs have no neighbours: zero point-to-point traffic
        let out = run_serial(&small_deck(16, "cg", 1)).expect("deck runs");
        assert_eq!(out.comm.msgs_sent, 0);
        assert_eq!(out.comm.bytes_sent(), 0);
    }

    #[test]
    fn malformed_decks_error_instead_of_panicking() {
        let mut deck = small_deck(16, "cg", 1);
        deck.control.solver = "warp".into();
        match run_serial(&deck) {
            Err(DriverError::Solver(msg)) => assert!(msg.contains("warp"), "{msg}"),
            other => panic!("expected a solver error, got {other:?}"),
        }

        let deck = small_deck(16, "amg", 1);
        match run_threaded_ranks(&deck, 4) {
            Err(DriverError::SerialOnly { solver, ranks }) => {
                assert_eq!(solver, "amg");
                assert_eq!(ranks, 4);
            }
            other => panic!("expected a serial-only error, got {other:?}"),
        }

        let mut deck = small_deck(16, "cg", 1);
        deck.problem.x_cells = 0;
        assert!(matches!(
            run_serial(&deck),
            Err(DriverError::InvalidProblem(_))
        ));
    }

    #[test]
    fn session_driver_matches_reference_bitwise() {
        // the serving path assembles once per job and prepares once per
        // cached session instead of once per step — but the coefficient
        // values are identical, so every residual in every step must be
        // bit-for-bit the reference driver's
        let cache = SetupCache::new();
        for solver in ["cg", "chebyshev", "ppcg", "amg"] {
            let mut deck = small_deck(24, solver, 3);
            if solver == "ppcg" {
                deck.control.ppcg_halo_depth = 4;
                deck.control.precon = tea_core::PreconKind::Diagonal;
            }
            let reference = run_serial(&deck).expect("deck runs");
            let cold = run_serial_session(&deck, &cache).expect("deck runs");
            let warm = run_serial_session(&deck, &cache).expect("deck runs");

            for out in [&cold, &warm] {
                assert_eq!(reference.steps.len(), out.steps.len(), "{solver}");
                for (a, b) in reference.steps.iter().zip(&out.steps) {
                    assert_eq!(a.iterations, b.iterations, "{solver} step {}", a.step);
                    assert_eq!(
                        a.initial_residual.to_bits(),
                        b.initial_residual.to_bits(),
                        "{solver} step {}",
                        a.step
                    );
                    assert_eq!(
                        a.final_residual.to_bits(),
                        b.final_residual.to_bits(),
                        "{solver} step {}",
                        a.step
                    );
                }
                assert_eq!(
                    reference.final_u.as_ref().unwrap(),
                    out.final_u.as_ref().unwrap(),
                    "{solver}: session path drifted from the reference driver"
                );
            }
            if solver == "amg" {
                assert!(cold.mg_trace.is_some(), "session path must keep MG traces");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 4, "first run of each deck builds cold");
        assert_eq!(stats.hits, 4, "second run of each deck reuses the session");
        assert_eq!(stats.prepares, 4, "warm checkouts must not re-prepare");
    }

    #[test]
    fn trace_accumulates_across_steps() {
        let out = run_serial(&small_deck(16, "cg", 3)).expect("deck runs");
        let total_iters: u64 = out.steps.iter().map(|s| s.iterations).sum();
        assert_eq!(out.trace.outer_iterations, total_iters);
        assert!(out.trace.reductions > 0);
        assert!(out.mg_trace.is_none());
        let amg = run_serial(&small_deck(16, "amg", 2)).expect("deck runs");
        let mg = amg.mg_trace.expect("AMG runs must carry an MG trace");
        assert!(mg.vcycles > 0);
        assert!(mg.setup_cells > 0);
    }
}
