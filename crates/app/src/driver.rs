//! The TeaLeaf application driver.
//!
//! Per time step (matching the reference `tea_solve` loop):
//!
//! 1. `u⁰ = ρ·e` — build the right-hand side from the state fields;
//! 2. assemble face coefficients `Kx, Ky` from density and `dt`;
//! 3. solve `A·u = u⁰` with the configured solver (warm start `u = u⁰`);
//! 4. `e = u/ρ` — fold the new temperature back into energy;
//! 5. field summary (reduced diagnostics) at the reporting cadence.
//!
//! The same [`run_rank`] body executes serially ([`run_serial`]) or as
//! one thread per rank ([`run_threaded_ranks`]); decomposed runs gather
//! the final temperature field to rank 0 for output.

use crate::deck::Deck;
use crate::summary::{field_summary, FieldSummary};
use tea_amg::MgTrace;
use tea_comms::{
    gather_to_root, run_threaded as comm_run, Communicator, HaloLayout, SerialComm, StatsSnapshot,
};
use tea_core::{
    Assembly, DynTile, SolveContext, SolveTrace, Tile, TileBounds, TileOperator, Workspace,
};
use tea_mesh::{timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D};

/// Per-step record of the driver.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// 1-based step index.
    pub step: u64,
    /// Simulation time after the step.
    pub time: f64,
    /// Solver iterations spent.
    pub iterations: u64,
    /// Whether the solve converged.
    pub converged: bool,
    /// Euclidean norm of the solve's initial residual.
    pub initial_residual: f64,
    /// Euclidean norm of the solve's final residual.
    pub final_residual: f64,
    /// Diagnostics (present on reporting steps).
    pub summary: Option<FieldSummary>,
    /// Wall-clock seconds for the solve.
    pub wall: f64,
}

/// Everything a rank returns from a run.
#[derive(Debug)]
pub struct RankOutput {
    /// Per-step records.
    pub steps: Vec<StepRecord>,
    /// Accumulated solver protocol over all steps.
    pub trace: SolveTrace,
    /// Accumulated multigrid protocol (AMG runs only).
    pub mg_trace: Option<MgTrace>,
    /// Final gathered temperature field (rank 0 only).
    pub final_u: Option<Field2D>,
    /// Final summary.
    pub final_summary: FieldSummary,
    /// This rank's communication counters over the whole run, with
    /// point-to-point volume accounted in real bytes by element width
    /// (native `f32` halo exchanges count 4 bytes per element).
    pub comm: StatsSnapshot,
}

/// Runs the deck on one rank of `decomp`.
///
/// The solver is resolved by name from [`crate::solver_registry`] and
/// driven entirely through the [`tea_core::IterativeSolver`] trait —
/// the driver
/// contains no per-solver dispatch, so registering a new method makes
/// it deck- and CLI-selectable without touching this file.
///
/// # Panics
/// Panics if the deck's solver name is not registered (decks built by
/// [`crate::parse_deck`] are pre-validated) or if a serial-only solver
/// is run on a decomposed communicator.
pub fn run_rank<C: Communicator + ?Sized>(
    deck: &Deck,
    decomp: &Decomposition2D,
    comm: &C,
) -> RankOutput {
    let problem = &deck.problem;
    let control = &deck.control;
    problem.validate().expect("invalid problem");
    assert_eq!(
        decomp.ranks(),
        comm.size(),
        "decomposition must match communicator size"
    );

    let registry = crate::solver_registry();
    // tl_precision re-routes within the solver family (cg → mixed_cg /
    // cg_f32, ppcg → mixed_ppcg); at the default f64 this is the
    // identity on the deck's solver name
    let solver_name = control.effective_solver().unwrap_or_else(|e| panic!("{e}"));
    let meta = registry
        .resolve(&solver_name)
        .unwrap_or_else(|e| panic!("{e}"));
    if meta.serial_only {
        assert_eq!(
            comm.size(),
            1,
            "the {} solver runs serially (see its docs)",
            meta.name
        );
    }
    let mut solver = registry
        .create(&solver_name, &control.solver_params())
        .expect("resolved above");

    let mesh = Mesh2D::new(decomp, comm.rank(), problem.extent);
    let layout = HaloLayout::new(decomp, comm.rank());
    let halo = solver.halo_depth().max(1);
    let (nx, ny) = (mesh.nx(), mesh.ny());

    let mut density = Field2D::new(nx, ny, halo);
    let mut energy = Field2D::new(nx, ny, halo);
    problem.apply_states(&mesh, &mut density, &mut energy);

    let (rx, ry) = timestep_scalings(&mesh, control.dt);
    let bounds = TileBounds::new(&mesh, halo);

    let mut u = Field2D::new(nx, ny, halo);
    let mut b = Field2D::new(nx, ny, halo);
    let mut ws = Workspace::new(nx, ny, halo);

    let mut trace = SolveTrace::new(solver.label());
    let mut steps = Vec::new();

    let nsteps = control.steps();
    let mut time = 0.0;
    for step in 1..=nsteps {
        // 1-2. rhs and operator (density is constant but the reference
        // reassembles every step; we follow it)
        let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, halo);
        let op = TileOperator::new(coeffs, bounds);
        let tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::with_assembly(
            &tile,
            Assembly {
                density: &density,
                coefficient: problem.coefficient,
                rx,
                ry,
            },
        );
        for k in 0..ny as isize {
            let dr = density.row(k, 0, nx as isize);
            let er = energy.row(k, 0, nx as isize);
            let br = b.row_mut(k, 0, nx as isize);
            for i in 0..br.len() {
                br[i] = dr[i] * er[i];
            }
        }
        u.copy_interior_from(&b);

        // 3. the solve, through the uniform trait protocol
        let started = std::time::Instant::now();
        solver.prepare(&ctx, &control.opts);
        let result = solver.solve(&ctx, &mut u, &b, &mut ws, &mut trace);
        let wall = started.elapsed().as_secs_f64();

        // 4. fold back into energy
        for k in 0..ny as isize {
            let ur = u.row(k, 0, nx as isize);
            let dr = density.row(k, 0, nx as isize);
            let er = energy.row_mut(k, 0, nx as isize);
            for i in 0..er.len() {
                er[i] = ur[i] / dr[i];
            }
        }

        time += control.dt;
        let report = control.summary_frequency > 0 && step % control.summary_frequency == 0;
        let summary = if report || step == nsteps {
            Some(field_summary(&mesh, &density, &energy, &u, comm))
        } else {
            None
        };
        steps.push(StepRecord {
            step,
            time,
            iterations: result.iterations,
            converged: result.converged,
            initial_residual: result.initial_residual,
            final_residual: result.final_residual,
            summary,
            wall,
        });
    }

    // solver-specific diagnostics come back type-erased through the
    // trait hook; the driver only knows the payload types it reports
    let mg_trace = solver
        .take_diagnostics()
        .and_then(|d| d.downcast::<MgTrace>().ok())
        .map(|t| *t);

    // snapshot the counters before the diagnostic gather below, so the
    // record reflects the solver protocol's traffic, not output shipping
    let comm_stats = comm.stats().snapshot();

    let final_summary = field_summary(&mesh, &density, &energy, &u, comm);
    let final_u = gather_to_root(
        &{
            // strip to interior for gathering
            let mut interior = Field2D::new(nx, ny, 0);
            interior.copy_interior_from(&u);
            interior
        },
        decomp,
        comm,
    );

    RankOutput {
        steps,
        trace,
        mg_trace,
        final_u,
        final_summary,
        comm: comm_stats,
    }
}

/// Applies the deck's thread-count override (if any) to the kernel
/// runtime. Called once per run entry point; a deck without the setting
/// leaves the ambient configuration (`TEA_NUM_THREADS` / cores) alone.
fn apply_thread_config(deck: &Deck) {
    if let Some(threads) = deck.control.threads {
        tea_core::set_num_threads(threads);
    }
}

/// Runs the deck on a single rank.
pub fn run_serial(deck: &Deck) -> RankOutput {
    apply_thread_config(deck);
    let decomp = Decomposition2D::with_grid(deck.problem.x_cells, deck.problem.y_cells, 1, 1);
    let comm = SerialComm::new();
    run_rank(deck, &decomp, &comm)
}

/// Runs the deck on `ranks` threaded ranks; returns per-rank outputs
/// (rank 0 holds the gathered field).
///
/// Each simulated rank is its own OS thread and each rank's sweeps use
/// the full configured worker count, so `ranks × threads` can
/// oversubscribe physical cores; pin `threads` (deck `tl_num_threads`,
/// CLI `--threads`, or `TEA_NUM_THREADS`) to `cores / ranks` for
/// node-realistic hybrid runs.
pub fn run_threaded_ranks(deck: &Deck, ranks: usize) -> Vec<RankOutput> {
    apply_thread_config(deck);
    let decomp = Decomposition2D::new(deck.problem.x_cells, deck.problem.y_cells, ranks);
    comm_run(decomp.ranks(), |comm| run_rank(deck, &decomp, comm))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::{crooked_pipe_deck, Control};

    fn small_deck(n: usize, solver: &str, steps: u64) -> Deck {
        let mut deck = crooked_pipe_deck(n, solver);
        deck.control = Control {
            solver: solver.into(),
            end_step: steps,
            summary_frequency: 1,
            ..Default::default()
        };
        deck
    }

    #[test]
    fn serial_cg_run_conserves_energy() {
        let deck = small_deck(24, "cg", 3);
        let out = run_serial(&deck);
        assert_eq!(out.steps.len(), 3);
        assert!(out.steps.iter().all(|s| s.converged));
        // insulated boundaries: the temperature integral Σ u·vol is
        // conserved by the implicit step (A's row sums are 1)
        let t0 = out.steps[0].summary.unwrap().temperature;
        let t2 = out.steps[2].summary.unwrap().temperature;
        assert!(
            (t0 - t2).abs() < 1e-6 * t0.abs(),
            "temperature integral must be conserved: {t0} vs {t2}"
        );
        assert!(out.final_u.is_some());
    }

    #[test]
    fn heat_flows_down_the_pipe() {
        let deck = small_deck(32, "cg", 8);
        let out = run_serial(&deck);
        let u = out.final_u.unwrap();
        // the pipe inlet region must stay warmer than the far wall corner
        let inlet = u.at(3, 4); // inside the source
        let far_wall = u.at(31, 31);
        assert!(
            inlet > 10.0 * far_wall.max(1e-30),
            "inlet {inlet} vs far {far_wall}"
        );
    }

    #[test]
    fn all_solvers_agree_on_the_final_field() {
        let reference = run_serial(&small_deck(16, "cg", 2));
        let uref = reference.final_u.unwrap();
        for solver in ["chebyshev", "ppcg", "amg"] {
            let out = run_serial(&small_deck(16, solver, 2));
            let u = out.final_u.unwrap();
            for k in 0..16isize {
                for j in 0..16isize {
                    let (a, b) = (u.at(j, k), uref.at(j, k));
                    assert!(
                        (a - b).abs() <= 1e-5 * b.abs().max(1e-12),
                        "{solver} differs from CG at ({j},{k}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn threaded_run_matches_serial() {
        let deck = small_deck(24, "cg", 2);
        let serial = run_serial(&deck);
        let ranks = run_threaded_ranks(&deck, 4);
        let us = serial.final_u.unwrap();
        let ut = ranks[0].final_u.as_ref().unwrap();
        for k in 0..24isize {
            for j in 0..24isize {
                let (a, b) = (ut.at(j, k), us.at(j, k));
                assert!(
                    (a - b).abs() <= 1e-9 * b.abs().max(1e-12),
                    "threaded differs at ({j},{k}): {a} vs {b}"
                );
            }
        }
        // summaries agree too
        let (s, t) = (serial.final_summary, ranks[0].final_summary);
        assert!((s.temperature - t.temperature).abs() <= 1e-9 * s.temperature.abs());
    }

    #[test]
    fn ppcg_deep_halo_runs_decomposed() {
        let mut deck = small_deck(32, "ppcg", 2);
        deck.control.ppcg_halo_depth = 4;
        let serial = run_serial(&deck);
        let ranks = run_threaded_ranks(&deck, 4);
        let us = serial.final_u.unwrap();
        let ut = ranks[0].final_u.as_ref().unwrap();
        for k in 0..32isize {
            for j in 0..32isize {
                let (a, b) = (ut.at(j, k), us.at(j, k));
                assert!(
                    (a - b).abs() <= 1e-8 * b.abs().max(1e-10),
                    "matrix-powers decomposed run differs at ({j},{k}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn mixed_ppcg_decomposed_matches_serial() {
        // end-to-end proof of the native-f32 deep-halo wire: a 4-rank
        // mixed_ppcg run (inner smoothing halos exchanged as 4-byte
        // payloads) must reproduce the serial answer to solver accuracy
        let mut deck = small_deck(32, "mixed_ppcg", 2);
        deck.control.ppcg_halo_depth = 4;
        let serial = run_serial(&deck);
        let ranks = run_threaded_ranks(&deck, 4);
        assert!(serial.steps.iter().all(|s| s.converged));
        assert!(ranks[0].steps.iter().all(|s| s.converged));
        let us = serial.final_u.unwrap();
        let ut = ranks[0].final_u.as_ref().unwrap();
        for k in 0..32isize {
            for j in 0..32isize {
                let (a, b) = (ut.at(j, k), us.at(j, k));
                assert!(
                    (a - b).abs() <= 1e-7 * b.abs().max(1e-10),
                    "mixed decomposed run differs at ({j},{k}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn decomposed_runs_record_halo_bytes_by_width() {
        // pure-f64 solver: every payload element is 8 bytes
        let deck = small_deck(24, "cg", 1);
        let ranks = run_threaded_ranks(&deck, 4);
        for r in &ranks {
            assert!(r.comm.bytes_sent() > 0, "decomposed ranks must exchange");
            assert_eq!(r.comm.elems_sent_f32, 0);
            assert_eq!(r.comm.bytes_sent(), r.comm.elems_sent_f64 * 8);
        }
        // mixed PPCG: the inner smoothing halos travel at native f32
        // width while the outer f64 recurrence still exchanges f64
        let mut deck = small_deck(24, "mixed_ppcg", 1);
        deck.control.ppcg_halo_depth = 2;
        let ranks = run_threaded_ranks(&deck, 4);
        for r in &ranks {
            assert!(r.comm.elems_sent_f32 > 0, "inner halos must be f32");
            assert!(r.comm.elems_sent_f64 > 0, "outer halos stay f64");
        }
        // serial runs have no neighbours: zero point-to-point traffic
        let out = run_serial(&small_deck(16, "cg", 1));
        assert_eq!(out.comm.msgs_sent, 0);
        assert_eq!(out.comm.bytes_sent(), 0);
    }

    #[test]
    fn trace_accumulates_across_steps() {
        let out = run_serial(&small_deck(16, "cg", 3));
        let total_iters: u64 = out.steps.iter().map(|s| s.iterations).sum();
        assert_eq!(out.trace.outer_iterations, total_iters);
        assert!(out.trace.reductions > 0);
        assert!(out.mg_trace.is_none());
        let amg = run_serial(&small_deck(16, "amg", 2));
        let mg = amg.mg_trace.expect("AMG runs must carry an MG trace");
        assert!(mg.vcycles > 0);
        assert!(mg.setup_cells > 0);
    }
}
