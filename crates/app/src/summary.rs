//! Field summary diagnostics — TeaLeaf's `field_summary` kernel.
//!
//! After each reporting step the driver reduces volume, mass, internal
//! energy and temperature over the whole mesh. These are the quantities
//! the paper's Fig. 4 tracks (average mesh temperature at convergence vs
//! mesh size) and the regression anchors of the reference test decks.

use tea_comms::Communicator;
use tea_mesh::{Field2D, Mesh2D};

/// Globally reduced mesh diagnostics at one step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldSummary {
    /// Total cell volume.
    pub volume: f64,
    /// Total mass `Σ ρ·vol`.
    pub mass: f64,
    /// Internal energy `Σ ρ·e·vol`.
    pub internal_energy: f64,
    /// Temperature integral `Σ u·vol`.
    pub temperature: f64,
}

impl FieldSummary {
    /// Volume-weighted mean temperature (the paper's Fig. 4 y-axis).
    pub fn average_temperature(&self) -> f64 {
        self.temperature / self.volume
    }
}

/// Computes the local partial sums and reduces them across ranks.
/// Must be called collectively.
pub fn field_summary<C: Communicator + ?Sized>(
    mesh: &Mesh2D,
    density: &Field2D,
    energy: &Field2D,
    u: &Field2D,
    comm: &C,
) -> FieldSummary {
    let vol_cell = mesh.cell_volume();
    let (nx, ny) = (mesh.nx() as isize, mesh.ny() as isize);
    let mut vol = 0.0;
    let mut mass = 0.0;
    let mut ie = 0.0;
    let mut temp = 0.0;
    for k in 0..ny {
        let dr = density.row(k, 0, nx);
        let er = energy.row(k, 0, nx);
        let ur = u.row(k, 0, nx);
        // iterator zips keep the exact scalar fold order (the summary is
        // a regression anchor, so the sums must stay bit-stable) while
        // letting the three row reductions compile without bounds checks
        for ((&d, &e), &t) in dr.iter().zip(er).zip(ur) {
            vol += vol_cell;
            mass += d * vol_cell;
            ie += d * e * vol_cell;
            temp += t * vol_cell;
        }
    }
    let reduced = comm.allreduce_sum_many(&[vol, mass, ie, temp]);
    FieldSummary {
        volume: reduced[0],
        mass: reduced[1],
        internal_energy: reduced[2],
        temperature: reduced[3],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_comms::SerialComm;
    use tea_mesh::Extent2D;

    #[test]
    fn summary_of_uniform_fields() {
        let mesh = Mesh2D::serial(4, 4, Extent2D::square(2.0)); // dx=dy=0.5, vol=0.25
        let density = Field2D::filled(4, 4, 1, 2.0);
        let energy = Field2D::filled(4, 4, 1, 3.0);
        let u = Field2D::filled(4, 4, 1, 6.0);
        let comm = SerialComm::new();
        let s = field_summary(&mesh, &density, &energy, &u, &comm);
        assert!((s.volume - 4.0).abs() < 1e-12);
        assert!((s.mass - 8.0).abs() < 1e-12);
        assert!((s.internal_energy - 24.0).abs() < 1e-12);
        assert!((s.temperature - 24.0).abs() < 1e-12);
        assert!((s.average_temperature() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn decomposed_summary_matches_serial() {
        use tea_comms::run_threaded;
        use tea_mesh::Decomposition2D;
        let n = 12;
        let d = Decomposition2D::with_grid(n, n, 2, 2);
        let serial_mesh = Mesh2D::serial(n, n, Extent2D::square(1.0));
        let mut sd = Field2D::new(n, n, 1);
        let mut se = Field2D::new(n, n, 1);
        let mut su = Field2D::new(n, n, 1);
        for k in 0..n as isize {
            for j in 0..n as isize {
                sd.set(j, k, 1.0 + (j + k) as f64);
                se.set(j, k, 2.0);
                su.set(j, k, (j * k) as f64);
            }
        }
        let comm = SerialComm::new();
        let sref = field_summary(&serial_mesh, &sd, &se, &su, &comm);

        let results = run_threaded(4, |comm| {
            let mesh = Mesh2D::new(&d, comm.rank(), Extent2D::square(1.0));
            let mut dd = Field2D::new(mesh.nx(), mesh.ny(), 1);
            let mut de = Field2D::new(mesh.nx(), mesh.ny(), 1);
            let mut du = Field2D::new(mesh.nx(), mesh.ny(), 1);
            let (ox, oy) = mesh.subdomain().offset;
            for k in 0..mesh.ny() as isize {
                for j in 0..mesh.nx() as isize {
                    let (gj, gk) = (j + ox as isize, k + oy as isize);
                    dd.set(j, k, 1.0 + (gj + gk) as f64);
                    de.set(j, k, 2.0);
                    du.set(j, k, (gj * gk) as f64);
                }
            }
            field_summary(&mesh, &dd, &de, &du, comm)
        });
        for r in &results {
            assert!((r.mass - sref.mass).abs() < 1e-9 * sref.mass.abs());
            assert!((r.temperature - sref.temperature).abs() < 1e-9);
        }
    }
}
