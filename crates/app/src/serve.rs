//! Deck-level serving: drains many parsed decks through the session
//! driver ([`crate::run_serial_session`]) on a `tea-serve` worker pool,
//! pooling prepared [`tea_core::SolveSession`]s across jobs with equal
//! setup keys. The `tealeaf --serve <joblist>` CLI mode and the
//! `tea-bench throughput` / `chaos` harnesses call [`serve_decks`] and
//! [`serve_decks_with_plan`].
//!
//! Fault tolerance follows the `tea-serve` contract: each job runs
//! under panic isolation with per-attempt deadlines and bounded
//! retries, and a solve that diverges (non-finite residual) escalates
//! along the precision ladder owned by the tea-tune policy layer
//! ([`tea_tune::EscalationPolicy`]: `cg_f32 → mixed_cg → cg`),
//! recording each abandoned rung into the outcome's [`TuneLog`],
//! before the job is declared failed. A deterministic
//! [`tea_fault::FaultPlan`] can be armed to inject faults — only on a
//! job's *first* attempt and *first* ladder rung, so recovery is
//! observable and the same seed reproduces the same outcomes at any
//! worker count.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::deck::Deck;
use crate::driver::{run_serial_session_with, DriverError, RankOutput};
use tea_core::{SetupCache, SolveControls, SolveProbe};
use tea_fault::{FaultKind, FaultPlan, NanPoison};
use tea_serve::{serve_with, JobCtx, JobError, ServeOptions, ServeReport};
use tea_tune::{EscalationPolicy, TuneLog};

/// One deck to run, with a label for error reporting (typically the
/// deck's file path or a synthetic sweep name).
#[derive(Debug, Clone)]
pub struct DeckJob {
    /// Where the deck came from, for error messages.
    pub label: String,
    /// The parsed deck.
    pub deck: Deck,
}

/// What a served deck job returns: the driver output plus the
/// degradation history that produced it.
#[derive(Debug)]
pub struct DeckOutcome {
    /// The driver's per-step records, traces and final field.
    pub output: RankOutput,
    /// Canonical name of the solver that produced the result (after
    /// precision routing and any escalation).
    pub solver: String,
    /// Solvers abandoned to divergence before `solver` succeeded, in
    /// escalation order. Empty on the happy path.
    pub escalations: Vec<String>,
    /// Tuning record: ladder escalations taken for this job, followed
    /// by the auto-tuner's race decisions when the deck ran
    /// `tl_solver=auto`. `None` when neither happened.
    pub tune: Option<TuneLog>,
}

/// Drains `jobs` through the session driver on a worker pool and
/// reports per-job [`DeckOutcome`]s plus queue statistics.
///
/// With [`ServeOptions::cache`] on, jobs with equal setup keys (same
/// geometry, coefficients, solver, precision, halo depth and latched
/// options) share prepared sessions — the report's cache counters show
/// how many preparations the pool saved. With it off, every job builds
/// cold; the counters then read zero hits and one preparation per job,
/// which is the baseline the throughput bench compares against.
///
/// A failing deck (unknown solver, invalid problem) records an error
/// outcome carrying its label; the queue keeps draining.
pub fn serve_decks(jobs: Vec<DeckJob>, opts: &ServeOptions) -> ServeReport<DeckOutcome> {
    serve_decks_with_plan(jobs, opts, None)
}

/// [`serve_decks`] with an optional deterministic [`FaultPlan`] armed.
///
/// The plan is consulted once per job (by submission index). An
/// assigned fault fires only on attempt 0 — retries run clean, which
/// is how [`FaultKind::PanicWorker`] jobs recover when
/// [`ServeOptions::retries`] > 0 — and a
/// [`FaultKind::PoisonNan`] probe is armed only on the first ladder
/// rung, so the escalated re-solve runs clean and the job degrades
/// gracefully instead of failing every rung. Faulted solves run
/// against a throwaway session cache: a poisoned session must never
/// enter the shared pool.
pub fn serve_decks_with_plan(
    jobs: Vec<DeckJob>,
    opts: &ServeOptions,
    plan: Option<&FaultPlan>,
) -> ServeReport<DeckOutcome> {
    let cache = SetupCache::new();
    let cold_prepares = AtomicU64::new(0);
    let cold_misses = AtomicU64::new(0);
    let use_cache = opts.cache;
    let registry = crate::solver_registry();
    let policy = EscalationPolicy::new(registry);
    let run = |ctx: JobCtx<'_>, DeckJob { label, deck }: &DeckJob| {
        let fault = plan.and_then(|p| {
            if ctx.attempt == 0 {
                p.fault_for(ctx.job)
            } else {
                None
            }
        });
        if let Some(FaultKind::PanicWorker) = fault {
            // audit:allow(panic_hygiene) — deliberate fault injection: this panic IS the
            // fault being tested; the serve queue's catch_unwind must absorb it.
            panic!("injected worker panic (job {})", ctx.job);
        }

        // resolve precision routing up front so escalation starts from
        // the solver that would actually have run
        let mut deck = deck.clone();
        let solver = deck
            .control
            .effective_solver()
            .map_err(|e| JobError::Failed {
                message: format!("{label}: {e}"),
            })?;
        deck.control.solver = solver;
        deck.control.precision = None;

        let mut escalations: Vec<String> = Vec::new();
        let mut ladder = TuneLog::default();
        loop {
            // the injected probe arms only on the first rung: the
            // escalated re-solve must run clean so the ladder recovers
            let probe: Option<NanPoison> = match fault {
                Some(FaultKind::PoisonNan { iteration }) if escalations.is_empty() => {
                    Some(NanPoison { iteration })
                }
                _ => None,
            };
            let controls = SolveControls {
                stop: Some(ctx.stop),
                probe: probe.as_ref().map(|p| p as &dyn SolveProbe),
            };
            let result = if use_cache && probe.is_none() {
                run_serial_session_with(&deck, &cache, controls)
            } else {
                // a throwaway per-job cache: cold, never shared — used
                // both for the no-cache baseline and for probed solves
                // (a poisoned session must not enter the pool)
                let local = SetupCache::new();
                let out = run_serial_session_with(&deck, &local, controls);
                let stats = local.stats();
                cold_prepares.fetch_add(stats.prepares, Ordering::Relaxed);
                cold_misses.fetch_add(stats.misses, Ordering::Relaxed);
                out
            };
            match result {
                Ok(output) => {
                    // merge the job-level ladder walk with the
                    // auto-tuner's race record (ladder first: its
                    // decisions chronologically precede the race that
                    // finally converged)
                    let tune = match (&output.tune, ladder.decisions.is_empty()) {
                        (None, true) => None,
                        (inner, _) => {
                            let mut merged = ladder.clone();
                            if let Some(inner) = inner {
                                merged.seed = inner.seed;
                                merged.winner = inner.winner.clone();
                                merged.reuses = inner.reuses;
                                merged.decisions.extend(inner.decisions.iter().cloned());
                            }
                            Some(merged)
                        }
                    };
                    return Ok(DeckOutcome {
                        output,
                        solver: deck.control.solver,
                        escalations,
                        tune,
                    });
                }
                Err(DriverError::Cancelled { .. }) => return Err(JobError::TimedOut),
                Err(DriverError::Diverged {
                    solver, iteration, ..
                }) => {
                    escalations.push(solver);
                    match policy.escalate(&deck.control.solver, iteration, &mut ladder) {
                        Some(next) => {
                            deck.control.solver = next;
                            continue;
                        }
                        None => {
                            return Err(JobError::Diverged {
                                iteration,
                                attempts: escalations,
                            })
                        }
                    }
                }
                Err(e) => {
                    return Err(JobError::Failed {
                        message: format!("{label}: {e}"),
                    })
                }
            }
        }
    };
    serve_with(jobs, opts, run, || {
        let mut stats = cache.stats();
        stats.prepares += cold_prepares.load(Ordering::Relaxed);
        stats.misses += cold_misses.load(Ordering::Relaxed);
        stats
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::{crooked_pipe_deck, Control};

    fn job(n: usize, solver: &str, eps: f64) -> DeckJob {
        let mut deck = crooked_pipe_deck(n, solver);
        deck.control = Control {
            solver: solver.into(),
            end_step: 2,
            summary_frequency: 0,
            ..Default::default()
        };
        deck.control.opts.eps = eps;
        DeckJob {
            label: format!("{solver}-{n}-{eps}"),
            deck,
        }
    }

    #[test]
    fn repeated_decks_hit_the_cache_with_identical_results() {
        let jobs: Vec<DeckJob> = (0..9).map(|i| job(16 + 4 * (i % 3), "cg", 1e-8)).collect();
        let opts = ServeOptions {
            workers: 3,
            ..Default::default()
        };
        let cached = serve_decks(jobs.clone(), &opts);
        let cold = serve_decks(
            jobs,
            &ServeOptions {
                cache: false,
                ..opts
            },
        );

        assert_eq!(cached.stats.failed, 0);
        assert_eq!(cold.stats.failed, 0);
        assert!(cached.stats.cache.hits > 0);
        assert_eq!(cold.stats.cache.hits, 0);
        assert!(
            cached.stats.cache.prepares < cold.stats.cache.prepares,
            "the pool must save preparations: {} vs {}",
            cached.stats.cache.prepares,
            cold.stats.cache.prepares
        );

        for (a, b) in cached.outcomes.iter().zip(&cold.outcomes) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert!(a.escalations.is_empty());
            assert_eq!(a.solver, "cg");
            let (a, b) = (&a.output, &b.output);
            assert_eq!(a.steps.len(), b.steps.len());
            for (sa, sb) in a.steps.iter().zip(&b.steps) {
                assert_eq!(sa.iterations, sb.iterations);
                assert_eq!(sa.final_residual.to_bits(), sb.final_residual.to_bits());
            }
            assert_eq!(a.final_u, b.final_u, "caching must not change results");
        }
    }

    #[test]
    fn a_bad_deck_fails_its_job_only() {
        let mut jobs = vec![job(16, "cg", 1e-8), job(16, "cg", 1e-8)];
        jobs[0].deck.control.solver = "warp".into();
        jobs[0].label = "bad.in".into();
        let report = serve_decks(jobs, &ServeOptions::default());
        assert_eq!(report.stats.failed, 1);
        let err = report.outcomes[0].result.as_ref().unwrap_err();
        assert!(err.to_string().starts_with("bad.in:"), "{err}");
        assert!(report.outcomes[1].result.is_ok());
    }

    #[test]
    fn a_poisoned_solve_degrades_along_the_ladder() {
        // Arm a plan that NaN-poisons every job at iteration 2. The
        // first rung must diverge, the escalated clean re-solve must
        // recover, and the outcome must record the abandoned rung.
        let mut jobs = vec![job(16, "cg", 1e-8)];
        jobs[0].deck.control.precision = Some(tea_core::Precision::F32);
        let plan = FaultPlan::serving(0, 1.0);
        // find a seed/job assignment that poisons job 0 (seed chosen so
        // fault_for(0) is PoisonNan; scan a few seeds to stay robust to
        // hash details)
        let plan = (0..64)
            .map(|s| FaultPlan::serving(s, 1.0))
            .find(|p| matches!(p.fault_for(0), Some(FaultKind::PoisonNan { .. })))
            .unwrap_or(plan);
        let report = serve_decks_with_plan(jobs, &ServeOptions::default(), Some(&plan));
        assert_eq!(report.stats.failed, 0, "the ladder must recover the job");
        let out = report.outcomes[0].result.as_ref().unwrap();
        assert_eq!(out.escalations, vec!["cg_f32".to_string()]);
        assert_eq!(out.solver, "mixed_cg");
        assert!(out.output.steps.iter().all(|s| s.converged));
    }

    #[test]
    fn an_injected_panic_recovers_on_retry() {
        let jobs = vec![job(16, "cg", 1e-8)];
        let plan = (0..64)
            .map(|s| FaultPlan::serving(s, 1.0))
            .find(|p| matches!(p.fault_for(0), Some(FaultKind::PanicWorker)))
            .expect("some seed panics job 0");
        // without retries the panic is the outcome
        let report = serve_decks_with_plan(
            jobs.clone(),
            &ServeOptions {
                workers: 1,
                ..Default::default()
            },
            Some(&plan),
        );
        assert_eq!(report.stats.failed, 1);
        assert_eq!(report.stats.panics_recovered, 1);
        assert!(matches!(
            report.outcomes[0].result,
            Err(JobError::Panicked { .. })
        ));
        // with a retry budget the clean second attempt succeeds
        let report = serve_decks_with_plan(
            jobs,
            &ServeOptions {
                workers: 1,
                retries: 1,
                ..Default::default()
            },
            Some(&plan),
        );
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.stats.retries, 1);
        assert_eq!(report.outcomes[0].attempts, 2);
        assert!(report.outcomes[0].result.is_ok());
    }

    #[test]
    fn chaos_outcomes_are_identical_at_any_worker_count() {
        // Determinism under chaos: the same seeded plan must yield the
        // same per-job outcome classification — and bit-identical
        // results for unfaulted jobs — at 1, 2 and 4 workers.
        let jobs: Vec<DeckJob> = (0..12).map(|i| job(12 + 4 * (i % 3), "cg", 1e-8)).collect();
        let plan = FaultPlan::serving(2024, 0.4);
        let classify = |workers: usize| {
            let report = serve_decks_with_plan(
                jobs.clone(),
                &ServeOptions {
                    workers,
                    retries: 1,
                    ..Default::default()
                },
                Some(&plan),
            );
            assert_eq!(report.outcomes.len(), jobs.len(), "no lost jobs");
            report
                .outcomes
                .iter()
                .map(|o| match &o.result {
                    Ok(out) => (
                        format!("ok:{}:{:?}", out.solver, out.escalations),
                        out.output.final_u.as_ref().map(|u| {
                            u.raw()
                                .iter()
                                .fold(0u64, |acc, x| acc.wrapping_add(x.to_bits()))
                        }),
                    ),
                    Err(e) => (format!("err:{e}"), None),
                })
                .collect::<Vec<_>>()
        };
        let w1 = classify(1);
        assert_eq!(w1, classify(2), "1 vs 2 workers");
        assert_eq!(w1, classify(4), "1 vs 4 workers");
        // sanity: the plan actually faulted something
        assert!(
            (0..jobs.len()).any(|j| plan.fault_for(j).is_some()),
            "a 40% plan over 12 jobs must fault at least one"
        );
    }
}
