//! Deck-level serving: drains many parsed decks through the session
//! driver ([`crate::run_serial_session`]) on a `tea-serve` worker pool,
//! pooling prepared [`tea_core::SolveSession`]s across jobs with equal
//! setup keys. The `tealeaf --serve <joblist>` CLI mode and the
//! `tea-bench throughput` harness both call [`serve_decks`].

use std::sync::atomic::{AtomicU64, Ordering};

use crate::deck::Deck;
use crate::driver::{run_serial_session, RankOutput};
use tea_core::SetupCache;
use tea_serve::{serve_with, ServeOptions, ServeReport};

/// One deck to run, with a label for error reporting (typically the
/// deck's file path or a synthetic sweep name).
#[derive(Debug, Clone)]
pub struct DeckJob {
    /// Where the deck came from, for error messages.
    pub label: String,
    /// The parsed deck.
    pub deck: Deck,
}

/// Drains `jobs` through the session driver on a worker pool and
/// reports per-job [`RankOutput`]s plus queue statistics.
///
/// With [`ServeOptions::cache`] on, jobs with equal setup keys (same
/// geometry, coefficients, solver, precision, halo depth and latched
/// options) share prepared sessions — the report's cache counters show
/// how many preparations the pool saved. With it off, every job builds
/// cold; the counters then read zero hits and one preparation per job,
/// which is the baseline the throughput bench compares against.
///
/// A failing deck (unknown solver, invalid problem) records an error
/// outcome carrying its label; the queue keeps draining.
pub fn serve_decks(jobs: Vec<DeckJob>, opts: &ServeOptions) -> ServeReport<RankOutput> {
    let cache = SetupCache::new();
    let cold_prepares = AtomicU64::new(0);
    let cold_misses = AtomicU64::new(0);
    let use_cache = opts.cache;
    let run = |_job: usize, DeckJob { label, deck }: DeckJob| {
        if use_cache {
            run_serial_session(&deck, &cache).map_err(|e| format!("{label}: {e}"))
        } else {
            // a throwaway per-job cache: always cold, never shared
            let local = SetupCache::new();
            let out = run_serial_session(&deck, &local).map_err(|e| format!("{label}: {e}"));
            let stats = local.stats();
            cold_prepares.fetch_add(stats.prepares, Ordering::Relaxed);
            cold_misses.fetch_add(stats.misses, Ordering::Relaxed);
            out
        }
    };
    serve_with(jobs, opts, run, || {
        let mut stats = cache.stats();
        stats.prepares += cold_prepares.load(Ordering::Relaxed);
        stats.misses += cold_misses.load(Ordering::Relaxed);
        stats
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deck::{crooked_pipe_deck, Control};

    fn job(n: usize, solver: &str, eps: f64) -> DeckJob {
        let mut deck = crooked_pipe_deck(n, solver);
        deck.control = Control {
            solver: solver.into(),
            end_step: 2,
            summary_frequency: 0,
            ..Default::default()
        };
        deck.control.opts.eps = eps;
        DeckJob {
            label: format!("{solver}-{n}-{eps}"),
            deck,
        }
    }

    #[test]
    fn repeated_decks_hit_the_cache_with_identical_results() {
        let jobs: Vec<DeckJob> = (0..9).map(|i| job(16 + 4 * (i % 3), "cg", 1e-8)).collect();
        let opts = ServeOptions {
            workers: 3,
            ..Default::default()
        };
        let cached = serve_decks(jobs.clone(), &opts);
        let cold = serve_decks(
            jobs,
            &ServeOptions {
                cache: false,
                ..opts
            },
        );

        assert_eq!(cached.stats.failed, 0);
        assert_eq!(cold.stats.failed, 0);
        assert!(cached.stats.cache.hits > 0);
        assert_eq!(cold.stats.cache.hits, 0);
        assert!(
            cached.stats.cache.prepares < cold.stats.cache.prepares,
            "the pool must save preparations: {} vs {}",
            cached.stats.cache.prepares,
            cold.stats.cache.prepares
        );

        for (a, b) in cached.outcomes.iter().zip(&cold.outcomes) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(a.steps.len(), b.steps.len());
            for (sa, sb) in a.steps.iter().zip(&b.steps) {
                assert_eq!(sa.iterations, sb.iterations);
                assert_eq!(sa.final_residual.to_bits(), sb.final_residual.to_bits());
            }
            assert_eq!(a.final_u, b.final_u, "caching must not change results");
        }
    }

    #[test]
    fn a_bad_deck_fails_its_job_only() {
        let mut jobs = vec![job(16, "cg", 1e-8), job(16, "cg", 1e-8)];
        jobs[0].deck.control.solver = "warp".into();
        jobs[0].label = "bad.in".into();
        let report = serve_decks(jobs, &ServeOptions::default());
        assert_eq!(report.stats.failed, 1);
        let err = report.outcomes[0].result.as_ref().unwrap_err();
        assert!(err.starts_with("bad.in:"), "{err}");
        assert!(report.outcomes[1].result.is_ok());
    }
}
