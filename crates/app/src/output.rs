//! Field and series writers: CSV for analysis, PGM/PPM images for the
//! Fig. 3-style temperature maps (the reference dumps VisIt files; plain
//! images keep this reproduction dependency-free).

use std::io::{self, Write};
use std::path::Path;
use tea_mesh::Field2D;

/// Writes a field's interior as CSV (`x_index,y_index,value` header plus
/// one row per cell).
pub fn write_field_csv(field: &Field2D, path: &Path) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    writeln!(w, "j,k,value")?;
    for k in 0..field.ny() as isize {
        for j in 0..field.nx() as isize {
            writeln!(w, "{j},{k},{}", field.at(j, k))?;
        }
    }
    w.flush()
}

/// Linear colour ramp from cold blue through white to hot red, like the
/// paper's Fig. 3 rendering.
fn heat_color(t: f64) -> (u8, u8, u8) {
    let t = t.clamp(0.0, 1.0);
    if t < 0.5 {
        let s = t * 2.0;
        ((s * 255.0) as u8, (s * 255.0) as u8, 255)
    } else {
        let s = (t - 0.5) * 2.0;
        (255, ((1.0 - s) * 255.0) as u8, ((1.0 - s) * 255.0) as u8)
    }
}

/// Writes the field as a binary PPM heat map. Values are log-scaled when
/// the dynamic range exceeds 10³ (the crooked pipe spans many decades),
/// linearly otherwise. Row 0 is drawn at the bottom, as in the paper.
pub fn write_field_ppm(field: &Field2D, path: &Path) -> io::Result<()> {
    let (nx, ny) = (field.nx(), field.ny());
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, _, v) in field.iter_interior() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let log_scale = lo > 0.0 && hi / lo.max(f64::MIN_POSITIVE) > 1e3;
    let (lo_t, hi_t) = if log_scale {
        (lo.ln(), hi.ln())
    } else {
        (lo, hi)
    };
    let span = (hi_t - lo_t).max(f64::MIN_POSITIVE);

    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write!(w, "P6\n{nx} {ny}\n255\n")?;
    for k in (0..ny as isize).rev() {
        for j in 0..nx as isize {
            let v = field.at(j, k);
            let t = if log_scale {
                (v.max(f64::MIN_POSITIVE).ln() - lo_t) / span
            } else {
                (v - lo_t) / span
            };
            let (r, g, b) = heat_color(t);
            w.write_all(&[r, g, b])?;
        }
    }
    w.flush()
}

/// Writes a legacy-VTK structured-points file of the field (the
/// reproduction's analogue of the reference's VisIt dumps; loadable in
/// ParaView/VisIt).
pub fn write_field_vtk(field: &Field2D, path: &Path, name: &str) -> io::Result<()> {
    let (nx, ny) = (field.nx(), field.ny());
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "TeaLeaf-rs field dump")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET STRUCTURED_POINTS")?;
    writeln!(w, "DIMENSIONS {nx} {ny} 1")?;
    writeln!(w, "ORIGIN 0 0 0")?;
    writeln!(w, "SPACING 1 1 1")?;
    writeln!(w, "POINT_DATA {}", nx * ny)?;
    writeln!(w, "SCALARS {name} double 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for k in 0..ny as isize {
        for j in 0..nx as isize {
            writeln!(w, "{}", field.at(j, k))?;
        }
    }
    w.flush()
}

/// Writes labelled `(x, series...)` rows as CSV — the format every
/// figure binary emits.
pub fn write_series_csv(
    path: &Path,
    x_label: &str,
    xs: &[f64],
    series: &[(String, Vec<f64>)],
) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = io::BufWriter::new(f);
    write!(w, "{x_label}")?;
    for (name, _) in series {
        write!(w, ",{name}")?;
    }
    writeln!(w)?;
    for (i, x) in xs.iter().enumerate() {
        write!(w, "{x}")?;
        for (_, ys) in series {
            write!(w, ",{}", ys.get(i).copied().unwrap_or(f64::NAN))?;
        }
        writeln!(w)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let dir = std::env::temp_dir().join("tea_output_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut f = Field2D::new(3, 2, 0);
        f.set(1, 1, 5.5);
        let p = dir.join("f.csv");
        write_field_csv(&f, &p).unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 6);
        assert_eq!(lines[0], "j,k,value");
        assert!(lines.contains(&"1,1,5.5"));
    }

    #[test]
    fn ppm_header_and_size() {
        let dir = std::env::temp_dir().join("tea_output_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut f = Field2D::new(4, 3, 0);
        for k in 0..3isize {
            for j in 0..4isize {
                f.set(j, k, (j + k) as f64 + 0.1);
            }
        }
        let p = dir.join("f.ppm");
        write_field_ppm(&f, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        assert!(bytes.starts_with(b"P6\n4 3\n255\n"));
        assert_eq!(bytes.len(), 11 + 4 * 3 * 3);
    }

    #[test]
    fn heat_color_endpoints() {
        assert_eq!(heat_color(0.0), (0, 0, 255));
        assert_eq!(heat_color(1.0), (255, 0, 0));
        let (r, g, b) = heat_color(0.5);
        assert!(
            r > 250 && g > 250 && b > 250,
            "midpoint ~white: {r},{g},{b}"
        );
    }

    #[test]
    fn vtk_header_and_cell_count() {
        let dir = std::env::temp_dir().join("tea_output_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut f = Field2D::new(3, 2, 1);
        f.set(0, 0, 1.25);
        let p = dir.join("f.vtk");
        write_field_vtk(&f, &p, "temperature").unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.starts_with("# vtk DataFile Version 3.0"));
        assert!(text.contains("DIMENSIONS 3 2 1"));
        assert!(text.contains("SCALARS temperature double 1"));
        // 11 header lines... count data lines instead
        let data_lines = text
            .lines()
            .skip_while(|l| !l.starts_with("LOOKUP_TABLE"))
            .skip(1)
            .count();
        assert_eq!(data_lines, 6);
        assert!(text.contains("1.25"));
    }

    #[test]
    fn series_csv_layout() {
        let dir = std::env::temp_dir().join("tea_output_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("s.csv");
        write_series_csv(
            &p,
            "nodes",
            &[1.0, 2.0],
            &[
                ("CG - 1".into(), vec![10.0, 6.0]),
                ("PPCG - 16".into(), vec![9.0, 4.0]),
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&p).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "nodes,CG - 1,PPCG - 16");
        assert_eq!(lines.next().unwrap(), "1,10,9");
        assert_eq!(lines.next().unwrap(), "2,6,4");
    }
}
