//! Determinism and golden tests for `tl_solver=auto` (tea-tune).
//!
//! The tuner's contract is that its decisions are a pure function of
//! the deck and the tune seed: wall-clock never enters the race, so
//! the same deck must produce a bit-identical [`tea_tune::TuneLog`]
//! and final field at any kernel thread count and any serve worker
//! count. The golden test pins that on a well-conditioned deck the
//! race settles in the cheap plain-precision family without any
//! spurious precision-ladder escalation.

use proptest::prelude::*;
use tea_app::{crooked_pipe_deck, run_serial, serve_decks, Control, Deck, DeckJob};
use tea_serve::ServeOptions;
use tea_tune::{TuneAction, TuneLog};

fn auto_deck(n: usize, seed: u64, eps: f64) -> Deck {
    let mut deck = crooked_pipe_deck(n, "auto");
    deck.control = Control {
        solver: "auto".into(),
        end_step: 2,
        summary_frequency: 0,
        tune_seed: seed,
        ..Default::default()
    };
    deck.control.opts.eps = eps;
    deck
}

/// Bit-level digest of the final field, so "identical" means identical
/// to the last ulp, not approximately equal.
fn field_bits(out: &tea_app::RankOutput) -> Vec<u64> {
    out.final_u
        .as_ref()
        .expect("driver keeps the final field")
        .raw()
        .iter()
        .map(|x| x.to_bits())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same deck + same tune seed ⇒ bit-identical tune log, iteration
    /// counts and final field across kernel thread counts.
    #[test]
    fn auto_is_deterministic_across_thread_counts(seed in any::<u32>()) {
        let mut reference: Option<(Option<TuneLog>, Vec<u64>, Vec<u64>)> = None;
        for threads in [1usize, 2, 4] {
            let mut deck = auto_deck(16, u64::from(seed), 1e-8);
            deck.control.threads = Some(threads);
            let out = run_serial(&deck).expect("auto deck runs");
            let got = (
                out.tune.clone(),
                out.steps.iter().map(|s| s.iterations).collect::<Vec<_>>(),
                field_bits(&out),
            );
            prop_assert!(got.0.is_some(), "auto must leave a tune log");
            match &reference {
                None => reference = Some(got),
                Some(want) => {
                    prop_assert_eq!(&got.0, &want.0, "tune log at {} threads", threads);
                    prop_assert_eq!(&got.1, &want.1, "iterations at {} threads", threads);
                    prop_assert_eq!(&got.2, &want.2, "final field at {} threads", threads);
                }
            }
        }
    }
}

/// Same job list ⇒ identical per-job winners, tune logs and bit-exact
/// fields at 1, 2 and 4 serve workers. The jobs carry distinct setup
/// keys (different mesh sizes), so every job races independently of
/// queue scheduling order.
#[test]
fn auto_serve_outcomes_are_identical_at_any_worker_count() {
    let jobs: Vec<DeckJob> = [12usize, 16, 20, 24, 28, 32]
        .iter()
        .map(|&n| DeckJob {
            label: format!("auto-{n}"),
            deck: auto_deck(n, 7, 1e-8),
        })
        .collect();
    let outcomes = |workers: usize| {
        let report = serve_decks(
            jobs.clone(),
            &ServeOptions {
                workers,
                ..Default::default()
            },
        );
        assert_eq!(report.outcomes.len(), jobs.len(), "no lost jobs");
        report
            .outcomes
            .iter()
            .map(|o| {
                let out = o.result.as_ref().expect("auto jobs converge");
                (
                    out.solver.clone(),
                    out.escalations.clone(),
                    out.tune.clone(),
                    field_bits(&out.output),
                )
            })
            .collect::<Vec<_>>()
    };
    let w1 = outcomes(1);
    assert!(w1.iter().all(|(_, _, tune, _)| tune.is_some()));
    assert_eq!(w1, outcomes(2), "1 vs 2 workers");
    assert_eq!(w1, outcomes(4), "1 vs 4 workers");
}

/// Golden: on the well-conditioned crooked-pipe deck the race settles
/// on a cheap plain-precision method — never the round-off-limited
/// `cg_f32` at a tolerance it cannot reach, never a deep-halo
/// configuration this small problem doesn't need — and the precision
/// ladder records zero escalations.
#[test]
fn auto_settles_on_the_plain_family_without_escalation() {
    let out = run_serial(&auto_deck(16, 0, 1e-10)).expect("auto deck runs");
    assert!(
        out.steps.iter().all(|s| s.converged),
        "every step converges"
    );
    let tune = out.tune.expect("auto leaves a tune log");
    let winner = tune.winner.clone().expect("the race adopts a winner");
    assert!(
        ["cg", "cg_fused", "mixed_cg", "chebyshev"]
            .iter()
            .any(|w| winner == *w),
        "winner {winner} must be a cheap plain-precision method"
    );
    assert!(
        !tune
            .decisions
            .iter()
            .any(|d| matches!(d.action, TuneAction::Escalated { .. })),
        "no spurious precision-ladder escalation: {tune}"
    );
    // the reduced-precision candidate was tried and rejected by the
    // stagnation guard rather than adopted
    assert!(winner != "cg_f32");
}
