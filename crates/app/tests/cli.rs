//! End-to-end tests of the `tealeaf` binary's argument handling.
//!
//! Regression focus: `--quiet` must apply whether or not `--deck` is
//! given (it used to be applied only in the no-deck branch, so deck
//! runs kept computing and printing per-step summaries), and
//! `--precision` must surface conflicts as errors, not panics.

use std::path::PathBuf;
use std::process::{Command, Output};

fn tealeaf(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tealeaf"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_deck(name: &str, extra: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("tealeaf-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(
        &path,
        format!(
            "*tea\n\
             state 1 density=100.0 energy=0.0001\n\
             state 2 density=0.1 energy=25.0 geometry=rectangle xmin=0.0 xmax=3.5 ymin=1.0 ymax=2.0\n\
             x_cells=24\ny_cells=24\n\
             end_step=3\n\
             summary_frequency=1\n\
             tl_eps=1e-8\n\
             {extra}\n\
             *endtea\n"
        ),
    )
    .unwrap();
    path
}

/// A per-step table row starts with a right-aligned step index; the
/// header names the columns.
fn has_step_table(stdout: &str) -> bool {
    stdout
        .lines()
        .any(|l| l.trim_start().starts_with("step") && l.contains("iters"))
}

#[test]
fn quiet_suppresses_per_step_output_with_a_deck() {
    let deck = write_deck("quiet.in", "tl_solver=cg");
    let deck = deck.to_str().unwrap();

    let loud = tealeaf(&["--deck", deck]);
    assert!(loud.status.success(), "{loud:?}");
    let loud_out = String::from_utf8_lossy(&loud.stdout).to_string();
    assert!(
        has_step_table(&loud_out),
        "non-quiet deck run must print the per-step table:\n{loud_out}"
    );

    // regression: --quiet used to be ignored when --deck was given
    let quiet = tealeaf(&["--deck", deck, "--quiet"]);
    assert!(quiet.status.success(), "{quiet:?}");
    let quiet_out = String::from_utf8_lossy(&quiet.stdout).to_string();
    assert!(
        !has_step_table(&quiet_out),
        "--deck --quiet must not print per-step lines:\n{quiet_out}"
    );
    assert!(
        quiet_out.contains("field summary"),
        "the final summary must survive --quiet:\n{quiet_out}"
    );
}

#[test]
fn quiet_works_without_a_deck_too() {
    let out = tealeaf(&["--cells", "16", "--steps", "2", "--quiet"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(!has_step_table(&stdout), "{stdout}");
    assert!(stdout.contains("field summary"), "{stdout}");
}

#[test]
fn deck_precision_mixed_runs_the_mixed_solver() {
    let deck = write_deck("mixed.in", "tl_solver=cg\ntl_precision=mixed");
    let out = tealeaf(&["--deck", deck.to_str().unwrap(), "--quiet"]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        stdout.contains("solver mixed_cg") && stdout.contains("precision mixed"),
        "banner must name the routed solver and precision:\n{stdout}"
    );
}

#[test]
fn precision_flag_overrides_the_deck_and_conflicts_error_cleanly() {
    let deck = write_deck("override.in", "tl_solver=ppcg");
    let out = tealeaf(&[
        "--deck",
        deck.to_str().unwrap(),
        "--precision",
        "mixed",
        "--quiet",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("solver mixed_ppcg"), "{stdout}");

    // solver × precision conflict: clean error, non-zero exit, no panic
    let bad = tealeaf(&[
        "--deck",
        deck.to_str().unwrap(),
        "--solver",
        "amg",
        "--ranks",
        "1",
        "--precision",
        "mixed",
    ]);
    assert!(!bad.status.success());
    let stderr = String::from_utf8_lossy(&bad.stderr).to_string();
    assert!(
        stderr.contains("serial-only") && stderr.contains("amg"),
        "{stderr}"
    );
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn list_solvers_shows_precision_metadata() {
    let out = tealeaf(&["--list-solvers"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    for name in ["mixed_cg", "mixed_ppcg", "cg_f32"] {
        assert!(stdout.contains(name), "missing {name}:\n{stdout}");
    }
    assert!(stdout.contains("precision=mixed"), "{stdout}");
    assert!(stdout.contains("precision=f32"), "{stdout}");
}

#[test]
fn unknown_precision_value_is_a_usage_error() {
    let out = tealeaf(&["--precision", "f16"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(stderr.contains("unknown precision 'f16'"), "{stderr}");
}
