//! Adversarial property tests for the deck parser: malformed,
//! truncated, mutated and huge-value decks must always come back as a
//! structured `Err(String)` or a valid `Deck` — never a panic. A
//! serving queue parses decks from untrusted job lists, so the parser
//! is a fault boundary.

use proptest::collection::vec;
use proptest::prelude::*;
use tea_app::{crooked_pipe_deck, parse_deck, render_deck};

/// The vendored proptest has no `u8` strategy; derive one from `u32`.
fn any_byte() -> impl Strategy<Value = u8> {
    any::<u32>().prop_map(|x| (x & 0xFF) as u8)
}

/// Tokens the parser cares about, mixed with junk: exercises the
/// key=value machinery far more densely than uniform byte soup.
fn deck_token() -> impl Strategy<Value = &'static str> {
    any::<u32>().prop_map(|x| {
        const TOKENS: &[&str] = &[
            "*tea",
            "*endtea",
            "state",
            "state 1 density=",
            "x_cells=",
            "y_cells=",
            "xmin",
            "=",
            "==",
            "tl_solver=cg",
            "tl_solver=warp",
            "tl_use_ppcg",
            "tl_use_warp",
            "tl_precision=f32",
            "tl_eps=",
            "tl_max_iters=",
            "initial_timestep=0.04",
            "!",
            "! comment",
            "1e308",
            "-1e308",
            "nan",
            "inf",
            "0",
            "18446744073709551615",
            "99999999999999999999999",
            "geometry=rectangle",
            "state 2 xmin=0 xmax=",
        ];
        TOKENS[(x as usize) % TOKENS.len()]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Raw byte soup (lossily decoded) never panics the parser.
    #[test]
    fn byte_soup_never_panics(bytes in vec(any_byte(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        match parse_deck(&text) {
            Ok(deck) => {
                // whatever parsed must also re-render without panicking
                let _ = render_deck(&deck);
            }
            Err(e) => prop_assert!(!e.is_empty(), "errors must carry a message"),
        }
    }

    /// Random token salads — dense in parser-relevant syntax — never
    /// panic either.
    #[test]
    fn token_salad_never_panics(
        tokens in vec(deck_token(), 0..64),
        joiner in any::<bool>(),
    ) {
        let sep = if joiner { "\n" } else { " " };
        let text = tokens.join(sep);
        let _ = parse_deck(&text);
    }

    /// Every strict line-prefix of a valid deck parses or errors
    /// structurally — truncation mid-file must not panic (and a deck
    /// cut before *endtea still has a well-defined meaning: the block
    /// simply runs to EOF).
    #[test]
    fn truncated_decks_never_panic(n in any::<usize>(), cut_in_line in any::<usize>()) {
        let full = render_deck(&crooked_pipe_deck(16, "cg"));
        let lines: Vec<&str> = full.lines().collect();
        let keep = n % (lines.len() + 1);
        let mut text = lines[..keep].join("\n");
        // also chop the kept text mid-line to model a torn write
        // (rendered decks are pure ASCII, so any cut is a char boundary)
        if keep > 0 {
            text.truncate(cut_in_line % (text.len() + 1));
        }
        let _ = parse_deck(&text);
    }

    /// Huge, negative, non-finite and overflowing numeric values are
    /// either accepted as numbers or rejected with an error — the
    /// parser itself must not panic on any of them. (Semantic checks
    /// like zero cell counts are the driver's validate() job.)
    #[test]
    fn extreme_values_never_panic(
        cells in any::<u64>(),
        eps_bits in any::<u64>(),
        iters in any::<u64>(),
    ) {
        let eps = f64::from_bits(eps_bits);
        let text = format!(
            "*tea\nx_cells={cells}\ny_cells={cells}\ntl_eps={eps}\ntl_max_iters={iters}\n*endtea\n"
        );
        let _ = parse_deck(&text);
    }

    /// Single-character mutations of a valid deck never panic: either
    /// the deck still parses, or the error explains itself (per-line
    /// errors name the line; killing `*tea` itself reports the missing
    /// block).
    #[test]
    fn mutated_valid_decks_never_panic(pos in any::<usize>(), byte in any_byte()) {
        let full = render_deck(&crooked_pipe_deck(16, "cg"));
        let mut bytes = full.into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] = byte;
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_deck(&text) {
            prop_assert!(
                e.contains("line ") || e.contains("*tea"),
                "errors must be diagnosable: {e}"
            );
        }
    }
}

#[test]
fn a_valid_deck_round_trips() {
    let deck = crooked_pipe_deck(24, "ppcg");
    let parsed = parse_deck(&render_deck(&deck)).expect("render → parse must succeed");
    assert_eq!(parsed.problem.x_cells, 24);
    assert_eq!(parsed.control.solver, "ppcg");
}
