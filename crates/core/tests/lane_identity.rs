//! Property suite for the lane-kernel bit-identity contract
//! (`tea_core::vector`): every explicit-width lane kernel must be
//! **bit-identical** to the scalar f64 reference
//! (`vector::scalar_ref`), for any input — including ragged row lengths
//! that exercise the `chunks_exact` remainder path — and for any
//! worker-thread count and parallel threshold.
//!
//! Two layers:
//!
//! * row level — `lanes::*_row` vs `scalar_ref::*_row` on arbitrary
//!   slices, no global state touched;
//! * field level — the public kernels at threads ∈ {1, 2, 4} ×
//!   thresholds {1, 64, MAX} against the 1-thread scalar-reference
//!   baseline, all inside one `#[test]` because thread count and
//!   threshold are process-global knobs (same discipline as
//!   `tests/thread_identity.rs`).

use proptest::prelude::*;
use tea_core::vector::{self, lanes, scalar_ref};
use tea_core::{SolveTrace, TileBounds};
use tea_mesh::Field2D;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ragged lengths 0..38 sweep every remainder class of the 4-wide
    /// f64 lane groups (and would for 8-wide too). Values come from a
    /// seeded LCG (the vendored proptest has no inclusive-range or
    /// fixed-length vec strategies; NaN-free finite values keep bitwise
    /// comparison meaningful).
    #[test]
    fn lane_rows_bit_identical_to_scalar_reference(
        n in 0usize..38,
        seed in any::<u64>(),
        a in -8.0f64..8.0,
        b in -8.0f64..8.0,
    ) {
        let gen = |salt: u64| {
            let mut state = seed ^ salt;
            let mut next = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 11) as f64 / (1u64 << 53) as f64) * 2e3 - 1e3
            };
            (0..n).map(|_| next()).collect::<Vec<f64>>()
        };
        let x = gen(1);
        let r = gen(2);
        let d = gen(3);
        let y0 = gen(4);

        // axpy
        let (mut ys, mut yl) = (y0.clone(), y0.clone());
        scalar_ref::axpy_row(&mut ys, a, &x);
        lanes::axpy_row(&mut yl, a, &x);
        prop_assert_eq!(bits(&ys), bits(&yl));

        // xpay
        let (mut ys, mut yl) = (y0.clone(), y0.clone());
        scalar_ref::xpay_row(&mut ys, &x, a);
        lanes::xpay_row(&mut yl, &x, a);
        prop_assert_eq!(bits(&ys), bits(&yl));

        // scale_add
        let (mut ys, mut yl) = (y0.clone(), y0.clone());
        scalar_ref::scale_add_row(&mut ys, a, b, &x);
        lanes::scale_add_row(&mut yl, a, b, &x);
        prop_assert_eq!(bits(&ys), bits(&yl));

        // scale_add_mul (the fused preconditioner recurrence)
        let (mut ys, mut yl) = (y0.clone(), y0.clone());
        scalar_ref::scale_add_mul_row(&mut ys, a, b, &r, &d);
        lanes::scale_add_mul_row(&mut yl, a, b, &r, &d);
        prop_assert_eq!(bits(&ys), bits(&yl));

        // scaled_copy
        let (mut ys, mut yl) = (vec![0.0; n], vec![0.0; n]);
        scalar_ref::scaled_copy_row(&mut ys, &x, a);
        lanes::scaled_copy_row(&mut yl, &x, a);
        prop_assert_eq!(bits(&ys), bits(&yl));

        // mul_into
        let (mut ys, mut yl) = (vec![0.0; n], vec![0.0; n]);
        scalar_ref::mul_into_row(&mut ys, &r, &d);
        lanes::mul_into_row(&mut yl, &r, &d);
        prop_assert_eq!(bits(&ys), bits(&yl));

        // reductions: same serial fold order is part of the contract
        prop_assert_eq!(
            scalar_ref::dot_row(&x, &r).to_bits(),
            lanes::dot_row(&x, &r).to_bits()
        );
        prop_assert_eq!(
            scalar_ref::abs_diff_row(&x, &r).to_bits(),
            lanes::abs_diff_row(&x, &r).to_bits()
        );
    }
}

/// Builds an `nx × ny` field with deterministic pseudo-random interior.
fn field(nx: usize, ny: usize, seed: u64) -> Field2D {
    let mut f = Field2D::new(nx, ny, 1);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    for k in 0..ny as isize {
        let row = f.row_mut(k, 0, nx as isize);
        for v in row.iter_mut() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((state >> 11) as f64 / (1u64 << 53) as f64) * 2e3 - 1e3;
        }
    }
    f
}

fn interior_bits(f: &Field2D) -> Vec<u64> {
    let mut out = Vec::with_capacity(f.nx() * f.ny());
    for k in 0..f.ny() as isize {
        for j in 0..f.nx() as isize {
            out.push(f.at(j, k).to_bits());
        }
    }
    out
}

/// Runs every public vector kernel once on fresh fields and returns the
/// concatenated result bits (outputs + both reduction scalars).
fn kernel_sweep_bits(nx: usize, ny: usize, seed: u64) -> Vec<u64> {
    let bounds = TileBounds::serial(nx, ny);
    let mut tr = SolveTrace::new("lane-identity");
    let x = field(nx, ny, seed ^ 1);
    let r = field(nx, ny, seed ^ 2);
    let d = field(nx, ny, seed ^ 3);
    let mut out = Vec::new();

    let mut y = field(nx, ny, seed ^ 4);
    vector::axpy(&mut y, 1.25, &x, &bounds, 0, &mut tr);
    out.extend(interior_bits(&y));

    let mut y = field(nx, ny, seed ^ 5);
    vector::xpay(&mut y, &x, -0.75, &bounds, 0, &mut tr);
    out.extend(interior_bits(&y));

    let mut y = field(nx, ny, seed ^ 6);
    vector::scale_add(&mut y, 0.5, 2.0, &x, &bounds, 0, &mut tr);
    out.extend(interior_bits(&y));

    let mut y = field(nx, ny, seed ^ 7);
    vector::scale_add_mul(&mut y, 0.5, 2.0, &r, &d, &bounds, 0, &mut tr);
    out.extend(interior_bits(&y));

    let mut y = Field2D::new(nx, ny, 1);
    vector::scaled_copy(&mut y, &x, 3.5, &bounds, 0, &mut tr);
    out.extend(interior_bits(&y));

    let mut y = Field2D::new(nx, ny, 1);
    vector::mul_into(&mut y, &r, &d, &bounds, 0, &mut tr);
    out.extend(interior_bits(&y));

    out.push(vector::dot_local(&x, &r, &bounds, &mut tr).to_bits());
    out.push(vector::abs_diff_local(&x, &r, &bounds, &mut tr).to_bits());
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Field-level contract across the runtime configuration matrix.
    /// Ragged widths (odd `nx`) put every row through the lane
    /// remainder path; `threshold = 1` forces the parallel branch even
    /// on tiny fields.
    #[test]
    fn kernels_bit_identical_across_threads_and_thresholds(
        nx in 1usize..20,
        ny in 1usize..10,
        seed in any::<u64>(),
    ) {
        // baseline: the scalar f64 reference (1 worker, never parallel)
        tea_core::set_num_threads(1);
        tea_core::set_par_threshold(usize::MAX);
        let baseline = kernel_sweep_bits(nx, ny, seed);
        for &threads in &[1usize, 2, 4] {
            for &threshold in &[1usize, 64, usize::MAX] {
                tea_core::set_num_threads(threads);
                tea_core::set_par_threshold(threshold);
                let got = kernel_sweep_bits(nx, ny, seed);
                tea_core::set_num_threads(1);
                tea_core::set_par_threshold(tea_core::PAR_THRESHOLD);
                prop_assert_eq!(
                    &baseline,
                    &got,
                    "kernels diverged at threads={} threshold={}",
                    threads,
                    threshold
                );
            }
        }
    }
}
