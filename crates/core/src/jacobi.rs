//! The Jacobi solver — TeaLeaf's simplest stand-alone method.
//!
//! `u ← u + D⁻¹ (b − A·u)`, one depth-1 halo exchange and one global
//! reduction (the convergence error) per iteration. Converges slowly
//! (spectral radius close to 1 for diffusion operators) but is trivially
//! parallel; it exists in TeaLeaf as the design-space floor against which
//! the Krylov methods are judged.

use crate::api::{IterativeSolver, SolveContext, SolverParams};
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveStatus, SolveTrace};
use crate::vector;
use tea_comms::Communicator;
use tea_mesh::Field2D;

/// Point-Jacobi as an [`IterativeSolver`]: the design-space floor. No
/// configuration beyond the convergence options latched by `prepare`.
#[derive(Debug, Clone, Default)]
pub struct Jacobi {
    opts: SolveOpts,
}

impl Jacobi {
    /// A Jacobi solver with default options.
    pub fn new() -> Self {
        Jacobi::default()
    }

    /// Registry factory (Jacobi consumes no [`SolverParams`] fields).
    pub fn from_params(_params: &SolverParams) -> Self {
        Jacobi::new()
    }
}

impl IterativeSolver for Jacobi {
    fn name(&self) -> &'static str {
        "jacobi"
    }

    fn label(&self) -> String {
        "Jacobi".into()
    }

    fn prepare(&mut self, _ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        let result = jacobi_solve_impl(ctx.tile, u, b, ws, self.opts);
        trace.merge(&result.trace);
        result
    }
}

pub(crate) fn jacobi_solve_impl<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    ws: &mut Workspace,
    opts: SolveOpts,
) -> SolveResult {
    let mut trace = SolveTrace::new("Jacobi");
    let bounds = &tile.op.bounds;
    let (nx, ny) = bounds.tile();

    // reciprocal diagonal, computed once
    let mut inv_diag = Field2D::new(nx, ny, 1);
    tile.op.diagonal_into(&mut inv_diag, 0);
    for k in 0..ny as isize {
        for v in inv_diag.row_mut(k, 0, nx as isize) {
            *v = 1.0 / *v;
        }
    }

    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);
    let rr0_local = vector::dot_local(&ws.r, &ws.r, bounds, &mut trace);
    let rr0 = tile.reduce_sum(rr0_local, &mut trace);
    if !rr0.is_finite() {
        return SolveResult {
            converged: false,
            iterations: 0,
            initial_residual: f64::NAN,
            final_residual: f64::NAN,
            status: SolveStatus::Diverged { iteration: 0 },
            trace,
        };
    }
    let initial_residual = rr0.max(0.0).sqrt();
    if initial_residual == 0.0 {
        return SolveResult {
            converged: true,
            iterations: 0,
            initial_residual,
            final_residual: 0.0,
            status: SolveStatus::Converged,
            trace,
        };
    }
    let target = opts.eps * initial_residual;

    let mut iterations = 0;
    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = initial_residual;

    while iterations < opts.max_iters {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke(iterations, u, &mut ws.r);

        // u += D^{-1} r
        vector::mul_into(&mut ws.z, &ws.r, &inv_diag, bounds, 0, &mut trace);
        vector::axpy(u, 1.0, &ws.z, bounds, 0, &mut trace);

        tile.exchange(&mut [u], 1, &mut trace);
        tile.op.residual(u, b, &mut ws.r, 0, &mut trace);

        let rr_local = vector::dot_local(&ws.r, &ws.r, bounds, &mut trace);
        let rr = tile.reduce_sum(rr_local, &mut trace);
        if !rr.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            break;
        }
        final_residual = rr.max(0.0).sqrt();
        if final_residual <= target {
            converged = true;
            status = SolveStatus::Converged;
            break;
        }
    }

    SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg_solve_impl;
    use crate::ops::{TileBounds, TileOperator};
    use crate::precon::{PreconKind, Preconditioner};
    use tea_comms::{HaloLayout, SerialComm};
    use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Mesh2D};

    fn serial_problem(n: usize) -> (TileOperator, Field2D) {
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, 1);
        let mut energy = Field2D::new(n, n, 1);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, 1);
        let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
        let mut b = Field2D::new(n, n, 1);
        for k in 0..n as isize {
            for j in 0..n as isize {
                b.set(j, k, density.at(j, k) * energy.at(j, k));
            }
        }
        (op, b)
    }

    #[test]
    fn jacobi_converges_slowly_but_surely() {
        let n = 16;
        let (op, b) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = b.clone();
        let res = jacobi_solve_impl(
            &tile,
            &mut u,
            &b,
            &mut ws,
            SolveOpts {
                eps: 1e-8,
                max_iters: 100_000,
            },
        );
        assert!(res.converged, "Jacobi must converge: {res:?}");
        let mut t = SolveTrace::new("check");
        let mut r = Field2D::new(n, n, 1);
        op.residual(&u, &b, &mut r, 0, &mut t);
        assert!(r.interior_norm() / b.interior_norm() < 1e-7);
    }

    #[test]
    fn jacobi_needs_far_more_iterations_than_cg() {
        let n = 32;
        let (op, b) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let m = Preconditioner::setup(PreconKind::None, &op, 0);

        let mut ws = Workspace::new(n, n, 1);
        let mut u1 = b.clone();
        let opts = SolveOpts {
            eps: 1e-8,
            max_iters: 200_000,
        };
        let jac = jacobi_solve_impl(&tile, &mut u1, &b, &mut ws, opts);
        let mut u2 = b.clone();
        let cg = cg_solve_impl(&tile, &mut u2, &b, &m, &mut ws, opts);
        assert!(jac.converged && cg.converged);
        assert!(
            jac.iterations > 2 * cg.iterations,
            "Jacobi ({}) should be far slower than CG ({})",
            jac.iterations,
            cg.iterations
        );
    }

    #[test]
    fn zero_rhs_immediate() {
        let n = 8;
        let (op, _b) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let mut ws = Workspace::new(n, n, 1);
        let zero = Field2D::new(n, n, 1);
        let mut u = Field2D::new(n, n, 1);
        let res = jacobi_solve_impl(&tile, &mut u, &zero, &mut ws, SolveOpts::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }
}
