//! Vector kernels over tile fields.
//!
//! The axpy-class building blocks of every solver, each sweeping an
//! extension-clamped range like the operator kernels (the matrix-powers
//! inner loop updates vectors over the same shrinking bounds as its
//! stencil applications). All are rayon-parallel above
//! [`crate::runtime::par_threshold`] with deterministic row-ordered
//! reductions, and generic over the [`Scalar`] precision (f64 call
//! sites read exactly as before; the mixed-precision solvers
//! instantiate the same code at `f32`).

use crate::ops::TileBounds;
use crate::runtime::par_threshold;
use crate::trace::SolveTrace;
use rayon::prelude::*;
use tea_mesh::{Field2, Scalar};

/// Applies `body` to every row of `out` in the `bounds.range(ext)` sweep,
/// in parallel when large. `body(k, row)` gets the row index and the
/// mutable row slice.
///
/// This is *the* padded-row dispatch of the crate — the halo offset,
/// interior slice bounds and row-range guard live here once, and every
/// row-parallel kernel (the vector ops below, the 2D operator apply and
/// residual, the block-Jacobi solve) routes through it or its fused
/// sibling [`for_rows_sum`]. The 3D operator keeps its own copy only
/// because `Field3D`'s two-level row decode does not fit this shape.
pub(crate) fn for_rows<S: Scalar>(
    out: &mut Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    body: impl Fn(isize, &mut [S]) + Sync,
) {
    let (x_lo, x_hi, y_lo, y_hi) = bounds.range(ext);
    let n = (x_hi - x_lo) as usize;
    if bounds.cells(ext) >= par_threshold() {
        let stride = out.stride();
        let h = out.halo() as isize;
        let x0 = (x_lo + h) as usize;
        out.raw_mut()
            .par_chunks_mut(stride)
            .enumerate()
            .for_each(|(row, chunk)| {
                let k = row as isize - h;
                if k >= y_lo && k < y_hi {
                    body(k, &mut chunk[x0..x0 + n]);
                }
            });
    } else {
        for k in y_lo..y_hi {
            body(k, out.row_mut(k, x_lo, x_hi));
        }
    }
}

/// [`for_rows`] with a fused per-row reduction: `body` returns a row
/// partial, and the partials are folded in row order on the calling
/// thread (one preallocated slot vector, bit-identical for every thread
/// count — padded rows outside the sweep contribute exactly zero).
pub(crate) fn for_rows_sum<S: Scalar>(
    out: &mut Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    body: impl Fn(isize, &mut [S]) -> S + Sync,
) -> S {
    let (x_lo, x_hi, y_lo, y_hi) = bounds.range(ext);
    let n = (x_hi - x_lo) as usize;
    if bounds.cells(ext) >= par_threshold() {
        let stride = out.stride();
        let h = out.halo() as isize;
        let x0 = (x_lo + h) as usize;
        let nrows = out.raw().len() / stride;
        let mut partials = vec![S::ZERO; nrows];
        out.raw_mut()
            .par_chunks_mut(stride)
            .zip(partials.par_iter_mut())
            .enumerate()
            .for_each(|(row, (chunk, slot))| {
                let k = row as isize - h;
                if k >= y_lo && k < y_hi {
                    *slot = body(k, &mut chunk[x0..x0 + n]);
                }
            });
        partials.iter().fold(S::ZERO, |acc, &p| acc + p)
    } else {
        let mut acc = S::ZERO;
        for k in y_lo..y_hi {
            acc += body(k, out.row_mut(k, x_lo, x_hi));
        }
        acc
    }
}

/// Deterministic read-only reduction over rows: folds per-row partials
/// in row order. The parallel path allocates exactly one `Vec` — the
/// ordered partials, filled in place through an indexed `par_iter_mut`
/// (no intermediate collect) — and folds it left to right, so the
/// result is bit-identical to the serial path for every thread count.
fn sum_rows<S: Scalar>(
    bounds: &TileBounds,
    ext: usize,
    body: impl Fn(isize, isize, isize) -> S + Sync,
) -> S {
    let (x_lo, x_hi, y_lo, y_hi) = bounds.range(ext);
    if bounds.cells(ext) >= par_threshold() {
        let mut partials = vec![S::ZERO; (y_hi - y_lo) as usize];
        partials
            .par_iter_mut()
            .enumerate()
            .for_each(|(idx, slot)| *slot = body(y_lo + idx as isize, x_lo, x_hi));
        partials.iter().fold(S::ZERO, |acc, &p| acc + p)
    } else {
        let mut acc = S::ZERO;
        for k in y_lo..y_hi {
            acc += body(k, x_lo, x_hi);
        }
        acc
    }
}

/// `dst = src` over the sweep range.
pub fn copy<S: Scalar>(
    dst: &mut Field2<S>,
    src: &Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    for_rows(dst, bounds, ext, |k, row| {
        let (x_lo, x_hi, _, _) = bounds.range(ext);
        row.copy_from_slice(src.row(k, x_lo, x_hi));
    });
}

/// `y += a * x` over the sweep range.
pub fn axpy<S: Scalar>(
    y: &mut Field2<S>,
    a: S,
    x: &Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    for_rows(y, bounds, ext, |k, row| {
        let (x_lo, x_hi, _, _) = bounds.range(ext);
        let xr = x.row(k, x_lo, x_hi);
        for (yi, &xi) in row.iter_mut().zip(xr) {
            *yi += a * xi;
        }
    });
}

/// `y = x + a * y` (TeaLeaf's `p = z + beta p` update) over the sweep
/// range.
pub fn xpay<S: Scalar>(
    y: &mut Field2<S>,
    x: &Field2<S>,
    a: S,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    for_rows(y, bounds, ext, |k, row| {
        let (x_lo, x_hi, _, _) = bounds.range(ext);
        let xr = x.row(k, x_lo, x_hi);
        for (yi, &xi) in row.iter_mut().zip(xr) {
            *yi = xi + a * *yi;
        }
    });
}

/// `y = a*y + b*x` (the Chebyshev `sd` recurrence) over the sweep range.
pub fn scale_add<S: Scalar>(
    y: &mut Field2<S>,
    a: S,
    b: S,
    x: &Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    for_rows(y, bounds, ext, |k, row| {
        let (x_lo, x_hi, _, _) = bounds.range(ext);
        let xr = x.row(k, x_lo, x_hi);
        for (yi, &xi) in row.iter_mut().zip(xr) {
            *yi = a * *yi + b * xi;
        }
    });
}

/// `dst = src * scale` over the sweep range.
pub fn scaled_copy<S: Scalar>(
    dst: &mut Field2<S>,
    src: &Field2<S>,
    scale: S,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    for_rows(dst, bounds, ext, |k, row| {
        let (x_lo, x_hi, _, _) = bounds.range(ext);
        let sr = src.row(k, x_lo, x_hi);
        for (d, &s) in row.iter_mut().zip(sr) {
            *d = s * scale;
        }
    });
}

/// `dst = a .* b` elementwise product (diagonal preconditioner apply).
pub fn mul_into<S: Scalar>(
    dst: &mut Field2<S>,
    a: &Field2<S>,
    b: &Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    for_rows(dst, bounds, ext, |k, row| {
        let (x_lo, x_hi, _, _) = bounds.range(ext);
        let ar = a.row(k, x_lo, x_hi);
        let br = b.row(k, x_lo, x_hi);
        for i in 0..row.len() {
            row[i] = ar[i] * br[i];
        }
    });
}

/// Zeroes the sweep range.
pub fn zero<S: Scalar>(
    dst: &mut Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    for_rows(dst, bounds, ext, |_k, row| row.fill(S::ZERO));
}

/// Local (un-reduced) dot product over the tile interior. The caller pays
/// the global reduction.
pub fn dot_local<S: Scalar>(
    a: &Field2<S>,
    b: &Field2<S>,
    bounds: &TileBounds,
    trace: &mut SolveTrace,
) -> S {
    trace.dot_kernels.record(0);
    sum_rows(bounds, 0, |k, x_lo, x_hi| {
        let ar = a.row(k, x_lo, x_hi);
        let br = b.row(k, x_lo, x_hi);
        let mut acc = S::ZERO;
        for (x, y) in ar.iter().zip(br) {
            acc += *x * *y;
        }
        acc
    })
}

/// Local sum of absolute differences `Σ|a - b|` over the interior
/// (Jacobi's convergence metric).
pub fn abs_diff_local<S: Scalar>(
    a: &Field2<S>,
    b: &Field2<S>,
    bounds: &TileBounds,
    trace: &mut SolveTrace,
) -> S {
    trace.dot_kernels.record(0);
    sum_rows(bounds, 0, |k, x_lo, x_hi| {
        let ar = a.row(k, x_lo, x_hi);
        let br = b.row(k, x_lo, x_hi);
        let mut acc = S::ZERO;
        for (x, y) in ar.iter().zip(br) {
            acc += (*x - *y).abs();
        }
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_mesh::{Field2D, Field2F};

    fn f(n: usize, halo: usize, g: impl Fn(isize, isize) -> f64) -> Field2D {
        let mut x = Field2D::new(n, n, halo);
        for k in -(halo as isize)..(n + halo) as isize {
            for j in -(halo as isize)..(n + halo) as isize {
                x.set(j, k, g(j, k));
            }
        }
        x
    }

    #[test]
    fn axpy_and_xpay() {
        let b = TileBounds::serial(4, 4);
        let mut t = SolveTrace::new("t");
        let x = f(4, 1, |j, k| (j + k) as f64);
        let mut y = f(4, 1, |_, _| 1.0);
        axpy(&mut y, 2.0, &x, &b, 0, &mut t);
        assert_eq!(y.at(1, 2), 1.0 + 2.0 * 3.0);
        let mut y2 = f(4, 1, |_, _| 1.0);
        xpay(&mut y2, &x, 0.5, &b, 0, &mut t);
        assert_eq!(y2.at(2, 2), 4.0 + 0.5);
        assert_eq!(t.vector_ops.total(), 2);
    }

    #[test]
    fn scale_add_recurrence() {
        let b = TileBounds::serial(3, 3);
        let mut t = SolveTrace::new("t");
        let x = f(3, 0, |_, _| 2.0);
        let mut y = f(3, 0, |_, _| 10.0);
        scale_add(&mut y, 0.5, 3.0, &x, &b, 0, &mut t);
        assert_eq!(y.at(0, 0), 0.5 * 10.0 + 3.0 * 2.0);
    }

    #[test]
    fn copy_scaled_mul_zero() {
        let b = TileBounds::serial(3, 3);
        let mut t = SolveTrace::new("t");
        let x = f(3, 0, |j, _| j as f64);
        let mut y = Field2D::new(3, 3, 0);
        copy(&mut y, &x, &b, 0, &mut t);
        assert_eq!(y.at(2, 1), 2.0);
        scaled_copy(&mut y, &x, -2.0, &b, 0, &mut t);
        assert_eq!(y.at(2, 1), -4.0);
        let z = f(3, 0, |_, k| (k + 1) as f64);
        let mut w = Field2D::new(3, 3, 0);
        mul_into(&mut w, &x, &z, &b, 0, &mut t);
        assert_eq!(w.at(2, 1), 4.0);
        zero(&mut w, &b, 0, &mut t);
        assert_eq!(w.interior_sum(), 0.0);
    }

    #[test]
    fn dot_and_absdiff() {
        let b = TileBounds::serial(4, 4);
        let mut t = SolveTrace::new("t");
        let x = f(4, 0, |_, _| 3.0);
        let y = f(4, 0, |_, _| -1.0);
        assert_eq!(dot_local(&x, &y, &b, &mut t), -48.0);
        assert_eq!(abs_diff_local(&x, &y, &b, &mut t), 64.0);
        assert_eq!(t.dot_kernels.total(), 2);
    }

    #[test]
    fn extension_sweeps_touch_halo() {
        // bounds with room to extend: use TileBounds::new on an interior tile
        use tea_mesh::{Decomposition2D, Extent2D, Mesh2D};
        let d = Decomposition2D::with_grid(12, 12, 3, 3);
        let mesh = Mesh2D::new(&d, 4, Extent2D::unit()); // centre tile
        let bounds = TileBounds::new(&mesh, 2);
        let mut t = SolveTrace::new("t");
        let x = f(4, 2, |_, _| 1.0);
        let mut y = Field2D::new(4, 4, 2);
        axpy(&mut y, 1.0, &x, &bounds, 2, &mut t);
        assert_eq!(y.at(-2, -2), 1.0, "extended sweep must reach ghosts");
        assert_eq!(y.at(5, 5), 1.0);
        // but a serial tile's ext is clamped to 0
        let sb = TileBounds::serial(4, 4);
        let mut y2 = Field2D::new(4, 4, 2);
        axpy(&mut y2, 1.0, &x, &sb, 2, &mut t);
        assert_eq!(y2.at(-1, -1), 0.0, "clamped sweep must not touch ghosts");
    }

    #[test]
    fn large_parallel_dot_is_deterministic() {
        let n = 300; // 90000 cells > PAR_THRESHOLD
        let b = TileBounds::serial(n, n);
        let mut t = SolveTrace::new("t");
        let x = f(n, 0, |j, k| ((j * 31 + k * 7) % 13) as f64 / 3.0);
        let y = f(n, 0, |j, k| ((j + k) % 5) as f64 - 2.0);
        let d1 = dot_local(&x, &y, &b, &mut t);
        for _ in 0..5 {
            assert_eq!(dot_local(&x, &y, &b, &mut t), d1);
        }
        // against the serial Field2D reference
        assert!((d1 - x.interior_dot(&y)).abs() <= 1e-9 * d1.abs().max(1.0));
    }

    #[test]
    fn f32_kernels_match_f64_on_dyadic_data() {
        // dyadic rationals are exact in both formats, so the same sweep
        // must produce bitwise-equal values after conversion
        let b = TileBounds::serial(8, 8);
        let mut t = SolveTrace::new("t");
        let x = f(8, 1, |j, k| ((j - k) as f64) * 0.25);
        let mut y = f(8, 1, |j, k| ((j + k) as f64) * 0.5);
        let x32: Field2F = x.convert();
        let mut y32: Field2F = y.convert();
        axpy(&mut y, 2.0, &x, &b, 0, &mut t);
        axpy(&mut y32, 2.0f32, &x32, &b, 0, &mut t);
        for k in 0..8isize {
            for j in 0..8isize {
                assert_eq!(y32.at(j, k) as f64, y.at(j, k), "({j},{k})");
            }
        }
        let d64 = dot_local(&x, &y, &b, &mut t);
        let d32 = dot_local(&x32, &y32, &b, &mut t);
        assert!((d32 as f64 - d64).abs() <= 1e-3 * d64.abs().max(1.0));
    }
}
