//! Vector kernels over tile fields.
//!
//! The axpy-class building blocks of every solver, each sweeping an
//! extension-clamped range like the operator kernels (the matrix-powers
//! inner loop updates vectors over the same shrinking bounds as its
//! stencil applications). All are rayon-parallel above
//! [`crate::runtime::par_threshold`] with deterministic row-ordered
//! reductions, and generic over the [`Scalar`] precision (f64 call
//! sites read exactly as before; the mixed-precision solvers
//! instantiate the same code at `f32`).
//!
//! # Lane kernels and the scalar reference
//!
//! Each kernel has two row bodies: the [`lanes`] module sweeps rows in
//! fixed-width groups of [`Scalar::LANES`] elements (`f64`×4 / `f32`×8
//! — one 256-bit register per group, no `unsafe`, plain `chunks_exact`
//! that LLVM turns into vector code), and the [`scalar_ref`] module
//! keeps the original element-at-a-time loops as the bit-identity
//! reference. Both bodies evaluate the *same* floating-point expression
//! per element — elementwise kernels chunk without reassociating, and
//! the reductions vectorize only the multiplies while folding the adds
//! in element order — so the two paths are bitwise equal by
//! construction. The reference body is selected whenever
//! [`scalar_reference_active`] holds (`f64` at `TEA_NUM_THREADS=1`), so
//! the sequential f64 baseline the determinism contract pins is still
//! executed by the pre-vectorization code, and the lane path is
//! continuously checked against it (`tests/lane_identity.rs`, the
//! `speedup` bench).

use crate::ops::TileBounds;
use crate::runtime::par_threshold;
use crate::trace::SolveTrace;
use rayon::prelude::*;
use tea_mesh::{Field2, Scalar};

/// True when the pre-vectorization scalar row bodies are dispatched:
/// `f64` storage on a single-thread runtime (`TEA_NUM_THREADS=1`).
///
/// This is the bit-identity reference configuration: the sequential f64
/// sweep every other thread count and precision is pinned against runs
/// exactly the code it ran before the lane kernels existed. Because the
/// lane bodies are bitwise-equal by construction, flipping this
/// predicate never changes results — it changes which machine code
/// produces them.
#[inline]
pub fn scalar_reference_active<S: Scalar>() -> bool {
    S::BYTES == 8 && crate::runtime::num_threads() == 1
}

/// Explicit-width lane row kernels: each body walks the row in
/// `chunks_exact(S::LANES)` groups materialized as fixed-size arrays,
/// which LLVM compiles to vector loads/stores without any `unsafe`.
///
/// Elementwise kernels apply the identical per-element expression to
/// each lane, so chunking cannot change a single rounding. The
/// reduction kernels ([`lanes::dot_row`], [`lanes::abs_diff_row`])
/// vectorize only the elementwise part (products / absolute
/// differences) into a lane buffer and then fold the buffer in element
/// order — the additions form the same serial chain as the scalar
/// reference, so the result is bit-identical while the multiplies leave
/// the critical path.
pub mod lanes {
    use tea_mesh::Scalar;

    /// Monomorphizes a lane body over the format's lane count.
    macro_rules! by_lanes {
        ($S:ident, $f:ident ( $($arg:expr),* )) => {
            match $S::LANES {
                8 => $f::<$S, 8>($($arg),*),
                _ => $f::<$S, 4>($($arg),*),
            }
        };
    }

    /// `y += a * x` over one row.
    #[inline(always)]
    pub fn axpy_row<S: Scalar>(y: &mut [S], a: S, x: &[S]) {
        by_lanes!(S, axpy_chunks(y, a, x))
    }

    #[inline(always)]
    fn axpy_chunks<S: Scalar, const L: usize>(y: &mut [S], a: S, x: &[S]) {
        let mut yc = y.chunks_exact_mut(L);
        let mut xc = x.chunks_exact(L);
        for (ya, xa) in (&mut yc).zip(&mut xc) {
            let ya: &mut [S; L] = ya.try_into().expect("lane chunk");
            let xa: &[S; L] = xa.try_into().expect("lane chunk");
            for i in 0..L {
                ya[i] += a * xa[i];
            }
        }
        for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
            *yi += a * xi;
        }
    }

    /// `y = x + a * y` over one row.
    #[inline(always)]
    pub fn xpay_row<S: Scalar>(y: &mut [S], x: &[S], a: S) {
        by_lanes!(S, xpay_chunks(y, x, a))
    }

    #[inline(always)]
    fn xpay_chunks<S: Scalar, const L: usize>(y: &mut [S], x: &[S], a: S) {
        let mut yc = y.chunks_exact_mut(L);
        let mut xc = x.chunks_exact(L);
        for (ya, xa) in (&mut yc).zip(&mut xc) {
            let ya: &mut [S; L] = ya.try_into().expect("lane chunk");
            let xa: &[S; L] = xa.try_into().expect("lane chunk");
            for i in 0..L {
                ya[i] = xa[i] + a * ya[i];
            }
        }
        for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
            *yi = xi + a * *yi;
        }
    }

    /// `y = a*y + b*x` over one row.
    #[inline(always)]
    pub fn scale_add_row<S: Scalar>(y: &mut [S], a: S, b: S, x: &[S]) {
        by_lanes!(S, scale_add_chunks(y, a, b, x))
    }

    #[inline(always)]
    fn scale_add_chunks<S: Scalar, const L: usize>(y: &mut [S], a: S, b: S, x: &[S]) {
        let mut yc = y.chunks_exact_mut(L);
        let mut xc = x.chunks_exact(L);
        for (ya, xa) in (&mut yc).zip(&mut xc) {
            let ya: &mut [S; L] = ya.try_into().expect("lane chunk");
            let xa: &[S; L] = xa.try_into().expect("lane chunk");
            for i in 0..L {
                ya[i] = a * ya[i] + b * xa[i];
            }
        }
        for (yi, &xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
            *yi = a * *yi + b * xi;
        }
    }

    /// `y = a*y + b*(r .* d)` over one row — the diagonal-preconditioned
    /// Chebyshev recurrence with the `mul_into` pass fused in. Rounds
    /// exactly like the two-kernel sequence it replaces (`tmp = r*d`
    /// rounds first, then `a*y + b*tmp`).
    #[inline(always)]
    pub fn scale_add_mul_row<S: Scalar>(y: &mut [S], a: S, b: S, r: &[S], d: &[S]) {
        by_lanes!(S, scale_add_mul_chunks(y, a, b, r, d))
    }

    #[inline(always)]
    fn scale_add_mul_chunks<S: Scalar, const L: usize>(y: &mut [S], a: S, b: S, r: &[S], d: &[S]) {
        let mut yc = y.chunks_exact_mut(L);
        let mut rc = r.chunks_exact(L);
        let mut dc = d.chunks_exact(L);
        for ((ya, ra), da) in (&mut yc).zip(&mut rc).zip(&mut dc) {
            let ya: &mut [S; L] = ya.try_into().expect("lane chunk");
            let ra: &[S; L] = ra.try_into().expect("lane chunk");
            let da: &[S; L] = da.try_into().expect("lane chunk");
            for i in 0..L {
                ya[i] = a * ya[i] + b * (ra[i] * da[i]);
            }
        }
        for ((yi, &ri), &di) in yc
            .into_remainder()
            .iter_mut()
            .zip(rc.remainder())
            .zip(dc.remainder())
        {
            *yi = a * *yi + b * (ri * di);
        }
    }

    /// `dst = src * scale` over one row.
    #[inline(always)]
    pub fn scaled_copy_row<S: Scalar>(dst: &mut [S], src: &[S], scale: S) {
        by_lanes!(S, scaled_copy_chunks(dst, src, scale))
    }

    #[inline(always)]
    fn scaled_copy_chunks<S: Scalar, const L: usize>(dst: &mut [S], src: &[S], scale: S) {
        let mut dc = dst.chunks_exact_mut(L);
        let mut sc = src.chunks_exact(L);
        for (da, sa) in (&mut dc).zip(&mut sc) {
            let da: &mut [S; L] = da.try_into().expect("lane chunk");
            let sa: &[S; L] = sa.try_into().expect("lane chunk");
            for i in 0..L {
                da[i] = sa[i] * scale;
            }
        }
        for (di, &si) in dc.into_remainder().iter_mut().zip(sc.remainder()) {
            *di = si * scale;
        }
    }

    /// `dst = a .* b` elementwise over one row.
    #[inline(always)]
    pub fn mul_into_row<S: Scalar>(dst: &mut [S], a: &[S], b: &[S]) {
        by_lanes!(S, mul_into_chunks(dst, a, b))
    }

    #[inline(always)]
    fn mul_into_chunks<S: Scalar, const L: usize>(dst: &mut [S], a: &[S], b: &[S]) {
        let mut dc = dst.chunks_exact_mut(L);
        let mut ac = a.chunks_exact(L);
        let mut bc = b.chunks_exact(L);
        for ((da, aa), ba) in (&mut dc).zip(&mut ac).zip(&mut bc) {
            let da: &mut [S; L] = da.try_into().expect("lane chunk");
            let aa: &[S; L] = aa.try_into().expect("lane chunk");
            let ba: &[S; L] = ba.try_into().expect("lane chunk");
            for i in 0..L {
                da[i] = aa[i] * ba[i];
            }
        }
        for ((di, &ai), &bi) in dc
            .into_remainder()
            .iter_mut()
            .zip(ac.remainder())
            .zip(bc.remainder())
        {
            *di = ai * bi;
        }
    }

    /// Row dot product `Σ a[i]·b[i]` with the adds folded in element
    /// order (bit-identical to the scalar chain; only the products are
    /// lane-parallel).
    #[inline(always)]
    pub fn dot_row<S: Scalar>(a: &[S], b: &[S]) -> S {
        by_lanes!(S, dot_chunks(a, b))
    }

    #[inline(always)]
    fn dot_chunks<S: Scalar, const L: usize>(a: &[S], b: &[S]) -> S {
        let mut ac = a.chunks_exact(L);
        let mut bc = b.chunks_exact(L);
        let mut acc = S::ZERO;
        for (aa, ba) in (&mut ac).zip(&mut bc) {
            let aa: &[S; L] = aa.try_into().expect("lane chunk");
            let ba: &[S; L] = ba.try_into().expect("lane chunk");
            let mut prod = [S::ZERO; L];
            for i in 0..L {
                prod[i] = aa[i] * ba[i];
            }
            // fold in element order: the same serial add chain as the
            // scalar reference, so the partial is bit-identical
            for p in prod {
                acc += p;
            }
        }
        for (&ai, &bi) in ac.remainder().iter().zip(bc.remainder()) {
            acc += ai * bi;
        }
        acc
    }

    /// Row sum of absolute differences `Σ|a[i]-b[i]|`, folded in element
    /// order like [`dot_row`].
    #[inline(always)]
    pub fn abs_diff_row<S: Scalar>(a: &[S], b: &[S]) -> S {
        by_lanes!(S, abs_diff_chunks(a, b))
    }

    #[inline(always)]
    fn abs_diff_chunks<S: Scalar, const L: usize>(a: &[S], b: &[S]) -> S {
        let mut ac = a.chunks_exact(L);
        let mut bc = b.chunks_exact(L);
        let mut acc = S::ZERO;
        for (aa, ba) in (&mut ac).zip(&mut bc) {
            let aa: &[S; L] = aa.try_into().expect("lane chunk");
            let ba: &[S; L] = ba.try_into().expect("lane chunk");
            let mut diff = [S::ZERO; L];
            for i in 0..L {
                diff[i] = (aa[i] - ba[i]).abs();
            }
            for d in diff {
                acc += d;
            }
        }
        for (&ai, &bi) in ac.remainder().iter().zip(bc.remainder()) {
            acc += (ai - bi).abs();
        }
        acc
    }
}

/// The pre-vectorization row bodies, unchanged — the bit-identity
/// reference the lane kernels are checked against, and the code that
/// still runs for `f64` at `TEA_NUM_THREADS=1` (see
/// [`scalar_reference_active`]).
pub mod scalar_ref {
    use tea_mesh::Scalar;

    /// `y += a * x` over one row (element-at-a-time).
    #[inline(always)]
    pub fn axpy_row<S: Scalar>(y: &mut [S], a: S, x: &[S]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += a * xi;
        }
    }

    /// `y = x + a * y` over one row (element-at-a-time).
    #[inline(always)]
    pub fn xpay_row<S: Scalar>(y: &mut [S], x: &[S], a: S) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = xi + a * *yi;
        }
    }

    /// `y = a*y + b*x` over one row (element-at-a-time).
    #[inline(always)]
    pub fn scale_add_row<S: Scalar>(y: &mut [S], a: S, b: S, x: &[S]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = a * *yi + b * xi;
        }
    }

    /// `y = a*y + b*(r .* d)` over one row (element-at-a-time).
    #[inline(always)]
    pub fn scale_add_mul_row<S: Scalar>(y: &mut [S], a: S, b: S, r: &[S], d: &[S]) {
        for ((yi, &ri), &di) in y.iter_mut().zip(r).zip(d) {
            *yi = a * *yi + b * (ri * di);
        }
    }

    /// `dst = src * scale` over one row (element-at-a-time).
    #[inline(always)]
    pub fn scaled_copy_row<S: Scalar>(dst: &mut [S], src: &[S], scale: S) {
        for (di, &si) in dst.iter_mut().zip(src) {
            *di = si * scale;
        }
    }

    /// `dst = a .* b` over one row (element-at-a-time).
    #[inline(always)]
    pub fn mul_into_row<S: Scalar>(dst: &mut [S], a: &[S], b: &[S]) {
        for ((di, &ai), &bi) in dst.iter_mut().zip(a).zip(b) {
            *di = ai * bi;
        }
    }

    /// Row dot product, serial add chain.
    #[inline(always)]
    pub fn dot_row<S: Scalar>(a: &[S], b: &[S]) -> S {
        let mut acc = S::ZERO;
        for (x, y) in a.iter().zip(b) {
            acc += *x * *y;
        }
        acc
    }

    /// Row sum of absolute differences, serial add chain.
    #[inline(always)]
    pub fn abs_diff_row<S: Scalar>(a: &[S], b: &[S]) -> S {
        let mut acc = S::ZERO;
        for (x, y) in a.iter().zip(b) {
            acc += (*x - *y).abs();
        }
        acc
    }
}

/// Applies `body` to every row of `out` in the `bounds.range(ext)` sweep,
/// in parallel when large. `body(k, row)` gets the row index and the
/// mutable row slice.
///
/// This is *the* padded-row dispatch of the crate — the halo offset,
/// interior slice bounds and row-range guard live here once, and every
/// row-parallel kernel (the vector ops below, the 2D operator apply and
/// residual, the block-Jacobi solve) routes through it or its fused
/// siblings [`for_rows_sum`] and [`for_rows2`]. The 3D operator keeps
/// its own copy only because `Field3D`'s two-level row decode does not
/// fit this shape.
pub(crate) fn for_rows<S: Scalar>(
    out: &mut Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    body: impl Fn(isize, &mut [S]) + Sync,
) {
    let (x_lo, x_hi, y_lo, y_hi) = bounds.range(ext);
    let n = (x_hi - x_lo) as usize;
    if bounds.cells(ext) >= par_threshold() {
        let stride = out.stride();
        let h = out.halo() as isize;
        let x0 = (x_lo + h) as usize;
        out.raw_mut()
            .par_chunks_mut(stride)
            .enumerate()
            .for_each(|(row, chunk)| {
                let k = row as isize - h;
                if k >= y_lo && k < y_hi {
                    body(k, &mut chunk[x0..x0 + n]);
                }
            });
    } else {
        for k in y_lo..y_hi {
            body(k, out.row_mut(k, x_lo, x_hi));
        }
    }
}

/// [`for_rows`] over *two* output fields of identical shape: `body(k,
/// row1, row2)` gets both mutable row slices for the same sweep row.
/// The fused Chebyshev inner sweep updates `z` and `rr` in one pass per
/// stencil application through this dispatch.
pub(crate) fn for_rows2<S: Scalar>(
    out1: &mut Field2<S>,
    out2: &mut Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    body: impl Fn(isize, &mut [S], &mut [S]) + Sync,
) {
    let (x_lo, x_hi, y_lo, y_hi) = bounds.range(ext);
    let n = (x_hi - x_lo) as usize;
    if bounds.cells(ext) >= par_threshold() {
        let stride = out1.stride();
        let h = out1.halo() as isize;
        debug_assert_eq!(stride, out2.stride(), "fused outputs must share shape");
        debug_assert_eq!(h, out2.halo() as isize, "fused outputs must share halo");
        let x0 = (x_lo + h) as usize;
        out1.raw_mut()
            .par_chunks_mut(stride)
            .zip(out2.raw_mut().par_chunks_mut(stride))
            .enumerate()
            .for_each(|(row, (c1, c2))| {
                let k = row as isize - h;
                if k >= y_lo && k < y_hi {
                    body(k, &mut c1[x0..x0 + n], &mut c2[x0..x0 + n]);
                }
            });
    } else {
        for k in y_lo..y_hi {
            body(k, out1.row_mut(k, x_lo, x_hi), out2.row_mut(k, x_lo, x_hi));
        }
    }
}

/// [`for_rows`] with a fused per-row reduction: `body` returns a row
/// partial, and the partials are folded in row order on the calling
/// thread (one preallocated slot vector, bit-identical for every thread
/// count — padded rows outside the sweep contribute exactly zero).
pub(crate) fn for_rows_sum<S: Scalar>(
    out: &mut Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    body: impl Fn(isize, &mut [S]) -> S + Sync,
) -> S {
    let (x_lo, x_hi, y_lo, y_hi) = bounds.range(ext);
    let n = (x_hi - x_lo) as usize;
    if bounds.cells(ext) >= par_threshold() {
        let stride = out.stride();
        let h = out.halo() as isize;
        let x0 = (x_lo + h) as usize;
        let nrows = out.raw().len() / stride;
        let mut partials = vec![S::ZERO; nrows];
        out.raw_mut()
            .par_chunks_mut(stride)
            .zip(partials.par_iter_mut())
            .enumerate()
            .for_each(|(row, (chunk, slot))| {
                let k = row as isize - h;
                if k >= y_lo && k < y_hi {
                    *slot = body(k, &mut chunk[x0..x0 + n]);
                }
            });
        partials.iter().fold(S::ZERO, |acc, &p| acc + p)
    } else {
        let mut acc = S::ZERO;
        for k in y_lo..y_hi {
            acc += body(k, out.row_mut(k, x_lo, x_hi));
        }
        acc
    }
}

/// Deterministic read-only reduction over rows: folds per-row partials
/// in row order. The parallel path allocates exactly one `Vec` — the
/// ordered partials, filled in place through an indexed `par_iter_mut`
/// (no intermediate collect) — and folds it left to right, so the
/// result is bit-identical to the serial path for every thread count.
fn sum_rows<S: Scalar>(
    bounds: &TileBounds,
    ext: usize,
    body: impl Fn(isize, isize, isize) -> S + Sync,
) -> S {
    let (x_lo, x_hi, y_lo, y_hi) = bounds.range(ext);
    if bounds.cells(ext) >= par_threshold() {
        let mut partials = vec![S::ZERO; (y_hi - y_lo) as usize];
        partials
            .par_iter_mut()
            .enumerate()
            .for_each(|(idx, slot)| *slot = body(y_lo + idx as isize, x_lo, x_hi));
        partials.iter().fold(S::ZERO, |acc, &p| acc + p)
    } else {
        let mut acc = S::ZERO;
        for k in y_lo..y_hi {
            acc += body(k, x_lo, x_hi);
        }
        acc
    }
}

/// `dst = src` over the sweep range.
pub fn copy<S: Scalar>(
    dst: &mut Field2<S>,
    src: &Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    let (x_lo, x_hi, _, _) = bounds.range(ext);
    for_rows(dst, bounds, ext, |k, row| {
        row.copy_from_slice(src.row(k, x_lo, x_hi));
    });
}

/// `y += a * x` over the sweep range.
pub fn axpy<S: Scalar>(
    y: &mut Field2<S>,
    a: S,
    x: &Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    let (x_lo, x_hi, _, _) = bounds.range(ext);
    let scalar = scalar_reference_active::<S>();
    for_rows(y, bounds, ext, |k, row| {
        let xr = x.row(k, x_lo, x_hi);
        if scalar {
            scalar_ref::axpy_row(row, a, xr);
        } else {
            lanes::axpy_row(row, a, xr);
        }
    });
}

/// `y = x + a * y` (TeaLeaf's `p = z + beta p` update) over the sweep
/// range.
pub fn xpay<S: Scalar>(
    y: &mut Field2<S>,
    x: &Field2<S>,
    a: S,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    let (x_lo, x_hi, _, _) = bounds.range(ext);
    let scalar = scalar_reference_active::<S>();
    for_rows(y, bounds, ext, |k, row| {
        let xr = x.row(k, x_lo, x_hi);
        if scalar {
            scalar_ref::xpay_row(row, xr, a);
        } else {
            lanes::xpay_row(row, xr, a);
        }
    });
}

/// `y = a*y + b*x` (the Chebyshev `sd` recurrence) over the sweep range.
pub fn scale_add<S: Scalar>(
    y: &mut Field2<S>,
    a: S,
    b: S,
    x: &Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    let (x_lo, x_hi, _, _) = bounds.range(ext);
    let scalar = scalar_reference_active::<S>();
    for_rows(y, bounds, ext, |k, row| {
        let xr = x.row(k, x_lo, x_hi);
        if scalar {
            scalar_ref::scale_add_row(row, a, b, xr);
        } else {
            lanes::scale_add_row(row, a, b, xr);
        }
    });
}

/// `y = a*y + b*(r .* d)` over the sweep range — the Chebyshev `sd`
/// recurrence with the diagonal-preconditioner product fused in, saving
/// the intermediate `tmp` store and re-read. Rounds exactly like
/// [`mul_into`] followed by [`scale_add`].
#[allow(clippy::too_many_arguments)]
pub fn scale_add_mul<S: Scalar>(
    y: &mut Field2<S>,
    a: S,
    b: S,
    r: &Field2<S>,
    d: &Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    let (x_lo, x_hi, _, _) = bounds.range(ext);
    let scalar = scalar_reference_active::<S>();
    for_rows(y, bounds, ext, |k, row| {
        let rr = r.row(k, x_lo, x_hi);
        let dr = d.row(k, x_lo, x_hi);
        if scalar {
            scalar_ref::scale_add_mul_row(row, a, b, rr, dr);
        } else {
            lanes::scale_add_mul_row(row, a, b, rr, dr);
        }
    });
}

/// `dst = src * scale` over the sweep range.
pub fn scaled_copy<S: Scalar>(
    dst: &mut Field2<S>,
    src: &Field2<S>,
    scale: S,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    let (x_lo, x_hi, _, _) = bounds.range(ext);
    let scalar = scalar_reference_active::<S>();
    for_rows(dst, bounds, ext, |k, row| {
        let sr = src.row(k, x_lo, x_hi);
        if scalar {
            scalar_ref::scaled_copy_row(row, sr, scale);
        } else {
            lanes::scaled_copy_row(row, sr, scale);
        }
    });
}

/// `dst = a .* b` elementwise product (diagonal preconditioner apply).
pub fn mul_into<S: Scalar>(
    dst: &mut Field2<S>,
    a: &Field2<S>,
    b: &Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    let (x_lo, x_hi, _, _) = bounds.range(ext);
    let scalar = scalar_reference_active::<S>();
    for_rows(dst, bounds, ext, |k, row| {
        let ar = a.row(k, x_lo, x_hi);
        let br = b.row(k, x_lo, x_hi);
        if scalar {
            scalar_ref::mul_into_row(row, ar, br);
        } else {
            lanes::mul_into_row(row, ar, br);
        }
    });
}

/// Zeroes the sweep range.
pub fn zero<S: Scalar>(
    dst: &mut Field2<S>,
    bounds: &TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(ext);
    for_rows(dst, bounds, ext, |_k, row| row.fill(S::ZERO));
}

/// Local (un-reduced) dot product over the tile interior. The caller pays
/// the global reduction.
pub fn dot_local<S: Scalar>(
    a: &Field2<S>,
    b: &Field2<S>,
    bounds: &TileBounds,
    trace: &mut SolveTrace,
) -> S {
    trace.dot_kernels.record(0);
    let scalar = scalar_reference_active::<S>();
    sum_rows(bounds, 0, |k, x_lo, x_hi| {
        let ar = a.row(k, x_lo, x_hi);
        let br = b.row(k, x_lo, x_hi);
        if scalar {
            scalar_ref::dot_row(ar, br)
        } else {
            lanes::dot_row(ar, br)
        }
    })
}

/// Local sum of absolute differences `Σ|a - b|` over the interior
/// (Jacobi's convergence metric).
pub fn abs_diff_local<S: Scalar>(
    a: &Field2<S>,
    b: &Field2<S>,
    bounds: &TileBounds,
    trace: &mut SolveTrace,
) -> S {
    trace.dot_kernels.record(0);
    let scalar = scalar_reference_active::<S>();
    sum_rows(bounds, 0, |k, x_lo, x_hi| {
        let ar = a.row(k, x_lo, x_hi);
        let br = b.row(k, x_lo, x_hi);
        if scalar {
            scalar_ref::abs_diff_row(ar, br)
        } else {
            lanes::abs_diff_row(ar, br)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_mesh::{Field2D, Field2F};

    fn f(n: usize, halo: usize, g: impl Fn(isize, isize) -> f64) -> Field2D {
        let mut x = Field2D::new(n, n, halo);
        for k in -(halo as isize)..(n + halo) as isize {
            for j in -(halo as isize)..(n + halo) as isize {
                x.set(j, k, g(j, k));
            }
        }
        x
    }

    #[test]
    fn axpy_and_xpay() {
        let b = TileBounds::serial(4, 4);
        let mut t = SolveTrace::new("t");
        let x = f(4, 1, |j, k| (j + k) as f64);
        let mut y = f(4, 1, |_, _| 1.0);
        axpy(&mut y, 2.0, &x, &b, 0, &mut t);
        assert_eq!(y.at(1, 2), 1.0 + 2.0 * 3.0);
        let mut y2 = f(4, 1, |_, _| 1.0);
        xpay(&mut y2, &x, 0.5, &b, 0, &mut t);
        assert_eq!(y2.at(2, 2), 4.0 + 0.5);
        assert_eq!(t.vector_ops.total(), 2);
    }

    #[test]
    fn scale_add_recurrence() {
        let b = TileBounds::serial(3, 3);
        let mut t = SolveTrace::new("t");
        let x = f(3, 0, |_, _| 2.0);
        let mut y = f(3, 0, |_, _| 10.0);
        scale_add(&mut y, 0.5, 3.0, &x, &b, 0, &mut t);
        assert_eq!(y.at(0, 0), 0.5 * 10.0 + 3.0 * 2.0);
    }

    #[test]
    fn scale_add_mul_matches_two_kernel_sequence() {
        // the fused recurrence must round exactly like mul_into followed
        // by scale_add, for awkward (non-dyadic) values
        let n = 37; // odd size exercises the lane remainder
        let b = TileBounds::serial(n, n);
        let mut t = SolveTrace::new("t");
        let r = f(n, 0, |j, k| 0.1 + (j * 13 + k * 7) as f64 / 17.0);
        let d = f(n, 0, |j, k| 1.0 / (3.0 + (j + k) as f64 / 11.0));
        let y0 = f(n, 0, |j, k| ((j - k) as f64) / 7.0);
        let (a, beta) = (0.123456789, 0.987654321);

        let mut tmp = Field2D::new(n, n, 0);
        mul_into(&mut tmp, &r, &d, &b, 0, &mut t);
        let mut want = y0.clone();
        scale_add(&mut want, a, beta, &tmp, &b, 0, &mut t);

        let mut got = y0.clone();
        scale_add_mul(&mut got, a, beta, &r, &d, &b, 0, &mut t);
        for k in 0..n as isize {
            for j in 0..n as isize {
                assert_eq!(got.at(j, k).to_bits(), want.at(j, k).to_bits(), "({j},{k})");
            }
        }
    }

    #[test]
    fn lane_rows_match_scalar_reference_bitwise() {
        // quick in-crate check of the contract the property suite
        // (tests/lane_identity.rs) explores exhaustively: every lane row
        // body is bitwise equal to the scalar_ref body, remainder included
        let len = 23; // 5 lane groups of 4 + remainder 3 for f64
        let xs: Vec<f64> = (0..len).map(|i| 0.3 + (i as f64) / 7.0).collect();
        let ys: Vec<f64> = (0..len).map(|i| -1.2 + (i as f64) / 5.0).collect();
        let (a, bb) = (1.7320508075688772, -0.5772156649015329);

        let (mut l, mut s) = (ys.clone(), ys.clone());
        lanes::axpy_row(&mut l, a, &xs);
        scalar_ref::axpy_row(&mut s, a, &xs);
        assert_eq!(
            l.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            s.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        let (mut l, mut s) = (ys.clone(), ys.clone());
        lanes::xpay_row(&mut l, &xs, a);
        scalar_ref::xpay_row(&mut s, &xs, a);
        assert_eq!(l, s);

        let (mut l, mut s) = (ys.clone(), ys.clone());
        lanes::scale_add_row(&mut l, a, bb, &xs);
        scalar_ref::scale_add_row(&mut s, a, bb, &xs);
        assert_eq!(l, s);

        let dl = lanes::dot_row(&xs, &ys);
        let ds = scalar_ref::dot_row(&xs, &ys);
        assert_eq!(dl.to_bits(), ds.to_bits(), "dot fold order must match");

        let al = lanes::abs_diff_row(&xs, &ys);
        let as_ = scalar_ref::abs_diff_row(&xs, &ys);
        assert_eq!(al.to_bits(), as_.to_bits());
    }

    #[test]
    fn for_rows2_sweeps_both_fields() {
        let n = 5;
        let b = TileBounds::serial(n, n);
        let mut z = Field2D::new(n, n, 1);
        let mut rr = f(n, 1, |j, k| (j * 10 + k) as f64);
        for_rows2(&mut z, &mut rr, &b, 0, |k, zr, rrow| {
            for (zi, ri) in zr.iter_mut().zip(rrow.iter_mut()) {
                *zi = *ri + k as f64;
                *ri = 0.0;
            }
        });
        assert_eq!(z.at(2, 3), 23.0 + 3.0);
        assert_eq!(rr.at(2, 3), 0.0);
        assert_eq!(rr.at(-1, 0), -10.0 + 0.0, "halo untouched");
    }

    #[test]
    fn copy_scaled_mul_zero() {
        let b = TileBounds::serial(3, 3);
        let mut t = SolveTrace::new("t");
        let x = f(3, 0, |j, _| j as f64);
        let mut y = Field2D::new(3, 3, 0);
        copy(&mut y, &x, &b, 0, &mut t);
        assert_eq!(y.at(2, 1), 2.0);
        scaled_copy(&mut y, &x, -2.0, &b, 0, &mut t);
        assert_eq!(y.at(2, 1), -4.0);
        let z = f(3, 0, |_, k| (k + 1) as f64);
        let mut w = Field2D::new(3, 3, 0);
        mul_into(&mut w, &x, &z, &b, 0, &mut t);
        assert_eq!(w.at(2, 1), 4.0);
        zero(&mut w, &b, 0, &mut t);
        assert_eq!(w.interior_sum(), 0.0);
    }

    #[test]
    fn dot_and_absdiff() {
        let b = TileBounds::serial(4, 4);
        let mut t = SolveTrace::new("t");
        let x = f(4, 0, |_, _| 3.0);
        let y = f(4, 0, |_, _| -1.0);
        assert_eq!(dot_local(&x, &y, &b, &mut t), -48.0);
        assert_eq!(abs_diff_local(&x, &y, &b, &mut t), 64.0);
        assert_eq!(t.dot_kernels.total(), 2);
    }

    #[test]
    fn extension_sweeps_touch_halo() {
        // bounds with room to extend: use TileBounds::new on an interior tile
        use tea_mesh::{Decomposition2D, Extent2D, Mesh2D};
        let d = Decomposition2D::with_grid(12, 12, 3, 3);
        let mesh = Mesh2D::new(&d, 4, Extent2D::unit()); // centre tile
        let bounds = TileBounds::new(&mesh, 2);
        let mut t = SolveTrace::new("t");
        let x = f(4, 2, |_, _| 1.0);
        let mut y = Field2D::new(4, 4, 2);
        axpy(&mut y, 1.0, &x, &bounds, 2, &mut t);
        assert_eq!(y.at(-2, -2), 1.0, "extended sweep must reach ghosts");
        assert_eq!(y.at(5, 5), 1.0);
        // but a serial tile's ext is clamped to 0
        let sb = TileBounds::serial(4, 4);
        let mut y2 = Field2D::new(4, 4, 2);
        axpy(&mut y2, 1.0, &x, &sb, 2, &mut t);
        assert_eq!(y2.at(-1, -1), 0.0, "clamped sweep must not touch ghosts");
    }

    #[test]
    fn large_parallel_dot_is_deterministic() {
        let n = 300; // 90000 cells > PAR_THRESHOLD
        let b = TileBounds::serial(n, n);
        let mut t = SolveTrace::new("t");
        let x = f(n, 0, |j, k| ((j * 31 + k * 7) % 13) as f64 / 3.0);
        let y = f(n, 0, |j, k| ((j + k) % 5) as f64 - 2.0);
        let d1 = dot_local(&x, &y, &b, &mut t);
        for _ in 0..5 {
            assert_eq!(dot_local(&x, &y, &b, &mut t), d1);
        }
        // against the serial Field2D reference
        assert!((d1 - x.interior_dot(&y)).abs() <= 1e-9 * d1.abs().max(1.0));
    }

    #[test]
    fn f32_kernels_match_f64_on_dyadic_data() {
        // dyadic rationals are exact in both formats, so the same sweep
        // must produce bitwise-equal values after conversion
        let b = TileBounds::serial(8, 8);
        let mut t = SolveTrace::new("t");
        let x = f(8, 1, |j, k| ((j - k) as f64) * 0.25);
        let mut y = f(8, 1, |j, k| ((j + k) as f64) * 0.5);
        let x32: Field2F = x.convert();
        let mut y32: Field2F = y.convert();
        axpy(&mut y, 2.0, &x, &b, 0, &mut t);
        axpy(&mut y32, 2.0f32, &x32, &b, 0, &mut t);
        for k in 0..8isize {
            for j in 0..8isize {
                assert_eq!(y32.at(j, k) as f64, y.at(j, k), "({j},{k})");
            }
        }
        let d64 = dot_local(&x, &y, &b, &mut t);
        let d32 = dot_local(&x32, &y32, &b, &mut t);
        assert!((d32 as f64 - d64).abs() <= 1e-3 * d64.abs().max(1.0));
    }
}
