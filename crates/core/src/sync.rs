//! The one poison-tolerant locking helper every crate shares.
//!
//! `std`'s [`Mutex::lock`] returns a [`PoisonError`] when another
//! thread panicked while holding the guard. In this workspace a panic
//! inside a lock's critical section is always a *job*-scoped failure —
//! the serving queue catches it, classifies it and keeps draining — so
//! cascading that panic into every other thread that touches the same
//! mutex (which is what `.lock().unwrap()` does) would turn one lost
//! job into a lost queue.
//!
//! [`lock_tolerant`] is the sanctioned spelling: it takes the guard
//! whether or not the mutex is poisoned. All shared state guarded this
//! way must therefore stay valid under mid-update abandonment — the
//! workspace convention is to keep critical sections to single
//! push/pop/insert operations, which the standard collections make
//! panic-atomic in practice.
//!
//! The `tea-audit` linter's `lock_hygiene` rule enforces this
//! crate-wide: a bare `.lock().unwrap()` / `.lock().expect(..)`
//! anywhere in `crates/` fails the audit.
//!
//! [`PoisonError`]: std::sync::PoisonError

use std::sync::{Mutex, MutexGuard};

/// Locks `m`, tolerating poisoning: if a previous holder panicked, the
/// guard is recovered and the lock proceeds.
///
/// ```
/// use std::sync::Mutex;
///
/// let counter = Mutex::new(0_u64);
/// *tea_core::lock_tolerant(&counter) += 1;
/// assert_eq!(*tea_core::lock_tolerant(&counter), 1);
/// ```
pub fn lock_tolerant<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn locks_a_healthy_mutex() {
        let m = Mutex::new(vec![1, 2]);
        lock_tolerant(&m).push(3);
        assert_eq!(*lock_tolerant(&m), vec![1, 2, 3]);
    }

    #[test]
    fn recovers_a_poisoned_mutex() {
        let m = Mutex::new(7_u64);
        // Poison it: panic while holding the guard on another thread.
        let poisoned = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = m.lock();
                std::panic::panic_any("poison");
            })
            .join()
            .is_err()
        });
        assert!(poisoned);
        assert!(m.is_poisoned());
        assert_eq!(*lock_tolerant(&m), 7);
        *lock_tolerant(&m) = 8;
        assert_eq!(*lock_tolerant(&m), 8);
    }
}
