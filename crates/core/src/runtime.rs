//! Execution-runtime knobs: how many worker threads the kernels use and
//! how large a sweep must be before it goes parallel.
//!
//! Both knobs resolve lazily from the environment on first use and can
//! be overridden programmatically (benchmarks and the bit-identity tests
//! flip them within one process):
//!
//! * `TEA_NUM_THREADS` — worker count for every `par_*` region
//!   (default: available cores; `1` restores pure sequential execution
//!   bit-for-bit);
//! * `TEA_PAR_THRESHOLD` — minimum swept cells before a kernel takes its
//!   parallel path (default [`PAR_THRESHOLD`]).
//!
//! Thread count lives in the vendored `rayon` runtime; this module is
//! the one spot that calls its configuration shim. When the workspace is
//! swapped onto crates.io rayon (one manifest line), only the two
//! one-line bodies of [`set_num_threads`] / [`num_threads`] need
//! adapting to `ThreadPoolBuilder` / `rayon::current_num_threads` — the
//! kernels themselves use nothing beyond rayon's standard iterator API.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default cell-count threshold below which a sweep stays serial (the
/// scoped-team dispatch overhead dominates under this size).
pub const PAR_THRESHOLD: usize = 1 << 15;

static THRESHOLD: OnceLock<AtomicUsize> = OnceLock::new();

fn threshold_cell() -> &'static AtomicUsize {
    THRESHOLD.get_or_init(|| {
        AtomicUsize::new(
            std::env::var("TEA_PAR_THRESHOLD")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(PAR_THRESHOLD),
        )
    })
}

/// The active parallel threshold in swept cells.
///
/// Sweeps and reductions over at least this many cells take the
/// threaded path; smaller ones stay serial. Results are bit-identical
/// either way — the threshold only moves the crossover point.
pub fn par_threshold() -> usize {
    threshold_cell().load(Ordering::Relaxed)
}

/// Overrides the parallel threshold for subsequent kernel calls.
/// `0` forces every sweep parallel; `usize::MAX` forces everything
/// serial.
pub fn set_par_threshold(cells: usize) {
    threshold_cell().store(cells, Ordering::Relaxed);
}

/// The number of worker threads parallel sweeps currently use.
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Overrides the worker count for subsequent parallel sweeps (clamped
/// to `1..=1024`; `1` is exact sequential execution). Oversubscribing
/// physical cores is allowed but pointless beyond stress-testing.
pub fn set_num_threads(threads: usize) {
    rayon::set_num_threads(threads);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_roundtrips() {
        let before = par_threshold();
        set_par_threshold(123);
        assert_eq!(par_threshold(), 123);
        set_par_threshold(before);
    }

    #[test]
    fn thread_count_roundtrips_and_clamps() {
        // safe to assert on the process-global count here: no other test
        // in the tea-core binary writes it
        let before = num_threads();
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(usize::MAX);
        assert_eq!(num_threads(), 1024, "runaway counts must clamp");
        set_num_threads(before);
    }
}
