//! The string-keyed [`SolverRegistry`]: the single place where solver
//! names resolve to metadata and factories.
//!
//! The deck parser, the CLI and the time-stepping driver all resolve
//! against a registry rather than matching on an enum, so registering a
//! new [`IterativeSolver`] makes it selectable everywhere at once —
//! decks (`tl_solver=<name>`), `tealeaf --solver <name>`,
//! `tealeaf --list-solvers`, and the [`crate::Solve`] builder.

use crate::api::{IterativeSolver, Precision, SolverError, SolverMeta, SolverParams};
use crate::cg::Cg;
use crate::cg_fused::CgFused;
use crate::chebyshev::Chebyshev;
use crate::jacobi::Jacobi;
use crate::mixed::{CgF32, MixedCg, MixedChebyshev, MixedPpcg, MixedRichardson};
use crate::ppcg::Ppcg;
use crate::richardson::Richardson;

/// Builds one configured solver instance from generic parameters.
pub type SolverFactory = fn(&SolverParams) -> Box<dyn IterativeSolver>;

/// A string-keyed table of iterative methods: per-solver [`SolverMeta`]
/// plus a factory producing a configured [`IterativeSolver`].
pub struct SolverRegistry {
    entries: Vec<(SolverMeta, SolverFactory)>,
}

impl std::fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for SolverRegistry {
    fn default() -> Self {
        SolverRegistry::builtin()
    }
}

impl SolverRegistry {
    /// An empty registry (useful for fully custom solver sets).
    pub fn empty() -> Self {
        SolverRegistry {
            entries: Vec::new(),
        }
    }

    /// The registry of tea-core's built-in methods: Jacobi, CG, fused
    /// CG, Chebyshev, CPPCG and Richardson. (The AMG-preconditioned CG
    /// baseline lives in `tea-amg`, which registers itself on top of
    /// this set.)
    pub fn builtin() -> Self {
        let mut reg = SolverRegistry::empty();
        reg.register(
            SolverMeta {
                name: "jacobi",
                aliases: &[],
                summary: "point-Jacobi iteration (the design-space floor)",
                preconditioned: false,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: false,
                precision: Precision::F64,
                tunable: false,
            },
            |p| Box::new(Jacobi::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "cg",
                aliases: &[],
                summary: "preconditioned conjugate gradient (the baseline)",
                preconditioned: true,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: false,
                precision: Precision::F64,
                tunable: true,
            },
            |p| Box::new(Cg::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "cg_fused",
                aliases: &["cg-fused"],
                summary: "single-reduction (Chronopoulos-Gear) CG",
                preconditioned: true,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: false,
                precision: Precision::F64,
                tunable: true,
            },
            |p| Box::new(CgFused::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "chebyshev",
                aliases: &["cheby"],
                summary: "CG presteps + Chebyshev acceleration (no dot products)",
                preconditioned: true,
                needs_eigen_estimate: true,
                deep_halo: false,
                serial_only: false,
                precision: Precision::F64,
                tunable: true,
            },
            |p| Box::new(Chebyshev::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "ppcg",
                aliases: &["cppcg"],
                summary: "Chebyshev polynomially preconditioned CG with matrix-powers deep halos",
                preconditioned: true,
                needs_eigen_estimate: true,
                deep_halo: true,
                serial_only: false,
                precision: Precision::F64,
                tunable: true,
            },
            |p| Box::new(Ppcg::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "richardson",
                aliases: &[],
                summary: "preconditioned Richardson with Chebyshev-optimal damping",
                preconditioned: true,
                needs_eigen_estimate: true,
                deep_halo: false,
                serial_only: false,
                precision: Precision::F64,
                tunable: true,
            },
            |p| Box::new(Richardson::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "mixed_cg",
                aliases: &["mixed", "cg_mixed"],
                summary: "CG with f64 recurrence and the preconditioner applied in f32",
                preconditioned: true,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: false,
                precision: Precision::Mixed,
                tunable: true,
            },
            |p| Box::new(MixedCg::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "mixed_ppcg",
                aliases: &["ppcg_mixed"],
                summary: "CPPCG with the inner Chebyshev smoothing entirely in f32",
                preconditioned: true,
                needs_eigen_estimate: true,
                deep_halo: true,
                serial_only: false,
                precision: Precision::Mixed,
                tunable: true,
            },
            |p| Box::new(MixedPpcg::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "mixed_chebyshev",
                aliases: &["chebyshev_mixed", "cheby_mixed"],
                summary: "Chebyshev acceleration with the polynomial sweeps entirely in f32",
                preconditioned: true,
                needs_eigen_estimate: true,
                deep_halo: false,
                serial_only: false,
                precision: Precision::Mixed,
                tunable: true,
            },
            |p| Box::new(MixedChebyshev::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "mixed_richardson",
                aliases: &["richardson_mixed"],
                summary: "Richardson with the damped sweeps in f32 under f64 residual control",
                preconditioned: true,
                needs_eigen_estimate: true,
                deep_halo: false,
                serial_only: false,
                precision: Precision::Mixed,
                tunable: true,
            },
            |p| Box::new(MixedRichardson::from_params(p)),
        );
        reg.register(
            SolverMeta {
                name: "cg_f32",
                aliases: &["f32_cg"],
                summary: "fully single-precision CG (accuracy limited by f32 round-off)",
                preconditioned: true,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: false,
                precision: Precision::F32,
                tunable: true,
            },
            |p| Box::new(CgF32::from_params(p)),
        );
        reg
    }

    /// Registers (or replaces, matching by canonical name) a solver.
    pub fn register(&mut self, meta: SolverMeta, factory: SolverFactory) {
        if let Some(slot) = self.entries.iter_mut().find(|(m, _)| m.name == meta.name) {
            *slot = (meta, factory);
        } else {
            self.entries.push((meta, factory));
        }
    }

    /// Canonical names in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|(m, _)| m.name).collect()
    }

    /// Iterates over the registered metadata in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &SolverMeta> {
        self.entries.iter().map(|(m, _)| m)
    }

    /// The one name-matching rule (trim, ASCII case-fold, canonical
    /// name or alias), shared by every lookup.
    fn entry(&self, name: &str) -> Result<&(SolverMeta, SolverFactory), SolverError> {
        let want = name.trim().to_ascii_lowercase();
        self.entries
            .iter()
            .find(|(m, _)| m.name == want || m.aliases.contains(&want.as_str()))
            .ok_or_else(|| SolverError::UnknownSolver {
                requested: name.trim().to_string(),
                known: self.names().iter().map(|n| n.to_string()).collect(),
            })
    }

    /// Resolves `name` (canonical or alias, ASCII case-insensitive) to
    /// its metadata.
    ///
    /// # Errors
    /// [`SolverError::UnknownSolver`] carrying the registered names.
    pub fn resolve(&self, name: &str) -> Result<&SolverMeta, SolverError> {
        self.entry(name).map(|(m, _)| m)
    }

    /// Builds a configured solver by `name` (canonical or alias).
    ///
    /// # Errors
    /// [`SolverError::UnknownSolver`] carrying the registered names.
    pub fn create(
        &self,
        name: &str,
        params: &SolverParams,
    ) -> Result<Box<dyn IterativeSolver>, SolverError> {
        self.entry(name).map(|(_, f)| f(params))
    }

    /// Machine-checks the registry's structural contracts and returns
    /// one human-readable finding per violation (empty = pass).
    ///
    /// Everything downstream — deck parsing, CLI resolution, precision
    /// routing, the auto-tuner's candidate plan — assumes these hold,
    /// and nothing in [`SolverRegistry::register`]'s signature can
    /// force them, so CI runs this audit (and `tealeaf --audit`
    /// exposes it) instead of trusting convention:
    ///
    /// * **key discipline** — canonical names and aliases are
    ///   non-empty, lowercase ASCII (lookup case-folds, so any other
    ///   spelling would be unreachable), and no alias shadows a
    ///   canonical name or another alias;
    /// * **metadata consistency** — a `serial_only` method must not be
    ///   `tunable` (the tuner races candidates under the distributed
    ///   protocol) and must be plain-`f64` (reduced-precision variants
    ///   exist precisely to trade halo width, which serial baselines
    ///   do not exchange);
    /// * **routing closure** — for every registered method and every
    ///   [`Precision`], [`crate::solver_for_precision`] either lands
    ///   on a *registered* solver or fails with the typed
    ///   `PrecisionUnsupported` error; an `UnknownSolver` escape means
    ///   the routing table names a variant nobody registered. A method
    ///   advertising a reduced precision must also route to itself at
    ///   that precision.
    pub fn audit(&self) -> Vec<String> {
        let mut findings = Vec::new();
        let mut seen: Vec<(&str, &str)> = Vec::new(); // (key, owning canonical name)
        for meta in self.iter() {
            for (key, kind) in std::iter::once((meta.name, "name"))
                .chain(meta.aliases.iter().map(|a| (*a, "alias")))
            {
                if key.trim().is_empty() {
                    findings.push(format!("solver '{}' registers an empty {kind}", meta.name));
                    continue;
                }
                if key != key.trim() || key.chars().any(|c| c.is_ascii_uppercase()) {
                    findings.push(format!(
                        "{kind} '{key}' of solver '{}' is not trimmed lowercase ASCII — \
                         lookups case-fold, so this spelling is unreachable",
                        meta.name
                    ));
                }
                if let Some((_, owner)) = seen.iter().find(|(k, _)| *k == key) {
                    findings.push(format!(
                        "{kind} '{key}' of solver '{}' collides with a key of solver '{owner}'",
                        meta.name
                    ));
                } else {
                    seen.push((key, meta.name));
                }
            }
            if meta.serial_only && meta.tunable {
                findings.push(format!(
                    "solver '{}' is serial_only but tunable — the auto-tuner races \
                     candidates under the distributed protocol",
                    meta.name
                ));
            }
            if meta.serial_only && meta.precision != Precision::F64 {
                findings.push(format!(
                    "solver '{}' is serial_only with precision {} — serial baselines \
                     must stay plain f64",
                    meta.name,
                    meta.precision.label()
                ));
            }
            for precision in [Precision::F64, Precision::F32, Precision::Mixed] {
                match crate::mixed::solver_for_precision(meta.name, precision, self) {
                    Ok(target) => {
                        if self.resolve(&target).is_err() {
                            findings.push(format!(
                                "routing ('{}', {}) lands on unregistered solver '{target}'",
                                meta.name,
                                precision.label()
                            ));
                        }
                    }
                    Err(SolverError::PrecisionUnsupported { .. }) => {}
                    Err(e) => findings.push(format!(
                        "routing ('{}', {}) escaped with a non-routing error: {e}",
                        meta.name,
                        precision.label()
                    )),
                }
            }
            if meta.precision != Precision::F64 {
                match crate::mixed::solver_for_precision(meta.name, meta.precision, self) {
                    Ok(target) if target == meta.name => {}
                    Ok(target) => findings.push(format!(
                        "solver '{}' advertises precision {} but routes to '{target}' \
                         at that precision",
                        meta.name,
                        meta.precision.label()
                    )),
                    Err(e) => findings.push(format!(
                        "solver '{}' advertises precision {} but does not route to \
                         itself: {e}",
                        meta.name,
                        meta.precision.label()
                    )),
                }
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_all_core_methods() {
        let reg = SolverRegistry::builtin();
        assert_eq!(
            reg.names(),
            vec![
                "jacobi",
                "cg",
                "cg_fused",
                "chebyshev",
                "ppcg",
                "richardson",
                "mixed_cg",
                "mixed_ppcg",
                "mixed_chebyshev",
                "mixed_richardson",
                "cg_f32"
            ]
        );
    }

    #[test]
    fn resolve_accepts_aliases_and_case() {
        let reg = SolverRegistry::builtin();
        assert_eq!(reg.resolve("cppcg").unwrap().name, "ppcg");
        assert_eq!(reg.resolve("Cheby").unwrap().name, "chebyshev");
        assert_eq!(reg.resolve(" CG ").unwrap().name, "cg");
    }

    #[test]
    fn unknown_name_reports_registered_set() {
        let reg = SolverRegistry::builtin();
        let err = reg.resolve("sor").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("'sor'"), "{msg}");
        for name in reg.names() {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn create_honours_params() {
        let reg = SolverRegistry::builtin();
        let params = SolverParams {
            halo_depth: 6,
            ..Default::default()
        };
        let solver = reg.create("ppcg", &params).unwrap();
        assert_eq!(solver.halo_depth(), 6);
        assert_eq!(solver.label(), "PPCG-6");
        assert_eq!(reg.create("jacobi", &params).unwrap().halo_depth(), 1);
    }

    #[test]
    fn audit_passes_on_builtin() {
        let findings = SolverRegistry::builtin().audit();
        assert!(
            findings.is_empty(),
            "builtin registry must audit clean: {findings:?}"
        );
    }

    #[test]
    fn audit_flags_alias_collisions() {
        let mut reg = SolverRegistry::builtin();
        reg.register(
            SolverMeta {
                name: "sor",
                aliases: &["cg"], // shadows the canonical CG name
                summary: "bad alias",
                preconditioned: false,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: false,
                precision: Precision::F64,
                tunable: false,
            },
            |p| Box::new(Jacobi::from_params(p)),
        );
        let findings = reg.audit();
        assert!(
            findings
                .iter()
                .any(|f| f.contains("alias 'cg'") && f.contains("collides")),
            "{findings:?}"
        );
    }

    #[test]
    fn audit_flags_unreachable_spellings_and_meta_conflicts() {
        let mut reg = SolverRegistry::empty();
        reg.register(
            SolverMeta {
                name: "SOR",
                aliases: &[" sor "],
                summary: "uppercase canonical name",
                preconditioned: false,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: true,
                precision: Precision::F64,
                tunable: true,
            },
            |p| Box::new(Jacobi::from_params(p)),
        );
        let findings = reg.audit();
        assert!(
            findings
                .iter()
                .any(|f| f.contains("name 'SOR'") && f.contains("unreachable")),
            "{findings:?}"
        );
        assert!(
            findings.iter().any(|f| f.contains("alias ' sor '")),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.contains("serial_only but tunable")),
            "{findings:?}"
        );
    }

    #[test]
    fn audit_flags_serial_only_reduced_precision() {
        let mut reg = SolverRegistry::empty();
        reg.register(
            SolverMeta {
                name: "oddball",
                aliases: &[],
                summary: "serial-only f32",
                preconditioned: false,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: true,
                precision: Precision::F32,
                tunable: false,
            },
            |p| Box::new(Jacobi::from_params(p)),
        );
        let findings = reg.audit();
        assert!(
            findings.iter().any(|f| f.contains("must stay plain f64")),
            "{findings:?}"
        );
    }

    #[test]
    fn audit_flags_routing_escapes() {
        // A registry holding mixed_cg but NOT its f64 family target:
        // routing (mixed_cg, F64) resolves the name "cg", which is
        // unregistered here, so the audit must flag the escape.
        let mut reg = SolverRegistry::empty();
        reg.register(
            SolverMeta {
                name: "mixed_cg",
                aliases: &[],
                summary: "mixed CG without its f64 family",
                preconditioned: true,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: false,
                precision: Precision::Mixed,
                tunable: true,
            },
            |p| Box::new(Jacobi::from_params(p)),
        );
        let findings = reg.audit();
        assert!(
            findings.iter().any(|f| f.contains("non-routing error")),
            "{findings:?}"
        );
    }

    #[test]
    fn register_replaces_by_name() {
        let mut reg = SolverRegistry::builtin();
        let n = reg.names().len();
        reg.register(
            SolverMeta {
                name: "jacobi",
                aliases: &["relax"],
                summary: "replacement",
                preconditioned: false,
                needs_eigen_estimate: false,
                deep_halo: false,
                serial_only: false,
                precision: Precision::F64,
                tunable: false,
            },
            |p| Box::new(Jacobi::from_params(p)),
        );
        assert_eq!(reg.names().len(), n);
        assert_eq!(reg.resolve("relax").unwrap().summary, "replacement");
    }
}
