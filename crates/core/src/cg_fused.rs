//! Single-reduction CG — the paper's §VII future-work item, implemented.
//!
//! > "The Krylov solver can be restructured so that the multiple dot
//! > products are combined into a single communication step and the
//! > communications can be overlapped with the application of the
//! > preconditioner."
//!
//! This is the Chronopoulos–Gear reformulation of preconditioned CG: per
//! iteration it computes both scalars `γ = r·z` and `δ = z·Az` from the
//! *same* state and reduces them in **one** fused allreduce (one network
//! latency instead of two), at the cost of one extra vector recurrence
//! (`s = A·p` is maintained by the same update as `p`). Mathematically
//! equivalent to CG in exact arithmetic; in floating point it can drift
//! a few ULPs per iteration, which the tests bound.

use crate::api::{IterativeSolver, SolveContext, SolverParams};
use crate::precon::{PreconKind, Preconditioner};
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveStatus, SolveTrace};
use crate::vector;
use tea_comms::Communicator;
use tea_mesh::Field2D;

/// Single-reduction (Chronopoulos–Gear) CG as an [`IterativeSolver`]:
/// one fused allreduce per iteration instead of CG's two.
#[derive(Debug, Clone, Default)]
pub struct CgFused {
    kind: PreconKind,
    opts: SolveOpts,
    precon: Option<Preconditioner>,
}

impl CgFused {
    /// A fused-reduction CG solver using preconditioner `kind`.
    pub fn new(kind: PreconKind) -> Self {
        CgFused {
            kind,
            opts: SolveOpts::default(),
            precon: None,
        }
    }

    /// Registry factory: consumes [`SolverParams::precon`].
    pub fn from_params(params: &SolverParams) -> Self {
        CgFused::new(params.precon)
    }
}

impl CgFused {
    /// The one place the preconditioner is assembled for this solver
    /// (used by both `prepare` and the prepare-on-demand path).
    fn assemble_precon(&self, ctx: &SolveContext<'_>) -> Preconditioner {
        Preconditioner::setup(self.kind, ctx.tile.op, 0)
    }
}

impl IterativeSolver for CgFused {
    fn name(&self) -> &'static str {
        "cg_fused"
    }

    fn label(&self) -> String {
        "CG-fused".into()
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.precon = Some(self.assemble_precon(ctx));
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.precon.is_none() {
            self.precon = Some(self.assemble_precon(ctx));
        }
        let precon = self.precon.as_ref().expect("just prepared");
        let result = cg_fused_solve_impl(ctx.tile, u, b, precon, ws, self.opts);
        trace.merge(&result.trace);
        result
    }
}

pub(crate) fn cg_fused_solve_impl<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    precon: &Preconditioner,
    ws: &mut Workspace,
    opts: SolveOpts,
) -> SolveResult {
    let mut trace = SolveTrace::new("CG-fused");
    let bounds = &tile.op.bounds;

    // r = b - A u
    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);

    // z = M^{-1} r ; w = A z  (ws.rr doubles as w)
    precon.apply(&ws.r, &mut ws.z, bounds, 0, &mut trace);
    tile.exchange(&mut [&mut ws.z], 1, &mut trace);
    tile.op.apply(&ws.z, &mut ws.rr, 0, &mut trace);

    let gamma_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
    let delta_local = vector::dot_local(&ws.rr, &ws.z, bounds, &mut trace);
    let reduced = tile.reduce_sum_many(&[gamma_local, delta_local], &mut trace);
    let (mut gamma, delta) = (reduced[0], reduced[1]);

    if !gamma.is_finite() || !delta.is_finite() {
        return SolveResult {
            converged: false,
            iterations: 0,
            initial_residual: f64::NAN,
            final_residual: f64::NAN,
            status: SolveStatus::Diverged { iteration: 0 },
            trace,
        };
    }
    let initial_residual = gamma.max(0.0).sqrt();
    if initial_residual == 0.0 {
        return SolveResult {
            converged: true,
            iterations: 0,
            initial_residual,
            final_residual: 0.0,
            status: SolveStatus::Converged,
            trace,
        };
    }
    let target = opts.eps * initial_residual;

    // p = z ; s = w ; alpha = γ/δ
    vector::copy(&mut ws.p, &ws.z, bounds, 0, &mut trace);
    vector::copy(&mut ws.sd, &ws.rr, bounds, 0, &mut trace); // s lives in sd
    let mut alpha = gamma / delta;

    let mut iterations = 0;
    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = initial_residual;

    while iterations < opts.max_iters {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke(iterations, u, &mut ws.r);

        vector::axpy(u, alpha, &ws.p, bounds, 0, &mut trace);
        vector::axpy(&mut ws.r, -alpha, &ws.sd, bounds, 0, &mut trace);

        precon.apply(&ws.r, &mut ws.z, bounds, 0, &mut trace);
        tile.exchange(&mut [&mut ws.z], 1, &mut trace);
        tile.op.apply(&ws.z, &mut ws.rr, 0, &mut trace);

        // the single fused reduction of the iteration
        let g_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
        let d_local = vector::dot_local(&ws.rr, &ws.z, bounds, &mut trace);
        let red = tile.reduce_sum_many(&[g_local, d_local], &mut trace);
        let (gamma_new, delta_new) = (red[0], red[1]);
        if !gamma_new.is_finite() || !delta_new.is_finite() {
            // a NaN fused reduction must read as divergence, not as the
            // max(0.0)-swallowed instant convergence below
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            break;
        }

        final_residual = gamma_new.max(0.0).sqrt();
        if final_residual <= target {
            converged = true;
            status = SolveStatus::Converged;
            break;
        }

        let beta = gamma_new / gamma;
        alpha = gamma_new / (delta_new - beta * gamma_new / alpha);
        if !alpha.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            break;
        }
        vector::xpay(&mut ws.p, &ws.z, beta, bounds, 0, &mut trace);
        vector::xpay(&mut ws.sd, &ws.rr, beta, bounds, 0, &mut trace);
        gamma = gamma_new;
    }

    SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg_solve_impl;
    use crate::ops::{TileBounds, TileOperator};
    use crate::precon::{PreconKind, Preconditioner};
    use tea_comms::{HaloLayout, SerialComm};
    use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Mesh2D};

    fn serial_problem(n: usize) -> (TileOperator, Field2D) {
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, 1);
        let mut energy = Field2D::new(n, n, 1);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, 1);
        let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
        let mut b = Field2D::new(n, n, 1);
        for k in 0..n as isize {
            for j in 0..n as isize {
                b.set(j, k, density.at(j, k) * energy.at(j, k));
            }
        }
        (op, b)
    }

    #[test]
    fn fused_cg_converges_and_matches_cg() {
        let n = 32;
        let (op, b) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let m = Preconditioner::setup(PreconKind::None, &op, 0);
        let opts = SolveOpts::with_eps(1e-10);

        let mut ws = Workspace::new(n, n, 1);
        let mut u1 = b.clone();
        let plain = cg_solve_impl(&tile, &mut u1, &b, &m, &mut ws, opts);
        let mut u2 = b.clone();
        let fused = cg_fused_solve_impl(&tile, &mut u2, &b, &m, &mut ws, opts);

        assert!(plain.converged && fused.converged);
        // same Krylov trajectory up to rounding: iteration counts within
        // a few of each other
        let diff = plain.iterations.abs_diff(fused.iterations);
        assert!(
            diff <= 3,
            "iteration mismatch: {} vs {}",
            plain.iterations,
            fused.iterations
        );
        for k in 0..n as isize {
            for j in 0..n as isize {
                let (a, bb) = (u1.at(j, k), u2.at(j, k));
                assert!(
                    (a - bb).abs() <= 1e-6 * bb.abs().max(1e-12),
                    "solutions differ at ({j},{k})"
                );
            }
        }
    }

    #[test]
    fn fused_cg_halves_reduction_latencies() {
        let n = 24;
        let (op, b) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let m = Preconditioner::setup(PreconKind::None, &op, 0);
        let opts = SolveOpts::with_eps(1e-9);

        let mut ws = Workspace::new(n, n, 1);
        let mut u1 = b.clone();
        let plain = cg_solve_impl(&tile, &mut u1, &b, &m, &mut ws, opts);
        let mut u2 = b.clone();
        let fused = cg_fused_solve_impl(&tile, &mut u2, &b, &m, &mut ws, opts);

        // plain: 2 reductions/iteration; fused: 1 (of 2 elements)
        let plain_rate = plain.trace.reductions as f64 / plain.iterations as f64;
        let fused_rate = fused.trace.reductions as f64 / fused.iterations as f64;
        assert!(plain_rate > 1.9, "plain CG rate {plain_rate}");
        assert!(fused_rate < 1.1, "fused CG rate {fused_rate}");
        // and it carries 2 scalars per reduction
        assert_eq!(fused.trace.reduction_elements, 2 * fused.trace.reductions);
    }

    #[test]
    fn fused_cg_with_block_jacobi() {
        let n = 24;
        let (op, b) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let m = Preconditioner::setup(PreconKind::BlockJacobi, &op, 0);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = b.clone();
        let res = cg_fused_solve_impl(&tile, &mut u, &b, &m, &mut ws, SolveOpts::with_eps(1e-9));
        assert!(res.converged);
        let mut t = SolveTrace::new("check");
        let mut r = Field2D::new(n, n, 1);
        tile.op.residual(&u, &b, &mut r, 0, &mut t);
        assert!(r.interior_norm() / b.interior_norm() < 1e-6);
    }

    #[test]
    fn zero_rhs_immediate() {
        let n = 8;
        let (op, _) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let m = Preconditioner::setup(PreconKind::None, &op, 0);
        let mut ws = Workspace::new(n, n, 1);
        let zero = Field2D::new(n, n, 1);
        let mut u = Field2D::new(n, n, 1);
        let res = cg_fused_solve_impl(&tile, &mut u, &zero, &m, &mut ws, SolveOpts::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }
}
