//! The matrix-free 5-point operator — the paper's Listing 1.
//!
//! `w = A·p` with
//!
//! ```text
//! w(j,k) = (1 + (Ky(j,k+1)+Ky(j,k)) + (Kx(j+1,k)+Kx(j,k))) * p(j,k)
//!        -  (Ky(j,k+1)*p(j,k+1) + Ky(j,k)*p(j,k-1))
//!        -  (Kx(j+1,k)*p(j+1,k) + Kx(j,k)*p(j-1,k))
//! ```
//!
//! where `Kx`/`Ky` are the pre-scaled face coefficients. `A` is symmetric
//! positive definite and diagonally dominant by construction: it equals
//! `I + Σ_faces K_f (e_a - e_b)(e_a - e_b)ᵀ` over interior faces.
//!
//! Every kernel takes an *extension* argument: how many cells beyond the
//! tile interior to sweep (clamped at global domain boundaries). The
//! matrix-powers kernel calls the same code with shrinking extensions
//! (paper Fig. 2); extension 0 is the ordinary interior sweep.
//!
//! Row sweeps are data-parallel (threaded rayon runtime) above the
//! [`crate::runtime::par_threshold`] size. All reductions are computed
//! as per-row partials folded in row order, so results are bit-identical
//! run to run regardless of thread count or scheduling.

use crate::trace::SolveTrace;
use tea_mesh::{Coefficients, Field2, Mesh2D, Scalar};

/// The 5-point stencil at column `i` of one row — the one expression
/// every operator kernel (apply, fused-dot apply, residual, the fused
/// Chebyshev sweep) evaluates, factored out so the floating-point
/// association can never drift between them. `pc` is the centre row
/// sliced one cell wider on each side (centre value at `pc[i + 1]`).
#[inline(always)]
fn stencil5<S: Scalar>(
    kxr: &[S],
    kyc: &[S],
    kyn: &[S],
    pc: &[S],
    ps: &[S],
    pn: &[S],
    i: usize,
) -> S {
    (S::ONE + (kyn[i] + kyc[i]) + (kxr[i + 1] + kxr[i])) * pc[i + 1]
        - (kyn[i] * pn[i] + kyc[i] * ps[i])
        - (kxr[i + 1] * pc[i + 2] + kxr[i] * pc[i])
}

/// Per-side maximum extension of a tile's sweeps.
///
/// Interior tile edges allow extension up to the allocated halo; edges on
/// the global domain boundary allow none (there are no cells beyond the
/// boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileBounds {
    nx: usize,
    ny: usize,
    /// max extension West, East, South, North.
    max_ext: [usize; 4],
}

impl TileBounds {
    /// Derives bounds for `mesh`'s tile with `halo` allocated ghost
    /// layers.
    pub fn new(mesh: &Mesh2D, halo: usize) -> Self {
        let sub = mesh.subdomain();
        let (gnx, gny) = mesh.global_cells();
        let west = if sub.offset.0 == 0 { 0 } else { halo };
        let south = if sub.offset.1 == 0 { 0 } else { halo };
        let east = if sub.offset.0 + sub.nx == gnx {
            0
        } else {
            halo
        };
        let north = if sub.offset.1 + sub.ny == gny {
            0
        } else {
            halo
        };
        TileBounds {
            nx: sub.nx,
            ny: sub.ny,
            max_ext: [west, east, south, north],
        }
    }

    /// Bounds for a serial (whole-domain) tile: no extensions anywhere.
    pub fn serial(nx: usize, ny: usize) -> Self {
        TileBounds {
            nx,
            ny,
            max_ext: [0; 4],
        }
    }

    /// Interior extent.
    pub fn tile(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Sweep ranges `(x_lo, x_hi, y_lo, y_hi)` for extension `ext`,
    /// clamped per side.
    pub fn range(&self, ext: usize) -> (isize, isize, isize, isize) {
        let w = ext.min(self.max_ext[0]) as isize;
        let e = ext.min(self.max_ext[1]) as isize;
        let s = ext.min(self.max_ext[2]) as isize;
        let n = ext.min(self.max_ext[3]) as isize;
        (-w, self.nx as isize + e, -s, self.ny as isize + n)
    }

    /// Number of cells swept at extension `ext`.
    pub fn cells(&self, ext: usize) -> usize {
        let (x_lo, x_hi, y_lo, y_hi) = self.range(ext);
        ((x_hi - x_lo) * (y_hi - y_lo)) as usize
    }
}

/// The assembled matrix-free operator for one tile, generic over the
/// [`Scalar`] precision (`f64` by default; the mixed-precision solvers
/// derive an `f32` instance via [`TileOperator::convert`]).
#[derive(Debug, Clone)]
pub struct TileOperator<S: Scalar = f64> {
    /// Pre-scaled face coefficients.
    pub coeffs: Coefficients<S>,
    /// Sweep bounds.
    pub bounds: TileBounds,
}

impl<S: Scalar> TileOperator<S> {
    /// Builds the operator from assembled coefficients and bounds.
    ///
    /// # Panics
    /// Panics if coefficient extents disagree with the bounds.
    pub fn new(coeffs: Coefficients<S>, bounds: TileBounds) -> Self {
        assert_eq!(coeffs.kx.nx(), bounds.nx, "coefficients/bounds mismatch");
        assert_eq!(coeffs.kx.ny(), bounds.ny, "coefficients/bounds mismatch");
        TileOperator { coeffs, bounds }
    }

    /// The same operator with its coefficients converted to scalar type
    /// `T` (rounding if `T` is narrower).
    pub fn convert<T: Scalar>(&self) -> TileOperator<T> {
        TileOperator {
            coeffs: self.coeffs.convert(),
            bounds: self.bounds,
        }
    }

    /// `w = A·p` over extension `ext`.
    ///
    /// Requires `p` valid (exchanged or interior-complete) to extension
    /// `ext + 1` and field halos of at least `ext + 1`.
    pub fn apply(&self, p: &Field2<S>, w: &mut Field2<S>, ext: usize, trace: &mut SolveTrace) {
        trace.spmv.record(ext);
        self.apply_inner(p, w, ext, false);
    }

    /// Fused `w = A·p; return local p·w` over the tile interior — the
    /// paper's Listing 1, including the reduction variable. The caller is
    /// responsible for the global reduction.
    pub fn apply_fused_dot(&self, p: &Field2<S>, w: &mut Field2<S>, trace: &mut SolveTrace) -> S {
        trace.spmv.record(0);
        self.apply_inner(p, w, 0, true)
    }

    /// Writes the operator diagonal
    /// `1 + (Ky(j,k+1)+Ky(j,k)) + (Kx(j+1,k)+Kx(j,k))` into `d` over
    /// extension `ext`.
    ///
    /// # Panics
    /// The diagonal at an extended cell reads the face coefficient one
    /// cell further out (`Kx(j+1)`, `Ky(k+1)`), so the effective
    /// east/north extension must stay below the coefficient halo. On a
    /// decomposed tile this means a diagonal preconditioner cannot be
    /// set up at the full matrix-powers depth `h` with coefficients
    /// allocated at halo `h` — the same class of restriction the paper
    /// places on block-Jacobi (§IV.C.2). Serial tiles clamp every
    /// extension to the domain boundary and are unaffected.
    pub fn diagonal_into(&self, d: &mut Field2<S>, ext: usize) {
        let (x_lo, x_hi, y_lo, y_hi) = self.bounds.range(ext);
        let overhang = (x_hi - self.bounds.nx as isize).max(y_hi - self.bounds.ny as isize);
        assert!(
            (self.coeffs.kx.halo() as isize) > overhang,
            "operator diagonal at extension {overhang} reads face coefficients one cell \
             beyond it; assemble coefficients with halo > {overhang} (have {}) or use an \
             extension-free preconditioner",
            self.coeffs.kx.halo(),
        );
        let n = (x_hi - x_lo) as usize;
        let kx = &self.coeffs.kx;
        let ky = &self.coeffs.ky;
        for k in y_lo..y_hi {
            let kxr = kx.row(k, x_lo, x_hi + 1);
            let kyc = ky.row(k, x_lo, x_hi);
            let kyn = ky.row(k + 1, x_lo, x_hi);
            let dr = d.row_mut(k, x_lo, x_hi);
            for i in 0..n {
                dr[i] = S::ONE + (kyn[i] + kyc[i]) + (kxr[i + 1] + kxr[i]);
            }
        }
    }

    /// Local residual kernel: `r = b - A·u` over extension `ext`, fused
    /// into a single sweep. Requires `u` valid to `ext + 1` and `b` valid
    /// to `ext`.
    pub fn residual(
        &self,
        u: &Field2<S>,
        b: &Field2<S>,
        r: &mut Field2<S>,
        ext: usize,
        trace: &mut SolveTrace,
    ) {
        trace.spmv.record(ext);
        let (x_lo, x_hi, _, _) = self.bounds.range(ext);
        let n = (x_hi - x_lo) as usize;
        let kx = &self.coeffs.kx;
        let ky = &self.coeffs.ky;
        crate::vector::for_rows(r, &self.bounds, ext, |k, rr| {
            let pc = u.row(k, x_lo - 1, x_hi + 1);
            let ps = u.row(k - 1, x_lo, x_hi);
            let pn = u.row(k + 1, x_lo, x_hi);
            let br = b.row(k, x_lo, x_hi);
            let kxr = kx.row(k, x_lo, x_hi + 1);
            let kyc = ky.row(k, x_lo, x_hi);
            let kyn = ky.row(k + 1, x_lo, x_hi);
            for i in 0..n {
                rr[i] = br[i] - stencil5(kxr, kyc, kyn, pc, ps, pn, i);
            }
        });
    }

    /// Fused Chebyshev inner step, first pass: per cell computes
    /// `v = (A·sd)(j,k)` and immediately applies both vector updates
    /// `z += sd` and `rr -= v` in the same sweep — the intermediate `w`
    /// field is never stored or re-read, cutting the step's traffic from
    /// three sweeps (stencil store + two axpy read-modify-writes) to one
    /// (and the `z` update rides on the `sd` centre value the stencil
    /// already loaded).
    ///
    /// Bit-identical to the unfused sequence `apply(sd, w)`,
    /// `axpy(z, 1, sd)`, `axpy(rr, -1, w)`: the stencil shares the same
    /// 5-point row kernel as [`TileOperator::apply`], `z + 1·sd` rounds as
    /// `z + sd`, and `rr + (-1)·v` rounds as `rr - v`.
    ///
    /// Requires `sd` valid to extension `ext + 1`, like
    /// [`TileOperator::apply`].
    pub fn apply_cheb_fused(
        &self,
        sd: &Field2<S>,
        z: &mut Field2<S>,
        rr: &mut Field2<S>,
        ext: usize,
        trace: &mut SolveTrace,
    ) {
        trace.spmv.record(ext);
        trace.fused_updates.record(ext);
        let (x_lo, x_hi, _, _) = self.bounds.range(ext);
        let n = (x_hi - x_lo) as usize;
        let kx = &self.coeffs.kx;
        let ky = &self.coeffs.ky;
        debug_assert!(
            sd.halo() as isize > ext as isize,
            "sd halo too shallow for extension {ext}"
        );
        crate::vector::for_rows2(z, rr, &self.bounds, ext, |k, zr, rrow| {
            let pc = sd.row(k, x_lo - 1, x_hi + 1);
            let ps = sd.row(k - 1, x_lo, x_hi);
            let pn = sd.row(k + 1, x_lo, x_hi);
            let kxr = kx.row(k, x_lo, x_hi + 1);
            let kyc = ky.row(k, x_lo, x_hi);
            let kyn = ky.row(k + 1, x_lo, x_hi);
            for i in 0..n {
                let v = stencil5(kxr, kyc, kyn, pc, ps, pn, i);
                zr[i] += pc[i + 1];
                rrow[i] -= v;
            }
        });
    }

    fn apply_inner(&self, p: &Field2<S>, w: &mut Field2<S>, ext: usize, fused_dot: bool) -> S {
        let (x_lo, x_hi, _, _) = self.bounds.range(ext);
        let n = (x_hi - x_lo) as usize;
        let kx = &self.coeffs.kx;
        let ky = &self.coeffs.ky;
        debug_assert!(
            p.halo() as isize > ext as isize,
            "p halo too shallow for extension {ext}"
        );
        let row_body = |k: isize, wr: &mut [S]| -> S {
            let pc = p.row(k, x_lo - 1, x_hi + 1);
            let ps = p.row(k - 1, x_lo, x_hi);
            let pn = p.row(k + 1, x_lo, x_hi);
            let kxr = kx.row(k, x_lo, x_hi + 1);
            let kyc = ky.row(k, x_lo, x_hi);
            let kyn = ky.row(k + 1, x_lo, x_hi);
            let mut partial = S::ZERO;
            for i in 0..n {
                let v = stencil5(kxr, kyc, kyn, pc, ps, pn, i);
                wr[i] = v;
                partial += pc[i + 1] * v;
            }
            partial
        };
        if fused_dot {
            crate::vector::for_rows_sum(w, &self.bounds, ext, row_body)
        } else {
            // plain apply: skip the partials buffer entirely
            crate::vector::for_rows(w, &self.bounds, ext, |k, wr| {
                row_body(k, wr);
            });
            S::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_mesh::{
        crooked_pipe, timestep_scalings, Coefficient, Decomposition2D, Extent2D, Field2D, Mesh2D,
    };

    fn uniform_op(n: usize, halo: usize, kval: f64) -> TileOperator {
        // build an operator with uniform interior coefficients kval
        let mesh = Mesh2D::serial(n, n, Extent2D::unit());
        let density = Field2D::filled(n, n, halo, 1.0 / kval);
        let coeffs = Coefficients::assemble(
            &mesh,
            &density,
            Coefficient::RecipConductivity,
            1.0,
            1.0,
            halo,
        );
        TileOperator::new(coeffs, TileBounds::serial(n, n))
    }

    fn crooked_op(n: usize, halo: usize) -> TileOperator {
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, halo);
        let mut energy = Field2D::new(n, n, halo);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, halo);
        TileOperator::new(coeffs, TileBounds::serial(n, n))
    }

    /// Dense matvec reference for small grids.
    fn dense_apply(op: &TileOperator, p: &Field2D) -> Field2D {
        let n = p.nx();
        let mut w = Field2D::new(n, p.ny(), p.halo());
        let kx = &op.coeffs.kx;
        let ky = &op.coeffs.ky;
        for k in 0..p.ny() as isize {
            for j in 0..n as isize {
                // identical floating-point association to the kernel so
                // results compare bitwise
                let diag = 1.0 + (ky.at(j, k + 1) + ky.at(j, k)) + (kx.at(j + 1, k) + kx.at(j, k));
                let v = diag * p.at(j, k)
                    - (ky.at(j, k + 1) * p.at(j, k + 1) + ky.at(j, k) * p.at(j, k - 1))
                    - (kx.at(j + 1, k) * p.at(j + 1, k) + kx.at(j, k) * p.at(j - 1, k));
                w.set(j, k, v);
            }
        }
        w
    }

    #[test]
    fn apply_matches_reference() {
        let op = crooked_op(16, 2);
        let mut p = Field2D::new(16, 16, 2);
        for k in 0..16isize {
            for j in 0..16isize {
                p.set(j, k, ((j * 31 + k * 17) % 7) as f64 - 3.0);
            }
        }
        let mut w = Field2D::new(16, 16, 2);
        let mut t = SolveTrace::new("test");
        op.apply(&p, &mut w, 0, &mut t);
        let wref = dense_apply(&op, &p);
        for k in 0..16isize {
            for j in 0..16isize {
                assert!(
                    (w.at(j, k) - wref.at(j, k)).abs() < 1e-13,
                    "mismatch at ({j},{k}): {} vs {}",
                    w.at(j, k),
                    wref.at(j, k)
                );
            }
        }
        assert_eq!(t.spmv.total(), 1);
    }

    #[test]
    fn operator_is_symmetric() {
        // <Ap, q> == <p, Aq> over random-ish vectors
        let op = crooked_op(12, 1);
        let mut t = SolveTrace::new("t");
        let mut p = Field2D::new(12, 12, 1);
        let mut q = Field2D::new(12, 12, 1);
        for k in 0..12isize {
            for j in 0..12isize {
                p.set(j, k, ((3 * j - 2 * k) % 5) as f64);
                q.set(j, k, ((j * k + 1) % 4) as f64 - 1.5);
            }
        }
        let mut ap = Field2D::new(12, 12, 1);
        let mut aq = Field2D::new(12, 12, 1);
        op.apply(&p, &mut ap, 0, &mut t);
        op.apply(&q, &mut aq, 0, &mut t);
        let lhs = ap.interior_dot(&q);
        let rhs = p.interior_dot(&aq);
        assert!(
            (lhs - rhs).abs() <= 1e-12 * lhs.abs().max(rhs.abs()).max(1.0),
            "asymmetry: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn constant_vector_maps_to_itself() {
        // rows sum to 1 (zero-flux boundaries + diagonal 1 + sum of faces)
        let op = crooked_op(20, 1);
        let mut t = SolveTrace::new("t");
        let p = Field2D::filled(20, 20, 1, 1.0);
        let mut w = Field2D::new(20, 20, 1);
        op.apply(&p, &mut w, 0, &mut t);
        for k in 0..20isize {
            for j in 0..20isize {
                assert!(
                    (w.at(j, k) - 1.0).abs() < 1e-12,
                    "row sum at ({j},{k}) = {}",
                    w.at(j, k)
                );
            }
        }
    }

    #[test]
    fn fused_dot_matches_separate() {
        let op = uniform_op(10, 1, 0.7);
        let mut t = SolveTrace::new("t");
        let mut p = Field2D::new(10, 10, 1);
        for k in 0..10isize {
            for j in 0..10isize {
                p.set(j, k, (j - k) as f64 / 3.0);
            }
        }
        let mut w1 = Field2D::new(10, 10, 1);
        let pw = op.apply_fused_dot(&p, &mut w1, &mut t);
        let mut w2 = Field2D::new(10, 10, 1);
        op.apply(&p, &mut w2, 0, &mut t);
        assert!((pw - p.interior_dot(&w2)).abs() < 1e-12);
        for k in 0..10isize {
            for j in 0..10isize {
                assert_eq!(w1.at(j, k), w2.at(j, k));
            }
        }
    }

    #[test]
    fn cheb_fused_pass_matches_unfused_bitwise() {
        // the fused stencil+update pass must reproduce apply +
        // axpy(z, +1, sd) + axpy(rr, -1, w) bit for bit — it is the
        // same arithmetic, minus the w store
        let n = 24;
        let op = crooked_op(n, 2);
        let mut t = SolveTrace::new("t");
        let mut sd = Field2D::new(n, n, 2);
        let mut z = Field2D::new(n, n, 2);
        let mut rr = Field2D::new(n, n, 2);
        for k in 0..n as isize {
            for j in 0..n as isize {
                sd.set(j, k, ((j * 29 + k * 31) % 17) as f64 / 5.0 - 1.3);
                z.set(j, k, ((j + 3 * k) % 7) as f64 / 3.0);
                rr.set(j, k, ((2 * j - k) % 9) as f64 / 4.0);
            }
        }
        let (mut z2, mut rr2) = (z.clone(), rr.clone());
        let mut w = Field2D::new(n, n, 2);
        op.apply(&sd, &mut w, 0, &mut t);
        crate::vector::axpy(&mut z2, 1.0, &sd, &op.bounds, 0, &mut t);
        crate::vector::axpy(&mut rr2, -1.0, &w, &op.bounds, 0, &mut t);
        op.apply_cheb_fused(&sd, &mut z, &mut rr, 0, &mut t);
        for k in 0..n as isize {
            for j in 0..n as isize {
                assert_eq!(z.at(j, k).to_bits(), z2.at(j, k).to_bits(), "z ({j},{k})");
                assert_eq!(
                    rr.at(j, k).to_bits(),
                    rr2.at(j, k).to_bits(),
                    "rr ({j},{k})"
                );
            }
        }
        assert_eq!(t.fused_updates.total(), 1);
        assert_eq!(t.spmv.total(), 2);
    }

    #[test]
    fn diagonal_is_dominant_and_positive() {
        let op = crooked_op(16, 1);
        let mut d = Field2D::new(16, 16, 1);
        op.diagonal_into(&mut d, 0);
        let kx = &op.coeffs.kx;
        let ky = &op.coeffs.ky;
        for k in 0..16isize {
            for j in 0..16isize {
                let offsum = kx.at(j, k) + kx.at(j + 1, k) + ky.at(j, k) + ky.at(j, k + 1);
                assert!(d.at(j, k) >= 1.0);
                assert!(d.at(j, k) >= offsum, "not diagonally dominant at ({j},{k})");
            }
        }
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let op = uniform_op(8, 1, 1.0);
        let mut t = SolveTrace::new("t");
        let mut u = Field2D::new(8, 8, 1);
        for k in 0..8isize {
            for j in 0..8isize {
                u.set(j, k, (j + 2 * k) as f64);
            }
        }
        let mut b = Field2D::new(8, 8, 1);
        op.apply(&u, &mut b, 0, &mut t);
        let mut r = Field2D::new(8, 8, 1);
        op.residual(&u, &b, &mut r, 0, &mut t);
        assert!(r.interior_max_abs() < 1e-12);
    }

    #[test]
    fn extended_sweep_matches_global_interior() {
        // a 2-tile decomposition where the extended sweep of one tile must
        // reproduce exactly the serial values over the overlap region
        let n = 16;
        let prob = crooked_pipe(n);
        let halo = 3;
        // serial reference
        let smesh = Mesh2D::serial(n, n, prob.extent);
        let mut sd = Field2D::new(n, n, halo);
        let mut se = Field2D::new(n, n, halo);
        prob.apply_states(&smesh, &mut sd, &mut se);
        let (rx, ry) = timestep_scalings(&smesh, 0.04);
        let scoef = Coefficients::assemble(&smesh, &sd, prob.coefficient, rx, ry, halo);
        let sop = TileOperator::new(scoef, TileBounds::serial(n, n));
        let mut p_global = Field2D::new(n, n, halo);
        for k in 0..n as isize {
            for j in 0..n as isize {
                p_global.set(j, k, ((j * 7 + k * 13) % 11) as f64);
            }
        }
        let mut w_global = Field2D::new(n, n, halo);
        let mut t = SolveTrace::new("t");
        sop.apply(&p_global, &mut w_global, 0, &mut t);

        // left tile of a 2x1 decomposition, extension 2 sweep
        let d = Decomposition2D::with_grid(n, n, 2, 1);
        let mesh = Mesh2D::new(&d, 0, prob.extent);
        let mut dd = Field2D::new(mesh.nx(), mesh.ny(), halo);
        let mut de = Field2D::new(mesh.nx(), mesh.ny(), halo);
        prob.apply_states(&mesh, &mut dd, &mut de);
        let coeffs = Coefficients::assemble(&mesh, &dd, prob.coefficient, rx, ry, halo);
        let op = TileOperator::new(coeffs, TileBounds::new(&mesh, halo));
        // fill p including ghost region from the global vector (simulating
        // a depth-3 halo exchange)
        let mut p = Field2D::new(mesh.nx(), mesh.ny(), halo);
        for k in -(halo as isize)..mesh.ny() as isize + halo as isize {
            for j in -(halo as isize)..mesh.nx() as isize + halo as isize {
                let (gj, gk) = (j, k); // left tile: local == global
                if gj >= 0 && gk >= 0 && gj < n as isize && gk < n as isize {
                    p.set(j, k, p_global.at(gj, gk));
                }
            }
        }
        let mut w = Field2D::new(mesh.nx(), mesh.ny(), halo);
        op.apply(&p, &mut w, 2, &mut t);
        // every cell in the extended range must match the serial sweep
        let (x_lo, x_hi, y_lo, y_hi) = op.bounds.range(2);
        assert_eq!((x_lo, y_lo), (0, 0), "west/south are global boundaries");
        assert_eq!(x_hi, mesh.nx() as isize + 2, "east extends into halo");
        for k in y_lo..y_hi {
            for j in x_lo..x_hi {
                assert!(
                    (w.at(j, k) - w_global.at(j, k)).abs() < 1e-13,
                    "extended sweep mismatch at ({j},{k})"
                );
            }
        }
        assert_eq!(t.spmv.sweeps_by_extension[&2], 1);
    }

    #[test]
    fn bounds_clamp_at_global_boundaries() {
        let d = Decomposition2D::with_grid(16, 16, 2, 2);
        let mesh = Mesh2D::new(&d, 0, Extent2D::unit()); // SW tile
        let b = TileBounds::new(&mesh, 4);
        assert_eq!(b.range(2), (0, 10, 0, 10));
        assert_eq!(b.range(0), (0, 8, 0, 8));
        assert_eq!(b.cells(2), 100);
        let mesh3 = Mesh2D::new(&d, 3, Extent2D::unit()); // NE tile
        let b3 = TileBounds::new(&mesh3, 4);
        assert_eq!(b3.range(3), (-3, 8, -3, 8));
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        // 256x256 crosses PAR_THRESHOLD; compare against a 0-threshold
        // serial evaluation done row by row with `dense_apply`
        let n = 256;
        let op = crooked_op(n, 1);
        let mut p = Field2D::new(n, n, 1);
        for k in 0..n as isize {
            for j in 0..n as isize {
                p.set(j, k, ((j * 131 + k * 17) % 23) as f64 / 7.0);
            }
        }
        let mut w = Field2D::new(n, n, 1);
        let mut t = SolveTrace::new("t");
        let pw = op.apply_fused_dot(&p, &mut w, &mut t);
        let wref = dense_apply(&op, &p);
        let mut dot = 0.0;
        for k in 0..n as isize {
            for j in 0..n as isize {
                assert_eq!(w.at(j, k), wref.at(j, k), "cell ({j},{k})");
                dot += p.at(j, k) * wref.at(j, k);
            }
        }
        assert!((pw - dot).abs() <= 1e-9 * dot.abs());
    }
}
