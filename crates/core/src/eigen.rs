//! Eigenvalue estimation for the Chebyshev-family solvers.
//!
//! The paper (§III.D) estimates the extreme eigenvalues of `A` by running
//! a few plain CG iterations first: CG's `α`/`β` coefficients define a
//! Lanczos tridiagonal matrix whose spectrum approximates `A`'s extreme
//! eigenvalues from the inside. We extract those extremes with a
//! Sturm-sequence bisection written from scratch (no LAPACK in this
//! reproduction) and widen them by a safety factor, exactly as the
//! reference's `tea_calc_eigenvalues` + safety margins do.
//!
//! When the CG run is *preconditioned*, the same construction yields the
//! spectrum of `M⁻¹A` — which is how the block-Jacobi condition-number
//! claim (§IV.C.1) is measured.

use serde::{Deserialize, Serialize};

/// Why an eigenvalue-estimate operation was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum EigenError {
    /// The widening factor must lie in `[0, 1)`: `factor >= 1` would
    /// drive the widened `min` to zero or below, and the Chebyshev
    /// constants derived from it would divide by zero / go NaN.
    InvalidWideningFactor {
        /// The rejected factor.
        factor: f64,
    },
}

impl std::fmt::Display for EigenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigenError::InvalidWideningFactor { factor } => write!(
                f,
                "eigenvalue widening factor must be finite and in [0, 1), got {factor} \
                 (factor >= 1 makes the widened lower bound non-positive, which poisons \
                 the Chebyshev coefficients)"
            ),
        }
    }
}

impl std::error::Error for EigenError {}

/// An estimated spectral interval of the (preconditioned) operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EigenEstimate {
    /// Estimated smallest eigenvalue.
    pub min: f64,
    /// Estimated largest eigenvalue.
    pub max: f64,
}

impl EigenEstimate {
    /// Condition-number estimate `max / min`.
    pub fn condition_number(&self) -> f64 {
        self.max / self.min
    }

    /// Widens the interval by `factor` on each end (TeaLeaf applies a
    /// safety margin because the Lanczos extremes approach from inside
    /// the true spectrum; Chebyshev bounds must *contain* it).
    ///
    /// # Errors
    /// [`EigenError::InvalidWideningFactor`] unless `0 <= factor < 1`:
    /// a factor of 1 or more flips the sign of the widened `min`, and a
    /// positive spectrum is what every downstream consumer
    /// ([`crate::ChebyConstants`], the Richardson damping) divides by.
    pub fn try_widened(&self, factor: f64) -> Result<EigenEstimate, EigenError> {
        if !(factor.is_finite() && (0.0..1.0).contains(&factor)) {
            return Err(EigenError::InvalidWideningFactor { factor });
        }
        Ok(EigenEstimate {
            min: self.min * (1.0 - factor),
            max: self.max * (1.0 + factor),
        })
    }

    /// [`EigenEstimate::try_widened`] for infallible call sites.
    ///
    /// # Panics
    /// Panics with the [`EigenError`] message when `factor` is outside
    /// `[0, 1)` — a structured rejection instead of silently returning
    /// a non-positive `min` that would surface later as NaN Chebyshev
    /// coefficients.
    pub fn widened(&self, factor: f64) -> EigenEstimate {
        self.try_widened(factor).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Builds the Lanczos tridiagonal `(diag, offdiag)` from CG coefficients.
///
/// With CG step sizes `alphas[i]` and residual ratios `betas[i]`
/// (`betas[i] = rz_{i+1}/rz_i` produced at the end of iteration `i`), the
/// `m x m` Lanczos matrix is
///
/// ```text
/// T[0,0]   = 1/α₀
/// T[i,i]   = 1/αᵢ + β_{i-1}/α_{i-1}
/// T[i,i+1] = √βᵢ / αᵢ
/// ```
///
/// # Panics
/// Panics unless `betas.len() + 1 == alphas.len()` and all `alphas` are
/// nonzero and `betas` non-negative.
pub fn lanczos_tridiagonal(alphas: &[f64], betas: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert!(!alphas.is_empty(), "need at least one CG iteration");
    assert_eq!(
        betas.len() + 1,
        alphas.len(),
        "need one beta per CG iteration except the last"
    );
    let m = alphas.len();
    let mut diag = Vec::with_capacity(m);
    let mut off = Vec::with_capacity(m - 1);
    for i in 0..m {
        assert!(alphas[i] != 0.0, "zero CG alpha at iteration {i}");
        let mut d = 1.0 / alphas[i];
        if i > 0 {
            d += betas[i - 1] / alphas[i - 1];
        }
        diag.push(d);
        if i + 1 < m {
            assert!(betas[i] >= 0.0, "negative CG beta at iteration {i}");
            off.push(betas[i].sqrt() / alphas[i]);
        }
    }
    (diag, off)
}

/// Counts eigenvalues of the symmetric tridiagonal `(diag, off)` strictly
/// less than `x` via the Sturm sequence (LDLᵀ pivots).
pub fn sturm_count(diag: &[f64], off: &[f64], x: f64) -> usize {
    let n = diag.len();
    assert_eq!(off.len() + 1, n.max(1), "offdiagonal length mismatch");
    let mut count = 0;
    let mut d = diag[0] - x;
    if d < 0.0 {
        count += 1;
    }
    for i in 1..n {
        // guard against exact zero pivots with a tiny perturbation, the
        // classic LAPACK dstebz trick
        if d == 0.0 {
            d = f64::MIN_POSITIVE;
        }
        d = (diag[i] - x) - off[i - 1] * off[i - 1] / d;
        if d < 0.0 {
            count += 1;
        }
    }
    count
}

/// Gershgorin interval certainly containing all eigenvalues.
fn gershgorin(diag: &[f64], off: &[f64]) -> (f64, f64) {
    let n = diag.len();
    let radius = |i: usize| -> f64 {
        let left = if i > 0 { off[i - 1].abs() } else { 0.0 };
        let right = if i + 1 < n { off[i].abs() } else { 0.0 };
        left + right
    };
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (i, &d) in diag.iter().enumerate() {
        lo = lo.min(d - radius(i));
        hi = hi.max(d + radius(i));
    }
    (lo, hi)
}

/// The `k`-th smallest eigenvalue (0-based) of the symmetric tridiagonal
/// `(diag, off)`, by bisection on the Sturm count.
pub fn tridiag_eigenvalue(diag: &[f64], off: &[f64], k: usize) -> f64 {
    let n = diag.len();
    assert!(k < n, "eigenvalue index out of range");
    let (mut lo, mut hi) = gershgorin(diag, off);
    // widen a hair so the count brackets are strict
    let width = (hi - lo).max(1.0);
    lo -= 1e-12 * width;
    hi += 1e-12 * width;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if sturm_count(diag, off, mid) <= k {
            lo = mid;
        } else {
            hi = mid;
        }
        if (hi - lo) <= 1e-14 * hi.abs().max(lo.abs()).max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Smallest and largest eigenvalues of the symmetric tridiagonal.
pub fn tridiag_extreme_eigenvalues(diag: &[f64], off: &[f64]) -> (f64, f64) {
    let n = diag.len();
    (
        tridiag_eigenvalue(diag, off, 0),
        tridiag_eigenvalue(diag, off, n - 1),
    )
}

/// All eigenvalues, ascending (test/diagnostic helper; O(n² log ε)).
pub fn tridiag_all_eigenvalues(diag: &[f64], off: &[f64]) -> Vec<f64> {
    (0..diag.len())
        .map(|k| tridiag_eigenvalue(diag, off, k))
        .collect()
}

/// Estimates the operator spectrum from recorded CG coefficients and
/// widens by `safety` (reference default 1%–10%; we use 5% max-side and
/// 5% min-side via [`EigenEstimate::widened`]).
pub fn estimate_from_cg(alphas: &[f64], betas: &[f64], safety: f64) -> EigenEstimate {
    let (diag, off) = lanczos_tridiagonal(alphas, betas);
    let (min, max) = tridiag_extreme_eigenvalues(&diag, &off);
    EigenEstimate { min, max }.widened(safety)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1D Laplacian tridiagonal: diag 2, off -1; eigenvalues
    /// 2 - 2 cos(kπ/(n+1)).
    fn laplacian(n: usize) -> (Vec<f64>, Vec<f64>) {
        (vec![2.0; n], vec![-1.0; n - 1])
    }

    #[test]
    fn sturm_count_brackets_known_spectrum() {
        let (d, e) = laplacian(8);
        assert_eq!(sturm_count(&d, &e, -0.1), 0);
        assert_eq!(sturm_count(&d, &e, 4.1), 8);
        assert_eq!(sturm_count(&d, &e, 2.0), 4, "half the spectrum below 2");
    }

    #[test]
    fn extreme_eigenvalues_match_laplacian_formula() {
        for n in [2usize, 5, 16, 33] {
            let (d, e) = laplacian(n);
            let (lo, hi) = tridiag_extreme_eigenvalues(&d, &e);
            let t = std::f64::consts::PI / (n as f64 + 1.0);
            let exact_lo = 2.0 - 2.0 * t.cos();
            let exact_hi = 2.0 - 2.0 * (n as f64 * t).cos();
            assert!((lo - exact_lo).abs() < 1e-10, "n={n}: {lo} vs {exact_lo}");
            assert!((hi - exact_hi).abs() < 1e-10, "n={n}: {hi} vs {exact_hi}");
        }
    }

    #[test]
    fn all_eigenvalues_sorted_and_complete() {
        let (d, e) = laplacian(10);
        let eigs = tridiag_all_eigenvalues(&d, &e);
        assert_eq!(eigs.len(), 10);
        for w in eigs.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        let t = std::f64::consts::PI / 11.0;
        for (k, &ev) in eigs.iter().enumerate() {
            let exact = 2.0 - 2.0 * ((k as f64 + 1.0) * t).cos();
            assert!((ev - exact).abs() < 1e-10);
        }
    }

    #[test]
    fn single_element_matrix() {
        let (lo, hi) = tridiag_extreme_eigenvalues(&[3.5], &[]);
        assert!((lo - 3.5).abs() < 1e-10);
        assert!((hi - 3.5).abs() < 1e-10);
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_entries() {
        let d = vec![5.0, -1.0, 2.0, 7.0];
        let e = vec![0.0, 0.0, 0.0];
        let eigs = tridiag_all_eigenvalues(&d, &e);
        let mut want = d.clone();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (a, b) in eigs.iter().zip(&want) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn lanczos_construction_shapes() {
        let (d, e) = lanczos_tridiagonal(&[0.5, 0.25], &[0.04]);
        assert_eq!(d.len(), 2);
        assert_eq!(e.len(), 1);
        assert_eq!(d[0], 2.0);
        assert!((d[1] - (4.0 + 0.04 / 0.5)).abs() < 1e-15);
        assert!((e[0] - 0.2 / 0.5).abs() < 1e-15);
    }

    #[test]
    fn lanczos_of_identity_like_cg() {
        // if A = c*I, CG converges in one step with alpha = 1/c; the
        // 1x1 Lanczos matrix must be exactly c
        let est = estimate_from_cg(&[0.25], &[], 0.0);
        assert!((est.min - 4.0).abs() < 1e-12);
        assert!((est.max - 4.0).abs() < 1e-12);
    }

    #[test]
    fn widened_contains_original() {
        let e = EigenEstimate {
            min: 1.0,
            max: 10.0,
        };
        let w = e.widened(0.05);
        assert!(w.min < 1.0 && w.max > 10.0);
        assert!((e.condition_number() - 10.0).abs() < 1e-15);
        assert!(w.condition_number() > 10.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_beta_length_panics() {
        let _ = lanczos_tridiagonal(&[0.5, 0.5], &[0.1, 0.1]);
    }

    #[test]
    fn widening_rejects_degenerate_factors() {
        let e = EigenEstimate {
            min: 1.0,
            max: 10.0,
        };
        // factor >= 1 used to yield min <= 0 and downstream NaN
        // Chebyshev coefficients; now it is a structured error
        for bad in [1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            let err = e.try_widened(bad).unwrap_err();
            assert!(
                matches!(err, EigenError::InvalidWideningFactor { .. }),
                "{bad}: {err:?}"
            );
            assert!(err.to_string().contains("[0, 1)"), "{err}");
        }
        // the boundary of validity still produces a positive spectrum
        let w = e.try_widened(0.999).unwrap();
        assert!(w.min > 0.0 && w.min.is_finite());
        assert!(w.max > w.min);
    }

    #[test]
    fn nan_factor_error_is_not_equal_to_itself_via_factor() {
        // PartialEq on the error carries the factor; NaN factors still
        // format into a readable message
        let e = EigenEstimate { min: 2.0, max: 4.0 };
        let msg = e.try_widened(f64::NAN).unwrap_err().to_string();
        assert!(msg.contains("NaN"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "widening factor")]
    fn widened_panics_with_structured_message() {
        let e = EigenEstimate { min: 1.0, max: 2.0 };
        let _ = e.widened(1.0);
    }
}
