//! External solve control: cancellation tokens, deadlines, and
//! iteration probes.
//!
//! A serving queue needs two things the solver loops did not have:
//!
//! * a way to *stop* a running solve — either explicitly (a client
//!   cancelled) or via a per-job deadline — without waiting for the
//!   iteration cap; and
//! * a way to *observe and perturb* a running solve, which is how the
//!   deterministic fault-injection layer (`tea-fault`) poisons fields
//!   at a chosen iteration without any `cfg` plumbing in the kernels.
//!
//! Both hooks are carried by [`SolveControls`], an optional bundle on
//! [`crate::Tile`]. A disarmed bundle (the default everywhere) costs a
//! `None` check per outer iteration — nothing allocates, nothing reads
//! the clock — so production paths pay effectively nothing when no
//! plan or deadline is armed.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tea_mesh::{Field2D, Field2F};

/// Shared cancellation state behind a [`StopHandle`].
#[derive(Debug)]
struct StopInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cancellation token with an optional wall-clock deadline.
///
/// Cloned handles share state: cancelling one cancels the solve seen
/// through all of them, so a serving worker can hold one end while the
/// queue holds the other. A default-constructed handle is *disarmed* —
/// it never stops anything and never reads the clock.
#[derive(Debug, Clone, Default)]
pub struct StopHandle {
    inner: Option<Arc<StopInner>>,
}

impl StopHandle {
    /// An armed handle with no deadline: stops only when
    /// [`StopHandle::cancel`] is called.
    pub fn new() -> Self {
        StopHandle {
            inner: Some(Arc::new(StopInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            })),
        }
    }

    /// An armed handle that expires `budget` from now. A zero budget
    /// expires immediately — useful for deterministic timeout tests.
    pub fn with_deadline(budget: Duration) -> Self {
        StopHandle {
            inner: Some(Arc::new(StopInner {
                cancelled: AtomicBool::new(false),
                // audit:allow(wall_clock) — deadlines are the one sanctioned clock use in
                // tea-core: only armed serve-path handles reach here, and the deadline can
                // shift *when* a solve stops, never the arithmetic of any iteration it runs.
                deadline: Some(Instant::now() + budget),
            })),
        }
    }

    /// A disarmed handle (same as `Default`): [`StopHandle::should_stop`]
    /// is always false and costs one `Option` check.
    pub fn disarmed() -> Self {
        StopHandle::default()
    }

    /// Whether this handle can ever stop a solve.
    pub fn is_armed(&self) -> bool {
        self.inner.is_some()
    }

    /// Requests cancellation; every solve checking this handle (or a
    /// clone of it) stops at its next iteration boundary. No-op on a
    /// disarmed handle.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// Whether a solve observing this handle should stop now — because
    /// [`StopHandle::cancel`] ran or the deadline passed.
    pub fn should_stop(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Acquire)
                    // audit:allow(wall_clock) — deadline expiry check; disarmed handles
                    // (every non-serving path) return in the `None` arm above and never
                    // read the clock, so deterministic paths stay wall-clock-free.
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }
}

/// An iteration observer a solve calls once per outer iteration, with
/// mutable access to the iterate and residual. The fault-injection
/// layer implements this to poison fields at a chosen iteration; the
/// hook is deliberately powerful enough to perturb a solve, not just
/// watch it.
///
/// Reduced-precision solvers whose working set is `f32` call the
/// `_f32` variant instead; the default implementation is a no-op so
/// probes that only care about `f64` solves need not implement it.
pub trait SolveProbe: Sync {
    /// Called at the top of each outer iteration of an `f64` solve.
    fn on_iteration(&self, iteration: u64, u: &mut Field2D, r: &mut Field2D);

    /// Called at the top of each outer iteration of a fully-`f32`
    /// solve (`cg_f32`). Default: no-op.
    fn on_iteration_f32(&self, iteration: u64, u: &mut Field2F, r: &mut Field2F) {
        let _ = (iteration, u, r);
    }
}

/// The optional control bundle a [`crate::Tile`] carries into a solve:
/// a cancellation/deadline token and an iteration probe. The default
/// (both `None`) is what every non-serving path uses, and costs two
/// `Option` checks per outer iteration.
#[derive(Clone, Copy, Default)]
pub struct SolveControls<'a> {
    /// Cancellation token checked at every outer iteration boundary.
    pub stop: Option<&'a StopHandle>,
    /// Iteration probe invoked at the top of every outer iteration.
    pub probe: Option<&'a dyn SolveProbe>,
}

impl std::fmt::Debug for SolveControls<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveControls")
            .field("stop", &self.stop)
            .field("probe", &self.probe.map(|_| "dyn SolveProbe"))
            .finish()
    }
}

impl<'a> SolveControls<'a> {
    /// Controls carrying only a stop handle.
    pub fn stopping(stop: &'a StopHandle) -> Self {
        SolveControls {
            stop: Some(stop),
            probe: None,
        }
    }

    /// Whether the solve should stop at this iteration boundary.
    pub fn should_stop(&self) -> bool {
        self.stop.is_some_and(StopHandle::should_stop)
    }

    /// Invokes the probe (if any) for an `f64` solve iteration.
    pub fn poke(&self, iteration: u64, u: &mut Field2D, r: &mut Field2D) {
        if let Some(probe) = self.probe {
            probe.on_iteration(iteration, u, r);
        }
    }

    /// Invokes the probe (if any) for an `f32` solve iteration.
    pub fn poke_f32(&self, iteration: u64, u: &mut Field2F, r: &mut Field2F) {
        if let Some(probe) = self.probe {
            probe.on_iteration_f32(iteration, u, r);
        }
    }

    /// Whether either hook is armed (used to bypass result memos that
    /// must never observe a perturbed solve).
    pub fn is_armed(&self) -> bool {
        self.probe.is_some() || self.stop.is_some_and(StopHandle::is_armed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_handle_never_stops() {
        let h = StopHandle::disarmed();
        assert!(!h.is_armed());
        assert!(!h.should_stop());
        h.cancel(); // no-op
        assert!(!h.should_stop());
        assert!(!SolveControls::default().should_stop());
        assert!(!SolveControls::default().is_armed());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let h = StopHandle::new();
        let other = h.clone();
        assert!(!other.should_stop());
        h.cancel();
        assert!(other.should_stop());
        assert!(SolveControls::stopping(&other).should_stop());
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let h = StopHandle::with_deadline(Duration::ZERO);
        assert!(h.is_armed());
        assert!(h.should_stop());
        // a generous deadline does not
        let h = StopHandle::with_deadline(Duration::from_secs(3600));
        assert!(!h.should_stop());
    }

    #[test]
    fn probe_fires_through_controls() {
        use std::sync::atomic::AtomicU64;
        struct Count(AtomicU64);
        impl SolveProbe for Count {
            fn on_iteration(&self, _: u64, _: &mut Field2D, _: &mut Field2D) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let probe = Count(AtomicU64::new(0));
        let controls = SolveControls {
            stop: None,
            probe: Some(&probe),
        };
        assert!(controls.is_armed());
        let mut u = Field2D::new(4, 4, 1);
        let mut r = Field2D::new(4, 4, 1);
        controls.poke(1, &mut u, &mut r);
        controls.poke(2, &mut u, &mut r);
        assert_eq!(probe.0.load(Ordering::Relaxed), 2);
        // the default f32 hook is a no-op but must be callable
        let mut uf = Field2F::new(4, 4, 1);
        let mut rf = Field2F::new(4, 4, 1);
        controls.poke_f32(1, &mut uf, &mut rf);
        assert_eq!(probe.0.load(Ordering::Relaxed), 2);
    }
}
