//! Mixed- and reduced-precision solvers: precision as a design-space
//! axis.
//!
//! TeaLeaf's kernels are memory-bandwidth bound, so halving the bytes
//! per value is the single biggest per-node lever on modern hardware.
//! This module instantiates the generic [`Scalar`] kernels at `f32` in
//! three registered methods:
//!
//! * [`MixedCg`] (`"mixed_cg"`) — classic iterative-refinement-flavoured
//!   PCG: the outer recurrence, every dot product and the convergence
//!   test stay in `f64`, while the preconditioner is assembled from the
//!   demoted (`f32`) operator and applied to demoted residuals. The
//!   preconditioner only has to be *some* fixed SPD operator for CG to
//!   converge, so the solve still reaches full `f64` tolerances.
//! * [`MixedPpcg`] (`"mixed_ppcg"`) — CPPCG whose entire inner
//!   `m`-step Chebyshev smoothing (the dominant flop/byte cost) runs in
//!   `f32`, including the matrix-powers deep-halo schedule; the outer
//!   PCG recurrence stays in `f64`. The inner solve is a polynomial
//!   preconditioner, so the same argument applies.
//! * [`CgF32`] (`"cg_f32"`) — every kernel in `f32`, for the honest
//!   end of the precision sweep: it demonstrates *why* mixed precision
//!   exists, stalling at the `f32` round-off floor instead of reaching
//!   `f64` tolerances (a stagnation guard stops it burning iterations
//!   once it flatlines).
//!
//! Halo exchanges are **precision-native**: the `tea-comms` wire format
//! is generic over the field scalar, so every `f32` field here
//! exchanges 4-byte elements directly — half the message volume of the
//! `f64` solvers, with no conversion staging on either side.
//! [`solver_for_precision`] maps a `(solver, precision)` request from
//! the deck/CLI/builder onto the registered variant.

use crate::api::{IterativeSolver, Precision, SolveContext, SolverError, SolverParams};
use crate::cg::cg_solve_recording;
use crate::chebyshev::ChebyConstants;
use crate::eigen::{estimate_from_cg, EigenEstimate};
use crate::ops::{TileBounds, TileOperator};
use crate::ppcg::PpcgOpts;
use crate::precon::{PreconKind, Preconditioner};
use crate::registry::SolverRegistry;
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveStatus, SolveTrace};
use crate::vector;
use tea_comms::Communicator;
use tea_mesh::{Field2D, Field2F, Scalar};

/// Maps a `(solver, precision)` request onto the registered solver that
/// implements it — the one rule behind the deck's `tl_precision`, the
/// CLI's `--precision` and [`crate::Solve::precision`].
///
/// A solver whose [`crate::SolverMeta::precision`] already matches is
/// returned unchanged; otherwise the request is re-routed within the
/// method family (`cg`/`cg_fused` ↔ `mixed_cg`/`cg_f32`, `ppcg` ↔
/// `mixed_ppcg`), and `Precision::F64` demotes a reduced-precision name
/// back to its `f64` family solver.
///
/// # Errors
/// [`SolverError::UnknownSolver`] for an unregistered name, and
/// [`SolverError::PrecisionUnsupported`] when no variant exists — in
/// particular for serial-only baselines like `amg`.
pub fn solver_for_precision(
    name: &str,
    precision: Precision,
    registry: &SolverRegistry,
) -> Result<String, SolverError> {
    let meta = *registry.resolve(name)?;
    if meta.precision == precision {
        return Ok(meta.name.to_string());
    }
    if meta.serial_only {
        return Err(SolverError::PrecisionUnsupported {
            solver: meta.name.to_string(),
            precision,
            reason: format!(
                "'{}' is a serial-only f64 baseline; run it without a precision override",
                meta.name
            ),
        });
    }
    let family = match meta.name {
        "mixed_cg" | "cg_f32" => "cg",
        "mixed_ppcg" => "ppcg",
        "mixed_chebyshev" => "chebyshev",
        "mixed_richardson" => "richardson",
        other => other,
    };
    let target = match (family, precision) {
        (_, Precision::F64) => Some(family),
        ("cg" | "cg_fused", Precision::Mixed) => Some("mixed_cg"),
        ("ppcg", Precision::Mixed) => Some("mixed_ppcg"),
        ("chebyshev", Precision::Mixed) => Some("mixed_chebyshev"),
        ("richardson", Precision::Mixed) => Some("mixed_richardson"),
        ("cg" | "cg_fused", Precision::F32) => Some("cg_f32"),
        _ => None,
    };
    match target {
        Some(t) => Ok(registry.resolve(t)?.name.to_string()),
        None => Err(SolverError::PrecisionUnsupported {
            solver: meta.name.to_string(),
            precision,
            reason: format!(
                "no {} variant of '{}' is registered (variants cover the cg, cg_fused, \
                 ppcg, chebyshev and richardson families)",
                precision.label(),
                meta.name
            ),
        }),
    }
}

/// Reusable `f32` demotion scratch for the preconditioner round trip.
#[derive(Debug, Clone)]
struct DemoteScratch {
    r32: Field2F,
    z32: Field2F,
}

impl DemoteScratch {
    fn matching(f: &Field2D) -> Self {
        let make = || Field2F::new(f.nx(), f.ny(), f.halo());
        DemoteScratch {
            r32: make(),
            z32: make(),
        }
    }

    fn fits(&self, f: &Field2D) -> bool {
        self.r32.nx() == f.nx() && self.r32.ny() == f.ny() && self.r32.halo() == f.halo()
    }
}

/// `z = M₃₂⁻¹ r` through the `f32` round trip: demote `r`, apply the
/// single-precision preconditioner, promote the result. The two
/// conversion sweeps are recorded as vector ops so traces stay honest
/// about the extra memory traffic.
fn apply_precon_demoted(
    precon32: &Preconditioner<f32>,
    r: &Field2D,
    z: &mut Field2D,
    s: &mut DemoteScratch,
    bounds: &TileBounds,
    trace: &mut SolveTrace,
) {
    trace.vector_ops.record(0);
    r.convert_into(&mut s.r32);
    precon32.apply(&s.r32, &mut s.z32, bounds, 0, trace);
    trace.vector_ops.record(0);
    s.z32.convert_into(z);
}

/// PCG with an `f32` preconditioner inside an `f64` outer recurrence —
/// the `"mixed_cg"` registry entry.
///
/// Per iteration the demote/apply/promote round trip replaces the `f64`
/// preconditioner apply; everything else (halo exchange, fused
/// `w = A·p` sweep, dot products, vector updates, convergence test) is
/// bit-for-bit the plain [`crate::Cg`] protocol. Because CG tolerates
/// any fixed SPD preconditioner, the method converges to the same
/// `tl_eps` tolerance as full `f64` CG.
#[derive(Debug, Clone, Default)]
pub struct MixedCg {
    kind: PreconKind,
    opts: SolveOpts,
    precon32: Option<Preconditioner<f32>>,
    scratch: Option<DemoteScratch>,
}

impl MixedCg {
    /// A mixed-precision CG using preconditioner `kind` (applied in
    /// `f32`).
    pub fn new(kind: PreconKind) -> Self {
        MixedCg {
            kind,
            opts: SolveOpts::default(),
            precon32: None,
            scratch: None,
        }
    }

    /// Registry factory: consumes [`SolverParams::precon`].
    pub fn from_params(params: &SolverParams) -> Self {
        MixedCg::new(params.precon)
    }

    fn assemble_precon(&self, ctx: &SolveContext<'_>) -> Preconditioner<f32> {
        let op32: TileOperator<f32> = ctx.tile.op.convert();
        Preconditioner::setup(self.kind, &op32, 0)
    }
}

impl IterativeSolver for MixedCg {
    fn name(&self) -> &'static str {
        "mixed_cg"
    }

    fn label(&self) -> String {
        "CG-mixed".into()
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.precon32 = Some(self.assemble_precon(ctx));
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.precon32.is_none() {
            self.precon32 = Some(self.assemble_precon(ctx));
        }
        if !self.scratch.as_ref().is_some_and(|s| s.fits(&ws.r)) {
            self.scratch = Some(DemoteScratch::matching(&ws.r));
        }
        let precon32 = self.precon32.as_ref().expect("just prepared");
        let scratch = self.scratch.as_mut().expect("just sized");
        let result = mixed_cg_solve(ctx.tile, u, b, precon32, scratch, ws, self.opts);
        trace.merge(&result.trace);
        result
    }
}

fn mixed_cg_solve<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    precon32: &Preconditioner<f32>,
    scratch: &mut DemoteScratch,
    ws: &mut Workspace,
    opts: SolveOpts,
) -> SolveResult {
    let mut trace = SolveTrace::new("CG-mixed");
    let bounds = &tile.op.bounds;

    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);

    apply_precon_demoted(precon32, &ws.r, &mut ws.z, scratch, bounds, &mut trace);
    vector::copy(&mut ws.p, &ws.z, bounds, 0, &mut trace);

    let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
    let mut rro = tile.reduce_sum(rz_local, &mut trace);
    if !rro.is_finite() {
        return SolveResult {
            converged: false,
            iterations: 0,
            initial_residual: f64::NAN,
            final_residual: f64::NAN,
            status: SolveStatus::Diverged { iteration: 0 },
            trace,
        };
    }
    let initial_residual = rro.max(0.0).sqrt();

    if initial_residual == 0.0 {
        return SolveResult {
            converged: true,
            iterations: 0,
            initial_residual,
            final_residual: 0.0,
            status: SolveStatus::Converged,
            trace,
        };
    }
    let target = opts.eps * initial_residual;

    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = initial_residual;
    let mut iterations = 0;

    while iterations < opts.max_iters {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke(iterations, u, &mut ws.r);

        tile.exchange(&mut [&mut ws.p], 1, &mut trace);
        let pw_local = tile.op.apply_fused_dot(&ws.p, &mut ws.w, &mut trace);
        let pw = tile.reduce_sum(pw_local, &mut trace);
        if !pw.is_finite() || pw <= 0.0 {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
            break;
        }
        let alpha = rro / pw;

        vector::axpy(u, alpha, &ws.p, bounds, 0, &mut trace);
        vector::axpy(&mut ws.r, -alpha, &ws.w, bounds, 0, &mut trace);

        apply_precon_demoted(precon32, &ws.r, &mut ws.z, scratch, bounds, &mut trace);
        let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
        let rrn = tile.reduce_sum(rz_local, &mut trace);

        if !rrn.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
            break;
        }
        final_residual = rrn.max(0.0).sqrt();
        if final_residual <= target {
            converged = true;
            status = SolveStatus::Converged;
            break;
        }
        if rrn <= 0.0 {
            // f32 rounding floor: <r, z> lost positivity before the
            // target — stop honestly instead of dividing by it
            break;
        }

        let beta = rrn / rro;
        vector::xpay(&mut ws.p, &ws.z, beta, bounds, 0, &mut trace);
        rro = rrn;
    }

    SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status,
        trace,
    }
}

/// The `f32` working set of the mixed PPCG inner smoothing.
#[derive(Debug, Clone)]
struct InnerWs32 {
    z: Field2F,
    rr: Field2F,
    sd: Field2F,
    w: Field2F,
    tmp: Field2F,
}

impl InnerWs32 {
    fn matching(f: &Field2D) -> Self {
        let make = || Field2F::new(f.nx(), f.ny(), f.halo());
        InnerWs32 {
            z: make(),
            rr: make(),
            sd: make(),
            w: make(),
            tmp: make(),
        }
    }

    fn fits(&self, f: &Field2D) -> bool {
        self.z.nx() == f.nx() && self.z.ny() == f.ny() && self.z.halo() == f.halo()
    }
}

/// CPPCG with the inner Chebyshev smoothing in `f32` — the
/// `"mixed_ppcg"` registry entry.
///
/// The `m`-step inner solve dominates CPPCG's per-iteration cost
/// (`m + 1` stencil sweeps per outer iteration); running it in `f32`
/// halves its memory traffic while the outer PCG recurrence, both dot
/// products and the convergence test stay in `f64`. The matrix-powers
/// deep-halo schedule is preserved, and its exchanges move native
/// `f32` payloads — half the deep-halo message bytes of plain PPCG.
/// The CG presteps and their Lanczos eigenvalue estimate run in `f64`;
/// the safety widening absorbs the (tiny) spectral difference between
/// the `f64` and demoted operators.
#[derive(Debug, Clone, Default)]
pub struct MixedPpcg {
    kind: PreconKind,
    ppcg: PpcgOpts,
    opts: SolveOpts,
    precon: Option<Preconditioner>,
    op32: Option<TileOperator<f32>>,
    precon32: Option<Preconditioner<f32>>,
    inner32: Option<InnerWs32>,
    hint: Option<EigenEstimate>,
    last_est: Option<EigenEstimate>,
}

impl MixedPpcg {
    /// A mixed-precision CPPCG with preconditioner `kind` and
    /// configuration `ppcg`.
    pub fn new(kind: PreconKind, ppcg: PpcgOpts) -> Self {
        MixedPpcg {
            kind,
            ppcg,
            opts: SolveOpts::default(),
            precon: None,
            op32: None,
            precon32: None,
            inner32: None,
            hint: None,
            last_est: None,
        }
    }

    /// Registry factory: consumes `precon`, `inner_steps`, `halo_depth`,
    /// `presteps` and `eigen_safety`.
    pub fn from_params(params: &SolverParams) -> Self {
        MixedPpcg::new(
            params.precon,
            PpcgOpts {
                inner_steps: params.inner_steps,
                halo_depth: params.halo_depth,
                presteps: params.presteps,
                eigen_safety: params.eigen_safety,
            },
        )
    }

    fn assemble(&mut self, ctx: &SolveContext<'_>) {
        let op32: TileOperator<f32> = ctx.tile.op.convert();
        self.precon = Some(Preconditioner::setup(
            self.kind,
            ctx.tile.op,
            self.ppcg.halo_depth,
        ));
        self.precon32 = Some(Preconditioner::setup(
            self.kind,
            &op32,
            self.ppcg.halo_depth,
        ));
        self.op32 = Some(op32);
    }
}

impl IterativeSolver for MixedPpcg {
    fn name(&self) -> &'static str {
        "mixed_ppcg"
    }

    fn label(&self) -> String {
        format!("PPCG-{}-mixed", self.ppcg.halo_depth)
    }

    fn halo_depth(&self) -> usize {
        self.ppcg.halo_depth.max(1)
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.assemble(ctx);
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.op32.is_none() {
            self.assemble(ctx);
        }
        if !self.inner32.as_ref().is_some_and(|s| s.fits(&ws.r)) {
            self.inner32 = Some(InnerWs32::matching(&ws.r));
        }
        let label = self.label();
        let result = mixed_ppcg_solve(
            ctx.tile,
            u,
            b,
            self.precon.as_ref().expect("just prepared"),
            self.op32.as_ref().expect("just prepared"),
            self.precon32.as_ref().expect("just prepared"),
            self.inner32.as_mut().expect("just sized"),
            ws,
            self.opts,
            self.ppcg,
            &label,
            self.hint,
        );
        self.last_est = result
            .trace
            .eigen_bounds
            .map(|(min, max)| EigenEstimate { min, max });
        trace.merge(&result.trace);
        result
    }

    fn set_eigen_hint(&mut self, hint: Option<EigenEstimate>) {
        self.hint = hint;
    }

    fn last_eigen_estimate(&self) -> Option<EigenEstimate> {
        self.last_est
    }
}

#[allow(clippy::too_many_arguments)]
fn mixed_ppcg_solve<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    precon: &Preconditioner,
    op32: &TileOperator<f32>,
    precon32: &Preconditioner<f32>,
    inner32: &mut InnerWs32,
    ws: &mut Workspace,
    opts: SolveOpts,
    ppcg: PpcgOpts,
    label: &str,
    hint: Option<EigenEstimate>,
) -> SolveResult {
    let h = ppcg.halo_depth;
    let m = ppcg.inner_steps;
    assert!(h >= 1, "matrix-powers depth must be at least 1");
    assert!(m >= 1, "need at least one inner step");
    assert!(
        ws.halo() >= h,
        "workspace halo {} shallower than matrix-powers depth {h}",
        ws.halo()
    );
    assert!(
        precon.supports_extension() || h == 1,
        "block-Jacobi cannot be combined with matrix powers (paper §IV.C.2)"
    );
    let bounds = &tile.op.bounds;

    // Phase 1: f64 plain-CG presteps for the spectrum of M⁻¹A.
    let (pre, coeffs) = cg_solve_recording(tile, u, b, precon, ws, opts, ppcg.presteps.max(1));
    if pre.converged || pre.status.is_diverged() || pre.status.is_cancelled() {
        return pre;
    }
    let mut trace = pre.trace;
    trace.solver = label.to_string();
    // a pinned estimate (session replay of identical input) skips only
    // the Lanczos analysis; the presteps above still advanced u
    let est: EigenEstimate = hint.unwrap_or_else(|| {
        let (al, be) = coeffs.for_lanczos();
        estimate_from_cg(al, be, ppcg.eigen_safety)
    });
    trace.eigen_bounds = Some((est.min, est.max));
    let consts = ChebyConstants::from_estimate(est);
    let cheb = consts.coefficients(m);

    // Phase 2: f64 outer PCG with the f32 m-step Chebyshev inner solve.
    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);

    cheb_inner_f32(
        tile, op32, precon32, ws, inner32, &consts, &cheb, h, &mut trace,
    );
    trace.inner_iterations += m as u64;
    vector::copy(&mut ws.p, &ws.z, bounds, 0, &mut trace);

    let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
    let mut rro = tile.reduce_sum(rz_local, &mut trace);
    let initial_residual = pre.initial_residual;
    let target = opts.eps * initial_residual;

    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = pre.final_residual;
    let mut iterations = pre.iterations;

    while iterations < opts.max_iters {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke(iterations, u, &mut ws.r);

        tile.exchange(&mut [&mut ws.p], 1, &mut trace);
        let pw_local = tile.op.apply_fused_dot(&ws.p, &mut ws.w, &mut trace);
        let pw = tile.reduce_sum(pw_local, &mut trace);
        if !pw.is_finite() || pw <= 0.0 {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
            break;
        }
        let alpha = rro / pw;

        vector::axpy(u, alpha, &ws.p, bounds, 0, &mut trace);
        vector::axpy(&mut ws.r, -alpha, &ws.w, bounds, 0, &mut trace);

        cheb_inner_f32(
            tile, op32, precon32, ws, inner32, &consts, &cheb, h, &mut trace,
        );
        trace.inner_iterations += m as u64;

        let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
        let rrn = tile.reduce_sum(rz_local, &mut trace);
        if !rrn.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
            break;
        }
        final_residual = rrn.max(0.0).sqrt();
        if final_residual <= target {
            converged = true;
            status = SolveStatus::Converged;
            break;
        }
        if rrn <= 0.0 {
            break;
        }
        let beta = rrn / rro;
        vector::xpay(&mut ws.p, &ws.z, beta, bounds, 0, &mut trace);
        rro = rrn;
    }

    SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status,
        trace,
    }
}

/// The inner m-step Chebyshev solve of `A z ≈ r` from `z = 0`, entirely
/// in `f32`, with the matrix-powers deep-halo schedule. Mirrors
/// `ppcg::cheb_inner` step for step; halo exchanges move native `f32`
/// payloads, so the only extra traffic is the demote of the outer
/// residual on entry and the promote of `z` on exit (both recorded as
/// vector ops).
#[allow(clippy::too_many_arguments)]
fn cheb_inner_f32<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    op32: &TileOperator<f32>,
    precon32: &Preconditioner<f32>,
    ws: &mut Workspace,
    f: &mut InnerWs32,
    consts: &ChebyConstants,
    cheb: &[(f64, f64)],
    h: usize,
    trace: &mut SolveTrace,
) {
    let bounds = &op32.bounds;
    let m = cheb.len();
    vector::zero(&mut f.z, bounds, h, trace);
    trace.vector_ops.record(0);
    ws.r.convert_into(&mut f.rr);
    let inv_theta = f32::from_f64(1.0 / consts.theta);

    if h == 1 {
        // Classic depth-1 schedule: interior-only updates, one exchange
        // per inner step, block-Jacobi allowed. Fused like
        // `ppcg::cheb_inner`: stencil + z/rr updates in one pass, then
        // the preconditioned sd recurrence (unfused only for
        // block-Jacobi strip solves).
        precon32.apply(&f.rr, &mut f.tmp, bounds, 0, trace);
        vector::scaled_copy(&mut f.sd, &f.tmp, inv_theta, bounds, 0, trace);
        for &(a_k, b_k) in cheb {
            tile.exchange(&mut [&mut f.sd], 1, trace);
            op32.apply_cheb_fused(&f.sd, &mut f.z, &mut f.rr, 0, trace);
            let (a32, b32) = (f32::from_f64(a_k), f32::from_f64(b_k));
            if !precon32.fused_recurrence(&mut f.sd, &f.rr, a32, b32, bounds, 0, trace) {
                precon32.apply(&f.rr, &mut f.tmp, bounds, 0, trace);
                vector::scale_add(&mut f.sd, a32, b32, &f.tmp, bounds, 0, trace);
            }
        }
    } else {
        // Matrix-powers schedule: one depth-h exchange buys h sweeps
        // over shrinking bounds (paper Fig. 2), each depth level fused
        // (block-Jacobi never reaches this branch).
        tile.exchange(&mut [&mut f.rr], h, trace);
        let mut avail = h;
        precon32.apply(&f.rr, &mut f.tmp, bounds, avail, trace);
        vector::scaled_copy(&mut f.sd, &f.tmp, inv_theta, bounds, avail, trace);

        for (step, &(a_k, b_k)) in cheb.iter().enumerate() {
            if avail == 0 {
                tile.exchange(&mut [&mut f.sd, &mut f.rr], h, trace);
                avail = h;
            }
            // never sweep wider than the remaining steps can use
            let e = (avail - 1).min(m - 1 - step);
            op32.apply_cheb_fused(&f.sd, &mut f.z, &mut f.rr, e, trace);
            let (a32, b32) = (f32::from_f64(a_k), f32::from_f64(b_k));
            if !precon32.fused_recurrence(&mut f.sd, &f.rr, a32, b32, bounds, e, trace) {
                precon32.apply(&f.rr, &mut f.tmp, bounds, e, trace);
                vector::scale_add(&mut f.sd, a32, b32, &f.tmp, bounds, e, trace);
            }
            avail = e;
        }
    }

    trace.vector_ops.record(0);
    f.z.convert_into(&mut ws.z);
}

/// The inner m-step damped Richardson solve of `A z ≈ r` from `z = 0`,
/// entirely in `f32`: `z += ω M⁻¹ r̃` with the inner residual `r̃`
/// maintained incrementally (`r̃ −= A·(ω M⁻¹ r̃)`), mirroring the
/// depth-1 schedule of [`cheb_inner_f32`] with the Chebyshev recurrence
/// replaced by the fixed Chebyshev-optimal damping.
#[allow(clippy::too_many_arguments)]
fn rich_inner_f32<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    op32: &TileOperator<f32>,
    precon32: &Preconditioner<f32>,
    ws: &mut Workspace,
    f: &mut InnerWs32,
    omega: f64,
    m: usize,
    trace: &mut SolveTrace,
) {
    let bounds = &op32.bounds;
    vector::zero(&mut f.z, bounds, 1, trace);
    trace.vector_ops.record(0);
    ws.r.convert_into(&mut f.rr);
    let omega32 = f32::from_f64(omega);

    for _ in 0..m {
        precon32.apply(&f.rr, &mut f.tmp, bounds, 0, trace);
        vector::scaled_copy(&mut f.sd, &f.tmp, omega32, bounds, 0, trace);
        tile.exchange(&mut [&mut f.sd], 1, trace);
        op32.apply(&f.sd, &mut f.w, 0, trace);
        vector::axpy(&mut f.z, 1.0f32, &f.sd, bounds, 0, trace);
        vector::axpy(&mut f.rr, -1.0f32, &f.w, bounds, 0, trace);
    }

    trace.vector_ops.record(0);
    f.z.convert_into(&mut ws.z);
}

/// Which `f32` acceleration runs inside the shared mixed refinement
/// outer loop of [`mixed_accel_solve`].
#[derive(Debug, Clone, Copy)]
enum InnerAccel {
    Chebyshev,
    Richardson,
}

/// The shared engine behind [`MixedChebyshev`] and [`MixedRichardson`]:
/// a `f64` CG-Lanczos prelude for the spectrum, then iterative
/// refinement — each outer iteration runs `m` steps of the `f32`
/// acceleration against the demoted `f64` residual, promotes the
/// correction, and re-derives the residual in `f64`. The outer update
/// and the convergence test never leave `f64`, so the solve reaches
/// `f64` tolerances (same argument as [`MixedPpcg`]).
#[allow(clippy::too_many_arguments)]
fn mixed_accel_solve<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    precon: &Preconditioner,
    op32: &TileOperator<f32>,
    precon32: &Preconditioner<f32>,
    inner32: &mut InnerWs32,
    ws: &mut Workspace,
    opts: SolveOpts,
    presteps: u64,
    eigen_safety: f64,
    m: usize,
    accel: InnerAccel,
    label: &str,
    hint: Option<EigenEstimate>,
) -> SolveResult {
    let bounds = &tile.op.bounds;

    // Phase 1: f64 plain-CG presteps for the spectrum of M⁻¹A.
    let (pre, coeffs) = cg_solve_recording(tile, u, b, precon, ws, opts, presteps.max(1));
    if pre.converged || pre.status.is_diverged() || pre.status.is_cancelled() {
        return pre;
    }
    let mut trace = pre.trace;
    trace.solver = label.to_string();
    // a pinned estimate (session replay of identical input) skips only
    // the Lanczos analysis; the presteps above still advanced u
    let est: EigenEstimate = hint.unwrap_or_else(|| {
        let (al, be) = coeffs.for_lanczos();
        estimate_from_cg(al, be, eigen_safety)
    });
    trace.eigen_bounds = Some((est.min, est.max));
    let consts = ChebyConstants::from_estimate(est);
    let cheb = consts.coefficients(m);
    let omega = 2.0 / (est.min + est.max);

    // Phase 2: f64 refinement loop around the f32 acceleration blocks.
    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);

    let initial_residual = pre.initial_residual;
    let target = opts.eps * initial_residual;
    let mut iterations = pre.iterations;
    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = pre.final_residual;

    while iterations < opts.max_iters {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke(iterations, u, &mut ws.r);

        match accel {
            InnerAccel::Chebyshev => cheb_inner_f32(
                tile, op32, precon32, ws, inner32, &consts, &cheb, 1, &mut trace,
            ),
            InnerAccel::Richardson => {
                rich_inner_f32(tile, op32, precon32, ws, inner32, omega, m, &mut trace)
            }
        }
        trace.inner_iterations += m as u64;

        vector::axpy(u, 1.0, &ws.z, bounds, 0, &mut trace);
        tile.exchange(&mut [u], 1, &mut trace);
        tile.op.residual(u, b, &mut ws.r, 0, &mut trace);

        // one reduction per m-step block: the f64 convergence control
        let rr_local = vector::dot_local(&ws.r, &ws.r, bounds, &mut trace);
        let rr = tile.reduce_sum(rr_local, &mut trace);
        if !rr.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
            break;
        }
        final_residual = rr.max(0.0).sqrt();
        if final_residual <= target {
            converged = true;
            status = SolveStatus::Converged;
            break;
        }
    }

    SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status,
        trace,
    }
}

/// Chebyshev acceleration with every polynomial sweep in `f32` — the
/// `"mixed_chebyshev"` registry entry.
///
/// Each outer iteration demotes the current `f64` residual, runs
/// `check_interval` Chebyshev steps of `A z ≈ r` in `f32` (the same
/// inner engine as [`MixedPpcg`], at depth 1), promotes the correction
/// and re-derives the residual in `f64`. The CG presteps, the Lanczos
/// eigenvalue estimate and the convergence control all stay in `f64`,
/// so the method reaches `f64` tolerances while the bandwidth-dominant
/// sweeps move half the bytes.
#[derive(Debug, Clone, Default)]
pub struct MixedChebyshev {
    kind: PreconKind,
    presteps: u64,
    eigen_safety: f64,
    inner_steps: usize,
    opts: SolveOpts,
    precon: Option<Preconditioner>,
    op32: Option<TileOperator<f32>>,
    precon32: Option<Preconditioner<f32>>,
    inner32: Option<InnerWs32>,
    hint: Option<EigenEstimate>,
    last_est: Option<EigenEstimate>,
}

impl MixedChebyshev {
    /// A mixed-precision Chebyshev solver with preconditioner `kind`,
    /// `presteps` CG presteps and `inner_steps` f32 sweeps per `f64`
    /// residual refresh.
    pub fn new(kind: PreconKind, presteps: u64, eigen_safety: f64, inner_steps: usize) -> Self {
        MixedChebyshev {
            kind,
            presteps,
            eigen_safety,
            inner_steps: inner_steps.max(1),
            opts: SolveOpts::default(),
            precon: None,
            op32: None,
            precon32: None,
            inner32: None,
            hint: None,
            last_est: None,
        }
    }

    /// Registry factory: consumes `precon`, `presteps`, `eigen_safety`
    /// and `check_interval` (as the f32 block length).
    pub fn from_params(params: &SolverParams) -> Self {
        MixedChebyshev::new(
            params.precon,
            params.presteps,
            params.eigen_safety,
            params.check_interval.max(1) as usize,
        )
    }

    fn assemble(&mut self, ctx: &SolveContext<'_>) {
        let op32: TileOperator<f32> = ctx.tile.op.convert();
        self.precon = Some(Preconditioner::setup(self.kind, ctx.tile.op, 0));
        self.precon32 = Some(Preconditioner::setup(self.kind, &op32, 0));
        self.op32 = Some(op32);
    }
}

impl IterativeSolver for MixedChebyshev {
    fn name(&self) -> &'static str {
        "mixed_chebyshev"
    }

    fn label(&self) -> String {
        "Chebyshev-mixed".into()
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.assemble(ctx);
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.op32.is_none() {
            self.assemble(ctx);
        }
        if !self.inner32.as_ref().is_some_and(|s| s.fits(&ws.r)) {
            self.inner32 = Some(InnerWs32::matching(&ws.r));
        }
        let result = mixed_accel_solve(
            ctx.tile,
            u,
            b,
            self.precon.as_ref().expect("just prepared"),
            self.op32.as_ref().expect("just prepared"),
            self.precon32.as_ref().expect("just prepared"),
            self.inner32.as_mut().expect("just sized"),
            ws,
            self.opts,
            self.presteps,
            self.eigen_safety,
            self.inner_steps,
            InnerAccel::Chebyshev,
            "Chebyshev-mixed",
            self.hint,
        );
        self.last_est = result
            .trace
            .eigen_bounds
            .map(|(min, max)| EigenEstimate { min, max });
        trace.merge(&result.trace);
        result
    }

    fn set_eigen_hint(&mut self, hint: Option<EigenEstimate>) {
        self.hint = hint;
    }

    fn last_eigen_estimate(&self) -> Option<EigenEstimate> {
        self.last_est
    }
}

/// Damped Richardson iteration with every sweep in `f32` — the
/// `"mixed_richardson"` registry entry.
///
/// The outer structure matches [`MixedChebyshev`]: `check_interval`
/// damped sweeps (`z += ω M⁻¹ r̃`, Chebyshev-optimal
/// `ω = 2/(λmin+λmax)`) run in `f32` against the demoted residual, the
/// promoted correction and the convergence test stay in `f64`.
#[derive(Debug, Clone, Default)]
pub struct MixedRichardson {
    kind: PreconKind,
    presteps: u64,
    eigen_safety: f64,
    inner_steps: usize,
    opts: SolveOpts,
    precon: Option<Preconditioner>,
    op32: Option<TileOperator<f32>>,
    precon32: Option<Preconditioner<f32>>,
    inner32: Option<InnerWs32>,
    hint: Option<EigenEstimate>,
    last_est: Option<EigenEstimate>,
}

impl MixedRichardson {
    /// A mixed-precision Richardson solver with preconditioner `kind`,
    /// `presteps` CG presteps and `inner_steps` f32 sweeps per `f64`
    /// residual refresh.
    pub fn new(kind: PreconKind, presteps: u64, eigen_safety: f64, inner_steps: usize) -> Self {
        MixedRichardson {
            kind,
            presteps,
            eigen_safety,
            inner_steps: inner_steps.max(1),
            opts: SolveOpts::default(),
            precon: None,
            op32: None,
            precon32: None,
            inner32: None,
            hint: None,
            last_est: None,
        }
    }

    /// Registry factory: consumes `precon`, `presteps`, `eigen_safety`
    /// and `check_interval` (as the f32 block length).
    pub fn from_params(params: &SolverParams) -> Self {
        MixedRichardson::new(
            params.precon,
            params.presteps,
            params.eigen_safety,
            params.check_interval.max(1) as usize,
        )
    }

    fn assemble(&mut self, ctx: &SolveContext<'_>) {
        let op32: TileOperator<f32> = ctx.tile.op.convert();
        self.precon = Some(Preconditioner::setup(self.kind, ctx.tile.op, 0));
        self.precon32 = Some(Preconditioner::setup(self.kind, &op32, 0));
        self.op32 = Some(op32);
    }
}

impl IterativeSolver for MixedRichardson {
    fn name(&self) -> &'static str {
        "mixed_richardson"
    }

    fn label(&self) -> String {
        "Richardson-mixed".into()
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.assemble(ctx);
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.op32.is_none() {
            self.assemble(ctx);
        }
        if !self.inner32.as_ref().is_some_and(|s| s.fits(&ws.r)) {
            self.inner32 = Some(InnerWs32::matching(&ws.r));
        }
        let result = mixed_accel_solve(
            ctx.tile,
            u,
            b,
            self.precon.as_ref().expect("just prepared"),
            self.op32.as_ref().expect("just prepared"),
            self.precon32.as_ref().expect("just prepared"),
            self.inner32.as_mut().expect("just sized"),
            ws,
            self.opts,
            self.presteps,
            self.eigen_safety,
            self.inner_steps,
            InnerAccel::Richardson,
            "Richardson-mixed",
            self.hint,
        );
        self.last_est = result
            .trace
            .eigen_bounds
            .map(|(min, max)| EigenEstimate { min, max });
        trace.merge(&result.trace);
        result
    }

    fn set_eigen_hint(&mut self, hint: Option<EigenEstimate>) {
        self.hint = hint;
    }

    fn last_eigen_estimate(&self) -> Option<EigenEstimate> {
        self.last_est
    }
}

/// The `f32` working set of [`CgF32`]: every vector of the recurrence,
/// exchanged over the wire at native `f32` width.
#[derive(Debug, Clone)]
struct FieldsF32 {
    u: Field2F,
    b: Field2F,
    p: Field2F,
    r: Field2F,
    w: Field2F,
    z: Field2F,
}

/// Fully single-precision PCG — the `"cg_f32"` registry entry and the
/// honest floor of the precision sweep.
///
/// Every kernel (residual, fused apply-dot, preconditioner, vector
/// updates) runs in `f32`; dot products are widened to `f64` only for
/// the scalar recurrence and the convergence test. The attainable
/// relative residual is limited to roughly `κ(A)·ε_f32`, so tight
/// `f64`-era tolerances (the TeaLeaf default `1e-10`) are generally
/// unreachable: a stagnation guard ends the solve once the residual
/// stops improving, reporting `converged: false` honestly rather than
/// spinning to the iteration cap.
#[derive(Debug, Clone, Default)]
pub struct CgF32 {
    kind: PreconKind,
    opts: SolveOpts,
    op32: Option<TileOperator<f32>>,
    precon32: Option<Preconditioner<f32>>,
    fields: Option<FieldsF32>,
}

/// Iterations without a ≥0.1% residual improvement before [`CgF32`]
/// declares stagnation at the `f32` round-off floor.
const F32_STALL_LIMIT: u64 = 100;

impl CgF32 {
    /// A single-precision CG using preconditioner `kind`.
    pub fn new(kind: PreconKind) -> Self {
        CgF32 {
            kind,
            opts: SolveOpts::default(),
            op32: None,
            precon32: None,
            fields: None,
        }
    }

    /// Registry factory: consumes [`SolverParams::precon`].
    pub fn from_params(params: &SolverParams) -> Self {
        CgF32::new(params.precon)
    }

    fn assemble(&mut self, ctx: &SolveContext<'_>) {
        let op32: TileOperator<f32> = ctx.tile.op.convert();
        self.precon32 = Some(Preconditioner::setup(self.kind, &op32, 0));
        self.op32 = Some(op32);
    }
}

impl IterativeSolver for CgF32 {
    fn name(&self) -> &'static str {
        "cg_f32"
    }

    fn label(&self) -> String {
        "CG-f32".into()
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.assemble(ctx);
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.op32.is_none() {
            self.assemble(ctx);
        }
        let fits =
            |g: &Field2F, f: &Field2D| g.nx() == f.nx() && g.ny() == f.ny() && g.halo() == f.halo();
        if !self
            .fields
            .as_ref()
            .is_some_and(|s| fits(&s.u, u) && fits(&s.b, b) && fits(&s.p, &ws.p))
        {
            let like = |f: &Field2D| Field2F::new(f.nx(), f.ny(), f.halo());
            self.fields = Some(FieldsF32 {
                u: like(u),
                b: like(b),
                p: like(&ws.p),
                r: like(&ws.r),
                w: like(&ws.w),
                z: like(&ws.z),
            });
        }
        let result = cg_f32_solve(
            ctx.tile,
            u,
            b,
            self.op32.as_ref().expect("just prepared"),
            self.precon32.as_ref().expect("just prepared"),
            self.fields.as_mut().expect("just sized"),
            self.opts,
        );
        trace.merge(&result.trace);
        result
    }
}

fn cg_f32_solve<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    op32: &TileOperator<f32>,
    precon32: &Preconditioner<f32>,
    f: &mut FieldsF32,
    opts: SolveOpts,
) -> SolveResult {
    let mut trace = SolveTrace::new("CG-f32");
    let bounds = &op32.bounds;

    // fill u's ghosts in f64 once, then demote the whole working set
    tile.exchange(&mut [u], 1, &mut trace);
    trace.vector_ops.record(0);
    u.convert_into(&mut f.u);
    b.convert_into(&mut f.b);

    op32.residual(&f.u, &f.b, &mut f.r, 0, &mut trace);
    precon32.apply(&f.r, &mut f.z, bounds, 0, &mut trace);
    vector::copy(&mut f.p, &f.z, bounds, 0, &mut trace);

    // all four reductions below are width-native: the f32 partial dots
    // fold across ranks in f32 (4 bytes on the wire) and only the folded
    // scalar is widened for the f64 control logic
    let rz_local = vector::dot_local(&f.r, &f.z, bounds, &mut trace);
    let mut rro = tile.reduce_sum_native(rz_local, &mut trace).to_f64();
    if !rro.is_finite() {
        return SolveResult {
            converged: false,
            iterations: 0,
            initial_residual: f64::NAN,
            final_residual: f64::NAN,
            status: SolveStatus::Diverged { iteration: 0 },
            trace,
        };
    }
    let initial_residual = rro.max(0.0).sqrt();

    if initial_residual == 0.0 {
        return SolveResult {
            converged: true,
            iterations: 0,
            initial_residual,
            final_residual: 0.0,
            status: SolveStatus::Converged,
            trace,
        };
    }
    let target = opts.eps * initial_residual;

    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = initial_residual;
    let mut iterations = 0;
    let mut best = f64::INFINITY;
    let mut best_true = f64::INFINITY;
    let mut stalled = 0u64;

    while iterations < opts.max_iters {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke_f32(iterations, &mut f.u, &mut f.r);

        tile.exchange(&mut [&mut f.p], 1, &mut trace);
        let pw_local = op32.apply_fused_dot(&f.p, &mut f.w, &mut trace);
        let pw = tile.reduce_sum_native(pw_local, &mut trace).to_f64();
        if !pw.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
            break;
        }
        if pw <= 0.0 {
            // f32 breakdown: the search direction lost positivity
            break;
        }
        let alpha = rro / pw;

        vector::axpy(&mut f.u, f32::from_f64(alpha), &f.p, bounds, 0, &mut trace);
        vector::axpy(&mut f.r, f32::from_f64(-alpha), &f.w, bounds, 0, &mut trace);

        precon32.apply(&f.r, &mut f.z, bounds, 0, &mut trace);
        let rz_local = vector::dot_local(&f.r, &f.z, bounds, &mut trace);
        let rrn = tile.reduce_sum_native(rz_local, &mut trace).to_f64();

        if !rrn.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
            break;
        }
        final_residual = rrn.max(0.0).sqrt();
        if final_residual <= target {
            // The f32 recurrence residual drifts below the true residual
            // long before convergence (round-off in the u updates), so a
            // recurrence-only test would claim tolerances the solution
            // does not meet. Confirm against the true residual
            // `b − A·u` — classic residual replacement — and restart the
            // direction from it if the claim was premature.
            tile.exchange(&mut [&mut f.u], 1, &mut trace);
            op32.residual(&f.u, &f.b, &mut f.r, 0, &mut trace);
            precon32.apply(&f.r, &mut f.z, bounds, 0, &mut trace);
            let rz_true = vector::dot_local(&f.r, &f.z, bounds, &mut trace);
            let rr_true = tile.reduce_sum_native(rz_true, &mut trace).to_f64();
            if !rr_true.is_finite() {
                status = SolveStatus::Diverged {
                    iteration: iterations,
                };
                final_residual = f64::NAN;
                break;
            }
            let true_res = rr_true.max(0.0).sqrt();
            final_residual = true_res;
            if true_res <= target {
                converged = true;
                status = SolveStatus::Converged;
                break;
            }
            if rr_true <= 0.0 || true_res >= 0.999 * best_true {
                // the true residual is no longer improving: that is the
                // f32 round-off floor — report unconverged honestly
                break;
            }
            best_true = true_res;
            // the recurrence residual restarts from the (much larger)
            // true residual: reset the recurrence stall watermark too,
            // or the whole re-descent would count as stalled
            best = true_res;
            stalled = 0;
            vector::copy(&mut f.p, &f.z, bounds, 0, &mut trace);
            rro = rr_true;
            continue;
        }
        if rrn <= 0.0 {
            break;
        }
        if final_residual < 0.999 * best {
            best = final_residual;
            stalled = 0;
        } else {
            stalled += 1;
            if stalled >= F32_STALL_LIMIT {
                // flatlined at the f32 round-off floor
                break;
            }
        }

        let beta = rrn / rro;
        vector::xpay(&mut f.p, &f.z, f32::from_f64(beta), bounds, 0, &mut trace);
        rro = rrn;
    }

    trace.vector_ops.record(0);
    f.u.convert_into(u);

    SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{crooked_pipe_system, Solve};
    use crate::cg::cg_solve_recording;
    use tea_comms::{HaloLayout, SerialComm};
    use tea_mesh::Decomposition2D;

    fn run_named(
        name: &str,
        n: usize,
        eps: f64,
        precon: PreconKind,
        depth: usize,
    ) -> (SolveResult, Field2D, TileOperator, Field2D) {
        let (op, b) = crooked_pipe_system(n, 0.04, depth.max(1));
        let mut u = b.clone();
        let result = Solve::on(&op)
            .with_solver(name)
            .precon(precon)
            .halo_depth(depth.max(1))
            .eps(eps)
            .run(&mut u, &b)
            .expect("registered solver");
        (result, u, op, b)
    }

    fn residual_norm(op: &TileOperator, u: &Field2D, b: &Field2D) -> f64 {
        let mut t = SolveTrace::new("check");
        let mut r = Field2D::new(u.nx(), u.ny(), u.halo());
        op.residual(u, b, &mut r, 0, &mut t);
        r.interior_norm() / b.interior_norm()
    }

    #[test]
    fn mixed_cg_reaches_f64_tolerance() {
        for precon in [
            PreconKind::None,
            PreconKind::Diagonal,
            PreconKind::BlockJacobi,
        ] {
            let (res, u, op, b) = run_named("mixed_cg", 32, 1e-10, precon, 1);
            assert!(res.converged, "{precon:?}: {res:?}");
            assert!(
                residual_norm(&op, &u, &b) < 1e-8,
                "{precon:?} residual too large"
            );
        }
    }

    #[test]
    fn mixed_cg_matches_f64_cg_solution() {
        let (r64, u64f, op, b) = run_named("cg", 24, 1e-10, PreconKind::BlockJacobi, 1);
        let (rmx, umx, ..) = run_named("mixed_cg", 24, 1e-10, PreconKind::BlockJacobi, 1);
        assert!(r64.converged && rmx.converged);
        // both converged to 1e-10: solutions agree far beyond f32 precision,
        // proving the outer f64 recurrence controls the accuracy
        for k in 0..24isize {
            for j in 0..24isize {
                let (a, c) = (umx.at(j, k), u64f.at(j, k));
                assert!(
                    (a - c).abs() <= 1e-6 * c.abs().max(1e-12),
                    "solutions diverge at ({j},{k}): {a} vs {c}"
                );
            }
        }
        let _ = (op, b);
    }

    #[test]
    fn mixed_cg_iteration_count_stays_close_to_f64() {
        let (r64, ..) = run_named("cg", 32, 1e-10, PreconKind::Diagonal, 1);
        let (rmx, ..) = run_named("mixed_cg", 32, 1e-10, PreconKind::Diagonal, 1);
        assert!(
            rmx.iterations <= r64.iterations + r64.iterations / 2 + 5,
            "f32 preconditioning should not blow up iterations: {} vs {}",
            rmx.iterations,
            r64.iterations
        );
    }

    #[test]
    fn mixed_ppcg_reaches_f64_tolerance_at_depths() {
        for depth in [1usize, 4] {
            let (res, u, op, b) = run_named("mixed_ppcg", 32, 1e-9, PreconKind::None, depth);
            assert!(res.converged, "depth {depth}: {res:?}");
            assert!(residual_norm(&op, &u, &b) < 1e-7, "depth {depth}");
        }
    }

    #[test]
    fn mixed_chebyshev_and_richardson_reach_f64_tolerance() {
        for name in ["mixed_chebyshev", "mixed_richardson"] {
            let (res, u, op, b) = run_named(name, 32, 1e-9, PreconKind::Diagonal, 1);
            assert!(res.converged, "{name}: {res:?}");
            assert!(residual_norm(&op, &u, &b) < 1e-7, "{name}");
            // the damping/shift came from a recorded eigenvalue estimate
            assert!(res.trace.eigen_bounds.is_some(), "{name}");
        }
    }

    #[test]
    fn cg_f32_stalls_above_f64_tolerance_but_solves_loose_ones() {
        // loose tolerance: f32 CG converges fine
        let (loose, u, op, b) = run_named("cg_f32", 24, 1e-4, PreconKind::None, 1);
        assert!(loose.converged, "{loose:?}");
        assert!(residual_norm(&op, &u, &b) < 1e-3);
        // f64-grade tolerance: the stagnation guard must stop it early,
        // unconverged, well before the 10k iteration cap
        let (tight, ..) = run_named("cg_f32", 24, 1e-12, PreconKind::None, 1);
        assert!(!tight.converged, "f32 cannot honestly reach 1e-12");
        assert!(
            tight.iterations < 2000,
            "stagnation guard should cut the run short, ran {}",
            tight.iterations
        );
    }

    #[test]
    fn precision_routing_table() {
        let reg = SolverRegistry::builtin();
        let route = |n: &str, p: Precision| solver_for_precision(n, p, &reg).unwrap();
        assert_eq!(route("cg", Precision::F64), "cg");
        assert_eq!(route("cg", Precision::Mixed), "mixed_cg");
        assert_eq!(route("cg_fused", Precision::Mixed), "mixed_cg");
        assert_eq!(route("cg", Precision::F32), "cg_f32");
        assert_eq!(route("ppcg", Precision::Mixed), "mixed_ppcg");
        assert_eq!(route("chebyshev", Precision::Mixed), "mixed_chebyshev");
        assert_eq!(route("richardson", Precision::Mixed), "mixed_richardson");
        assert_eq!(route("mixed_cg", Precision::Mixed), "mixed_cg");
        assert_eq!(route("mixed_cg", Precision::F64), "cg");
        assert_eq!(route("cg_f32", Precision::F64), "cg");
        assert_eq!(route("mixed_ppcg", Precision::F64), "ppcg");
        assert_eq!(route("mixed_chebyshev", Precision::F64), "chebyshev");
        assert_eq!(route("mixed_richardson", Precision::F64), "richardson");
        // aliases route through canonical names
        assert_eq!(route("cppcg", Precision::Mixed), "mixed_ppcg");
    }

    #[test]
    fn precision_routing_rejects_uncovered_methods() {
        let reg = SolverRegistry::builtin();
        let err = solver_for_precision("jacobi", Precision::Mixed, &reg).unwrap_err();
        assert!(
            matches!(err, SolverError::PrecisionUnsupported { .. }),
            "{err}"
        );
        assert!(err.to_string().contains("jacobi"), "{err}");
        let err = solver_for_precision("ppcg", Precision::F32, &reg).unwrap_err();
        assert!(err.to_string().contains("f32"), "{err}");
        let err = solver_for_precision("nonexistent", Precision::Mixed, &reg).unwrap_err();
        assert!(matches!(err, SolverError::UnknownSolver { .. }), "{err}");
    }

    #[test]
    fn mixed_trace_counts_demotion_sweeps() {
        // mixed CG must record strictly more vector ops than f64 CG
        // (two conversion sweeps per preconditioner application) while
        // keeping the same reduction and exchange protocol
        let n = 16;
        let (op, b) = crooked_pipe_system(n, 0.04, 1);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let m64 = Preconditioner::setup(PreconKind::Diagonal, &op, 0);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = b.clone();
        let (r64, _) = cg_solve_recording(
            &tile,
            &mut u,
            &b,
            &m64,
            &mut ws,
            SolveOpts::default(),
            u64::MAX,
        );

        let op32: TileOperator<f32> = op.convert();
        let m32 = Preconditioner::setup(PreconKind::Diagonal, &op32, 0);
        let mut scratch = DemoteScratch::matching(&ws.r);
        let mut u2 = b.clone();
        let rmx = mixed_cg_solve(
            &tile,
            &mut u2,
            &b,
            &m32,
            &mut scratch,
            &mut ws,
            SolveOpts::default(),
        );
        assert!(r64.converged && rmx.converged);
        let per_iter_64 = r64.trace.vector_ops.total() as f64 / r64.iterations as f64;
        let per_iter_mx = rmx.trace.vector_ops.total() as f64 / rmx.iterations as f64;
        assert!(
            per_iter_mx > per_iter_64 + 1.5,
            "demotion sweeps must show up in the trace: {per_iter_mx} vs {per_iter_64}"
        );
        // reductions per iteration unchanged: still two-allreduce CG
        assert_eq!(r64.trace.reductions, 1 + 2 * r64.iterations);
        assert_eq!(rmx.trace.reductions, 1 + 2 * rmx.iterations);
    }

    #[test]
    fn precision_labels_parse_and_roundtrip() {
        for p in [Precision::F64, Precision::F32, Precision::Mixed] {
            assert_eq!(Precision::parse(p.label()).unwrap(), p);
        }
        assert_eq!(Precision::parse("DOUBLE").unwrap(), Precision::F64);
        assert_eq!(Precision::parse("single").unwrap(), Precision::F32);
        assert!(Precision::parse("f16").is_err());
    }
}
