//! Preconditioners: identity, point-Jacobi (diagonal) and the paper's
//! block-Jacobi (§IV.C.1).
//!
//! The block-Jacobi preconditioner splits the mesh into 4×1 strips along
//! x. Each strip corresponds to a small tridiagonal block of `A` (the
//! within-strip couplings are the `Kx` faces), which is solved directly
//! with the Thomas algorithm — "a much faster variation of Gaussian
//! elimination for tridiagonal systems". Strips at tile edges are
//! truncated to length 3, 2 or 1. Because blocks never cross tile
//! boundaries, applying the preconditioner needs **zero communication**,
//! which is the whole point.
//!
//! The Thomas factors are precomputed at setup (the reference's
//! `cp`/`bfb` arrays), so each application is one forward and one
//! backward sweep per strip.
//!
//! Matrix-powers restriction: the paper notes the block preconditioner
//! cannot be combined with deep-halo sweeps (it needs up-to-date whole
//! blocks); [`Preconditioner::apply`] therefore panics if asked for an
//! extended-sweep application of the block variant.

use crate::ops::{TileBounds, TileOperator};
use crate::trace::SolveTrace;
use crate::vector;
use tea_mesh::{Field2, Scalar};

/// Which preconditioner a solver should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PreconKind {
    /// No preconditioning (`M = I`).
    #[default]
    None,
    /// Point Jacobi: `M = diag(A)`.
    Diagonal,
    /// 4×1-strip block Jacobi solved by the Thomas algorithm.
    BlockJacobi,
}

impl PreconKind {
    /// Short label used in solver names and figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PreconKind::None => "none",
            PreconKind::Diagonal => "jac_diag",
            PreconKind::BlockJacobi => "jac_block",
        }
    }
}

/// Default strip length matching the paper's 4×1 blocks.
pub const DEFAULT_BLOCK_STRIP: usize = 4;

/// An assembled preconditioner for one tile, generic over the
/// [`Scalar`] precision. The mixed-precision CG assembles a
/// `Preconditioner<f32>` from the demoted operator and applies it to
/// demoted residuals while the outer recurrence stays in `f64`.
#[derive(Debug, Clone)]
pub enum Preconditioner<S: Scalar = f64> {
    /// `z = r`.
    Identity,
    /// `z = r ./ diag(A)`; valid over extended sweeps.
    Diagonal {
        /// Reciprocal operator diagonal over the full halo extent.
        inv_diag: Field2<S>,
    },
    /// Strip-tridiagonal direct solves; interior sweeps only.
    BlockJacobi(BlockJacobi<S>),
}

/// Precomputed Thomas factors for the 4×1-strip block-Jacobi.
#[derive(Debug, Clone)]
pub struct BlockJacobi<S: Scalar = f64> {
    /// Strip length (paper: 4; ablatable).
    strip: usize,
    /// `c*` factors (normalised superdiagonal) per cell.
    cp: Field2<S>,
    /// Reciprocal pivots per cell.
    minv: Field2<S>,
    /// Within-strip coupling (`-Kx`) reused by the forward sweep:
    /// `sub(j,k) = -kx(j,k)` for cells that are not first in their strip.
    sub: Field2<S>,
}

impl<S: Scalar> Preconditioner<S> {
    /// Assembles the requested preconditioner from the operator.
    ///
    /// `ext_max` is the largest extension a `Diagonal` application may be
    /// asked for (the matrix-powers halo depth); the diagonal is
    /// precomputed over that range.
    pub fn setup(kind: PreconKind, op: &TileOperator<S>, ext_max: usize) -> Self {
        match kind {
            PreconKind::None => Preconditioner::Identity,
            PreconKind::Diagonal => {
                let (nx, ny) = op.bounds.tile();
                let halo = op.coeffs.halo();
                let mut d = Field2::filled(nx, ny, halo, S::ONE);
                op.diagonal_into(&mut d, ext_max.min(halo));
                // invert in place over everything we touched
                let (x_lo, x_hi, y_lo, y_hi) = op.bounds.range(ext_max.min(halo));
                for k in y_lo..y_hi {
                    for v in d.row_mut(k, x_lo, x_hi) {
                        *v = S::ONE / *v;
                    }
                }
                Preconditioner::Diagonal { inv_diag: d }
            }
            PreconKind::BlockJacobi => {
                Preconditioner::BlockJacobi(BlockJacobi::setup(op, DEFAULT_BLOCK_STRIP))
            }
        }
    }

    /// `z = M⁻¹ r` over extension `ext`.
    ///
    /// # Panics
    /// Panics for [`Preconditioner::BlockJacobi`] with `ext > 0`: the
    /// paper's constraint that block solves need fresh whole blocks,
    /// which deep-halo sweeps cannot provide.
    pub fn apply(
        &self,
        r: &Field2<S>,
        z: &mut Field2<S>,
        bounds: &TileBounds,
        ext: usize,
        trace: &mut SolveTrace,
    ) {
        match self {
            Preconditioner::Identity => {
                vector::copy(z, r, bounds, ext, trace);
            }
            Preconditioner::Diagonal { inv_diag } => {
                trace.precon_ops.record(ext);
                vector::mul_into(z, r, inv_diag, bounds, ext, trace);
            }
            Preconditioner::BlockJacobi(bj) => {
                assert_eq!(
                    ext, 0,
                    "block-Jacobi cannot be applied over extended (matrix-powers) bounds"
                );
                trace.precon_ops.record(0);
                bj.apply(r, z, bounds);
            }
        }
    }

    /// Fused Chebyshev inner step, second pass: the `sd` recurrence
    /// `sd = a·sd + b·(M⁻¹ rr)` in one sweep when the preconditioner is
    /// elementwise. Identity drops the intermediate copy (`M⁻¹rr = rr`);
    /// Diagonal fuses the reciprocal-diagonal product into the
    /// recurrence via [`vector::scale_add_mul`]. Both round exactly like
    /// the unfused [`Preconditioner::apply`] + [`vector::scale_add`]
    /// sequence. Returns `false` for block-Jacobi — whole-strip direct
    /// solves cannot fold into an elementwise pass — in which case the
    /// caller must run the unfused sequence itself.
    #[allow(clippy::too_many_arguments)]
    pub fn fused_recurrence(
        &self,
        sd: &mut Field2<S>,
        rr: &Field2<S>,
        a: S,
        b: S,
        bounds: &TileBounds,
        ext: usize,
        trace: &mut SolveTrace,
    ) -> bool {
        match self {
            Preconditioner::Identity => {
                vector::scale_add(sd, a, b, rr, bounds, ext, trace);
                true
            }
            Preconditioner::Diagonal { inv_diag } => {
                trace.precon_ops.record(ext);
                vector::scale_add_mul(sd, a, b, rr, inv_diag, bounds, ext, trace);
                true
            }
            Preconditioner::BlockJacobi(_) => false,
        }
    }

    /// Whether this preconditioner may be applied at `ext > 0`.
    pub fn supports_extension(&self) -> bool {
        !matches!(self, Preconditioner::BlockJacobi(_))
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        matches!(self, Preconditioner::Identity)
    }
}

impl<S: Scalar> BlockJacobi<S> {
    /// Precomputes Thomas factors for `strip`-long x strips of `op`.
    pub fn setup(op: &TileOperator<S>, strip: usize) -> Self {
        assert!(strip >= 1, "strip length must be at least 1");
        let (nx, ny) = op.bounds.tile();
        let halo = op.coeffs.halo();
        let mut diag = Field2::new(nx, ny, halo);
        op.diagonal_into(&mut diag, 0);
        let kx = &op.coeffs.kx;
        let mut cp = Field2::new(nx, ny, halo);
        let mut minv = Field2::new(nx, ny, halo);
        let mut sub = Field2::new(nx, ny, halo);
        for k in 0..ny as isize {
            let mut j0 = 0usize;
            while j0 < nx {
                let j1 = (j0 + strip).min(nx);
                // factorise the tridiagonal block [j0, j1) on row k:
                //   b_i = diag(j,k), c_i = a_{i+1} = -kx(j+1,k)
                let mut prev_cp = S::ZERO;
                for (i, j) in (j0..j1).enumerate() {
                    let j = j as isize;
                    let b = diag.at(j, k);
                    let a = if i == 0 { S::ZERO } else { -kx.at(j, k) };
                    let denom = b - a * prev_cp;
                    debug_assert!(denom > S::ZERO, "block pivot lost positivity");
                    let m = S::ONE / denom;
                    // superdiagonal toward j+1 (zero on the strip's last cell)
                    let c = if j as usize + 1 < j1 {
                        -kx.at(j + 1, k)
                    } else {
                        S::ZERO
                    };
                    let cpv = c * m;
                    cp.set(j, k, cpv);
                    minv.set(j, k, m);
                    sub.set(j, k, a);
                    prev_cp = cpv;
                }
                j0 = j1;
            }
        }
        BlockJacobi {
            strip,
            cp,
            minv,
            sub,
        }
    }

    /// Strip length.
    pub fn strip(&self) -> usize {
        self.strip
    }

    /// `z = M⁻¹ r` over the tile interior: Thomas forward/backward sweep
    /// per strip, strips independent (and row sweeps cache-contiguous).
    ///
    /// Rows couple only through `Kx` *within* a strip, never across rows,
    /// so the row sweep is embarrassingly parallel: above
    /// [`crate::runtime::par_threshold`] each worker solves a disjoint
    /// block of rows in place, with no reduction and therefore trivially
    /// bit-identical results at every thread count.
    pub fn apply(&self, r: &Field2<S>, z: &mut Field2<S>, bounds: &TileBounds) {
        let (nx, _) = bounds.tile();
        vector::for_rows(z, bounds, 0, |k, zr| {
            let rr = r.row(k, 0, nx as isize);
            let cpr = self.cp.row(k, 0, nx as isize);
            let mr = self.minv.row(k, 0, nx as isize);
            let sr = self.sub.row(k, 0, nx as isize);
            let mut j0 = 0usize;
            while j0 < nx {
                let j1 = (j0 + self.strip).min(nx);
                // forward substitution into z
                zr[j0] = rr[j0] * mr[j0];
                for j in j0 + 1..j1 {
                    zr[j] = (rr[j] - sr[j] * zr[j - 1]) * mr[j];
                }
                // backward substitution in place
                for j in (j0..j1 - 1).rev() {
                    zr[j] -= cpr[j] * zr[j + 1];
                }
                j0 = j1;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Extent2D, Field2D, Mesh2D};

    fn crooked_op(n: usize, halo: usize) -> TileOperator {
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, halo);
        let mut energy = Field2D::new(n, n, halo);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, halo);
        TileOperator::new(coeffs, TileBounds::serial(n, n))
    }

    /// Dense per-strip reference solve (plain Gaussian elimination).
    fn dense_block_solve(op: &TileOperator, r: &Field2D, strip: usize) -> Field2D {
        let (nx, ny) = op.bounds.tile();
        let mut diag = Field2D::new(nx, ny, 1);
        op.diagonal_into(&mut diag, 0);
        let kx = &op.coeffs.kx;
        let mut z = Field2D::new(nx, ny, 1);
        for k in 0..ny as isize {
            let mut j0 = 0usize;
            while j0 < nx {
                let j1 = (j0 + strip).min(nx);
                let m = j1 - j0;
                // dense m x m system
                let mut mat = vec![vec![0.0; m]; m];
                let mut rhs = vec![0.0; m];
                for i in 0..m {
                    let j = (j0 + i) as isize;
                    mat[i][i] = diag.at(j, k);
                    if i > 0 {
                        mat[i][i - 1] = -kx.at(j, k);
                        mat[i - 1][i] = -kx.at(j, k);
                    }
                    rhs[i] = r.at(j, k);
                }
                // gaussian elimination without pivoting (SPD)
                for col in 0..m {
                    let pivot = mat[col].clone();
                    for row in col + 1..m {
                        let f = mat[row][col] / pivot[col];
                        for (x, &pv) in mat[row].iter_mut().zip(&pivot).skip(col) {
                            *x -= f * pv;
                        }
                        rhs[row] -= f * rhs[col];
                    }
                }
                for row in (0..m).rev() {
                    let mut acc = rhs[row];
                    for c2 in row + 1..m {
                        acc -= mat[row][c2] * rhs[c2];
                    }
                    rhs[row] = acc / mat[row][row];
                }
                for (i, &v) in rhs.iter().enumerate() {
                    z.set((j0 + i) as isize, k, v);
                }
                j0 = j1;
            }
        }
        z
    }

    #[test]
    fn thomas_matches_dense_reference() {
        let op = crooked_op(13, 1); // 13 forces truncated strips (13 = 3*4 + 1)
        let bj = BlockJacobi::setup(&op, 4);
        let mut r = Field2D::new(13, 13, 1);
        for k in 0..13isize {
            for j in 0..13isize {
                r.set(j, k, ((j * 5 + k * 3) % 7) as f64 - 3.0);
            }
        }
        let mut z = Field2D::new(13, 13, 1);
        bj.apply(&r, &mut z, &op.bounds);
        let zref = dense_block_solve(&op, &r, 4);
        for k in 0..13isize {
            for j in 0..13isize {
                assert!(
                    (z.at(j, k) - zref.at(j, k)).abs() < 1e-12,
                    "block solve mismatch at ({j},{k}): {} vs {}",
                    z.at(j, k),
                    zref.at(j, k)
                );
            }
        }
    }

    #[test]
    fn block_solve_is_exact_on_single_row_problems() {
        // a 4-cell-wide single-row mesh: the whole matrix is one 4x4
        // tridiagonal block, so M == A and M^{-1}(A x) == x
        use tea_mesh::{Coefficient, Decomposition2D};
        let d = Decomposition2D::with_grid(4, 1, 1, 1);
        let mesh = Mesh2D::new(&d, 0, Extent2D::unit());
        let density = Field2D::filled(4, 1, 1, 1.0);
        let coeffs =
            Coefficients::assemble(&mesh, &density, Coefficient::Conductivity, 0.7, 0.7, 1);
        let op = TileOperator::new(coeffs, TileBounds::serial(4, 1));
        let bj = BlockJacobi::setup(&op, 4);
        let mut x = Field2D::new(4, 1, 1);
        for j in 0..4isize {
            x.set(j, 0, (j * j) as f64 - 1.0);
        }
        let mut ax = Field2D::new(4, 1, 1);
        let mut t = SolveTrace::new("t");
        op.apply(&x, &mut ax, 0, &mut t);
        let mut z = Field2D::new(4, 1, 1);
        bj.apply(&ax, &mut z, &op.bounds);
        for j in 0..4isize {
            assert!(
                (z.at(j, 0) - x.at(j, 0)).abs() < 1e-12,
                "exact block inverse failed at {j}"
            );
        }
    }

    #[test]
    fn preconditioners_are_spd_on_random_vectors() {
        // <M^{-1}r, r> > 0 for r != 0 and symmetric:
        // <M^{-1}a, b> == <a, M^{-1}b>
        let op = crooked_op(12, 1);
        for kind in [PreconKind::Diagonal, PreconKind::BlockJacobi] {
            let m = Preconditioner::setup(kind, &op, 0);
            let mut t = SolveTrace::new("t");
            let mut a = Field2D::new(12, 12, 1);
            let mut b = Field2D::new(12, 12, 1);
            for k in 0..12isize {
                for j in 0..12isize {
                    a.set(j, k, ((j * 3 + k) % 5) as f64 - 2.0);
                    b.set(j, k, ((j + 7 * k) % 3) as f64 - 1.0);
                }
            }
            let mut ma = Field2D::new(12, 12, 1);
            let mut mb = Field2D::new(12, 12, 1);
            m.apply(&a, &mut ma, &op.bounds, 0, &mut t);
            m.apply(&b, &mut mb, &op.bounds, 0, &mut t);
            let sym_l = ma.interior_dot(&b);
            let sym_r = a.interior_dot(&mb);
            assert!(
                (sym_l - sym_r).abs() <= 1e-12 * sym_l.abs().max(1.0),
                "{kind:?} not symmetric: {sym_l} vs {sym_r}"
            );
            assert!(ma.interior_dot(&a) > 0.0, "{kind:?} not positive definite");
        }
    }

    #[test]
    fn diagonal_preconditioner_inverts_diagonal() {
        let op = crooked_op(8, 1);
        let m = Preconditioner::setup(PreconKind::Diagonal, &op, 0);
        let mut t = SolveTrace::new("t");
        let r = Field2D::filled(8, 8, 1, 1.0);
        let mut z = Field2D::new(8, 8, 1);
        m.apply(&r, &mut z, &op.bounds, 0, &mut t);
        let mut d = Field2D::new(8, 8, 1);
        op.diagonal_into(&mut d, 0);
        for k in 0..8isize {
            for j in 0..8isize {
                assert!((z.at(j, k) * d.at(j, k) - 1.0).abs() < 1e-14);
            }
        }
        assert_eq!(t.precon_ops.total(), 1);
    }

    #[test]
    fn fused_recurrence_matches_apply_then_scale_add_bitwise() {
        let op = crooked_op(11, 1); // odd size exercises lane remainders
        let (a, b) = (0.8191061549414237, 0.3066128620687435);
        for kind in [
            PreconKind::None,
            PreconKind::Diagonal,
            PreconKind::BlockJacobi,
        ] {
            let m = Preconditioner::setup(kind, &op, 0);
            let mut t = SolveTrace::new("t");
            let mut rr = Field2D::new(11, 11, 1);
            let mut sd = Field2D::new(11, 11, 1);
            for k in 0..11isize {
                for j in 0..11isize {
                    rr.set(j, k, ((j * 5 + k * 3) % 13) as f64 / 7.0 - 0.9);
                    sd.set(j, k, ((j - 2 * k) % 5) as f64 / 3.0);
                }
            }
            // unfused reference: z = M^{-1} rr, then sd = a sd + b z
            let mut want = sd.clone();
            let mut tmp = Field2D::new(11, 11, 1);
            m.apply(&rr, &mut tmp, &op.bounds, 0, &mut t);
            crate::vector::scale_add(&mut want, a, b, &tmp, &op.bounds, 0, &mut t);

            let fused = m.fused_recurrence(&mut sd, &rr, a, b, &op.bounds, 0, &mut t);
            if kind == PreconKind::BlockJacobi {
                assert!(!fused, "block solves must refuse to fuse");
                continue;
            }
            assert!(fused, "{kind:?} must fuse");
            for k in 0..11isize {
                for j in 0..11isize {
                    assert_eq!(
                        sd.at(j, k).to_bits(),
                        want.at(j, k).to_bits(),
                        "{kind:?} ({j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn identity_copies() {
        let op = crooked_op(6, 1);
        let m = Preconditioner::setup(PreconKind::None, &op, 0);
        assert!(m.is_identity());
        let mut t = SolveTrace::new("t");
        let mut r = Field2D::new(6, 6, 1);
        r.set(2, 3, 9.0);
        let mut z = Field2D::new(6, 6, 1);
        m.apply(&r, &mut z, &op.bounds, 0, &mut t);
        assert_eq!(z.at(2, 3), 9.0);
    }

    #[test]
    #[should_panic]
    fn block_jacobi_rejects_extended_sweeps() {
        let op = crooked_op(8, 2);
        let m = Preconditioner::setup(PreconKind::BlockJacobi, &op, 0);
        let mut t = SolveTrace::new("t");
        let r = Field2D::new(8, 8, 2);
        let mut z = Field2D::new(8, 8, 2);
        m.apply(&r, &mut z, &op.bounds, 1, &mut t);
    }

    #[test]
    fn truncated_strips_cover_all_lengths() {
        // nx = 7 with strip 4 gives strips of 4 and 3; nx = 5 gives 4+1;
        // nx = 6 gives 4+2 — all must still match the dense reference
        for nx in [5usize, 6, 7] {
            let p = crooked_pipe(16);
            let mesh = Mesh2D::serial(nx, 4, p.extent);
            let mut density = Field2D::new(nx, 4, 1);
            let mut energy = Field2D::new(nx, 4, 1);
            p.apply_states(&mesh, &mut density, &mut energy);
            let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, 1.0, 1.0, 1);
            let op = TileOperator::new(coeffs, TileBounds::serial(nx, 4));
            let bj = BlockJacobi::setup(&op, 4);
            let mut r = Field2D::new(nx, 4, 1);
            for k in 0..4isize {
                for j in 0..nx as isize {
                    r.set(j, k, (j + k + 1) as f64);
                }
            }
            let mut z = Field2D::new(nx, 4, 1);
            bj.apply(&r, &mut z, &op.bounds);
            let zref = dense_block_solve(&op, &r, 4);
            for k in 0..4isize {
                for j in 0..nx as isize {
                    assert!(
                        (z.at(j, k) - zref.at(j, k)).abs() < 1e-12,
                        "nx={nx} ({j},{k})"
                    );
                }
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(PreconKind::None.label(), "none");
        assert_eq!(PreconKind::Diagonal.label(), "jac_diag");
        assert_eq!(PreconKind::BlockJacobi.label(), "jac_block");
    }
}
