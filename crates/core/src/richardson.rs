//! Preconditioned Richardson iteration with Chebyshev-estimated damping
//! — the solver added *after* the [`crate::api::IterativeSolver`]
//! redesign, purely through the trait + registry, to prove the design
//! space is extensible without driver surgery.
//!
//! The method is stationary first-order Richardson,
//!
//! ```text
//! u ← u + ω M⁻¹ (b − A·u)
//! ```
//!
//! which converges for SPD `M⁻¹A` whenever `0 < ω < 2/λmax` and fastest
//! at the Chebyshev-optimal damping `ω* = 2/(λmin + λmax)`, where the
//! error contracts per sweep by `(κ−1)/(κ+1)` with `κ = λmax/λmin`.
//! The spectrum bounds come from the same short plain-CG + Lanczos
//! prelude the Chebyshev and CPPCG solvers use (paper §III.D), so like
//! them the iteration itself needs **no dot products** — one depth-1
//! halo exchange and one stencil sweep per iteration, with a global
//! reduction only at the periodic convergence check.
//!
//! In the design space it sits between Jacobi (ω = 1, M = diag A) and
//! Chebyshev (which replaces the fixed ω by the optimal polynomial):
//! the communication profile of Chebyshev with the convergence rate of
//! a stationary method.

use crate::api::{IterativeSolver, SolveContext, SolverParams};
use crate::cg::cg_solve_recording;
use crate::eigen::{estimate_from_cg, EigenEstimate};
use crate::precon::{PreconKind, Preconditioner};
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveStatus, SolveTrace};
use crate::vector;
use tea_comms::Communicator;
use tea_mesh::Field2D;

/// Options for the Richardson solver.
#[derive(Debug, Clone, Copy)]
pub struct RichardsonOpts {
    /// Plain-CG iterations used to estimate the spectrum of `M⁻¹A`.
    pub presteps: u64,
    /// Safety widening of the Lanczos bounds (a too-small `λmax`
    /// estimate would overdamp past the stability limit).
    pub eigen_safety: f64,
    /// Convergence-check cadence in iterations (each check is one
    /// global reduction).
    pub check_interval: u64,
}

impl Default for RichardsonOpts {
    fn default() -> Self {
        RichardsonOpts {
            presteps: 30,
            eigen_safety: 0.1,
            check_interval: 10,
        }
    }
}

/// Preconditioned Richardson iteration as an
/// [`IterativeSolver`] (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct Richardson {
    kind: PreconKind,
    rich: RichardsonOpts,
    opts: SolveOpts,
    precon: Option<Preconditioner>,
    hint: Option<EigenEstimate>,
    last_est: Option<EigenEstimate>,
}

impl Richardson {
    /// A Richardson solver with preconditioner `kind` and options
    /// `rich`.
    pub fn new(kind: PreconKind, rich: RichardsonOpts) -> Self {
        Richardson {
            kind,
            rich,
            opts: SolveOpts::default(),
            precon: None,
            hint: None,
            last_est: None,
        }
    }

    /// Registry factory: consumes `precon`, `presteps`, `eigen_safety`
    /// and `check_interval`.
    pub fn from_params(params: &SolverParams) -> Self {
        Richardson::new(
            params.precon,
            RichardsonOpts {
                presteps: params.presteps,
                eigen_safety: params.eigen_safety,
                check_interval: params.check_interval,
            },
        )
    }
}

impl Richardson {
    /// The one place the preconditioner is assembled for this solver
    /// (used by both `prepare` and the prepare-on-demand path).
    fn assemble_precon(&self, ctx: &SolveContext<'_>) -> Preconditioner {
        Preconditioner::setup(self.kind, ctx.tile.op, 0)
    }
}

impl IterativeSolver for Richardson {
    fn name(&self) -> &'static str {
        "richardson"
    }

    fn label(&self) -> String {
        "Richardson".into()
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.precon = Some(self.assemble_precon(ctx));
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.precon.is_none() {
            self.precon = Some(self.assemble_precon(ctx));
        }
        let precon = self.precon.as_ref().expect("just prepared");
        let result = richardson_solve(ctx.tile, u, b, precon, ws, self.opts, self.rich, self.hint);
        self.last_est = result
            .trace
            .eigen_bounds
            .map(|(min, max)| EigenEstimate { min, max });
        trace.merge(&result.trace);
        result
    }

    fn set_eigen_hint(&mut self, hint: Option<EigenEstimate>) {
        self.hint = hint;
    }

    fn last_eigen_estimate(&self) -> Option<EigenEstimate> {
        self.last_est
    }
}

/// The solve engine (kept free-standing and generic like the other
/// engines so unit tests can drive it directly; the public way in is
/// the [`Richardson`] struct).
#[allow(clippy::too_many_arguments)]
fn richardson_solve<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    precon: &Preconditioner,
    ws: &mut Workspace,
    opts: SolveOpts,
    rich: RichardsonOpts,
    hint: Option<EigenEstimate>,
) -> SolveResult {
    let bounds = &tile.op.bounds;

    // Phase 1: CG presteps for the spectrum of M⁻¹A, keeping the
    // partial solution (exactly the Chebyshev/CPPCG prelude).
    let (pre, coeffs) = cg_solve_recording(tile, u, b, precon, ws, opts, rich.presteps.max(1));
    if pre.converged || pre.status.is_diverged() || pre.status.is_cancelled() {
        return pre;
    }
    let mut trace = pre.trace;
    trace.solver = "Richardson".into();
    // a pinned estimate (session replay of identical input) skips only
    // the Lanczos analysis; the presteps above still advanced u
    let est = hint.unwrap_or_else(|| {
        let (al, be) = coeffs.for_lanczos();
        estimate_from_cg(al, be, rich.eigen_safety)
    });
    trace.eigen_bounds = Some((est.min, est.max));
    let omega = 2.0 / (est.min + est.max);

    // Phase 2: damped stationary iteration from the CG-advanced iterate.
    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);
    precon.apply(&ws.r, &mut ws.z, bounds, 0, &mut trace);

    let initial_residual = pre.initial_residual;
    let target = opts.eps * initial_residual;
    let check_interval = rich.check_interval.max(1); // 0 would divide by zero
    let mut iterations = pre.iterations;
    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = pre.final_residual;

    while iterations < opts.max_iters {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke(iterations, u, &mut ws.r);

        // u += ω z ; refresh r = b - A u and z = M⁻¹ r
        vector::axpy(u, omega, &ws.z, bounds, 0, &mut trace);
        tile.exchange(&mut [u], 1, &mut trace);
        tile.op.residual(u, b, &mut ws.r, 0, &mut trace);
        precon.apply(&ws.r, &mut ws.z, bounds, 0, &mut trace);

        // periodic convergence check: the only global communication
        let since_pre = iterations - pre.iterations;
        if since_pre % check_interval == 0 {
            let rr_local = vector::dot_local(&ws.r, &ws.r, bounds, &mut trace);
            let rr = tile.reduce_sum(rr_local, &mut trace);
            if !rr.is_finite() {
                status = SolveStatus::Diverged {
                    iteration: iterations,
                };
                final_residual = f64::NAN;
                break;
            }
            final_residual = rr.max(0.0).sqrt();
            if final_residual <= target {
                converged = true;
                status = SolveStatus::Converged;
                break;
            }
        }
    }
    if !converged && !status.is_diverged() && !status.is_cancelled() {
        let rr_local = vector::dot_local(&ws.r, &ws.r, bounds, &mut trace);
        let rr = tile.reduce_sum(rr_local, &mut trace);
        if !rr.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
        } else {
            final_residual = rr.max(0.0).sqrt();
            converged = final_residual <= target;
            if converged {
                status = SolveStatus::Converged;
            }
        }
    }

    SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::DynTile;
    use crate::builder::crooked_pipe_system;
    use crate::ops::TileOperator;
    use tea_comms::{HaloLayout, SerialComm};
    use tea_mesh::Decomposition2D;

    fn serial_problem(n: usize) -> (TileOperator, Field2D) {
        crooked_pipe_system(n, 0.04, 1)
    }

    #[test]
    fn richardson_converges_on_crooked_pipe() {
        let n = 24;
        let (op, b) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::new(&tile);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = b.clone();
        let rich = RichardsonOpts {
            presteps: 8, // few enough that the CG prelude cannot finish the job
            ..Default::default()
        };
        let mut solver = Richardson::new(PreconKind::Diagonal, rich);
        let mut acc = SolveTrace::new("run");
        solver.prepare(
            &ctx,
            &SolveOpts {
                eps: 1e-8,
                max_iters: 100_000,
            },
        );
        let res = solver.solve(&ctx, &mut u, &b, &mut ws, &mut acc);
        assert!(res.converged, "Richardson must converge: {res:?}");
        let mut t = SolveTrace::new("check");
        let mut r = Field2D::new(n, n, 1);
        op.residual(&u, &b, &mut r, 0, &mut t);
        assert!(r.interior_norm() / b.interior_norm() < 1e-6);
        // the damping came from a recorded eigenvalue estimate
        assert!(res.trace.eigen_bounds.is_some());
        // protocol merged into the caller's accumulator
        assert_eq!(acc.outer_iterations, res.trace.outer_iterations);
    }

    #[test]
    fn richardson_is_reduction_avoiding() {
        // between checks the iteration must not communicate: reductions
        // grow by ~1 per check_interval iterations, not per iteration
        let n = 24;
        let (op, b) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::new(&tile);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = b.clone();
        let rich = RichardsonOpts {
            presteps: 8,
            ..Default::default()
        };
        let mut solver = Richardson::new(PreconKind::Diagonal, rich);
        solver.prepare(
            &ctx,
            &SolveOpts {
                eps: 1e-8,
                max_iters: 100_000,
            },
        );
        let mut acc = SolveTrace::new("run");
        let res = solver.solve(&ctx, &mut u, &b, &mut ws, &mut acc);
        assert!(res.converged);
        let post = res.trace.outer_iterations - solver.rich.presteps;
        // presteps cost 2 reductions each (CG); afterwards ~1 per 10 its
        let cheby_like_budget =
            1 + 2 * solver.rich.presteps + post / solver.rich.check_interval + 2;
        assert!(
            res.trace.reductions <= cheby_like_budget,
            "reductions {} exceed the reduction-avoiding budget {}",
            res.trace.reductions,
            cheby_like_budget
        );
    }

    #[test]
    fn zero_rhs_immediate() {
        let n = 8;
        let (op, _b) = serial_problem(n);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile: DynTile<'_> = Tile::new(&op, &layout, comm.as_dyn());
        let ctx = SolveContext::new(&tile);
        let mut ws = Workspace::new(n, n, 1);
        let zero = Field2D::new(n, n, 1);
        let mut u = Field2D::new(n, n, 1);
        let mut solver = Richardson::new(PreconKind::None, RichardsonOpts::default());
        let mut acc = SolveTrace::new("run");
        let res = solver.solve(&ctx, &mut u, &zero, &mut ws, &mut acc);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
    }
}
