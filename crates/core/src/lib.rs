//! # tea-core — matrix-free iterative sparse linear solvers
//!
//! The primary contribution of the TeaLeaf paper, reimplemented in Rust:
//! matrix-free 5-point diffusion operators ([`ops`]), the solver family
//! (Jacobi, CG, Chebyshev, CPPCG — [`jacobi`], [`cg`], [`chebyshev`],
//! [`ppcg`]), preconditioners including the zero-communication 4×1-strip
//! block-Jacobi ([`precon`]), Lanczos/Sturm eigenvalue estimation
//! ([`eigen`]), and the matrix-powers deep-halo schedule inside CPPCG.
//!
//! Every solve produces a [`SolveTrace`]: the machine-independent
//! protocol (stencil sweeps by extension, halo exchanges by depth, global
//! reductions) that `tea-perfmodel` replays on modelled petascale
//! machines to regenerate the paper's strong-scaling figures.
//!
//! The design space is a first-class API: every method is a
//! config-carrying struct implementing [`IterativeSolver`], resolvable
//! by name from the [`SolverRegistry`], and the [`Solve`] builder is
//! the one-expression way in.
//!
//! The hot kernel rows run as explicit-width lane kernels
//! ([`vector::lanes`], `Scalar::LANES` elements per group, safe
//! `chunks_exact` code only) that are bit-identical to the scalar f64
//! reference ([`vector::scalar_ref`]) — the reference itself is what
//! executes at f64 precision with one worker thread, so the
//! determinism contract is anchored to the original scalar loop.
//!
//! ## Example: block-Jacobi-preconditioned CG on the crooked pipe
//!
//! ```
//! use tea_core::{crooked_pipe_system, PreconKind, Solve};
//!
//! let (op, b) = crooked_pipe_system(24, 0.04, 1);
//! let mut u = b.clone(); // TeaLeaf warm start
//! let result = Solve::on(&op)
//!     .with_solver("cg")
//!     .precon(PreconKind::BlockJacobi)
//!     .run(&mut u, &b)
//!     .expect("cg is registered");
//! assert!(result.converged);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod builder;
pub mod cg;
pub mod cg_fused;
pub mod chebyshev;
pub mod control;
pub mod eigen;
pub mod jacobi;
pub mod mixed;
pub mod ops;
pub mod ops3d;
pub mod ppcg;
pub mod precon;
pub mod registry;
pub mod richardson;
pub mod runtime;
pub mod session;
pub mod solver;
pub mod sync;
pub mod trace;
pub mod vector;

pub use api::{
    Assembly, DynTile, IterativeSolver, Precision, SolveContext, SolverError, SolverMeta,
    SolverParams,
};
pub use builder::{crooked_pipe_system, Solve};
pub use cg::{cg_solve_recording, Cg, CgCoefficients};
pub use cg_fused::CgFused;
pub use chebyshev::{cg_iteration_bound, ChebyConstants, ChebyOpts, Chebyshev};
pub use control::{SolveControls, SolveProbe, StopHandle};
pub use eigen::{
    estimate_from_cg, lanczos_tridiagonal, sturm_count, tridiag_all_eigenvalues,
    tridiag_extreme_eigenvalues, EigenError, EigenEstimate,
};
pub use jacobi::Jacobi;
pub use mixed::{solver_for_precision, CgF32, MixedCg, MixedChebyshev, MixedPpcg, MixedRichardson};
pub use ops::{TileBounds, TileOperator};
pub use ops3d::{cg_solve_3d, jacobi_solve_3d, TileOperator3D};
pub use ppcg::{Ppcg, PpcgOpts};
pub use precon::{BlockJacobi, PreconKind, Preconditioner, DEFAULT_BLOCK_STRIP};
pub use registry::{SolverFactory, SolverRegistry};
pub use richardson::{Richardson, RichardsonOpts};
pub use runtime::{num_threads, par_threshold, set_num_threads, set_par_threshold, PAR_THRESHOLD};
pub use session::{CacheStats, PreparedSolve, SessionSpec, SetupCache, SetupKey, SolveSession};
pub use solver::{SolveOpts, Tile, Workspace};
pub use sync::lock_tolerant;
pub use trace::{KernelCounts, SolveResult, SolveStatus, SolveTrace};
