//! # tea-core — matrix-free iterative sparse linear solvers
//!
//! The primary contribution of the TeaLeaf paper, reimplemented in Rust:
//! matrix-free 5-point diffusion operators ([`ops`]), the solver family
//! (Jacobi, CG, Chebyshev, CPPCG — [`jacobi`], [`cg`], [`chebyshev`],
//! [`ppcg`]), preconditioners including the zero-communication 4×1-strip
//! block-Jacobi ([`precon`]), Lanczos/Sturm eigenvalue estimation
//! ([`eigen`]), and the matrix-powers deep-halo schedule inside CPPCG.
//!
//! Every solve produces a [`SolveTrace`]: the machine-independent
//! protocol (stencil sweeps by extension, halo exchanges by depth, global
//! reductions) that `tea-perfmodel` replays on modelled petascale
//! machines to regenerate the paper's strong-scaling figures.
//!
//! ## Example: CG on the crooked pipe
//!
//! ```
//! use tea_core::{
//!     cg_solve, PreconKind, Preconditioner, SolveOpts, Tile, TileBounds,
//!     TileOperator, Workspace,
//! };
//! use tea_comms::{HaloLayout, SerialComm};
//! use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D};
//!
//! let n = 24;
//! let problem = crooked_pipe(n);
//! let mesh = Mesh2D::serial(n, n, problem.extent);
//! let mut density = Field2D::new(n, n, 1);
//! let mut energy = Field2D::new(n, n, 1);
//! problem.apply_states(&mesh, &mut density, &mut energy);
//! let (rx, ry) = timestep_scalings(&mesh, 0.04);
//! let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, 1);
//! let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
//!
//! // b = u0 = density * energy (TeaLeaf's right-hand side), warm start u = b
//! let mut b = Field2D::new(n, n, 1);
//! for k in 0..n as isize {
//!     for j in 0..n as isize {
//!         b.set(j, k, density.at(j, k) * energy.at(j, k));
//!     }
//! }
//! let mut u = b.clone();
//!
//! let decomp = Decomposition2D::with_grid(n, n, 1, 1);
//! let layout = HaloLayout::new(&decomp, 0);
//! let comm = SerialComm::new();
//! let tile = Tile::new(&op, &layout, &comm);
//! let precon = Preconditioner::setup(PreconKind::BlockJacobi, &op, 0);
//! let mut ws = Workspace::new(n, n, 1);
//! let result = cg_solve(&tile, &mut u, &b, &precon, &mut ws, SolveOpts::default());
//! assert!(result.converged);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cg;
pub mod cg_fused;
pub mod chebyshev;
pub mod eigen;
pub mod jacobi;
pub mod ops;
pub mod ops3d;
pub mod ppcg;
pub mod precon;
pub mod runtime;
pub mod solver;
pub mod trace;
pub mod vector;

pub use cg::{cg_solve, cg_solve_recording, CgCoefficients};
pub use cg_fused::cg_fused_solve;
pub use chebyshev::{cg_iteration_bound, chebyshev_solve, ChebyConstants, ChebyOpts};
pub use eigen::{
    estimate_from_cg, lanczos_tridiagonal, sturm_count, tridiag_all_eigenvalues,
    tridiag_extreme_eigenvalues, EigenEstimate,
};
pub use jacobi::jacobi_solve;
pub use ops::{TileBounds, TileOperator};
pub use ops3d::{cg_solve_3d, jacobi_solve_3d, TileOperator3D};
pub use ppcg::{ppcg_solve, PpcgOpts};
pub use precon::{BlockJacobi, PreconKind, Preconditioner, DEFAULT_BLOCK_STRIP};
pub use runtime::{num_threads, par_threshold, set_num_threads, set_par_threshold, PAR_THRESHOLD};
pub use solver::{SolveOpts, Tile, Workspace};
pub use trace::{KernelCounts, SolveResult, SolveTrace};
