//! [`Solve`] — the one-expression entry point into the solver design
//! space, and the small problem-assembly helper its doctests and the
//! benches share.

use crate::api::{DynTile, Precision, SolveContext, SolverError, SolverParams};
use crate::mixed::solver_for_precision;
use crate::ops::{TileBounds, TileOperator};
use crate::precon::PreconKind;
use crate::registry::SolverRegistry;
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveTrace};
use tea_comms::{Communicator, HaloLayout, SerialComm};
use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D};

/// Builder for one linear solve: pick a solver by registry name, adjust
/// options, run. The one documented way in for single-tile callers.
///
/// ```
/// use tea_core::{crooked_pipe_system, Solve};
///
/// let (op, b) = crooked_pipe_system(32, 0.04, 8);
/// let mut u = b.clone();
/// let result = Solve::on(&op)
///     .with_solver("ppcg")
///     .halo_depth(8)
///     .eps(1e-12)
///     .run(&mut u, &b)
///     .expect("ppcg is a registered solver");
/// assert!(result.converged);
/// ```
///
/// Distributed callers that already hold a [`Tile`] and a [`Workspace`]
/// use [`Solve::run_with`]; everything else (registry resolution,
/// parameterisation, preparation) is identical.
#[derive(Debug, Clone)]
pub struct Solve<'a> {
    op: &'a TileOperator,
    registry: Option<&'a SolverRegistry>,
    solver: String,
    precision: Option<Precision>,
    opts: SolveOpts,
    params: SolverParams,
}

impl<'a> Solve<'a> {
    /// Starts a solve on `op` with the default solver (CG) and options.
    pub fn on(op: &'a TileOperator) -> Self {
        Solve {
            op,
            registry: None,
            solver: "cg".into(),
            precision: None,
            opts: SolveOpts::default(),
            params: SolverParams::default(),
        }
    }

    /// Selects the solver by registry name or alias (default `"cg"`).
    pub fn with_solver(mut self, name: impl Into<String>) -> Self {
        self.solver = name.into();
        self
    }

    /// Resolves names against `registry` instead of
    /// [`SolverRegistry::builtin`] (e.g. one with `tea-amg` or custom
    /// methods registered).
    pub fn with_registry(mut self, registry: &'a SolverRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Relative residual-reduction target (TeaLeaf `tl_eps`).
    pub fn eps(mut self, eps: f64) -> Self {
        self.opts.eps = eps;
        self
    }

    /// Outer-iteration cap (TeaLeaf `tl_max_iters`).
    pub fn max_iters(mut self, max_iters: u64) -> Self {
        self.opts.max_iters = max_iters;
        self
    }

    /// Preconditioner for the methods that accept one.
    pub fn precon(mut self, kind: PreconKind) -> Self {
        self.params.precon = kind;
        self
    }

    /// Arithmetic-precision override. Unset, the solver name is taken
    /// verbatim. [`Precision::Mixed`] re-routes `cg`/`cg_fused` to
    /// `mixed_cg` and `ppcg` to `mixed_ppcg`; [`Precision::F32`] routes
    /// the CG family to `cg_f32`; [`Precision::F64`] demotes a
    /// reduced-precision name back to its `f64` family solver. Methods
    /// without a registered variant make [`Solve::run`] fail with
    /// [`SolverError::PrecisionUnsupported`].
    ///
    /// ```
    /// use tea_core::{crooked_pipe_system, Precision, Solve};
    ///
    /// let (op, b) = crooked_pipe_system(32, 0.04, 1);
    /// let mut u = b.clone();
    /// let result = Solve::on(&op)
    ///     .precision(Precision::Mixed) // cg -> mixed_cg
    ///     .eps(1e-10)
    ///     .run(&mut u, &b)
    ///     .expect("mixed variant is registered");
    /// assert!(result.converged);
    /// ```
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = Some(precision);
        self
    }

    /// Matrix-powers halo depth (PPCG). The operator must be assembled
    /// at least this deep.
    pub fn halo_depth(mut self, depth: usize) -> Self {
        self.params.halo_depth = depth;
        self
    }

    /// Inner Chebyshev smoothing steps per outer iteration (PPCG).
    pub fn inner_steps(mut self, steps: usize) -> Self {
        self.params.inner_steps = steps;
        self
    }

    /// Eigenvalue-estimation CG presteps (Chebyshev, PPCG, Richardson).
    pub fn presteps(mut self, presteps: u64) -> Self {
        self.params.presteps = presteps;
        self
    }

    /// Replaces the full parameter bag in one call.
    pub fn params(mut self, params: SolverParams) -> Self {
        self.params = params;
        self
    }

    /// Replaces the full convergence options in one call.
    pub fn opts(mut self, opts: SolveOpts) -> Self {
        self.opts = opts;
        self
    }

    /// Builds the configured solver without running it (for callers
    /// that drive [`crate::IterativeSolver`] directly, e.g. benches
    /// reusing one instance across repeated solves).
    ///
    /// # Errors
    /// [`SolverError::UnknownSolver`] if the name resolves against
    /// neither the chosen registry nor the builtin one.
    pub fn build(&self) -> Result<Box<dyn crate::IterativeSolver>, SolverError> {
        static BUILTIN: std::sync::OnceLock<SolverRegistry> = std::sync::OnceLock::new();
        let registry = self
            .registry
            .unwrap_or_else(|| BUILTIN.get_or_init(SolverRegistry::builtin));
        let name = match self.precision {
            Some(p) => solver_for_precision(&self.solver, p, registry)?,
            None => self.solver.clone(),
        };
        registry.create(&name, &self.params)
    }

    /// Splits the builder into its reusable half: a
    /// [`crate::SolveSession`] that owns a clone of the operator plus
    /// the tile plumbing, workspace and solver instance `run` would
    /// have allocated per call, and keeps them alive across solves.
    /// Callers serving repeated right-hand sides over one operator
    /// should prefer this to calling [`Solve::run`] in a loop.
    ///
    /// # Errors
    /// [`SolverError::UnknownSolver`] if the name resolves against
    /// neither the chosen registry nor the builtin one.
    pub fn session(&self) -> Result<crate::SolveSession, SolverError> {
        let spec = crate::SessionSpec {
            solver: self.solver.clone(),
            precision: self.precision,
            opts: self.opts,
            params: self.params.clone(),
        };
        match self.registry {
            Some(r) => crate::SolveSession::with_registry(self.op.clone(), &spec, r),
            None => crate::SolveSession::build(self.op.clone(), &spec),
        }
    }

    /// Runs the solve on a single serial tile, allocating the workspace
    /// internally. `u` enters as the initial guess and exits as the
    /// solution.
    ///
    /// # Errors
    /// [`SolverError::UnknownSolver`] for an unregistered solver name.
    pub fn run(&self, u: &mut Field2D, b: &Field2D) -> Result<SolveResult, SolverError> {
        let mut solver = self.build()?;
        let (nx, ny) = self.op.bounds.tile();
        let decomp = Decomposition2D::with_grid(nx, ny, 1, 1);
        let layout = HaloLayout::new(&decomp, 0);
        let comm = SerialComm::new();
        let tile: DynTile<'_> = Tile::new(self.op, &layout, comm.as_dyn());
        let ctx = SolveContext::new(&tile);
        let mut ws = Workspace::new(nx, ny, solver.halo_depth());
        solver.prepare(&ctx, &self.opts);
        let mut trace = SolveTrace::new(solver.label());
        Ok(solver.solve(&ctx, u, b, &mut ws, &mut trace))
    }

    /// Runs the solve on an existing tile (serial or decomposed) with a
    /// caller-owned workspace, for callers that manage their own
    /// decomposition. Ignores the builder's operator in favour of
    /// `tile.op`.
    ///
    /// # Errors
    /// [`SolverError::UnknownSolver`] for an unregistered solver name.
    pub fn run_with<C: Communicator + ?Sized>(
        &self,
        tile: &Tile<'_, C>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
    ) -> Result<SolveResult, SolverError> {
        let mut solver = self.build()?;
        assert!(
            ws.halo() >= solver.halo_depth(),
            "workspace halo {} shallower than the {} the configured solver needs \
             (allocate Workspace::new(nx, ny, halo_depth))",
            ws.halo(),
            solver.halo_depth()
        );
        let dyn_tile: DynTile<'_> = Tile::new(tile.op, tile.layout, tile.comm.as_dyn());
        let ctx = SolveContext::new(&dyn_tile);
        solver.prepare(&ctx, &self.opts);
        let mut trace = SolveTrace::new(solver.label());
        Ok(solver.solve(&ctx, u, b, ws, &mut trace))
    }
}

/// Assembles the paper's crooked-pipe system at `n × n` cells: the
/// matrix-free operator for one implicit step of size `dt` (fields and
/// coefficients carrying `halo` ghost layers) and the TeaLeaf
/// right-hand side `b = ρ·e`. The warm start is `u = b.clone()`.
///
/// This is the setup preamble of every example and bench, packaged so
/// quickstarts stay quick.
pub fn crooked_pipe_system(n: usize, dt: f64, halo: usize) -> (TileOperator, Field2D) {
    let halo = halo.max(1);
    let problem = crooked_pipe(n);
    let mesh = Mesh2D::serial(n, n, problem.extent);
    // coefficients one layer deeper than the solver halo, like the app
    // driver: the operator diagonal at extension `halo` reads the face
    // coefficient one cell beyond, so Diagonal preconditioning at the
    // full matrix-powers depth needs the extra ghost layer (values at
    // shared cells are identical — liveness only, never results)
    let mut density = Field2D::new(n, n, halo + 1);
    let mut energy = Field2D::new(n, n, halo + 1);
    problem.apply_states(&mesh, &mut density, &mut energy);
    let (rx, ry) = timestep_scalings(&mesh, dt);
    let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, halo + 1);
    let op = TileOperator::new(coeffs, TileBounds::new(&mesh, halo));
    let mut b = Field2D::new(n, n, halo);
    for k in 0..n as isize {
        for j in 0..n as isize {
            b.set(j, k, density.at(j, k) * energy.at(j, k));
        }
    }
    (op, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_runs_every_builtin_solver() {
        let (op, b) = crooked_pipe_system(16, 0.04, 4);
        let registry = SolverRegistry::builtin();
        for name in registry.names() {
            // fully-f32 methods honestly cannot reach f64-grade
            // tolerances; ask them for what the format can deliver
            let eps = match registry.resolve(name).unwrap().precision {
                crate::api::Precision::F32 => 1e-4,
                _ => 1e-8,
            };
            let mut u = b.clone();
            let result = Solve::on(&op)
                .with_solver(name)
                .halo_depth(4)
                .eps(eps)
                .max_iters(200_000)
                .run(&mut u, &b)
                .expect("builtin solver must resolve");
            assert!(result.converged, "{name} failed to converge: {result:?}");
        }
    }

    #[test]
    fn builder_precision_routes_and_rejects() {
        let (op, b) = crooked_pipe_system(16, 0.04, 1);
        let mut u = b.clone();
        let result = Solve::on(&op)
            .precision(Precision::Mixed)
            .eps(1e-9)
            .run(&mut u, &b)
            .expect("mixed cg is registered");
        assert!(result.converged, "{result:?}");

        let mut u2 = b.clone();
        let err = Solve::on(&op)
            .with_solver("jacobi")
            .precision(Precision::Mixed)
            .run(&mut u2, &b)
            .unwrap_err();
        assert!(
            matches!(err, SolverError::PrecisionUnsupported { .. }),
            "{err}"
        );
    }

    #[test]
    fn builder_reports_unknown_solver() {
        let (op, b) = crooked_pipe_system(8, 0.04, 1);
        let mut u = b.clone();
        let err = Solve::on(&op)
            .with_solver("gauss_seidel")
            .run(&mut u, &b)
            .unwrap_err();
        assert!(err.to_string().contains("gauss_seidel"), "{err}");
        assert!(err.to_string().contains("ppcg"), "{err}");
    }

    #[test]
    fn run_with_matches_run_bitwise() {
        let n = 16;
        let (op, b) = crooked_pipe_system(n, 0.04, 1);
        let mut u1 = b.clone();
        let r1 = Solve::on(&op)
            .precon(PreconKind::BlockJacobi)
            .run(&mut u1, &b)
            .unwrap();

        let decomp = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&decomp, 0);
        let comm = SerialComm::new();
        let tile = Tile::new(&op, &layout, &comm);
        let mut ws = Workspace::new(n, n, 1);
        let mut u2 = b.clone();
        let r2 = Solve::on(&op)
            .precon(PreconKind::BlockJacobi)
            .run_with(&tile, &mut u2, &b, &mut ws)
            .unwrap();

        assert_eq!(r1.iterations, r2.iterations);
        assert_eq!(r1.final_residual.to_bits(), r2.final_residual.to_bits());
        for k in 0..n as isize {
            for j in 0..n as isize {
                assert_eq!(u1.at(j, k).to_bits(), u2.at(j, k).to_bits());
            }
        }
    }
}
