//! The matrix-free 7-point operator — TeaLeaf's 3D variant (paper §II).
//!
//! ```text
//! w(j,k,i) = (1 + (Kz⁺+Kz) + (Ky⁺+Ky) + (Kx⁺+Kx)) * p(j,k,i)
//!          -  (Kz⁺ p(j,k,i+1) + Kz p(j,k,i-1))
//!          -  (Ky⁺ p(j,k+1,i) + Ky p(j,k-1,i))
//!          -  (Kx⁺ p(j+1,k,i) + Kx p(j-1,k,i))
//! ```
//!
//! The paper reports 2D results and notes the 3D behaviour is similar;
//! the 3D path here runs single-tile (the scaling experiments are 2D, as
//! in the paper) but records the same [`SolveTrace`] protocol.

use crate::trace::SolveTrace;
use rayon::prelude::*;
use tea_mesh::{Coefficients3D, Field3D};

/// Matrix-free 7-point operator for one (serial) 3D tile.
#[derive(Debug, Clone)]
pub struct TileOperator3D {
    /// Pre-scaled face coefficients.
    pub coeffs: Coefficients3D,
    nx: usize,
    ny: usize,
    nz: usize,
}

impl TileOperator3D {
    /// Builds the operator from assembled coefficients.
    pub fn new(coeffs: Coefficients3D) -> Self {
        let (nx, ny, nz) = (coeffs.kx.nx(), coeffs.kx.ny(), coeffs.kx.nz());
        TileOperator3D { coeffs, nx, ny, nz }
    }

    /// Interior extents.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Interior cell count.
    pub fn cells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// `w = A·p` over the interior; returns the local fused dot `p·w`
    /// when `fused` is set.
    pub fn apply(&self, p: &Field3D, w: &mut Field3D, trace: &mut SolveTrace) {
        trace.spmv.record(0);
        self.apply_inner(p, w, false);
    }

    /// Fused `w = A·p; p·w` (3D Listing-1 analogue).
    pub fn apply_fused_dot(&self, p: &Field3D, w: &mut Field3D, trace: &mut SolveTrace) -> f64 {
        trace.spmv.record(0);
        self.apply_inner(p, w, true)
    }

    fn apply_inner(&self, p: &Field3D, w: &mut Field3D, fused: bool) -> f64 {
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        let kx = &self.coeffs.kx;
        let ky = &self.coeffs.ky;
        let kz = &self.coeffs.kz;
        let row_body = |k: isize, i: isize, wr: &mut [f64]| -> f64 {
            let pc = p.row(k, i, -1, nx + 1);
            let ps = p.row(k - 1, i, 0, nx);
            let pn = p.row(k + 1, i, 0, nx);
            let pb = p.row(k, i - 1, 0, nx);
            let pt = p.row(k, i + 1, 0, nx);
            let kxr = kx.row(k, i, 0, nx + 1);
            let kyc = ky.row(k, i, 0, nx);
            let kyn = ky.row(k + 1, i, 0, nx);
            let kzc = kz.row(k, i, 0, nx);
            let kzt = kz.row(k, i + 1, 0, nx);
            let mut acc = 0.0;
            for jj in 0..nx as usize {
                let diag =
                    1.0 + (kzt[jj] + kzc[jj]) + (kyn[jj] + kyc[jj]) + (kxr[jj + 1] + kxr[jj]);
                let v = diag * pc[jj + 1]
                    - (kzt[jj] * pt[jj] + kzc[jj] * pb[jj])
                    - (kyn[jj] * pn[jj] + kyc[jj] * ps[jj])
                    - (kxr[jj + 1] * pc[jj + 2] + kxr[jj] * pc[jj]);
                wr[jj] = v;
                acc += pc[jj + 1] * v;
            }
            acc
        };
        if self.cells() >= crate::runtime::par_threshold() {
            // parallelise over x-rows of the raw storage (one chunk per
            // padded row), exactly like the 2D sweep: workers write
            // disjoint rows in place, and the fused dot folds per-row
            // partials in flat-row order — the same (i, k) ascending
            // order as the serial loop, so the reduction is bit-identical
            // at every thread count. Halo rows contribute exactly 0.0.
            let halo = w.halo();
            let sx = self.nx + 2 * halo;
            let sy = self.ny + 2 * halo;
            let h = halo as isize;
            let row_range = |row: usize| {
                let i = (row / sy) as isize - h;
                let k = (row % sy) as isize - h;
                (k, i)
            };
            if fused {
                let nrows = w.raw().len() / sx;
                let mut partials = vec![0.0f64; nrows];
                w.raw_mut()
                    .par_chunks_mut(sx)
                    .zip(partials.par_iter_mut())
                    .enumerate()
                    .for_each(|(row, (chunk, slot))| {
                        let (k, i) = row_range(row);
                        if k >= 0 && k < ny && i >= 0 && i < nz {
                            *slot = row_body(k, i, &mut chunk[halo..halo + nx as usize]);
                        }
                    });
                partials.iter().sum()
            } else {
                w.raw_mut()
                    .par_chunks_mut(sx)
                    .enumerate()
                    .for_each(|(row, chunk)| {
                        let (k, i) = row_range(row);
                        if k >= 0 && k < ny && i >= 0 && i < nz {
                            row_body(k, i, &mut chunk[halo..halo + nx as usize]);
                        }
                    });
                0.0
            }
        } else {
            let mut acc = 0.0;
            for i in 0..nz {
                for k in 0..ny {
                    acc += row_body(k, i, w.row_mut(k, i, 0, nx));
                }
            }
            if fused {
                acc
            } else {
                0.0
            }
        }
    }

    /// `r = b − A·u` over the interior.
    pub fn residual(&self, u: &Field3D, b: &Field3D, r: &mut Field3D, trace: &mut SolveTrace) {
        self.apply(u, r, trace);
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        for i in 0..nz {
            for k in 0..ny {
                let br = b.row(k, i, 0, nx);
                let rr = r.row_mut(k, i, 0, nx);
                for jj in 0..rr.len() {
                    rr[jj] = br[jj] - rr[jj];
                }
            }
        }
    }

    /// Writes the operator diagonal into `d`.
    pub fn diagonal_into(&self, d: &mut Field3D) {
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        let kx = &self.coeffs.kx;
        let ky = &self.coeffs.ky;
        let kz = &self.coeffs.kz;
        for i in 0..nz {
            for k in 0..ny {
                let kxr = kx.row(k, i, 0, nx + 1);
                let kyc = ky.row(k, i, 0, nx);
                let kyn = ky.row(k + 1, i, 0, nx);
                let kzc = kz.row(k, i, 0, nx);
                let kzt = kz.row(k, i + 1, 0, nx);
                let dr = d.row_mut(k, i, 0, nx);
                for jj in 0..dr.len() {
                    dr[jj] =
                        1.0 + (kzt[jj] + kzc[jj]) + (kyn[jj] + kyc[jj]) + (kxr[jj + 1] + kxr[jj]);
                }
            }
        }
    }
}

/// Plain CG in 3D (identity preconditioner): the solver used by the 3D
/// example and tests. Serial tile; the protocol is still traced.
pub fn cg_solve_3d(
    op: &TileOperator3D,
    u: &mut Field3D,
    b: &Field3D,
    opts: crate::solver::SolveOpts,
) -> crate::trace::SolveResult {
    let mut trace = SolveTrace::new("CG-3D");
    let (nx, ny, nz) = op.shape();
    let mut r = Field3D::new(nx, ny, nz, 1);
    let mut p = Field3D::new(nx, ny, nz, 1);
    let mut w = Field3D::new(nx, ny, nz, 1);

    op.residual(u, b, &mut r, &mut trace);
    copy_interior(&mut p, &r);
    let mut rro = r.interior_dot(&r);
    trace.record_reduction(1);
    let initial_residual = rro.sqrt();
    if initial_residual == 0.0 {
        return crate::trace::SolveResult {
            converged: true,
            iterations: 0,
            initial_residual,
            final_residual: 0.0,
            status: crate::trace::SolveStatus::Converged,
            trace,
        };
    }
    let target = opts.eps * initial_residual;
    let mut iterations = 0;
    let mut converged = false;
    let mut final_residual = initial_residual;

    while iterations < opts.max_iters {
        iterations += 1;
        trace.outer_iterations += 1;
        trace.record_halo(1, 1); // protocol event: p ghosts would move here
        let pw = op.apply_fused_dot(&p, &mut w, &mut trace);
        trace.record_reduction(1);
        let alpha = rro / pw;
        axpy3(u, alpha, &p);
        axpy3(&mut r, -alpha, &w);
        trace.vector_ops.record(0);
        trace.vector_ops.record(0);
        let rrn = r.interior_dot(&r);
        trace.record_reduction(1);
        final_residual = rrn.sqrt();
        if final_residual <= target {
            converged = true;
            break;
        }
        let beta = rrn / rro;
        xpay3(&mut p, &r, beta);
        trace.vector_ops.record(0);
        rro = rrn;
    }
    crate::trace::SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status: crate::trace::SolveStatus::from_converged(converged),
        trace,
    }
}

fn copy_interior(dst: &mut Field3D, src: &Field3D) {
    let (nx, ny, nz) = (src.nx() as isize, src.ny() as isize, src.nz() as isize);
    for i in 0..nz {
        for k in 0..ny {
            dst.row_mut(k, i, 0, nx)
                .copy_from_slice(src.row(k, i, 0, nx));
        }
    }
}

fn axpy3(y: &mut Field3D, a: f64, x: &Field3D) {
    let (nx, ny, nz) = (x.nx() as isize, x.ny() as isize, x.nz() as isize);
    for i in 0..nz {
        for k in 0..ny {
            let xr = x.row(k, i, 0, nx);
            let yr = y.row_mut(k, i, 0, nx);
            for jj in 0..yr.len() {
                yr[jj] += a * xr[jj];
            }
        }
    }
}

fn xpay3(y: &mut Field3D, x: &Field3D, a: f64) {
    let (nx, ny, nz) = (x.nx() as isize, x.ny() as isize, x.nz() as isize);
    for i in 0..nz {
        for k in 0..ny {
            let xr = x.row(k, i, 0, nx);
            let yr = y.row_mut(k, i, 0, nx);
            for jj in 0..yr.len() {
                yr[jj] = xr[jj] + a * yr[jj];
            }
        }
    }
}

/// Point-Jacobi in 3D, for solver-family parity with the 2D path.
pub fn jacobi_solve_3d(
    op: &TileOperator3D,
    u: &mut Field3D,
    b: &Field3D,
    opts: crate::solver::SolveOpts,
) -> crate::trace::SolveResult {
    let mut trace = SolveTrace::new("Jacobi-3D");
    let (nx, ny, nz) = op.shape();
    let mut inv_diag = Field3D::new(nx, ny, nz, 1);
    op.diagonal_into(&mut inv_diag);
    for v in inv_diag.raw_mut() {
        if *v != 0.0 {
            *v = 1.0 / *v;
        }
    }
    let mut r = Field3D::new(nx, ny, nz, 1);
    op.residual(u, b, &mut r, &mut trace);
    let initial_residual = r.interior_norm();
    if initial_residual == 0.0 {
        return crate::trace::SolveResult {
            converged: true,
            iterations: 0,
            initial_residual,
            final_residual: 0.0,
            status: crate::trace::SolveStatus::Converged,
            trace,
        };
    }
    let target = opts.eps * initial_residual;
    let mut iterations = 0;
    let mut converged = false;
    let mut final_residual = initial_residual;
    while iterations < opts.max_iters {
        iterations += 1;
        trace.outer_iterations += 1;
        trace.record_halo(1, 1);
        // u += D^{-1} r
        let (nxi, nyi, nzi) = (nx as isize, ny as isize, nz as isize);
        for i in 0..nzi {
            for k in 0..nyi {
                let rr = r.row(k, i, 0, nxi);
                let dd = inv_diag.row(k, i, 0, nxi);
                let ur = u.row_mut(k, i, 0, nxi);
                for jj in 0..ur.len() {
                    ur[jj] += dd[jj] * rr[jj];
                }
            }
        }
        trace.vector_ops.record(0);
        op.residual(u, b, &mut r, &mut trace);
        final_residual = r.interior_norm();
        trace.record_reduction(1);
        if final_residual <= target {
            converged = true;
            break;
        }
    }
    crate::trace::SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status: crate::trace::SolveStatus::from_converged(converged),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveOpts;
    use tea_mesh::{hot_ball, Coefficients3D, Mesh3D};

    fn build(n: usize) -> (TileOperator3D, Field3D, Mesh3D) {
        let p = hot_ball(n);
        let mesh = Mesh3D::new(n, n, n, p.extent);
        let mut density = Field3D::new(n, n, n, 1);
        let mut energy = Field3D::new(n, n, n, 1);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry, rz) = mesh.timestep_scalings(0.002);
        let coeffs = Coefficients3D::assemble(&mesh, &density, p.coefficient, rx, ry, rz, 1);
        let op = TileOperator3D::new(coeffs);
        let mut b = Field3D::new(n, n, n, 1);
        for i in 0..n as isize {
            for k in 0..n as isize {
                for j in 0..n as isize {
                    b.set(j, k, i, density.at(j, k, i) * energy.at(j, k, i));
                }
            }
        }
        (op, b, mesh)
    }

    #[test]
    fn operator_symmetric_and_stochastic() {
        let (op, _b, _) = build(8);
        let mut t = SolveTrace::new("t");
        let mut p = Field3D::new(8, 8, 8, 1);
        let mut q = Field3D::new(8, 8, 8, 1);
        for i in 0..8isize {
            for k in 0..8isize {
                for j in 0..8isize {
                    p.set(j, k, i, ((j * 3 + k * 5 + i * 7) % 11) as f64 - 5.0);
                    q.set(j, k, i, ((j + k * 2 + i * 4) % 9) as f64 - 4.0);
                }
            }
        }
        let mut ap = Field3D::new(8, 8, 8, 1);
        let mut aq = Field3D::new(8, 8, 8, 1);
        op.apply(&p, &mut ap, &mut t);
        op.apply(&q, &mut aq, &mut t);
        let lhs = ap.interior_dot(&q);
        let rhs = p.interior_dot(&aq);
        assert!(
            (lhs - rhs).abs() <= 1e-11 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
        // constants map to themselves (7-point row sums are 1)
        let ones = Field3D::filled(8, 8, 8, 1, 1.0);
        let mut a1 = Field3D::new(8, 8, 8, 1);
        op.apply(&ones, &mut a1, &mut t);
        for i in 0..8isize {
            for k in 0..8isize {
                for j in 0..8isize {
                    assert!((a1.at(j, k, i) - 1.0).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn fused_dot_matches_separate() {
        let (op, b, _) = build(6);
        let mut t = SolveTrace::new("t");
        let mut w1 = Field3D::new(6, 6, 6, 1);
        let pw = op.apply_fused_dot(&b, &mut w1, &mut t);
        let mut w2 = Field3D::new(6, 6, 6, 1);
        op.apply(&b, &mut w2, &mut t);
        assert!((pw - b.interior_dot(&w2)).abs() < 1e-10 * pw.abs().max(1.0));
    }

    #[test]
    fn cg3d_solves_hot_ball() {
        let (op, b, _) = build(12);
        let mut u = b.clone();
        let res = cg_solve_3d(&op, &mut u, &b, SolveOpts::with_eps(1e-10));
        assert!(res.converged, "{res:?}");
        let mut t = SolveTrace::new("check");
        let mut r = Field3D::new(12, 12, 12, 1);
        op.residual(&u, &b, &mut r, &mut t);
        assert!(r.interior_norm() / b.interior_norm() < 1e-8);
    }

    #[test]
    fn energy_conserved_by_3d_step() {
        // row sums 1 => Σ u_new = Σ u_old through the solve
        let (op, b, _) = build(10);
        let mut u = b.clone();
        let res = cg_solve_3d(&op, &mut u, &b, SolveOpts::with_eps(1e-12));
        assert!(res.converged);
        let drift = (u.interior_sum() - b.interior_sum()).abs() / b.interior_sum();
        assert!(drift < 1e-9, "3D heat not conserved: {drift}");
    }

    #[test]
    fn jacobi3d_agrees_with_cg3d() {
        let (op, b, _) = build(8);
        let mut u1 = b.clone();
        let mut u2 = b.clone();
        let c = cg_solve_3d(&op, &mut u1, &b, SolveOpts::with_eps(1e-11));
        let j = jacobi_solve_3d(
            &op,
            &mut u2,
            &b,
            crate::solver::SolveOpts {
                eps: 1e-11,
                max_iters: 200_000,
            },
        );
        assert!(c.converged && j.converged);
        assert!(j.iterations > c.iterations);
        for i in 0..8isize {
            for k in 0..8isize {
                for j2 in 0..8isize {
                    let (a, bb) = (u1.at(j2, k, i), u2.at(j2, k, i));
                    assert!((a - bb).abs() < 1e-7 * bb.abs().max(1e-12));
                }
            }
        }
    }

    #[test]
    fn parallel_threshold_path_matches_serial() {
        // 64^3 = 262144 > PAR_THRESHOLD exercises the rayon path; verify
        // against a small-block spot check using the serial row kernel
        let (op, b, _) = build(64);
        let mut t = SolveTrace::new("t");
        let mut w = Field3D::new(64, 64, 64, 1);
        let pw = op.apply_fused_dot(&b, &mut w, &mut t);
        // recompute one row serially and compare
        let mut dot = 0.0;
        for i in 0..64isize {
            for k in 0..64isize {
                for j in 0..64isize {
                    dot += b.at(j, k, i) * w.at(j, k, i);
                }
            }
        }
        assert!((pw - dot).abs() <= 1e-9 * dot.abs().max(1.0));
    }
}
