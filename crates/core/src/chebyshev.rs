//! Chebyshev iteration (paper §III.C) — both a standalone solver and the
//! coefficient machinery reused by CPPCG's inner smoothing.
//!
//! Given eigenvalue bounds `[λmin, λmax]` of the (preconditioned)
//! operator, the shifted/scaled first-kind Chebyshev acceleration (Saad,
//! *Iterative Methods for Sparse Linear Systems*, Alg. 12.1) is
//!
//! ```text
//! θ = (λmax + λmin)/2,  δ = (λmax − λmin)/2,  σ = θ/δ
//! ρ₀ = 1/σ,   sd₀ = z₀/θ
//! step: u += sd;  r −= A·sd;  z = M⁻¹r
//!       ρ_{k} = 1/(2σ − ρ_{k−1})
//!       sd = (ρ_k ρ_{k−1})·sd + (2ρ_k/δ)·z
//! ```
//!
//! Its appeal for strong scaling: **no dot products** — the only global
//! communication is the occasional convergence check. The eigenvalue
//! bounds come from a short plain-CG prelude (paper §III.D).

use crate::api::{IterativeSolver, SolveContext, SolverParams};
use crate::cg::cg_solve_recording;
use crate::eigen::{estimate_from_cg, EigenEstimate};
use crate::precon::{PreconKind, Preconditioner};
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveStatus, SolveTrace};
use crate::vector;
use tea_comms::Communicator;
use tea_mesh::Field2D;

/// Shift/scale constants derived from an eigenvalue estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChebyConstants {
    /// Spectrum midpoint `(λmax + λmin)/2`.
    pub theta: f64,
    /// Spectrum half-width `(λmax − λmin)/2`.
    pub delta: f64,
    /// `θ/δ`.
    pub sigma: f64,
}

impl ChebyConstants {
    /// Derives the constants; requires a strictly positive spectrum with
    /// `λmax > λmin` (equal bounds would put `σ = ∞`; treat that case as
    /// a diagonal shift solved in one step by the caller).
    pub fn from_estimate(est: EigenEstimate) -> Self {
        assert!(
            est.min > 0.0,
            "spectrum must be positive, got λmin = {}",
            est.min
        );
        assert!(
            est.max > est.min,
            "need λmax > λmin, got [{}, {}]",
            est.min,
            est.max
        );
        let theta = 0.5 * (est.max + est.min);
        let delta = 0.5 * (est.max - est.min);
        ChebyConstants {
            theta,
            delta,
            sigma: theta / delta,
        }
    }

    /// The asymptotic per-iteration error contraction factor
    /// `σ_c = (√κ − 1)/(√κ + 1)` with `κ = λmax/λmin`.
    pub fn contraction(&self) -> f64 {
        let kappa = (self.theta + self.delta) / (self.theta - self.delta);
        let s = kappa.sqrt();
        (s - 1.0) / (s + 1.0)
    }

    /// Generates the `(α_k, β_k)` recurrence coefficients for `m` steps:
    /// `sd ← α_k·sd + β_k·z` (TeaLeaf's `ch_alphas`/`ch_betas`).
    pub fn coefficients(&self, m: usize) -> Vec<(f64, f64)> {
        let mut out = Vec::with_capacity(m);
        let mut rho_old = 1.0 / self.sigma;
        for _ in 0..m {
            let rho_new = 1.0 / (2.0 * self.sigma - rho_old);
            out.push((rho_new * rho_old, 2.0 * rho_new / self.delta));
            rho_old = rho_new;
        }
        out
    }
}

/// Iteration bound of plain CG, `√κ/2 · ln(2/ε)` (paper Eq. 6).
pub fn cg_iteration_bound(kappa: f64, eps: f64) -> f64 {
    0.5 * kappa.sqrt() * (2.0 / eps).ln()
}

/// Options for the standalone Chebyshev solver.
#[derive(Debug, Clone, Copy)]
pub struct ChebyOpts {
    /// Plain-CG iterations used to estimate the spectrum (TeaLeaf
    /// `tl_ch_cg_presteps`).
    pub presteps: u64,
    /// Safety widening applied to the Lanczos estimate (the bounds must
    /// *contain* the true spectrum or the iteration diverges).
    pub eigen_safety: f64,
    /// Convergence check cadence in iterations (each check is one global
    /// reduction).
    pub check_interval: u64,
}

impl Default for ChebyOpts {
    fn default() -> Self {
        ChebyOpts {
            presteps: 30,
            eigen_safety: 0.1,
            check_interval: 10,
        }
    }
}

/// CG-prelude Chebyshev acceleration as an [`IterativeSolver`]: no dot
/// products in the acceleration phase, only the periodic convergence
/// check communicates.
#[derive(Debug, Clone, Default)]
pub struct Chebyshev {
    kind: PreconKind,
    cheby: ChebyOpts,
    opts: SolveOpts,
    precon: Option<Preconditioner>,
    hint: Option<EigenEstimate>,
    last_est: Option<EigenEstimate>,
}

impl Chebyshev {
    /// A Chebyshev solver with preconditioner `kind` and phase options
    /// `cheby`.
    pub fn new(kind: PreconKind, cheby: ChebyOpts) -> Self {
        Chebyshev {
            kind,
            cheby,
            opts: SolveOpts::default(),
            precon: None,
            hint: None,
            last_est: None,
        }
    }

    /// Registry factory: consumes `precon`, `presteps`, `eigen_safety`
    /// and `check_interval`.
    pub fn from_params(params: &SolverParams) -> Self {
        Chebyshev::new(
            params.precon,
            ChebyOpts {
                presteps: params.presteps,
                eigen_safety: params.eigen_safety,
                check_interval: params.check_interval,
            },
        )
    }
}

impl Chebyshev {
    /// The one place the preconditioner is assembled for this solver
    /// (used by both `prepare` and the prepare-on-demand path).
    fn assemble_precon(&self, ctx: &SolveContext<'_>) -> Preconditioner {
        Preconditioner::setup(self.kind, ctx.tile.op, 0)
    }
}

impl IterativeSolver for Chebyshev {
    fn name(&self) -> &'static str {
        "chebyshev"
    }

    fn label(&self) -> String {
        "Chebyshev".into()
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.precon = Some(self.assemble_precon(ctx));
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.precon.is_none() {
            self.precon = Some(self.assemble_precon(ctx));
        }
        let precon = self.precon.as_ref().expect("just prepared");
        let result =
            chebyshev_solve_impl(ctx.tile, u, b, precon, ws, self.opts, self.cheby, self.hint);
        self.last_est = result
            .trace
            .eigen_bounds
            .map(|(min, max)| EigenEstimate { min, max });
        trace.merge(&result.trace);
        result
    }

    fn set_eigen_hint(&mut self, hint: Option<EigenEstimate>) {
        self.hint = hint;
    }

    fn last_eigen_estimate(&self) -> Option<EigenEstimate> {
        self.last_est
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn chebyshev_solve_impl<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    precon: &Preconditioner,
    ws: &mut Workspace,
    opts: SolveOpts,
    cheby: ChebyOpts,
    hint: Option<EigenEstimate>,
) -> SolveResult {
    let bounds = &tile.op.bounds;

    // Phase 1: CG presteps, keeping the partial solution and coefficients.
    let (pre, coeffs) = cg_solve_recording(tile, u, b, precon, ws, opts, cheby.presteps.max(1));
    if pre.converged || pre.status.is_diverged() || pre.status.is_cancelled() {
        return pre; // the prelude finished, diverged, or was cancelled
    }
    let mut trace = pre.trace;
    trace.solver = "Chebyshev".into();
    // a pinned estimate (from a session replaying identical input) skips
    // only the Lanczos analysis — the presteps above still advanced u
    let est = hint.unwrap_or_else(|| {
        let (al, be) = coeffs.for_lanczos();
        estimate_from_cg(al, be, cheby.eigen_safety)
    });
    trace.eigen_bounds = Some((est.min, est.max));
    let consts = ChebyConstants::from_estimate(est);

    // Phase 2: Chebyshev acceleration from the CG-advanced iterate.
    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);
    precon.apply(&ws.r, &mut ws.z, bounds, 0, &mut trace);
    vector::scaled_copy(&mut ws.sd, &ws.z, 1.0 / consts.theta, bounds, 0, &mut trace);

    let initial_residual = pre.initial_residual;
    let target = opts.eps * initial_residual;
    let check_interval = cheby.check_interval.max(1); // 0 would divide by zero
    let mut rho_old = 1.0 / consts.sigma;
    let mut iterations = pre.iterations;
    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = pre.final_residual;

    while iterations < opts.max_iters {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke(iterations, u, &mut ws.r);

        tile.exchange(&mut [&mut ws.sd], 1, &mut trace);
        tile.op.apply(&ws.sd, &mut ws.w, 0, &mut trace);
        vector::axpy(u, 1.0, &ws.sd, bounds, 0, &mut trace);
        vector::axpy(&mut ws.r, -1.0, &ws.w, bounds, 0, &mut trace);
        precon.apply(&ws.r, &mut ws.z, bounds, 0, &mut trace);

        let rho_new = 1.0 / (2.0 * consts.sigma - rho_old);
        vector::scale_add(
            &mut ws.sd,
            rho_new * rho_old,
            2.0 * rho_new / consts.delta,
            &ws.z,
            bounds,
            0,
            &mut trace,
        );
        rho_old = rho_new;

        // periodic convergence check: the only global communication here
        let since_pre = iterations - pre.iterations;
        if since_pre % check_interval == 0 {
            let rr_local = vector::dot_local(&ws.r, &ws.r, bounds, &mut trace);
            let rr = tile.reduce_sum(rr_local, &mut trace);
            if !rr.is_finite() {
                status = SolveStatus::Diverged {
                    iteration: iterations,
                };
                final_residual = f64::NAN;
                break;
            }
            final_residual = rr.max(0.0).sqrt();
            if final_residual <= target {
                converged = true;
                status = SolveStatus::Converged;
                break;
            }
        }
    }
    if !converged && !status.is_diverged() && !status.is_cancelled() {
        // final authoritative residual
        let rr_local = vector::dot_local(&ws.r, &ws.r, bounds, &mut trace);
        let rr = tile.reduce_sum(rr_local, &mut trace);
        if !rr.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
        } else {
            final_residual = rr.max(0.0).sqrt();
            converged = final_residual <= target;
            if converged {
                status = SolveStatus::Converged;
            }
        }
    }

    SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{TileBounds, TileOperator};
    use crate::precon::PreconKind;
    use crate::trace::SolveTrace;
    use tea_comms::{HaloLayout, SerialComm};
    use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Mesh2D};

    fn serial_problem(n: usize, halo: usize) -> (TileOperator, Field2D) {
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, halo);
        let mut energy = Field2D::new(n, n, halo);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, halo);
        let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
        let mut b = Field2D::new(n, n, halo);
        for k in 0..n as isize {
            for j in 0..n as isize {
                b.set(j, k, density.at(j, k) * energy.at(j, k));
            }
        }
        (op, b)
    }

    #[test]
    fn constants_from_estimate() {
        let c = ChebyConstants::from_estimate(EigenEstimate { min: 1.0, max: 9.0 });
        assert_eq!(c.theta, 5.0);
        assert_eq!(c.delta, 4.0);
        assert_eq!(c.sigma, 1.25);
        // kappa = 9, contraction = (3-1)/(3+1) = 0.5
        assert!((c.contraction() - 0.5).abs() < 1e-14);
    }

    #[test]
    fn coefficient_recurrence_matches_manual() {
        let c = ChebyConstants::from_estimate(EigenEstimate { min: 1.0, max: 3.0 });
        // sigma = 2, rho0 = 0.5
        let cs = c.coefficients(2);
        let rho1 = 1.0 / (4.0 - 0.5);
        assert!((cs[0].0 - rho1 * 0.5).abs() < 1e-15);
        assert!((cs[0].1 - 2.0 * rho1 / c.delta).abs() < 1e-15);
        let rho2 = 1.0 / (4.0 - rho1);
        assert!((cs[1].0 - rho2 * rho1).abs() < 1e-15);
    }

    #[test]
    fn residual_polynomial_decays_on_scalar_model() {
        // apply the recurrence to the scalar problem a*x = b for a inside
        // the bounds; the residual must contract at >= the predicted rate
        let est = EigenEstimate { min: 0.5, max: 4.0 };
        let c = ChebyConstants::from_estimate(est);
        for &a in &[0.5, 1.0, 2.7, 4.0] {
            let b = 1.0;
            let x0 = 0.0;
            let mut x = x0;
            let mut r = b - a * x0;
            let mut sd = r / c.theta;
            let mut rho_old = 1.0 / c.sigma;
            for _ in 0..40 {
                x += sd;
                r -= a * sd;
                let rho_new = 1.0 / (2.0 * c.sigma - rho_old);
                sd = rho_new * rho_old * sd + (2.0 * rho_new / c.delta) * r;
                rho_old = rho_new;
            }
            assert!(
                r.abs() < 1e-6,
                "scalar Chebyshev failed for a = {a}: residual {r}"
            );
            assert!(
                (a * x - b).abs() < 1e-6,
                "iterate must solve a*x = b: a = {a}, x = {x}"
            );
        }
    }

    #[test]
    fn chebyshev_converges_on_crooked_pipe() {
        let n = 32;
        let (op, b) = serial_problem(n, 1);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = b.clone();
        let m = Preconditioner::setup(PreconKind::None, &op, 0);
        let res = chebyshev_solve_impl(
            &tile,
            &mut u,
            &b,
            &m,
            &mut ws,
            SolveOpts::with_eps(1e-8),
            ChebyOpts::default(),
            None,
        );
        assert!(res.converged, "Chebyshev must converge: {res:?}");
        let mut t = SolveTrace::new("check");
        let mut r = Field2D::new(n, n, 1);
        op.residual(&u, &b, &mut r, 0, &mut t);
        assert!(r.interior_norm() / b.interior_norm() < 1e-6);
        assert!(res.trace.eigen_bounds.is_some());
    }

    #[test]
    fn chebyshev_uses_far_fewer_reductions_than_cg() {
        use crate::cg::cg_solve_impl;
        let n = 32;
        let (op, b) = serial_problem(n, 1);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let m = Preconditioner::setup(PreconKind::None, &op, 0);

        let mut ws = Workspace::new(n, n, 1);
        let mut u1 = b.clone();
        let cg = cg_solve_impl(&tile, &mut u1, &b, &m, &mut ws, SolveOpts::with_eps(1e-8));

        let mut u2 = b.clone();
        let ch = chebyshev_solve_impl(
            &tile,
            &mut u2,
            &b,
            &m,
            &mut ws,
            SolveOpts::with_eps(1e-8),
            ChebyOpts::default(),
            None,
        );
        assert!(cg.converged && ch.converged);
        let cg_reds_per_iter = cg.trace.reductions as f64 / cg.iterations as f64;
        let ch_post = ch
            .trace
            .reductions
            .saturating_sub(2 * ChebyOpts::default().presteps);
        let ch_reds_per_iter =
            ch_post as f64 / (ch.iterations - ChebyOpts::default().presteps).max(1) as f64;
        assert!(
            ch_reds_per_iter < 0.5 * cg_reds_per_iter,
            "Chebyshev should slash reductions: {ch_reds_per_iter} vs {cg_reds_per_iter}"
        );
    }

    #[test]
    fn iteration_bound_formula() {
        // Eq. 6: kappa = 100, eps = 1e-10 -> 5 * ln(2e10) ~ 118.6
        let k = cg_iteration_bound(100.0, 1e-10);
        assert!((k - 0.5 * 10.0 * (2e10f64).ln()).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn non_positive_spectrum_rejected() {
        let _ = ChebyConstants::from_estimate(EigenEstimate {
            min: -1.0,
            max: 2.0,
        });
    }
}
