//! Shared solver infrastructure: the per-rank [`Tile`] bundle, reusable
//! [`Workspace`] fields, solve options, and the traced communication
//! helpers every solver uses.

use crate::control::SolveControls;
use crate::ops::TileOperator;
use crate::trace::SolveTrace;
use tea_comms::{exchange_halo_many, Communicator, HaloLayout, WireScalar};
use tea_mesh::{Field2, Field2D};

/// Everything one rank needs to run a solver on its tile.
pub struct Tile<'a, C: Communicator + ?Sized> {
    /// The assembled matrix-free operator.
    pub op: &'a TileOperator,
    /// Halo-exchange neighbour map.
    pub layout: &'a HaloLayout,
    /// The rank's communicator.
    pub comm: &'a C,
    /// Optional cancellation/probe hooks checked at iteration
    /// boundaries. Defaults to disarmed (two `None` checks per outer
    /// iteration) everywhere except serving paths that arm it.
    pub controls: SolveControls<'a>,
}

impl<'a, C: Communicator + ?Sized> Tile<'a, C> {
    /// Bundles the three references, with disarmed controls.
    pub fn new(op: &'a TileOperator, layout: &'a HaloLayout, comm: &'a C) -> Self {
        Tile {
            op,
            layout,
            comm,
            controls: SolveControls::default(),
        }
    }

    /// [`Tile::new`] with an armed control bundle (serving paths with
    /// deadlines, cancellation, or fault probes).
    pub fn with_controls(
        op: &'a TileOperator,
        layout: &'a HaloLayout,
        comm: &'a C,
        controls: SolveControls<'a>,
    ) -> Self {
        Tile {
            op,
            layout,
            comm,
            controls,
        }
    }

    /// Exchanges halos of `fields` at `depth`, recording the protocol
    /// event (recorded even on single-rank runs: the trace captures the
    /// *protocol*, which is decomposition-independent). Generic over the
    /// field precision: `Field2<f32>` halos travel the wire at 4
    /// bytes/element natively, with no staging conversion.
    pub fn exchange<S: WireScalar>(
        &self,
        fields: &mut [&mut Field2<S>],
        depth: usize,
        trace: &mut SolveTrace,
    ) {
        trace.record_halo(depth, fields.len());
        exchange_halo_many(fields, self.layout, self.comm, depth);
    }

    /// Globally reduces one scalar, recording the event.
    pub fn reduce_sum(&self, local: f64, trace: &mut SolveTrace) -> f64 {
        trace.record_reduction(1);
        self.comm.allreduce_sum(local)
    }

    /// Globally reduces several scalars in one latency, recording the
    /// event.
    pub fn reduce_sum_many(&self, locals: &[f64], trace: &mut SolveTrace) -> Vec<f64> {
        trace.record_reduction(locals.len());
        self.comm.allreduce_sum_many(locals)
    }

    /// Globally reduces one scalar *in its own precision*: an `f32` local
    /// travels (and folds) at 4 bytes, so reduced-precision solvers stop
    /// widening their reduction traffic to f64. Trace accounting is
    /// identical to [`Tile::reduce_sum`] — one reduction event of one
    /// element — keeping every solver's reduction-count invariant intact.
    pub fn reduce_sum_native<S: WireScalar>(&self, local: S, trace: &mut SolveTrace) -> S {
        trace.record_reduction(1);
        let folded = self
            .comm
            .allreduce_sum_payload(S::into_payload(vec![local]));
        folded
            .try_into_vec::<S>()
            .expect("reduction preserves the deposited wire precision")[0]
    }
}

/// Convergence and iteration-cap options shared by all solvers.
#[derive(Debug, Clone, Copy)]
pub struct SolveOpts {
    /// Relative residual-reduction target (TeaLeaf `tl_eps`).
    pub eps: f64,
    /// Outer-iteration cap (TeaLeaf `tl_max_iters`).
    pub max_iters: u64,
}

impl Default for SolveOpts {
    fn default() -> Self {
        SolveOpts {
            eps: 1e-10,
            max_iters: 10_000,
        }
    }
}

impl SolveOpts {
    /// Options with a custom tolerance.
    pub fn with_eps(eps: f64) -> Self {
        SolveOpts {
            eps,
            ..Default::default()
        }
    }
}

/// Scratch fields reused across solves (one allocation per time-stepping
/// run instead of per solve).
#[derive(Debug)]
pub struct Workspace {
    /// Search direction.
    pub p: Field2D,
    /// Residual.
    pub r: Field2D,
    /// Operator output `A·p`.
    pub w: Field2D,
    /// Preconditioned residual.
    pub z: Field2D,
    /// Chebyshev smoothing direction.
    pub sd: Field2D,
    /// Inner-solve residual copy (matrix powers).
    pub rr: Field2D,
    /// Previous-iterate copy (Jacobi).
    pub u_old: Field2D,
    /// General scratch (preconditioned inner residual, temporaries).
    pub tmp: Field2D,
}

impl Workspace {
    /// Allocates all scratch fields for an `nx x ny` tile with `halo`
    /// ghost layers (use the matrix-powers depth for PPCG).
    pub fn new(nx: usize, ny: usize, halo: usize) -> Self {
        let f = || Field2D::new(nx, ny, halo.max(1));
        Workspace {
            p: f(),
            r: f(),
            w: f(),
            z: f(),
            sd: f(),
            rr: f(),
            u_old: f(),
            tmp: f(),
        }
    }

    /// Halo depth the workspace fields carry.
    pub fn halo(&self) -> usize {
        self.p.halo()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts() {
        let o = SolveOpts::default();
        assert_eq!(o.eps, 1e-10);
        assert_eq!(o.max_iters, 10_000);
        assert_eq!(SolveOpts::with_eps(1e-6).eps, 1e-6);
    }

    #[test]
    fn workspace_allocates_requested_halo() {
        let w = Workspace::new(8, 4, 3);
        assert_eq!(w.halo(), 3);
        assert_eq!(w.p.nx(), 8);
        assert_eq!(w.rr.ny(), 4);
        // halo floors at 1 (the operator needs one ghost layer)
        assert_eq!(Workspace::new(4, 4, 0).halo(), 1);
    }
}
