//! The (preconditioned) Conjugate Gradient solver — the paper's baseline
//! and the eigenvalue-estimation prelude for the Chebyshev family.
//!
//! Structure per iteration (paper §III.A):
//!
//! 1. depth-1 halo exchange of the search direction `p`;
//! 2. fused `w = A·p, pw = p·w` sweep (Listing 1) + **global reduction**;
//! 3. `u += α p`, `r -= α w`;
//! 4. preconditioner apply `z = M⁻¹ r`;
//! 5. `rz = r·z` + **global reduction**, convergence test, `p = z + β p`.
//!
//! Two allreduce latencies per iteration — the strong-scaling bottleneck
//! the CPPCG solver exists to amortise.
//!
//! Convergence is declared when `√(r·z) <= eps * √(r₀·z₀)` (the
//! reference's criterion; for `M = I` this is the plain relative residual
//! norm).

use crate::api::{IterativeSolver, SolveContext, SolverParams};
use crate::precon::{PreconKind, Preconditioner};
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveStatus, SolveTrace};
use crate::vector;
use tea_comms::Communicator;
use tea_mesh::Field2D;

/// Preconditioned CG as an [`IterativeSolver`] — the paper's baseline
/// Krylov method. Carries its preconditioner kind; `prepare` assembles
/// the preconditioner against the current operator.
#[derive(Debug, Clone, Default)]
pub struct Cg {
    kind: PreconKind,
    opts: SolveOpts,
    precon: Option<Preconditioner>,
}

impl Cg {
    /// A CG solver using preconditioner `kind`.
    pub fn new(kind: PreconKind) -> Self {
        Cg {
            kind,
            opts: SolveOpts::default(),
            precon: None,
        }
    }

    /// Registry factory: consumes [`SolverParams::precon`].
    pub fn from_params(params: &SolverParams) -> Self {
        Cg::new(params.precon)
    }
}

impl Cg {
    /// The one place the preconditioner is assembled for this solver
    /// (used by both `prepare` and the prepare-on-demand path).
    fn assemble_precon(&self, ctx: &SolveContext<'_>) -> Preconditioner {
        Preconditioner::setup(self.kind, ctx.tile.op, 0)
    }
}

impl IterativeSolver for Cg {
    fn name(&self) -> &'static str {
        "cg"
    }

    fn label(&self) -> String {
        "CG".into()
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.precon = Some(self.assemble_precon(ctx));
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.precon.is_none() {
            self.precon = Some(self.assemble_precon(ctx));
        }
        let precon = self.precon.as_ref().expect("just prepared");
        let result = cg_solve_impl(ctx.tile, u, b, precon, ws, self.opts);
        trace.merge(&result.trace);
        result
    }
}

/// CG coefficients recorded for Lanczos eigenvalue estimation.
#[derive(Debug, Clone, Default)]
pub struct CgCoefficients {
    /// Step sizes `α_i`.
    pub alphas: Vec<f64>,
    /// Residual ratios `β_i` (one fewer than `alphas`).
    pub betas: Vec<f64>,
}

impl CgCoefficients {
    /// Slices `(alphas, betas)` consistently for
    /// [`crate::eigen::lanczos_tridiagonal`] even if the run stopped
    /// after computing a trailing β.
    pub fn for_lanczos(&self) -> (&[f64], &[f64]) {
        let m = self.alphas.len();
        if self.betas.len() >= m {
            (&self.alphas, &self.betas[..m - 1])
        } else {
            (&self.alphas, &self.betas)
        }
    }
}

pub(crate) fn cg_solve_impl<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    precon: &Preconditioner,
    ws: &mut Workspace,
    opts: SolveOpts,
) -> SolveResult {
    let (result, _coeffs) = cg_solve_recording(tile, u, b, precon, ws, opts, u64::MAX);
    result
}

/// CG with recorded `α`/`β` coefficients, optionally stopping after
/// `stop_after` iterations even if unconverged (the eigenvalue-estimation
/// presteps of Chebyshev/CPPCG, which keep the partial solution).
pub fn cg_solve_recording<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    precon: &Preconditioner,
    ws: &mut Workspace,
    opts: SolveOpts,
    stop_after: u64,
) -> (SolveResult, CgCoefficients) {
    let mut trace = SolveTrace::new(format!("CG/{}", precon_label(precon)));
    let bounds = &tile.op.bounds;
    let mut coeffs = CgCoefficients::default();

    // r = b - A u (u needs one fresh ghost layer for the stencil)
    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);

    // z = M^{-1} r ; p = z
    precon.apply(&ws.r, &mut ws.z, bounds, 0, &mut trace);
    vector::copy(&mut ws.p, &ws.z, bounds, 0, &mut trace);

    let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
    let mut rro = tile.reduce_sum(rz_local, &mut trace);
    if !rro.is_finite() {
        // non-finite input: report divergence instead of letting the
        // NaN-swallowing max(0.0) below read as instant convergence
        return (
            SolveResult {
                converged: false,
                iterations: 0,
                initial_residual: f64::NAN,
                final_residual: f64::NAN,
                status: SolveStatus::Diverged { iteration: 0 },
                trace,
            },
            coeffs,
        );
    }
    let initial_residual = rro.max(0.0).sqrt();

    if initial_residual == 0.0 {
        return (
            SolveResult {
                converged: true,
                iterations: 0,
                initial_residual,
                final_residual: 0.0,
                status: SolveStatus::Converged,
                trace,
            },
            coeffs,
        );
    }
    let target = opts.eps * initial_residual;

    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = initial_residual;
    let mut iterations = 0;
    let cap = opts.max_iters.min(stop_after);

    while iterations < cap {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke(iterations, u, &mut ws.r);

        tile.exchange(&mut [&mut ws.p], 1, &mut trace);
        let pw_local = tile.op.apply_fused_dot(&ws.p, &mut ws.w, &mut trace);
        let pw = tile.reduce_sum(pw_local, &mut trace);
        if !pw.is_finite() || pw <= 0.0 {
            // <p, Ap> lost positivity or went non-finite: the recurrence
            // cannot recover, so stop burning iterations
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            break;
        }
        let alpha = rro / pw;
        coeffs.alphas.push(alpha);

        vector::axpy(u, alpha, &ws.p, bounds, 0, &mut trace);
        vector::axpy(&mut ws.r, -alpha, &ws.w, bounds, 0, &mut trace);

        precon.apply(&ws.r, &mut ws.z, bounds, 0, &mut trace);
        let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
        let rrn = tile.reduce_sum(rz_local, &mut trace);
        if !rrn.is_finite() {
            // check before the NaN-swallowing max(0.0) below — a NaN
            // reduction must read as divergence, not convergence
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            break;
        }

        final_residual = rrn.max(0.0).sqrt();
        if final_residual <= target {
            converged = true;
            status = SolveStatus::Converged;
            break;
        }

        let beta = rrn / rro;
        coeffs.betas.push(beta);
        vector::xpay(&mut ws.p, &ws.z, beta, bounds, 0, &mut trace);
        rro = rrn;
    }

    (
        SolveResult {
            converged,
            iterations,
            initial_residual,
            final_residual,
            status,
            trace,
        },
        coeffs,
    )
}

fn precon_label(p: &Preconditioner) -> &'static str {
    match p {
        Preconditioner::Identity => "none",
        Preconditioner::Diagonal { .. } => "jac_diag",
        Preconditioner::BlockJacobi(_) => "jac_block",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{TileBounds, TileOperator};
    use crate::precon::PreconKind;
    use tea_comms::{HaloLayout, SerialComm};
    use tea_mesh::{
        crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Field2D, Mesh2D,
    };

    pub(crate) fn serial_problem(n: usize, halo: usize) -> (TileOperator, Field2D) {
        serial_problem_dt(n, halo, 0.04)
    }

    fn serial_problem_dt(n: usize, halo: usize, dt: f64) -> (TileOperator, Field2D) {
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, halo);
        let mut energy = Field2D::new(n, n, halo);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, dt);
        let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, halo);
        let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
        // b = u0 = density * energy, the TeaLeaf right-hand side
        let mut b = Field2D::new(n, n, halo);
        for k in 0..n as isize {
            for j in 0..n as isize {
                b.set(j, k, density.at(j, k) * energy.at(j, k));
            }
        }
        (op, b)
    }

    fn check_solution(op: &TileOperator, u: &Field2D, b: &Field2D, tol: f64) {
        let mut t = SolveTrace::new("check");
        let mut r = Field2D::new(u.nx(), u.ny(), u.halo());
        op.residual(u, b, &mut r, 0, &mut t);
        let rel = r.interior_norm() / b.interior_norm();
        assert!(rel <= tol, "residual too large: {rel}");
    }

    #[test]
    fn cg_converges_on_crooked_pipe() {
        let n = 32;
        let (op, b) = serial_problem(n, 1);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = b.clone();
        let m = Preconditioner::setup(PreconKind::None, &op, 0);
        let res = cg_solve_impl(&tile, &mut u, &b, &m, &mut ws, SolveOpts::default());
        assert!(res.converged, "CG must converge: {res:?}");
        assert!(res.iterations > 1);
        check_solution(&op, &u, &b, 1e-8);
    }

    #[test]
    fn preconditioning_reduces_iterations() {
        let n = 32;
        let (op, b) = serial_problem(n, 1);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let mut iters = Vec::new();
        for kind in [
            PreconKind::None,
            PreconKind::Diagonal,
            PreconKind::BlockJacobi,
        ] {
            let m = Preconditioner::setup(kind, &op, 0);
            let mut ws = Workspace::new(n, n, 1);
            let mut u = b.clone();
            let res = cg_solve_impl(&tile, &mut u, &b, &m, &mut ws, SolveOpts::default());
            assert!(res.converged, "{kind:?} failed");
            check_solution(&op, &u, &b, 1e-8);
            iters.push(res.iterations);
        }
        // block-Jacobi must beat plain CG on the contrasty crooked pipe
        assert!(
            iters[2] <= iters[0],
            "block-Jacobi ({}) should not exceed plain CG ({})",
            iters[2],
            iters[0]
        );
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let n = 8;
        let (op, _b) = serial_problem(n, 1);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let mut ws = Workspace::new(n, n, 1);
        let zero = Field2D::new(n, n, 1);
        let mut u = Field2D::new(n, n, 1);
        let m = Preconditioner::setup(PreconKind::None, &op, 0);
        let res = cg_solve_impl(&tile, &mut u, &zero, &m, &mut ws, SolveOpts::default());
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert_eq!(u.interior_norm(), 0.0);
    }

    #[test]
    fn trace_counts_two_reductions_per_iteration() {
        let n = 16;
        let (op, b) = serial_problem(n, 1);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = b.clone();
        let m = Preconditioner::setup(PreconKind::None, &op, 0);
        let res = cg_solve_impl(&tile, &mut u, &b, &m, &mut ws, SolveOpts::default());
        let t = &res.trace;
        // initial rz + 2 per iteration
        assert_eq!(t.reductions, 1 + 2 * res.iterations);
        // one depth-1 exchange for u plus one per iteration for p
        assert_eq!(t.halo_exchanges[&(1, 1)], 1 + res.iterations);
        // one residual + one fused spmv per iteration, all interior
        assert_eq!(t.spmv.total(), 1 + res.iterations);
        assert_eq!(t.spmv.interior_only(), t.spmv.total());
    }

    #[test]
    fn recorded_coefficients_estimate_spectrum() {
        use crate::eigen::estimate_from_cg;
        let n = 24;
        let (op, b) = serial_problem(n, 1);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let mut ws = Workspace::new(n, n, 1);
        let mut u = b.clone();
        let m = Preconditioner::setup(PreconKind::None, &op, 0);
        let (res, coeffs) =
            cg_solve_recording(&tile, &mut u, &b, &m, &mut ws, SolveOpts::default(), 25);
        assert_eq!(res.iterations, 25, "presteps must stop early");
        assert!(!res.converged);
        let (a, be) = coeffs.for_lanczos();
        let est = estimate_from_cg(a, be, 0.0);
        // the operator is I + (SPD stencil): spectrum within (1-eps, 1+8*kmax]
        assert!(est.min >= 0.5, "lambda_min estimate {}", est.min);
        assert!(est.max > est.min);
        assert!(est.max < 100.0, "lambda_max estimate {}", est.max);
    }

    #[test]
    fn warm_start_beats_zero_start() {
        // with a diffusion-limited step (small dt) the previous
        // temperature is near the solution, so the TeaLeaf warm start
        // (u = b = u_old) must start far closer than zero
        let n = 24;
        let (op, b0) = serial_problem_dt(n, 1, 0.002);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let m = Preconditioner::setup(PreconKind::None, &op, 0);

        let mut ws = Workspace::new(n, n, 1);
        let mut u1 = b0.clone();
        let first = cg_solve_impl(&tile, &mut u1, &b0, &m, &mut ws, SolveOpts::default());
        assert!(first.converged);

        // second time step: b = u1 (the smoothed temperature)
        let b = u1.clone();
        let mut u_warm = b.clone();
        let warm = cg_solve_impl(&tile, &mut u_warm, &b, &m, &mut ws, SolveOpts::default());

        let mut u_cold = Field2D::new(n, n, 1);
        let cold = cg_solve_impl(&tile, &mut u_cold, &b, &m, &mut ws, SolveOpts::default());

        assert!(warm.converged && cold.converged);
        assert!(
            warm.initial_residual < cold.initial_residual,
            "warm {} vs cold {}",
            warm.initial_residual,
            cold.initial_residual
        );
    }
}
