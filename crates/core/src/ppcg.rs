//! CPPCG — the Chebyshev Polynomially Preconditioned Conjugate Gradient
//! solver with the matrix-powers kernel (paper §III–IV).
//!
//! The outer loop is standard PCG, but the preconditioner application
//! `z = M⁻¹r` is an `m`-step Chebyshev smoothing of `A z = r` from
//! `z₀ = 0` (paper §III.B–C). Each outer iteration therefore costs `m+1`
//! stencil sweeps but only the **two** outer dot products — the global
//! reduction count per sweep drops by a factor of ~`m` versus plain CG,
//! which is the communication-avoidance the paper quantifies with
//! Eqs. 6–7.
//!
//! Halo traffic inside the inner smoothing is governed by the
//! **matrix-powers kernel** (paper §IV.C.2, Figs. 1–2): with halo depth
//! `h`, one depth-`h` exchange buys `h` stencil applications over loop
//! bounds that shrink by one cell per application, at the cost of
//! redundant computation in the overlap. `PPCG-1` (depth 1) exchanges
//! before every inner step; `PPCG-16` exchanges once or twice per outer
//! iteration.
//!
//! The block-Jacobi preconditioner may additionally smooth the *inner*
//! residual — but only at depth 1, because its strips need fresh whole
//! blocks (paper's stated incompatibility with matrix powers, enforced
//! here at configuration time).

use crate::api::{IterativeSolver, SolveContext, SolverParams};
use crate::cg::cg_solve_recording;
use crate::chebyshev::ChebyConstants;
use crate::eigen::{estimate_from_cg, EigenEstimate};
use crate::precon::{PreconKind, Preconditioner};
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveStatus, SolveTrace};
use crate::vector;
use tea_comms::Communicator;
use tea_mesh::Field2D;

/// CPPCG configuration.
#[derive(Debug, Clone, Copy)]
pub struct PpcgOpts {
    /// Inner Chebyshev smoothing steps per outer iteration (TeaLeaf
    /// `tl_ppcg_inner_steps`).
    pub inner_steps: usize,
    /// Matrix-powers halo depth (the paper's `PPCG - n` label).
    pub halo_depth: usize,
    /// Plain-CG presteps for eigenvalue estimation.
    pub presteps: u64,
    /// Safety widening of the Lanczos bounds.
    pub eigen_safety: f64,
}

impl Default for PpcgOpts {
    fn default() -> Self {
        PpcgOpts {
            inner_steps: 10,
            halo_depth: 1,
            presteps: 30,
            eigen_safety: 0.1,
        }
    }
}

impl PpcgOpts {
    /// The paper's `PPCG - n` configuration: matrix-powers depth `n`
    /// with 16 inner smoothing steps.
    pub fn with_depth(halo_depth: usize) -> Self {
        PpcgOpts {
            halo_depth,
            inner_steps: 16,
            ..Default::default()
        }
    }

    /// Figure-legend label.
    pub fn label(&self) -> String {
        format!("PPCG-{}", self.halo_depth)
    }
}

/// CPPCG as an [`IterativeSolver`]: Chebyshev polynomially
/// preconditioned CG with the matrix-powers deep-halo schedule — the
/// paper's communication-avoiding headliner. The only built-in method
/// whose [`IterativeSolver::halo_depth`] exceeds 1.
#[derive(Debug, Clone, Default)]
pub struct Ppcg {
    kind: PreconKind,
    ppcg: PpcgOpts,
    opts: SolveOpts,
    precon: Option<Preconditioner>,
    hint: Option<EigenEstimate>,
    last_est: Option<EigenEstimate>,
}

impl Ppcg {
    /// A CPPCG solver with preconditioner `kind` and configuration
    /// `ppcg`.
    pub fn new(kind: PreconKind, ppcg: PpcgOpts) -> Self {
        Ppcg {
            kind,
            ppcg,
            opts: SolveOpts::default(),
            precon: None,
            hint: None,
            last_est: None,
        }
    }

    /// Registry factory: consumes `precon`, `inner_steps`, `halo_depth`,
    /// `presteps` and `eigen_safety`.
    pub fn from_params(params: &SolverParams) -> Self {
        Ppcg::new(
            params.precon,
            PpcgOpts {
                inner_steps: params.inner_steps,
                halo_depth: params.halo_depth,
                presteps: params.presteps,
                eigen_safety: params.eigen_safety,
            },
        )
    }
}

impl Ppcg {
    /// The one place the preconditioner is assembled for this solver —
    /// over the matrix-powers extent — used by both `prepare` and the
    /// prepare-on-demand path.
    fn assemble_precon(&self, ctx: &SolveContext<'_>) -> Preconditioner {
        Preconditioner::setup(self.kind, ctx.tile.op, self.ppcg.halo_depth)
    }
}

impl IterativeSolver for Ppcg {
    fn name(&self) -> &'static str {
        "ppcg"
    }

    fn label(&self) -> String {
        self.ppcg.label()
    }

    fn halo_depth(&self) -> usize {
        self.ppcg.halo_depth.max(1)
    }

    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts) {
        self.opts = *opts;
        self.precon = Some(self.assemble_precon(ctx));
    }

    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult {
        if self.precon.is_none() {
            self.precon = Some(self.assemble_precon(ctx));
        }
        let precon = self.precon.as_ref().expect("just prepared");
        let result = ppcg_solve_impl(ctx.tile, u, b, precon, ws, self.opts, self.ppcg, self.hint);
        self.last_est = result
            .trace
            .eigen_bounds
            .map(|(min, max)| EigenEstimate { min, max });
        trace.merge(&result.trace);
        result
    }

    fn set_eigen_hint(&mut self, hint: Option<EigenEstimate>) {
        self.hint = hint;
    }

    fn last_eigen_estimate(&self) -> Option<EigenEstimate> {
        self.last_est
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn ppcg_solve_impl<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    u: &mut Field2D,
    b: &Field2D,
    precon: &Preconditioner,
    ws: &mut Workspace,
    opts: SolveOpts,
    ppcg: PpcgOpts,
    hint: Option<EigenEstimate>,
) -> SolveResult {
    let h = ppcg.halo_depth;
    let m = ppcg.inner_steps;
    assert!(h >= 1, "matrix-powers depth must be at least 1");
    assert!(m >= 1, "need at least one inner step");
    assert!(
        ws.halo() >= h,
        "workspace halo {} shallower than matrix-powers depth {h}",
        ws.halo()
    );
    assert!(
        precon.supports_extension() || h == 1,
        "block-Jacobi cannot be combined with matrix powers (paper §IV.C.2)"
    );
    let bounds = &tile.op.bounds;

    // Phase 1: plain-CG presteps for the spectrum of M⁻¹A.
    let (pre, coeffs) = cg_solve_recording(tile, u, b, precon, ws, opts, ppcg.presteps.max(1));
    if pre.converged || pre.status.is_diverged() || pre.status.is_cancelled() {
        return pre;
    }
    let mut trace = pre.trace;
    trace.solver = ppcg.label().to_string();
    // a pinned estimate (session replay of identical input) skips only
    // the Lanczos analysis; the presteps above still advanced u
    let est: EigenEstimate = hint.unwrap_or_else(|| {
        let (al, be) = coeffs.for_lanczos();
        estimate_from_cg(al, be, ppcg.eigen_safety)
    });
    trace.eigen_bounds = Some((est.min, est.max));
    let consts = ChebyConstants::from_estimate(est);
    let cheb = consts.coefficients(m);

    // Phase 2: outer PCG with the m-step Chebyshev preconditioner.
    tile.exchange(&mut [u], 1, &mut trace);
    tile.op.residual(u, b, &mut ws.r, 0, &mut trace);

    cheb_inner(tile, precon, ws, &consts, &cheb, h, &mut trace);
    trace.inner_iterations += m as u64;
    vector::copy(&mut ws.p, &ws.z, bounds, 0, &mut trace);

    let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
    let mut rro = tile.reduce_sum(rz_local, &mut trace);
    let initial_residual = pre.initial_residual;
    let target = opts.eps * initial_residual;

    let mut converged = false;
    let mut status = SolveStatus::IterationLimit;
    let mut final_residual = pre.final_residual;
    let mut iterations = pre.iterations;

    while iterations < opts.max_iters {
        if tile.controls.should_stop() {
            status = SolveStatus::Cancelled {
                iteration: iterations,
            };
            break;
        }
        iterations += 1;
        trace.outer_iterations += 1;
        tile.controls.poke(iterations, u, &mut ws.r);

        tile.exchange(&mut [&mut ws.p], 1, &mut trace);
        let pw_local = tile.op.apply_fused_dot(&ws.p, &mut ws.w, &mut trace);
        let pw = tile.reduce_sum(pw_local, &mut trace);
        if !pw.is_finite() || pw <= 0.0 {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
            break;
        }
        let alpha = rro / pw;

        vector::axpy(u, alpha, &ws.p, bounds, 0, &mut trace);
        vector::axpy(&mut ws.r, -alpha, &ws.w, bounds, 0, &mut trace);

        cheb_inner(tile, precon, ws, &consts, &cheb, h, &mut trace);
        trace.inner_iterations += m as u64;

        let rz_local = vector::dot_local(&ws.r, &ws.z, bounds, &mut trace);
        let rrn = tile.reduce_sum(rz_local, &mut trace);
        if !rrn.is_finite() {
            status = SolveStatus::Diverged {
                iteration: iterations,
            };
            final_residual = f64::NAN;
            break;
        }
        final_residual = rrn.max(0.0).sqrt();
        if final_residual <= target {
            converged = true;
            status = SolveStatus::Converged;
            break;
        }
        let beta = rrn / rro;
        vector::xpay(&mut ws.p, &ws.z, beta, bounds, 0, &mut trace);
        rro = rrn;
    }

    SolveResult {
        converged,
        iterations,
        initial_residual,
        final_residual,
        status,
        trace,
    }
}

/// The inner m-step Chebyshev solve of `A z ≈ r` from `z = 0`, with the
/// matrix-powers deep-halo schedule.
///
/// Uses `ws.r` as the outer residual (read only), and `ws.z` (result
/// accumulator), `ws.rr` (inner residual) and `ws.sd` as scratch
/// (`ws.tmp` only on the unfused block-Jacobi fallback — the fused
/// sweeps never materialize `A·sd`, so `ws.w` is untouched here).
fn cheb_inner<C: Communicator + ?Sized>(
    tile: &Tile<'_, C>,
    precon: &Preconditioner,
    ws: &mut Workspace,
    consts: &ChebyConstants,
    cheb: &[(f64, f64)],
    h: usize,
    trace: &mut SolveTrace,
) {
    let bounds = &tile.op.bounds;
    let m = cheb.len();
    vector::zero(&mut ws.z, bounds, h, trace);
    vector::copy(&mut ws.rr, &ws.r, bounds, 0, trace);

    if h == 1 {
        // Classic depth-1 schedule: interior-only updates, one exchange
        // per inner step, block-Jacobi allowed. Each step is two fused
        // sweeps: stencil + z/rr updates in one pass (w never stored),
        // then the preconditioned sd recurrence in a second — except
        // block-Jacobi, whose strip solves fall back to the unfused
        // recurrence.
        precon.apply(&ws.rr, &mut ws.tmp, bounds, 0, trace);
        vector::scaled_copy(&mut ws.sd, &ws.tmp, 1.0 / consts.theta, bounds, 0, trace);
        for &(a_k, b_k) in cheb {
            tile.exchange(&mut [&mut ws.sd], 1, trace);
            tile.op
                .apply_cheb_fused(&ws.sd, &mut ws.z, &mut ws.rr, 0, trace);
            if !precon.fused_recurrence(&mut ws.sd, &ws.rr, a_k, b_k, bounds, 0, trace) {
                precon.apply(&ws.rr, &mut ws.tmp, bounds, 0, trace);
                vector::scale_add(&mut ws.sd, a_k, b_k, &ws.tmp, bounds, 0, trace);
            }
        }
        return;
    }

    // Matrix-powers schedule: one depth-h exchange buys h sweeps over
    // shrinking bounds (paper Fig. 2), each depth level fused exactly
    // like the depth-1 step (block-Jacobi never reaches this branch).
    tile.exchange(&mut [&mut ws.rr], h, trace);
    let mut avail = h; // sd/rr validity extension after the exchange
    apply_precon_ext(precon, &ws.rr, &mut ws.tmp, bounds, avail, trace);
    vector::scaled_copy(
        &mut ws.sd,
        &ws.tmp,
        1.0 / consts.theta,
        bounds,
        avail,
        trace,
    );

    for (step, &(a_k, b_k)) in cheb.iter().enumerate() {
        if avail == 0 {
            tile.exchange(&mut [&mut ws.sd, &mut ws.rr], h, trace);
            avail = h;
        }
        // never sweep wider than the remaining steps can use
        let e = (avail - 1).min(m - 1 - step);
        tile.op
            .apply_cheb_fused(&ws.sd, &mut ws.z, &mut ws.rr, e, trace);
        if !precon.fused_recurrence(&mut ws.sd, &ws.rr, a_k, b_k, bounds, e, trace) {
            apply_precon_ext(precon, &ws.rr, &mut ws.tmp, bounds, e, trace);
            vector::scale_add(&mut ws.sd, a_k, b_k, &ws.tmp, bounds, e, trace);
        }
        avail = e;
    }
}

fn apply_precon_ext(
    precon: &Preconditioner,
    r: &Field2D,
    out: &mut Field2D,
    bounds: &crate::ops::TileBounds,
    ext: usize,
    trace: &mut SolveTrace,
) {
    debug_assert!(precon.supports_extension() || ext == 0);
    precon.apply(r, out, bounds, ext, trace);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg_solve_impl;
    use crate::ops::{TileBounds, TileOperator};
    use crate::precon::PreconKind;
    use tea_comms::{HaloLayout, SerialComm};
    use tea_mesh::{crooked_pipe, timestep_scalings, Coefficients, Decomposition2D, Mesh2D};

    fn serial_problem(n: usize, halo: usize) -> (TileOperator, Field2D) {
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, halo);
        let mut energy = Field2D::new(n, n, halo);
        p.apply_states(&mesh, &mut density, &mut energy);
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        let coeffs = Coefficients::assemble(&mesh, &density, p.coefficient, rx, ry, halo);
        let op = TileOperator::new(coeffs, TileBounds::serial(n, n));
        let mut b = Field2D::new(n, n, halo);
        for k in 0..n as isize {
            for j in 0..n as isize {
                b.set(j, k, density.at(j, k) * energy.at(j, k));
            }
        }
        (op, b)
    }

    fn residual_norm(op: &TileOperator, u: &Field2D, b: &Field2D) -> f64 {
        let mut t = SolveTrace::new("check");
        let mut r = Field2D::new(u.nx(), u.ny(), u.halo());
        op.residual(u, b, &mut r, 0, &mut t);
        r.interior_norm() / b.interior_norm()
    }

    fn solve_with(
        n: usize,
        halo: usize,
        kind: PreconKind,
        ppcg_opts: PpcgOpts,
    ) -> (SolveResult, Field2D, TileOperator, Field2D) {
        let (op, b) = serial_problem(n, halo);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let mut ws = Workspace::new(n, n, halo);
        let mut u = b.clone();
        let m = Preconditioner::setup(kind, &op, ppcg_opts.halo_depth);
        let res = ppcg_solve_impl(
            &tile,
            &mut u,
            &b,
            &m,
            &mut ws,
            SolveOpts::with_eps(1e-9),
            ppcg_opts,
            None,
        );
        (res, u, op, b)
    }

    #[test]
    fn ppcg_depth1_converges() {
        let (res, u, op, b) = solve_with(32, 1, PreconKind::None, PpcgOpts::default());
        assert!(res.converged, "{res:?}");
        assert!(residual_norm(&op, &u, &b) < 1e-7);
    }

    #[test]
    fn ppcg_with_block_jacobi_at_depth1() {
        let (res, u, op, b) = solve_with(32, 1, PreconKind::BlockJacobi, PpcgOpts::default());
        assert!(res.converged);
        assert!(residual_norm(&op, &u, &b) < 1e-7);
    }

    #[test]
    #[should_panic]
    fn block_jacobi_with_matrix_powers_rejected() {
        let _ = solve_with(32, 4, PreconKind::BlockJacobi, PpcgOpts::with_depth(4));
    }

    #[test]
    fn matrix_powers_depths_give_identical_results() {
        // In exact arithmetic the matrix-powers kernel only changes *when*
        // halos move, not the values computed; on a serial tile every
        // extension clamps to zero, so results are bitwise identical.
        // This is the Fig. 1/Fig. 2 equivalence.
        let (r1, u1, op, b) = solve_with(24, 1, PreconKind::None, PpcgOpts::with_depth(1));
        let (r8, u8, _, _) = solve_with(24, 8, PreconKind::None, PpcgOpts::with_depth(8));
        assert!(r1.converged && r8.converged);
        assert_eq!(r1.iterations, r8.iterations, "same math, same iterations");
        for k in 0..24isize {
            for j in 0..24isize {
                assert_eq!(u1.at(j, k), u8.at(j, k), "solution differs at ({j},{k})");
            }
        }
        assert!(residual_norm(&op, &u1, &b) < 1e-7);
    }

    #[test]
    fn deeper_halo_means_fewer_exchanges() {
        let (r1, ..) = solve_with(32, 1, PreconKind::None, PpcgOpts::with_depth(1));
        let (r16, ..) = solve_with(32, 16, PreconKind::None, PpcgOpts::with_depth(16));
        assert_eq!(
            r1.iterations, r16.iterations,
            "same math must take the same iterations"
        );
        // exclude the identical CG-prestep phase (presteps p-exchanges +
        // one u-exchange each), leaving only the PPCG phase protocol
        let presteps = PpcgOpts::with_depth(1).presteps + 1;
        let ex1 = r1.trace.total_halo_exchanges() - presteps;
        let ex16 = r16.trace.total_halo_exchanges() - presteps;
        assert!(
            (ex16 as f64) < (ex1 as f64) * 0.25,
            "depth 16 must slash exchange count: {ex16} vs {ex1}"
        );
        // while moving roughly the same total volume (strip units scale
        // with depth x count; same sweeps -> comparable data)
        let v1 = r1.trace.halo_strip_units() - presteps;
        let v16 = r16.trace.halo_strip_units() - presteps;
        let ratio = v16 as f64 / v1 as f64;
        assert!(
            ratio > 0.5 && ratio < 2.5,
            "total halo volume should be comparable, ratio {ratio}"
        );
    }

    #[test]
    fn ppcg_slashes_reductions_versus_cg() {
        let n = 32;
        let (op, b) = serial_problem(n, 1);
        let comm = SerialComm::new();
        let d = Decomposition2D::with_grid(n, n, 1, 1);
        let layout = HaloLayout::new(&d, 0);
        let tile = Tile::new(&op, &layout, &comm);
        let m = Preconditioner::setup(PreconKind::None, &op, 0);

        let mut ws = Workspace::new(n, n, 1);
        let mut u1 = b.clone();
        let cg = cg_solve_impl(&tile, &mut u1, &b, &m, &mut ws, SolveOpts::with_eps(1e-9));

        let (pp, u2, ..) = solve_with(n, 1, PreconKind::None, PpcgOpts::default());
        assert!(cg.converged && pp.converged);
        // reductions per spmv sweep is the communication-avoidance metric
        let cg_ratio = cg.trace.reductions as f64 / cg.trace.spmv.total() as f64;
        let pp_ratio = pp.trace.reductions as f64 / pp.trace.spmv.total() as f64;
        assert!(
            pp_ratio < 0.5 * cg_ratio,
            "CPPCG must reduce reductions per sweep: {pp_ratio} vs {cg_ratio}"
        );
        // both reach the same solution
        for k in 0..n as isize {
            for j in 0..n as isize {
                assert!(
                    (u1.at(j, k) - u2.at(j, k)).abs() < 1e-5 * u1.at(j, k).abs().max(1.0),
                    "solutions diverge at ({j},{k})"
                );
            }
        }
    }

    #[test]
    fn inner_iterations_counted() {
        let (res, ..) = solve_with(24, 1, PreconKind::None, PpcgOpts::default());
        let presteps = PpcgOpts::default().presteps.min(res.iterations);
        let outer_after_pre = res.trace.outer_iterations - presteps;
        if outer_after_pre > 0 {
            // one initial application plus one per outer iteration
            assert_eq!(
                res.trace.inner_iterations,
                (outer_after_pre + 1) * PpcgOpts::default().inner_steps as u64
            );
        }
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(PpcgOpts::with_depth(16).label(), "PPCG-16");
        assert_eq!(PpcgOpts::default().label(), "PPCG-1");
    }
}
