//! The unified solver API: the [`IterativeSolver`] trait and the types
//! every solver is driven through.
//!
//! The TeaLeaf paper is a *design-space exploration* of iterative sparse
//! solvers, so the solver itself must be a first-class, swappable value:
//! a config-carrying struct implementing [`IterativeSolver`], selected by
//! name from a [`crate::SolverRegistry`] and driven through the uniform
//! `prepare`/`solve` protocol. The time-stepping driver, the benches and
//! the examples all speak this interface; adding a new method means
//! implementing the trait and registering a factory — no driver surgery.
//!
//! Three layers, thinnest on top:
//!
//! 1. [`crate::Solve`] — the one-expression builder entry point;
//! 2. [`crate::SolverRegistry`] — string-keyed construction + metadata;
//! 3. [`IterativeSolver`] — the trait each method implements.

use crate::eigen::EigenEstimate;
use crate::precon::PreconKind;
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveTrace};
use std::any::Any;
use tea_comms::Communicator;
use tea_mesh::{Coefficient, Field2D};

/// A [`Tile`] with a type-erased communicator: the form trait-object
/// solvers are written against. Any concrete tile converts via
/// [`Communicator::as_dyn`].
pub type DynTile<'a> = Tile<'a, dyn Communicator + 'a>;

/// How the operator was assembled from the physics fields. Most solvers
/// never look at this; hierarchy-building preconditioners (the AMG
/// baseline in `tea-amg`) rebuild their coarse grids from it.
#[derive(Clone, Copy)]
pub struct Assembly<'a> {
    /// Cell density field (halo at least as deep as the operator's).
    pub density: &'a Field2D,
    /// Conductivity recipe used for the face coefficients.
    pub coefficient: Coefficient,
    /// Timestep scaling `Δt/Δx²`.
    pub rx: f64,
    /// Timestep scaling `Δt/Δy²`.
    pub ry: f64,
}

/// Everything a solver may draw on for one solve: the tile (operator +
/// halo layout + communicator) and, when available, the assembly recipe
/// behind the operator.
#[derive(Clone, Copy)]
pub struct SolveContext<'a> {
    /// The rank's tile with a type-erased communicator.
    pub tile: &'a DynTile<'a>,
    /// Operator provenance for hierarchy-building solvers (`None` when
    /// the caller only has the assembled operator).
    pub assembly: Option<Assembly<'a>>,
}

impl<'a> SolveContext<'a> {
    /// Context carrying only the tile.
    pub fn new(tile: &'a DynTile<'a>) -> Self {
        SolveContext {
            tile,
            assembly: None,
        }
    }

    /// Context carrying the tile and the operator's assembly recipe.
    pub fn with_assembly(tile: &'a DynTile<'a>, assembly: Assembly<'a>) -> Self {
        SolveContext {
            tile,
            assembly: Some(assembly),
        }
    }
}

/// Generic knobs a solver factory may consume (each solver reads only
/// the fields its method uses; see [`crate::SolverMeta`] for which).
///
/// The defaults reproduce the application driver's defaults, so a
/// registry-built solver with `SolverParams::default()` behaves exactly
/// like the pre-registry driver did.
#[derive(Debug, Clone)]
pub struct SolverParams {
    /// Preconditioner for the methods that accept one.
    pub precon: PreconKind,
    /// Inner Chebyshev smoothing steps per outer iteration (PPCG).
    pub inner_steps: usize,
    /// Matrix-powers halo depth (PPCG's `PPCG - n`).
    pub halo_depth: usize,
    /// Plain-CG presteps for eigenvalue estimation (Chebyshev, PPCG,
    /// Richardson).
    pub presteps: u64,
    /// Safety widening of the Lanczos eigenvalue bounds.
    pub eigen_safety: f64,
    /// Convergence-check cadence for the reduction-avoiding methods
    /// (Chebyshev, Richardson): one global reduction per this many
    /// iterations.
    pub check_interval: u64,
    /// Seed for the `auto` pseudo-solver's deterministic candidate
    /// search (deck `tl_tune_seed`, CLI `--tune-seed`). Ignored by the
    /// concrete methods.
    pub tune_seed: u64,
}

impl Default for SolverParams {
    fn default() -> Self {
        SolverParams {
            precon: PreconKind::None,
            inner_steps: 16,
            halo_depth: 1,
            presteps: 30,
            eigen_safety: 0.1,
            check_interval: 10,
            tune_seed: 0,
        }
    }
}

/// Arithmetic-precision policy of a solver — a first-class axis of the
/// design space alongside method, preconditioner and halo depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Precision {
    /// Every kernel in double precision (the reference behaviour).
    #[default]
    F64,
    /// Every kernel in single precision. Memory traffic halves, but the
    /// attainable residual is limited by `f32` round-off — honest only
    /// for loose tolerances or precision studies.
    F32,
    /// Classic iterative refinement: the preconditioner (and, for PPCG,
    /// the inner Chebyshev smoothing) runs in `f32` while the outer
    /// recurrence, reductions and convergence test stay in `f64`, so the
    /// solve still reaches `f64` tolerances.
    Mixed,
}

impl Precision {
    /// Deck/CLI spelling (`"f64"`, `"f32"`, `"mixed"`).
    pub fn label(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
            Precision::Mixed => "mixed",
        }
    }

    /// Parses a deck/CLI spelling (`f64`/`double`, `f32`/`single`,
    /// `mixed`), ASCII case-insensitive.
    ///
    /// # Errors
    /// Returns a message listing the accepted spellings.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text.trim().to_ascii_lowercase().as_str() {
            "f64" | "double" => Ok(Precision::F64),
            "f32" | "single" => Ok(Precision::F32),
            "mixed" => Ok(Precision::Mixed),
            other => Err(format!(
                "unknown precision '{other}' (accepted: f64, f32, mixed)"
            )),
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Precision::parse(s)
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Static metadata the registry serves for each solver: what the method
/// needs from its environment and which [`SolverParams`] it honours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverMeta {
    /// Canonical registry key (`"cg"`, `"ppcg"`, ...).
    pub name: &'static str,
    /// Accepted alternative names (deck/CLI spellings).
    pub aliases: &'static [&'static str],
    /// One-line description for `--list-solvers` and docs.
    pub summary: &'static str,
    /// Whether the method applies [`SolverParams::precon`].
    pub preconditioned: bool,
    /// Whether the method runs CG presteps to estimate the spectrum
    /// (consumes `presteps`/`eigen_safety`).
    pub needs_eigen_estimate: bool,
    /// Whether the method consumes [`SolverParams::halo_depth`] for
    /// matrix-powers deep halos (fields and workspace must be allocated
    /// at least that deep).
    pub deep_halo: bool,
    /// Whether the method only runs on a single rank (the AMG baseline;
    /// its distributed behaviour enters through trace replay).
    pub serial_only: bool,
    /// The method's arithmetic-precision policy (`tl_precision` resolves
    /// solver names through this).
    pub precision: Precision,
    /// Whether the auto-tuner may pick this method as a candidate.
    /// `false` for diagnostic baselines (Jacobi), serial-only methods
    /// (AMG) and the `auto` pseudo-solver itself.
    pub tunable: bool,
}

/// Why a solver could not be resolved or run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The requested name matches no registered solver. Carries the
    /// registered names so callers (deck parser, CLI) can report them.
    UnknownSolver {
        /// The name that failed to resolve.
        requested: String,
        /// Canonical names currently registered.
        known: Vec<String>,
    },
    /// The requested precision has no registered variant of the solver
    /// (e.g. `tl_precision=mixed` with the serial-only AMG baseline).
    PrecisionUnsupported {
        /// The solver whose variant is missing.
        solver: String,
        /// The precision that was requested.
        precision: Precision,
        /// Why the combination is rejected.
        reason: String,
    },
}

impl std::fmt::Display for SolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverError::UnknownSolver { requested, known } => write!(
                f,
                "unknown solver '{requested}' (registered: {})",
                known.join(", ")
            ),
            SolverError::PrecisionUnsupported {
                solver,
                precision,
                reason,
            } => write!(
                f,
                "solver '{solver}' cannot run at precision '{precision}': {reason}"
            ),
        }
    }
}

impl std::error::Error for SolverError {}

/// One iterative method of the design space, carrying its own
/// configuration (preconditioner kind, inner steps, halo depth, ...).
///
/// The protocol mirrors the time-stepping driver's loop:
///
/// 1. [`IterativeSolver::prepare`] once per operator — (re)build
///    operator-derived state such as the assembled preconditioner and
///    latch the convergence options;
/// 2. [`IterativeSolver::solve`] per right-hand side — run the method,
///    merging its communication/computation protocol into the caller's
///    accumulated [`SolveTrace`].
///
/// `solve` also prepares on demand, so single-shot callers may skip
/// step 1. The supertrait `Any` lets drivers recover solver-specific
/// diagnostics (e.g. the AMG V-cycle trace) by downcasting without the
/// solve path ever branching on the concrete type; `Send` lets a
/// prepared solver move between the scheduler threads of a serving
/// queue (every in-tree solver is plain owned data).
pub trait IterativeSolver: Any + Send {
    /// Canonical registry name (`"cg"`, `"ppcg"`, ...).
    fn name(&self) -> &'static str;

    /// Figure-legend label reflecting the configuration (e.g.
    /// `"PPCG-8"`).
    fn label(&self) -> String;

    /// Halo depth the solver's fields and [`Workspace`] must carry (1
    /// for everything except matrix-powers configurations).
    fn halo_depth(&self) -> usize {
        1
    }

    /// (Re)builds operator-derived state — assembled preconditioners,
    /// cached diagonals — against `ctx`'s operator, and latches `opts`
    /// for subsequent [`IterativeSolver::solve`] calls. Must be called
    /// again whenever the operator changes (the driver reassembles every
    /// time step).
    fn prepare(&mut self, ctx: &SolveContext<'_>, opts: &SolveOpts);

    /// Solves `A u = b` with `u` entering as the initial guess, using
    /// the options latched by the last [`IterativeSolver::prepare`]
    /// (defaults if never prepared — implementations prepare on demand).
    /// The solve's protocol is merged into `trace` and also returned
    /// inside the [`SolveResult`].
    fn solve(
        &mut self,
        ctx: &SolveContext<'_>,
        u: &mut Field2D,
        b: &Field2D,
        ws: &mut Workspace,
        trace: &mut SolveTrace,
    ) -> SolveResult;

    /// Takes any solver-specific diagnostics accumulated since the last
    /// call (e.g. the AMG solver's V-cycle trace), type-erased so the
    /// driver never branches on the concrete solver. Callers downcast
    /// to the payload types they know how to report. Default: `None`.
    fn take_diagnostics(&mut self) -> Option<Box<dyn Any>> {
        None
    }

    /// Pins the eigenvalue estimate the next solve would otherwise
    /// derive from its CG-Lanczos presteps (Chebyshev, Richardson, the
    /// PPCG family). The presteps still run — they advance the solution
    /// exactly as before — but the spectrum analysis is skipped in
    /// favour of `hint`. `None` clears a previous pin. Methods without
    /// an eigen prelude ignore this (the default).
    fn set_eigen_hint(&mut self, _hint: Option<EigenEstimate>) {}

    /// The eigenvalue estimate the last solve actually used — computed
    /// from its presteps or pinned via
    /// [`IterativeSolver::set_eigen_hint`]. `None` for methods without
    /// an eigen prelude (the default) or before the first solve. A
    /// session harvests this to seed the next solve on identical input.
    fn last_eigen_estimate(&self) -> Option<EigenEstimate> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_driver_defaults() {
        let p = SolverParams::default();
        assert_eq!(p.precon, PreconKind::None);
        assert_eq!(p.inner_steps, 16);
        assert_eq!(p.halo_depth, 1);
        assert_eq!(p.presteps, 30);
        assert_eq!(p.eigen_safety, 0.1);
        assert_eq!(p.check_interval, 10);
        assert_eq!(p.tune_seed, 0);
    }

    #[test]
    fn unknown_solver_error_lists_names() {
        let e = SolverError::UnknownSolver {
            requested: "sor".into(),
            known: vec!["cg".into(), "ppcg".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("'sor'"), "{msg}");
        assert!(msg.contains("cg, ppcg"), "{msg}");
    }
}
