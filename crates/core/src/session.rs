//! Reusable solve sessions and the setup cache behind batched serving.
//!
//! The [`crate::Solve`] builder is one-shot: every [`crate::Solve::run`]
//! allocates a tile, a workspace and a solver, prepares, solves, and
//! throws the lot away. That is the right shape for a single solve, but
//! a serving queue that drains hundreds of decks — many of them
//! identical — pays the setup tax over and over: workspace allocation,
//! preconditioner assembly, and (for the Chebyshev family) the CG
//! prelude's Lanczos eigenvalue analysis.
//!
//! This module splits the builder into a reusable pair:
//!
//! * [`SolveSession`] owns everything `Solve::run` allocated per call —
//!   operator, halo layout, serial communicator, workspace, solver
//!   instance — and keeps it alive across solves. Preparation happens
//!   once; subsequent [`SolveSession::solve`] calls skip it.
//! * [`PreparedSolve`] is the borrowed proof that preparation has run:
//!   obtained from [`SolveSession::prepare`], its `solve` never
//!   re-prepares.
//!
//! On top sits a keyed pool: [`SetupKey`] fingerprints the setup —
//! geometry, coefficient bits, solver configuration, precision, halo
//! depth — and [`SetupCache`] maps keys to idle sessions so repeated
//! decks check out a warm session instead of building a cold one. Hit
//! and miss counters feed the serving run summary.
//!
//! Sessions also memoise eigenvalue estimates: a solve over bit-
//! identical `(u, b, opts)` pins the previous [`EigenEstimate`] via
//! [`crate::IterativeSolver::set_eigen_hint`], skipping the Lanczos
//! analysis while still running the CG presteps (they advance `u`, so
//! skipping them would change results). Because the hint only fires on
//! bit-identical input, a warm solve is bit-identical to a cold one.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::api::{
    Assembly, DynTile, IterativeSolver, Precision, SolveContext, SolverError, SolverParams,
};
use crate::eigen::EigenEstimate;
use crate::mixed::solver_for_precision;
use crate::ops::TileOperator;
use crate::precon::PreconKind;
use crate::registry::SolverRegistry;
use crate::solver::{SolveOpts, Tile, Workspace};
use crate::trace::{SolveResult, SolveTrace};
use tea_comms::{Communicator, HaloLayout, SerialComm, StatsSnapshot};
use tea_mesh::{Coefficient, Decomposition2D, Field2D};

/// Everything a session needs to know besides the operator: which
/// solver, at which precision, with which convergence options and
/// method knobs. The session analogue of the [`crate::Solve`] builder's
/// configuration half.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Solver name (canonical or alias) to resolve in the registry.
    pub solver: String,
    /// Optional precision routing (`None` runs the name as registered).
    pub precision: Option<Precision>,
    /// Convergence options latched at prepare time.
    pub opts: SolveOpts,
    /// Method knobs consumed by the solver factory.
    pub params: SolverParams,
}

impl Default for SessionSpec {
    fn default() -> Self {
        SessionSpec {
            solver: "cg".to_string(),
            precision: None,
            opts: SolveOpts::default(),
            params: SolverParams::default(),
        }
    }
}

impl SessionSpec {
    /// Spec for `solver` with every other knob at its default.
    pub fn solver(name: impl Into<String>) -> Self {
        SessionSpec {
            solver: name.into(),
            ..SessionSpec::default()
        }
    }
}

/// Identity of a prepared setup: two jobs with equal keys can share a
/// [`SolveSession`] and get bit-identical results.
///
/// The key follows the serving design: geometry, a fingerprint of the
/// assembled face coefficients, the canonical solver name, the
/// requested precision and the solver's halo depth. The fingerprint is
/// deliberately broader than the coefficients alone — it also folds in
/// the solver parameters (preconditioner, inner steps, presteps,
/// eigenvalue safety, check interval) and the convergence options,
/// because a prepared solver latches all of those: reusing a session
/// across jobs that differ in any of them would silently change
/// results.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SetupKey {
    /// Interior cells in x.
    pub nx: usize,
    /// Interior cells in y.
    pub ny: usize,
    /// FNV-1a over the coefficient bits, solver parameters and options.
    pub fingerprint: u64,
    /// Canonical registry name after precision routing (`"cg_f32"`, not
    /// `"cg"` + `F32`).
    pub solver: String,
    /// Requested precision label (`"native"` when the spec did not
    /// route).
    pub precision: &'static str,
    /// Halo depth of the built solver (matrix-powers depth for PPCG).
    pub halo_depth: usize,
}

impl SetupKey {
    /// Computes the key a [`SolveSession::build`] over `(op, spec)`
    /// would carry, without building the session's workspace. Cheap
    /// enough to call per job: it resolves the name and constructs the
    /// (field-free) solver object only to read its halo depth.
    ///
    /// # Errors
    /// [`SolverError`] when the name or precision does not resolve.
    pub fn probe(op: &TileOperator, spec: &SessionSpec) -> Result<SetupKey, SolverError> {
        Self::probe_with(op, spec, builtin_registry())
    }

    /// [`SetupKey::probe`] against a caller-supplied registry.
    ///
    /// # Errors
    /// [`SolverError`] when the name or precision does not resolve.
    pub fn probe_with(
        op: &TileOperator,
        spec: &SessionSpec,
        registry: &SolverRegistry,
    ) -> Result<SetupKey, SolverError> {
        let (_, key) = resolve_key(op, spec, registry)?;
        Ok(key)
    }
}

fn builtin_registry() -> &'static SolverRegistry {
    static BUILTIN: OnceLock<SolverRegistry> = OnceLock::new();
    BUILTIN.get_or_init(SolverRegistry::builtin)
}

/// Resolves `spec` against `registry` and returns the create-name (the
/// precision-routed spelling to pass to [`SolverRegistry::create`])
/// plus the session's [`SetupKey`].
fn resolve_key(
    op: &TileOperator,
    spec: &SessionSpec,
    registry: &SolverRegistry,
) -> Result<(String, SetupKey), SolverError> {
    let name = match spec.precision {
        Some(p) => solver_for_precision(&spec.solver, p, registry)?,
        None => spec.solver.clone(),
    };
    let canonical = registry.resolve(&name)?.name.to_string();
    // Halo depth is a property of the built instance (PPCG reads it
    // from its params), so build one to ask it.
    let probe = registry.create(&name, &spec.params)?;
    let (nx, ny) = op.bounds.tile();
    let key = SetupKey {
        nx,
        ny,
        fingerprint: fingerprint(op, spec),
        solver: canonical,
        precision: spec.precision.map(Precision::label).unwrap_or("native"),
        halo_depth: probe.halo_depth(),
    };
    Ok((name, key))
}

/// 64-bit FNV-1a accumulator.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push_u64(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }
}

/// Hashes every allocated coefficient bit (interior and ghosts — deep-
/// halo methods read the ghosts) plus the solver parameters and options
/// a prepared solver latches.
fn fingerprint(op: &TileOperator, spec: &SessionSpec) -> u64 {
    let mut h = Fnv::new();
    let (nx, ny) = op.bounds.tile();
    for field in [&op.coeffs.kx, &op.coeffs.ky] {
        let depth = field.halo() as isize;
        for k in -depth..ny as isize + depth {
            for &v in field.row(k, -depth, nx as isize + depth) {
                h.push_f64(v);
            }
        }
    }
    let p = &spec.params;
    h.push_u64(match p.precon {
        PreconKind::None => 0,
        PreconKind::Diagonal => 1,
        PreconKind::BlockJacobi => 2,
    });
    h.push_u64(p.inner_steps as u64);
    h.push_u64(p.halo_depth as u64);
    h.push_u64(p.presteps);
    h.push_f64(p.eigen_safety);
    h.push_u64(p.check_interval);
    h.push_u64(p.tune_seed);
    h.push_f64(spec.opts.eps);
    h.push_u64(spec.opts.max_iters);
    h.0
}

/// Memo key for the eigen-estimate cache: every bit of `u` and `b`
/// (ghosts included) plus the convergence options. Identical key means
/// the CG prelude would recompute the identical estimate, so pinning
/// the memoised one changes nothing but the Lanczos work.
fn eigen_memo_key(u: &Field2D, b: &Field2D, opts: &SolveOpts) -> u64 {
    let mut h = Fnv::new();
    for field in [u, b] {
        let depth = field.halo() as isize;
        let (nx, ny) = (field.nx() as isize, field.ny() as isize);
        for k in -depth..ny + depth {
            for &v in field.row(k, -depth, nx + depth) {
                h.push_f64(v);
            }
        }
    }
    h.push_f64(opts.eps);
    h.push_u64(opts.max_iters);
    h.0
}

/// Assembly provenance a session can own (the borrowed
/// [`Assembly`] is rebuilt from it per solve) so hierarchy-building
/// solvers like AMG can live in sessions too.
struct OwnedAssembly {
    density: Field2D,
    coefficient: Coefficient,
    rx: f64,
    ry: f64,
}

/// A reusable solve: owns the operator, tile plumbing, workspace and
/// solver instance, so repeated solves skip allocation and — after the
/// first call — preparation.
///
/// ```
/// use tea_core::{crooked_pipe_system, SessionSpec, SolveSession};
///
/// let (op, b) = crooked_pipe_system(24, 0.04, 1);
/// let mut session = SolveSession::build(op, &SessionSpec::default()).unwrap();
/// let mut u = b.clone();
/// let first = session.prepare().solve(&mut u, &b);
/// let again = session.solve(&mut u, &b); // reuses the prepared state
/// assert!(first.converged && again.converged);
/// assert_eq!(session.prepare_count(), 1);
/// ```
///
/// Sessions are `Send`: a serving queue can move idle sessions between
/// worker threads. They are not `Sync`; one session runs one solve at a
/// time.
pub struct SolveSession {
    op: TileOperator,
    layout: HaloLayout,
    comm: SerialComm,
    ws: Workspace,
    solver: Box<dyn IterativeSolver>,
    opts: SolveOpts,
    key: SetupKey,
    assembly: Option<OwnedAssembly>,
    prepared: bool,
    prepares: u64,
    solves: u64,
    eigen_memo: BTreeMap<u64, EigenEstimate>,
    eigen_hits: u64,
}

impl SolveSession {
    /// Builds a session over `op` from `spec`, resolving the solver in
    /// the builtin registry. Nothing is prepared yet — the first
    /// [`SolveSession::solve`] (or an explicit
    /// [`SolveSession::prepare`]) does that.
    ///
    /// # Errors
    /// [`SolverError`] when the name or precision does not resolve.
    pub fn build(op: TileOperator, spec: &SessionSpec) -> Result<Self, SolverError> {
        Self::with_registry(op, spec, builtin_registry())
    }

    /// [`SolveSession::build`] against a caller-supplied registry (the
    /// app composes tea-amg's `amg` in this way).
    ///
    /// # Errors
    /// [`SolverError`] when the name or precision does not resolve.
    pub fn with_registry(
        op: TileOperator,
        spec: &SessionSpec,
        registry: &SolverRegistry,
    ) -> Result<Self, SolverError> {
        let (create_name, key) = resolve_key(&op, spec, registry)?;
        let solver = registry.create(&create_name, &spec.params)?;
        let (nx, ny) = op.bounds.tile();
        let decomp = Decomposition2D::with_grid(nx, ny, 1, 1);
        let layout = HaloLayout::new(&decomp, 0);
        let ws = Workspace::new(nx, ny, solver.halo_depth());
        Ok(SolveSession {
            op,
            layout,
            comm: SerialComm::new(),
            ws,
            solver,
            opts: spec.opts,
            key,
            assembly: None,
            prepared: false,
            prepares: 0,
            solves: 0,
            eigen_memo: BTreeMap::new(),
            eigen_hits: 0,
        })
    }

    /// Attaches the assembly recipe behind the operator, for solvers
    /// whose `prepare` rebuilds a hierarchy from it (AMG). `density`
    /// must carry a halo at least as deep as the operator's
    /// coefficients.
    #[must_use]
    pub fn with_assembly(
        mut self,
        density: Field2D,
        coefficient: Coefficient,
        rx: f64,
        ry: f64,
    ) -> Self {
        self.assembly = Some(OwnedAssembly {
            density,
            coefficient,
            rx,
            ry,
        });
        self
    }

    /// The identity under which this session pools in a [`SetupCache`].
    pub fn setup_key(&self) -> &SetupKey {
        &self.key
    }

    /// The session's operator (shared with every solve it runs).
    pub fn operator(&self) -> &TileOperator {
        &self.op
    }

    /// Human-readable solver label (e.g. `"PPCG-16"`).
    pub fn solver_label(&self) -> String {
        self.solver.label()
    }

    /// Convergence options latched at prepare time.
    pub fn opts(&self) -> &SolveOpts {
        &self.opts
    }

    /// How many times this session has run the solver's `prepare` —
    /// exactly once for any number of solves, which is the point.
    pub fn prepare_count(&self) -> u64 {
        self.prepares
    }

    /// Solves completed by this session.
    pub fn solve_count(&self) -> u64 {
        self.solves
    }

    /// Solves that pinned a memoised eigenvalue estimate instead of
    /// re-running the Lanczos analysis.
    pub fn eigen_hits(&self) -> u64 {
        self.eigen_hits
    }

    /// Whether `prepare` has already run.
    pub fn is_prepared(&self) -> bool {
        self.prepared
    }

    /// Drains the solver's type-erased diagnostics (AMG's multigrid
    /// trace) — the session pass-through of
    /// [`IterativeSolver::take_diagnostics`].
    pub fn take_diagnostics(&mut self) -> Option<Box<dyn std::any::Any>> {
        self.solver.take_diagnostics()
    }

    /// Zeroes the session communicator's counters — the serving queue
    /// calls this at job checkout so [`SolveSession::comm_stats`] at
    /// job end reads per-job traffic, not lifetime traffic.
    pub fn reset_comm_stats(&self) {
        self.comm.stats().reset();
    }

    /// Communication counters since the last
    /// [`SolveSession::reset_comm_stats`].
    pub fn comm_stats(&self) -> StatsSnapshot {
        self.comm.stats().snapshot()
    }

    /// Runs the solver's `prepare` against the session operator if it
    /// has not run yet, and returns the handle whose `solve` is
    /// guaranteed not to re-prepare.
    pub fn prepare(&mut self) -> PreparedSolve<'_> {
        self.ensure_prepared();
        PreparedSolve { session: self }
    }

    /// Solves `A u = b` with `u` entering as the initial guess,
    /// preparing on first use and reusing the prepared state (and any
    /// memoised eigenvalue estimate) afterwards.
    pub fn solve(&mut self, u: &mut Field2D, b: &Field2D) -> SolveResult {
        self.solve_controlled(u, b, crate::control::SolveControls::default())
    }

    /// [`SolveSession::solve`] with an armed control bundle: the
    /// serving path's entry point for deadlines, cancellation and fault
    /// probes. When a probe is armed the eigenvalue memo is bypassed in
    /// both directions — a fault-perturbed solve must neither consume a
    /// clean memoised spectrum slot's semantics nor deposit a poisoned
    /// estimate for later clean solves.
    pub fn solve_controlled(
        &mut self,
        u: &mut Field2D,
        b: &Field2D,
        controls: crate::control::SolveControls<'_>,
    ) -> SolveResult {
        self.ensure_prepared();
        let probed = controls.probe.is_some();
        let memo_key = eigen_memo_key(u, b, &self.opts);
        let hint = if probed {
            None
        } else {
            self.eigen_memo.get(&memo_key).copied()
        };
        if hint.is_some() {
            self.eigen_hits += 1;
        }
        self.solver.set_eigen_hint(hint);
        let tile: DynTile<'_> =
            Tile::with_controls(&self.op, &self.layout, self.comm.as_dyn(), controls);
        let ctx = match &self.assembly {
            Some(a) => SolveContext::with_assembly(
                &tile,
                Assembly {
                    density: &a.density,
                    coefficient: a.coefficient,
                    rx: a.rx,
                    ry: a.ry,
                },
            ),
            None => SolveContext::new(&tile),
        };
        let mut trace = SolveTrace::new(self.solver.label());
        let result = self.solver.solve(&ctx, u, b, &mut self.ws, &mut trace);
        // Clear the pin so a stale spectrum never leaks into a solve
        // over different input, then memoise what this solve measured.
        self.solver.set_eigen_hint(None);
        if !probed && !result.status.is_diverged() && !result.status.is_cancelled() {
            if let Some(est) = self.solver.last_eigen_estimate() {
                self.eigen_memo.insert(memo_key, est);
            }
        }
        self.solves += 1;
        result
    }

    fn ensure_prepared(&mut self) {
        if self.prepared {
            return;
        }
        let tile: DynTile<'_> = Tile::new(&self.op, &self.layout, self.comm.as_dyn());
        let ctx = match &self.assembly {
            Some(a) => SolveContext::with_assembly(
                &tile,
                Assembly {
                    density: &a.density,
                    coefficient: a.coefficient,
                    rx: a.rx,
                    ry: a.ry,
                },
            ),
            None => SolveContext::new(&tile),
        };
        self.solver.prepare(&ctx, &self.opts);
        self.prepared = true;
        self.prepares += 1;
    }
}

/// Borrowed proof that a session is prepared: `solve` through this
/// handle never re-runs preparation. Obtained from
/// [`SolveSession::prepare`].
pub struct PreparedSolve<'s> {
    session: &'s mut SolveSession,
}

impl PreparedSolve<'_> {
    /// Solves `A u = b` with `u` entering as the initial guess.
    pub fn solve(&mut self, u: &mut Field2D, b: &Field2D) -> SolveResult {
        self.session.solve(u, b)
    }

    /// The underlying session (for counters and keys).
    pub fn session(&self) -> &SolveSession {
        self.session
    }
}

/// Setup-cache counters surfaced in the serving run summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Checkouts that found a warm session.
    pub hits: u64,
    /// Checkouts that found nothing (the caller builds cold).
    pub misses: u64,
    /// Total `prepare` calls across the pooled sessions.
    pub prepares: u64,
}

/// A keyed pool of idle [`SolveSession`]s shared across serving
/// workers. Checkout pops a warm session for the key (hit) or reports a
/// miss; the caller builds a cold session on miss and checks whichever
/// one it used back in when the job ends.
///
/// Interior-locked, so workers share it behind a plain `Arc`.
#[derive(Default)]
pub struct SetupCache {
    pool: Mutex<BTreeMap<SetupKey, Vec<SolveSession>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SetupCache {
    /// An empty cache.
    pub fn new() -> Self {
        SetupCache::default()
    }

    /// Pops an idle session for `key`, counting a hit or a miss.
    pub fn checkout(&self, key: &SetupKey) -> Option<SolveSession> {
        let mut pool = crate::sync::lock_tolerant(&self.pool);
        match pool.get_mut(key).and_then(Vec::pop) {
            Some(session) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(session)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns a session to the pool under its own key.
    pub fn checkin(&self, session: SolveSession) {
        let key = session.setup_key().clone();
        crate::sync::lock_tolerant(&self.pool)
            .entry(key)
            .or_default()
            .push(session);
    }

    /// Idle sessions currently pooled.
    pub fn pooled(&self) -> usize {
        crate::sync::lock_tolerant(&self.pool)
            .values()
            .map(Vec::len)
            .sum()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.pooled() == 0
    }

    /// Counters so far. `prepares` sums over the sessions currently
    /// pooled — take the snapshot after every job has checked its
    /// session back in.
    pub fn stats(&self) -> CacheStats {
        let prepares = crate::sync::lock_tolerant(&self.pool)
            .values()
            .flatten()
            .map(SolveSession::prepare_count)
            .sum();
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            prepares,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::crooked_pipe_system;

    fn assert_send<T: Send>() {}

    #[test]
    fn sessions_and_cache_are_send() {
        assert_send::<SolveSession>();
        assert_send::<SetupCache>();
    }

    fn spec_for(solver: &str) -> SessionSpec {
        let mut spec = SessionSpec::solver(solver);
        spec.opts.eps = 1e-8;
        if solver == "ppcg" {
            spec.params.halo_depth = 4;
        }
        spec
    }

    fn halo_for(spec: &SessionSpec) -> usize {
        spec.params.halo_depth.max(1)
    }

    #[test]
    fn warm_solve_is_bit_identical_to_cold() {
        for solver in ["cg", "chebyshev", "ppcg", "mixed_ppcg"] {
            let spec = spec_for(solver);
            let (op, b) = crooked_pipe_system(24, 0.04, halo_for(&spec));

            let mut warm = SolveSession::build(op.clone(), &spec).unwrap();
            let mut u_first = b.clone();
            let first = warm.solve(&mut u_first, &b);
            let mut u_warm = b.clone();
            let second = warm.solve(&mut u_warm, &b);

            let mut cold = SolveSession::build(op, &spec).unwrap();
            let mut u_cold = b.clone();
            let reference = cold.solve(&mut u_cold, &b);

            assert!(first.converged, "{solver}: first solve diverged");
            assert_eq!(
                u_warm, u_cold,
                "{solver}: warm solve drifted from a cold session"
            );
            assert_eq!(second.iterations, reference.iterations, "{solver}");
            assert_eq!(second.final_residual, reference.final_residual, "{solver}");
            assert_eq!(
                second.trace.eigen_bounds, reference.trace.eigen_bounds,
                "{solver}"
            );
            assert_eq!(warm.prepare_count(), 1, "{solver}: session re-prepared");
            assert_eq!(warm.solve_count(), 2);
        }
    }

    #[test]
    fn eigen_memo_fires_only_on_identical_input() {
        let spec = spec_for("chebyshev");
        let (op, b) = crooked_pipe_system(24, 0.04, 1);
        let mut session = SolveSession::build(op, &spec).unwrap();

        let mut u = b.clone();
        let first = session.solve(&mut u, &b);
        assert_eq!(session.eigen_hits(), 0);

        let mut u = b.clone();
        let second = session.solve(&mut u, &b);
        assert_eq!(
            session.eigen_hits(),
            1,
            "identical input should hit the memo"
        );
        assert_eq!(second.trace.eigen_bounds, first.trace.eigen_bounds);

        // Different right-hand side: the memo must not fire.
        let mut b2 = b.clone();
        b2.set(3, 3, b.at(3, 3) * 1.5);
        let mut u = b2.clone();
        session.solve(&mut u, &b2);
        assert_eq!(session.eigen_hits(), 1, "memo fired on different input");
    }

    #[test]
    fn prepared_handle_never_reprepares() {
        let spec = spec_for("cg");
        let (op, b) = crooked_pipe_system(16, 0.04, 1);
        let mut session = SolveSession::build(op, &spec).unwrap();
        assert!(!session.is_prepared());
        let mut prepared = session.prepare();
        for _ in 0..3 {
            let mut u = b.clone();
            assert!(prepared.solve(&mut u, &b).converged);
        }
        assert_eq!(prepared.session().prepare_count(), 1);
        assert_eq!(session.solve_count(), 3);
    }

    #[test]
    fn setup_keys_distinguish_precision_and_depth() {
        let (op, _) = crooked_pipe_system(16, 0.04, 4);

        let native = SetupKey::probe(&op, &SessionSpec::solver("cg")).unwrap();
        let same = SetupKey::probe(&op, &SessionSpec::solver("cg")).unwrap();
        assert_eq!(native, same, "identical specs must pool together");

        let mut f32_spec = SessionSpec::solver("cg");
        f32_spec.precision = Some(Precision::F32);
        let routed = SetupKey::probe(&op, &f32_spec).unwrap();
        assert_ne!(native, routed);
        assert_eq!(routed.solver, "cg_f32");
        assert_eq!(routed.precision, "f32");

        let mut shallow = SessionSpec::solver("ppcg");
        shallow.params.halo_depth = 2;
        let mut deep = SessionSpec::solver("ppcg");
        deep.params.halo_depth = 4;
        let k2 = SetupKey::probe(&op, &shallow).unwrap();
        let k4 = SetupKey::probe(&op, &deep).unwrap();
        assert_ne!(k2, k4, "halo depth must split the pool");
        assert_eq!(k2.halo_depth, 2);
        assert_eq!(k4.halo_depth, 4);

        let mut loose = SessionSpec::solver("cg");
        loose.opts.eps = 1e-4;
        let kl = SetupKey::probe(&op, &loose).unwrap();
        assert_ne!(native, kl, "latched options must split the pool");
    }

    #[test]
    fn cache_counts_hits_misses_and_prepares() {
        let spec = spec_for("cg");
        let (op, b) = crooked_pipe_system(16, 0.04, 1);
        let key = SetupKey::probe(&op, &spec).unwrap();
        let cache = SetupCache::new();

        assert!(cache.checkout(&key).is_none());
        let mut session = SolveSession::build(op, &spec).unwrap();
        let mut u = b.clone();
        session.solve(&mut u, &b);
        cache.checkin(session);
        assert_eq!(cache.pooled(), 1);

        let mut session = cache.checkout(&key).expect("warm session pooled");
        let mut u = b.clone();
        session.solve(&mut u, &b);
        cache.checkin(session);

        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.prepares, 1, "the warm checkout must not re-prepare");
    }

    #[test]
    fn concurrent_sessions_do_not_share_scratch() {
        let spec = spec_for("chebyshev");
        let (op, b) = crooked_pipe_system(24, 0.04, 1);
        let mut reference_session = SolveSession::build(op.clone(), &spec).unwrap();
        let mut u_ref = b.clone();
        reference_session.solve(&mut u_ref, &b);

        let results: Vec<Field2D> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let op = op.clone();
                    let b = &b;
                    let spec = &spec;
                    scope.spawn(move || {
                        let mut session = SolveSession::build(op, spec).unwrap();
                        let mut u = b.clone();
                        // Two solves each, so warm state is exercised
                        // while the neighbours are mid-solve.
                        session.solve(&mut u, b);
                        let mut u = b.clone();
                        session.solve(&mut u, b);
                        u
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for (i, u) in results.iter().enumerate() {
            assert_eq!(
                u, &u_ref,
                "thread {i} drifted from the serial reference — shared scratch?"
            );
        }
    }
}
