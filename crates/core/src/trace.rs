//! Solve traces: the structured record of everything a solve did.
//!
//! The CLUSTER'17 strong-scaling figures depend on *what* a solver
//! executes — how many stencil sweeps over which extents, how many global
//! reductions, how many halo exchanges at which depth — not on the wall
//! clock of the machine that happened to run it. A [`SolveTrace`] captures
//! exactly that protocol, so `tea-perfmodel` can replay one measured solve
//! on a modelled Titan/Piz Daint/Spruce at any node count.
//!
//! Counts are recorded per *extension* (how far outside the tile interior
//! a sweep ranged): the redundant work introduced by the matrix-powers
//! kernel lives in those extended sweeps, and it is precisely the term
//! that makes deep halos stop paying off on CPUs around depth 8 (paper
//! §VI).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sweep counts bucketed by extension outside the interior (0 = interior
/// sweep).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounts {
    /// extension (cells beyond interior per side) -> number of sweeps.
    pub sweeps_by_extension: BTreeMap<u32, u64>,
}

impl KernelCounts {
    /// Records one sweep at `ext`.
    pub fn record(&mut self, ext: usize) {
        *self.sweeps_by_extension.entry(ext as u32).or_insert(0) += 1;
    }

    /// Total sweeps across all extensions.
    pub fn total(&self) -> u64 {
        self.sweeps_by_extension.values().sum()
    }

    /// Sweeps at extension 0 only.
    pub fn interior_only(&self) -> u64 {
        self.sweeps_by_extension.get(&0).copied().unwrap_or(0)
    }

    /// Merges another count set into this one.
    pub fn merge(&mut self, other: &KernelCounts) {
        for (&e, &n) in &other.sweeps_by_extension {
            *self.sweeps_by_extension.entry(e).or_insert(0) += n;
        }
    }
}

/// Halo-exchange protocol key: `(depth, fused field count)`.
pub type HaloKey = (u32, u32);

/// The complete communication/computation protocol of one solve.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SolveTrace {
    /// Human-readable solver label (e.g. `"PPCG-16"`).
    pub solver: String,
    /// Outer iterations executed (CG/PPCG outer, Chebyshev or Jacobi
    /// iterations).
    pub outer_iterations: u64,
    /// Inner (Chebyshev smoothing) steps executed, PPCG only.
    pub inner_iterations: u64,
    /// Matrix-free `A·p` sweeps by extension (includes fused-dot sweeps).
    pub spmv: KernelCounts,
    /// Light vector kernels (axpy-class, copies, scales) by extension.
    pub vector_ops: KernelCounts,
    /// Local dot-product sweeps (excluding those fused into spmv).
    pub dot_kernels: KernelCounts,
    /// Preconditioner applications by extension.
    pub precon_ops: KernelCounts,
    /// Fused stencil+vector update passes by extension: the matrix-powers
    /// Chebyshev inner sweep folds the `z`/`rr` updates into the stencil
    /// application, so each such pass replaces two separate `vector_ops`
    /// sweeps (and skips the intermediate `w` store entirely). Recorded
    /// separately so the byte model can price the fused traffic honestly.
    pub fused_updates: KernelCounts,
    /// Global reductions (allreduce latencies paid).
    pub reductions: u64,
    /// Scalars carried across all reductions.
    pub reduction_elements: u64,
    /// Halo exchanges: `(depth, nfields) -> count`.
    pub halo_exchanges: BTreeMap<HaloKey, u64>,
    /// Eigenvalue estimate used (λmin, λmax), if the solver computed one.
    pub eigen_bounds: Option<(f64, f64)>,
}

impl SolveTrace {
    /// Fresh trace labelled `solver`.
    pub fn new(solver: impl Into<String>) -> Self {
        SolveTrace {
            solver: solver.into(),
            ..Default::default()
        }
    }

    /// Records one fused halo exchange.
    pub fn record_halo(&mut self, depth: usize, nfields: usize) {
        *self
            .halo_exchanges
            .entry((depth as u32, nfields as u32))
            .or_insert(0) += 1;
    }

    /// Records one global reduction of `elements` fused scalars.
    pub fn record_reduction(&mut self, elements: usize) {
        self.reductions += 1;
        self.reduction_elements += elements as u64;
    }

    /// Total halo exchange operations (any depth).
    pub fn total_halo_exchanges(&self) -> u64 {
        self.halo_exchanges.values().sum()
    }

    /// Total halo payload in field-strip units: Σ count · depth · nfields.
    /// Multiplied by the tile side length this gives doubles on the wire.
    pub fn halo_strip_units(&self) -> u64 {
        self.halo_exchanges
            .iter()
            .map(|(&(d, f), &n)| n * d as u64 * f as u64)
            .sum()
    }

    /// Returns a copy with every count multiplied by `factor` (rounded).
    ///
    /// Used to extrapolate a measured trace to a larger mesh whose
    /// iteration count is predicted by a fitted growth law: the
    /// *per-iteration* protocol is mesh-independent, so scaling total
    /// counts by the iteration ratio reproduces the larger run's
    /// protocol (see EXPERIMENTS.md).
    pub fn scaled(&self, factor: f64) -> SolveTrace {
        assert!(factor >= 0.0 && factor.is_finite());
        let sc = |n: u64| -> u64 { (n as f64 * factor).round() as u64 };
        let scale_counts = |k: &KernelCounts| -> KernelCounts {
            KernelCounts {
                sweeps_by_extension: k
                    .sweeps_by_extension
                    .iter()
                    .map(|(&e, &n)| (e, sc(n)))
                    .collect(),
            }
        };
        SolveTrace {
            solver: self.solver.clone(),
            outer_iterations: sc(self.outer_iterations),
            inner_iterations: sc(self.inner_iterations),
            spmv: scale_counts(&self.spmv),
            vector_ops: scale_counts(&self.vector_ops),
            dot_kernels: scale_counts(&self.dot_kernels),
            precon_ops: scale_counts(&self.precon_ops),
            fused_updates: scale_counts(&self.fused_updates),
            reductions: sc(self.reductions),
            reduction_elements: sc(self.reduction_elements),
            halo_exchanges: self
                .halo_exchanges
                .iter()
                .map(|(&k, &n)| (k, sc(n)))
                .collect(),
            eigen_bounds: self.eigen_bounds,
        }
    }

    /// Merges another trace's counts (used when accumulating a multi-step
    /// driver run into one trace).
    pub fn merge(&mut self, other: &SolveTrace) {
        self.outer_iterations += other.outer_iterations;
        self.inner_iterations += other.inner_iterations;
        self.spmv.merge(&other.spmv);
        self.vector_ops.merge(&other.vector_ops);
        self.dot_kernels.merge(&other.dot_kernels);
        self.precon_ops.merge(&other.precon_ops);
        self.fused_updates.merge(&other.fused_updates);
        self.reductions += other.reductions;
        self.reduction_elements += other.reduction_elements;
        for (&k, &n) in &other.halo_exchanges {
            *self.halo_exchanges.entry(k).or_insert(0) += n;
        }
        if self.eigen_bounds.is_none() {
            self.eigen_bounds = other.eigen_bounds;
        }
    }
}

/// How a solve ended — the structured counterpart of the bare
/// `converged` flag, distinguishing honest non-convergence from a
/// breakdown or an external cancellation.
///
/// Solvers detect non-finite residuals (a NaN-poisoned field, a
/// breakdown of the `<p, Ap>` positivity) and return
/// [`SolveStatus::Diverged`] immediately instead of burning iterations;
/// a [`crate::StopHandle`] deadline or cancellation surfaces as
/// [`SolveStatus::Cancelled`]. The serve layer keys its
/// retry/degradation ladder off this status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolveStatus {
    /// The residual criterion was met.
    Converged,
    /// The iteration cap (or an honest stagnation guard) ended the
    /// solve without meeting the criterion.
    #[default]
    IterationLimit,
    /// The iteration broke down: a residual or search-direction
    /// curvature went non-finite (or lost positivity in a way no
    /// further iteration can repair).
    Diverged {
        /// Outer iteration at which the breakdown was detected.
        iteration: u64,
    },
    /// A [`crate::StopHandle`] cancelled the solve (explicitly or via
    /// its deadline) before it finished.
    Cancelled {
        /// Outer iteration at which the stop was observed.
        iteration: u64,
    },
}

impl SolveStatus {
    /// [`SolveStatus::Converged`] or [`SolveStatus::IterationLimit`]
    /// from the legacy boolean — for solve paths with no breakdown or
    /// cancellation states of their own.
    pub fn from_converged(converged: bool) -> Self {
        if converged {
            SolveStatus::Converged
        } else {
            SolveStatus::IterationLimit
        }
    }

    /// Whether this is [`SolveStatus::Diverged`].
    pub fn is_diverged(&self) -> bool {
        matches!(self, SolveStatus::Diverged { .. })
    }

    /// Whether this is [`SolveStatus::Cancelled`].
    pub fn is_cancelled(&self) -> bool {
        matches!(self, SolveStatus::Cancelled { .. })
    }
}

impl std::fmt::Display for SolveStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveStatus::Converged => write!(f, "converged"),
            SolveStatus::IterationLimit => write!(f, "iteration limit"),
            SolveStatus::Diverged { iteration } => {
                write!(f, "diverged at iteration {iteration}")
            }
            SolveStatus::Cancelled { iteration } => {
                write!(f, "cancelled at iteration {iteration}")
            }
        }
    }
}

/// Result of one linear solve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveResult {
    /// Whether the residual criterion was met within the iteration cap.
    pub converged: bool,
    /// Outer iterations executed.
    pub iterations: u64,
    /// Euclidean norm of the initial residual.
    pub initial_residual: f64,
    /// Euclidean norm of the final (preconditioned where applicable)
    /// residual.
    pub final_residual: f64,
    /// How the solve ended (convergence, cap, breakdown, cancellation).
    pub status: SolveStatus,
    /// The recorded protocol.
    pub trace: SolveTrace,
}

impl SolveResult {
    /// Relative residual reduction achieved.
    pub fn reduction(&self) -> f64 {
        if self.initial_residual > 0.0 {
            self.final_residual / self.initial_residual
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_counts_bucket_by_extension() {
        let mut k = KernelCounts::default();
        k.record(0);
        k.record(0);
        k.record(3);
        assert_eq!(k.total(), 3);
        assert_eq!(k.interior_only(), 2);
        assert_eq!(k.sweeps_by_extension.get(&3), Some(&1));
    }

    #[test]
    fn trace_halo_and_reduction_accounting() {
        let mut t = SolveTrace::new("CG-1");
        t.record_halo(1, 1);
        t.record_halo(1, 1);
        t.record_halo(16, 2);
        t.record_reduction(1);
        t.record_reduction(3);
        assert_eq!(t.total_halo_exchanges(), 3);
        assert_eq!(t.halo_strip_units(), 2 + 16 * 2);
        assert_eq!(t.reductions, 2);
        assert_eq!(t.reduction_elements, 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SolveTrace::new("CG-1");
        a.outer_iterations = 5;
        a.spmv.record(0);
        a.record_halo(1, 1);
        let mut b = SolveTrace::new("CG-1");
        b.outer_iterations = 7;
        b.spmv.record(0);
        b.spmv.record(2);
        b.record_halo(1, 1);
        b.record_reduction(1);
        b.eigen_bounds = Some((0.5, 2.0));
        a.merge(&b);
        assert_eq!(a.outer_iterations, 12);
        assert_eq!(a.spmv.total(), 3);
        assert_eq!(a.halo_exchanges[&(1, 1)], 2);
        assert_eq!(a.reductions, 1);
        assert_eq!(a.eigen_bounds, Some((0.5, 2.0)));
    }

    #[test]
    fn scaled_multiplies_all_counts() {
        let mut t = SolveTrace::new("CG-1");
        t.outer_iterations = 10;
        t.spmv.record(0);
        t.spmv.record(2);
        t.record_halo(1, 1);
        t.record_reduction(2);
        let s = t.scaled(3.0);
        assert_eq!(s.outer_iterations, 30);
        assert_eq!(s.spmv.sweeps_by_extension[&0], 3);
        assert_eq!(s.spmv.sweeps_by_extension[&2], 3);
        assert_eq!(s.halo_exchanges[&(1, 1)], 3);
        assert_eq!(s.reductions, 3);
        assert_eq!(s.reduction_elements, 6);
        assert_eq!(s.solver, "CG-1");
    }

    #[test]
    fn result_reduction_ratio() {
        let r = SolveResult {
            converged: true,
            iterations: 10,
            initial_residual: 100.0,
            final_residual: 1e-6,
            status: SolveStatus::Converged,
            trace: SolveTrace::new("x"),
        };
        assert!((r.reduction() - 1e-8).abs() < 1e-20);
    }

    #[test]
    fn status_helpers_and_display() {
        assert_eq!(SolveStatus::from_converged(true), SolveStatus::Converged);
        assert_eq!(
            SolveStatus::from_converged(false),
            SolveStatus::IterationLimit
        );
        let d = SolveStatus::Diverged { iteration: 7 };
        assert!(d.is_diverged() && !d.is_cancelled());
        assert_eq!(d.to_string(), "diverged at iteration 7");
        let c = SolveStatus::Cancelled { iteration: 3 };
        assert!(c.is_cancelled() && !c.is_diverged());
        assert_eq!(c.to_string(), "cancelled at iteration 3");
    }
}
