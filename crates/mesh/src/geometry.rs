//! Problem geometry: material states and the crooked-pipe test case.
//!
//! TeaLeaf input decks describe the initial condition as a background
//! state plus a list of shaped states (rectangles, circles, points), each
//! carrying a density and a specific energy. The CLUSTER'17 evaluation uses
//! an AWE "crooked pipe" problem: a dense, low-conductivity wall material
//! crossed by a low-density, high-conductivity pipe with several kinks, and
//! a heat source at the pipe inlet. The original deck is not published, so
//! [`crooked_pipe`] reconstructs it from the paper's description and
//! Fig. 3 (see DESIGN.md §3, substitution 4).

use crate::field::Field2D;
use crate::mesh::{Extent2D, Mesh2D};
use serde::{Deserialize, Serialize};

/// Geometric region of a material state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape {
    /// Applies everywhere; must be the first state.
    Background,
    /// Axis-aligned rectangle `[x_min, x_max) x [y_min, y_max)`.
    Rectangle {
        /// Lower x bound.
        x_min: f64,
        /// Lower y bound.
        y_min: f64,
        /// Upper x bound.
        x_max: f64,
        /// Upper y bound.
        y_max: f64,
    },
    /// Disc of `radius` centred at `(cx, cy)`.
    Circle {
        /// Centre x.
        cx: f64,
        /// Centre y.
        cy: f64,
        /// Radius.
        radius: f64,
    },
    /// The single cell containing `(x, y)`.
    Point {
        /// Point x.
        x: f64,
        /// Point y.
        y: f64,
    },
}

impl Shape {
    /// Whether the cell centred at `(x, y)` with spacing `(dx, dy)` belongs
    /// to this shape. Cell membership is decided by the cell centre, except
    /// for `Point` which claims the unique containing cell.
    pub fn contains(&self, x: f64, y: f64, dx: f64, dy: f64) -> bool {
        match *self {
            Shape::Background => true,
            Shape::Rectangle {
                x_min,
                y_min,
                x_max,
                y_max,
            } => x >= x_min && x < x_max && y >= y_min && y < y_max,
            Shape::Circle { cx, cy, radius } => {
                let (ddx, ddy) = (x - cx, y - cy);
                ddx * ddx + ddy * ddy <= radius * radius
            }
            Shape::Point { x: px, y: py } => {
                (x - px).abs() <= dx * 0.5 && (y - py).abs() <= dy * 0.5
            }
        }
    }
}

/// A material state from the input deck: geometry plus initial
/// density/energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct State {
    /// Region the state applies to.
    pub shape: Shape,
    /// Initial mass density.
    pub density: f64,
    /// Initial specific energy.
    pub energy: f64,
}

/// Conduction-coefficient recipe (TeaLeaf `tl_coefficient`).
///
/// Matching the Fortran reference, the recipe fixes the working array
/// `w` from which face coefficients are formed as
/// `K = (w_a + w_b) / (2 w_a w_b)`, i.e. the mean of `1/w`:
///
/// * [`Coefficient::Conductivity`]: `w = density`, so the face coefficient
///   is the mean reciprocal density — **dense material insulates**. This is
///   what the crooked-pipe problem uses (dense wall, conducting pipe).
/// * [`Coefficient::RecipConductivity`]: `w = 1/density`, so the face
///   coefficient is the mean density — dense material conducts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Coefficient {
    /// `w = density` (`COEF_CONDUCTIVITY`); dense cells conduct poorly.
    #[default]
    Conductivity,
    /// `w = 1/density` (`COEF_RECIP_CONDUCTIVITY`); dense cells conduct
    /// well.
    RecipConductivity,
}

/// A complete physical problem description: mesh size, physical extent,
/// material states and coefficient recipe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Global cells in x.
    pub x_cells: usize,
    /// Global cells in y.
    pub y_cells: usize,
    /// Physical bounding box.
    pub extent: Extent2D,
    /// Background state followed by overlay states (later wins).
    pub states: Vec<State>,
    /// Conduction-coefficient recipe.
    pub coefficient: Coefficient,
}

impl Problem {
    /// Validates structural invariants: a background first state, positive
    /// densities, non-empty mesh.
    pub fn validate(&self) -> Result<(), String> {
        if self.x_cells == 0 || self.y_cells == 0 {
            return Err("mesh must have at least one cell per axis".into());
        }
        if self.extent.width() <= 0.0 || self.extent.height() <= 0.0 {
            return Err("physical extent must be positive".into());
        }
        match self.states.first() {
            None => return Err("at least a background state is required".into()),
            Some(s) if s.shape != Shape::Background => {
                return Err("first state must be the background".into())
            }
            _ => {}
        }
        for (i, s) in self.states.iter().enumerate() {
            // `!(x > 0)` deliberately rejects NaN as well as non-positive
            if !s.density.is_finite() || s.density <= 0.0 {
                return Err(format!("state {i} has non-positive density {}", s.density));
            }
            if !s.energy.is_finite() || s.energy < 0.0 {
                return Err(format!("state {i} has negative energy {}", s.energy));
            }
        }
        Ok(())
    }

    /// Initialises `density` and `energy` fields for the tile described by
    /// `mesh`, applying states in order over interior *and* ghost cells
    /// (ghosts get the geometric value so coefficient computation near tile
    /// edges matches the serial run; the exterior boundary is later fixed
    /// by reflection).
    pub fn apply_states(&self, mesh: &Mesh2D, density: &mut Field2D, energy: &mut Field2D) {
        assert_eq!(density.nx(), mesh.nx());
        assert_eq!(density.ny(), mesh.ny());
        assert_eq!(energy.nx(), mesh.nx());
        assert_eq!(energy.ny(), mesh.ny());
        let h = density.halo().min(energy.halo()) as isize;
        let (dx, dy) = (mesh.dx(), mesh.dy());
        for k in -h..mesh.ny() as isize + h {
            for j in -h..mesh.nx() as isize + h {
                let (x, y) = mesh.cell_center(j, k);
                for s in &self.states {
                    if s.shape.contains(x, y, dx, dy) {
                        density.set(j, k, s.density);
                        energy.set(j, k, s.energy);
                    }
                }
            }
        }
    }

    /// Convenience: number of global cells.
    pub fn cells(&self) -> usize {
        self.x_cells * self.y_cells
    }
}

/// Wall (background) density of the crooked-pipe problem.
pub const PIPE_WALL_DENSITY: f64 = 100.0;
/// Wall specific energy.
pub const PIPE_WALL_ENERGY: f64 = 0.0001;
/// Pipe material density (low density => high conductivity under
/// [`Coefficient::Conductivity`], whose face coefficient is the mean
/// reciprocal density).
pub const PIPE_DENSITY: f64 = 0.1;
/// Pipe specific energy.
pub const PIPE_ENERGY: f64 = 25.0;
/// Inlet source specific energy.
pub const PIPE_SOURCE_ENERGY: f64 = 300.0;

/// Builds the crooked-pipe problem on an `n x n` mesh over a `10 x 10`
/// physical domain.
///
/// The pipe enters at the left edge (y in [1, 2]), runs right, turns up,
/// runs right along y in [5, 6], turns down and exits at the right edge
/// (y in [2, 3]) — four kinks, matching the shape of the paper's Fig. 3.
/// A high-energy source fills the first half-unit of the inlet.
pub fn crooked_pipe(n: usize) -> Problem {
    crooked_pipe_rect(n, n)
}

/// Crooked pipe on an `nx x ny` mesh (non-square variant for decomposition
/// tests).
pub fn crooked_pipe_rect(nx: usize, ny: usize) -> Problem {
    let wall = State {
        shape: Shape::Background,
        density: PIPE_WALL_DENSITY,
        energy: PIPE_WALL_ENERGY,
    };
    let pipe = |x_min: f64, y_min: f64, x_max: f64, y_max: f64| State {
        shape: Shape::Rectangle {
            x_min,
            y_min,
            x_max,
            y_max,
        },
        density: PIPE_DENSITY,
        energy: PIPE_ENERGY,
    };
    let source = State {
        shape: Shape::Rectangle {
            x_min: 0.0,
            y_min: 1.0,
            x_max: 0.5,
            y_max: 2.0,
        },
        density: PIPE_DENSITY,
        energy: PIPE_SOURCE_ENERGY,
    };
    Problem {
        x_cells: nx,
        y_cells: ny,
        extent: Extent2D::square(10.0),
        states: vec![
            wall,
            // inlet leg, left edge to first kink
            pipe(0.0, 1.0, 3.5, 2.0),
            // rising leg
            pipe(2.5, 1.0, 3.5, 6.0),
            // upper horizontal leg
            pipe(2.5, 5.0, 7.0, 6.0),
            // descending leg
            pipe(6.0, 2.0, 7.0, 6.0),
            // outlet leg to the right edge
            pipe(6.0, 2.0, 10.0, 3.0),
            source,
        ],
        coefficient: Coefficient::Conductivity,
    }
}

/// A smooth single-material test problem (uniform density 1, energy 1 with
/// a hot square in the middle); useful for convergence and conservation
/// tests where material contrast is unwanted.
pub fn hot_square(n: usize) -> Problem {
    Problem {
        x_cells: n,
        y_cells: n,
        extent: Extent2D::unit(),
        states: vec![
            State {
                shape: Shape::Background,
                density: 1.0,
                energy: 1.0,
            },
            State {
                shape: Shape::Rectangle {
                    x_min: 0.375,
                    y_min: 0.375,
                    x_max: 0.625,
                    y_max: 0.625,
                },
                density: 1.0,
                energy: 10.0,
            },
        ],
        coefficient: Coefficient::Conductivity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_contain_expected_points() {
        let r = Shape::Rectangle {
            x_min: 1.0,
            y_min: 1.0,
            x_max: 2.0,
            y_max: 3.0,
        };
        assert!(r.contains(1.5, 2.0, 0.1, 0.1));
        assert!(!r.contains(2.5, 2.0, 0.1, 0.1));
        assert!(r.contains(1.0, 1.0, 0.1, 0.1)); // inclusive low edge
        assert!(!r.contains(2.0, 2.0, 0.1, 0.1)); // exclusive high edge

        let c = Shape::Circle {
            cx: 0.0,
            cy: 0.0,
            radius: 1.0,
        };
        assert!(c.contains(0.5, 0.5, 0.1, 0.1));
        assert!(!c.contains(1.0, 1.0, 0.1, 0.1));

        let p = Shape::Point { x: 0.55, y: 0.55 };
        assert!(p.contains(0.5, 0.5, 0.2, 0.2));
        assert!(!p.contains(0.9, 0.5, 0.2, 0.2));

        assert!(Shape::Background.contains(123.0, -9.0, 1.0, 1.0));
    }

    #[test]
    fn crooked_pipe_validates() {
        let p = crooked_pipe(100);
        p.validate().expect("crooked pipe must be valid");
        assert_eq!(p.cells(), 10_000);
        assert_eq!(p.coefficient, Coefficient::Conductivity);
        assert!(p.states.len() >= 6, "wall + >=4 pipe legs + source");
    }

    #[test]
    fn validate_rejects_bad_problems() {
        let mut p = crooked_pipe(10);
        p.x_cells = 0;
        assert!(p.validate().is_err());

        let mut p = crooked_pipe(10);
        p.states.clear();
        assert!(p.validate().is_err());

        let mut p = crooked_pipe(10);
        p.states[0].shape = Shape::Point { x: 0.0, y: 0.0 };
        assert!(p.validate().is_err(), "first state must be background");

        let mut p = crooked_pipe(10);
        p.states[1].density = -1.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn apply_states_sets_pipe_and_wall() {
        let p = crooked_pipe(100);
        let mesh = Mesh2D::serial(100, 100, p.extent);
        let mut density = Field2D::new(100, 100, 2);
        let mut energy = Field2D::new(100, 100, 2);
        p.apply_states(&mesh, &mut density, &mut energy);
        // cell at (0.05, 0.05): wall
        assert_eq!(density.at(0, 0), PIPE_WALL_DENSITY);
        // cell centre (1.55, 1.55): inside inlet leg
        let (j, k) = (15, 15);
        assert_eq!(density.at(j, k), PIPE_DENSITY);
        assert_eq!(energy.at(j, k), PIPE_ENERGY);
        // source region (0.25, 1.55)
        assert_eq!(energy.at(2, 15), PIPE_SOURCE_ENERGY);
        // ghost cells also initialised (reflected later at true boundary)
        assert_eq!(density.at(-1, 0), PIPE_WALL_DENSITY);
    }

    #[test]
    fn pipe_is_connected_left_to_right() {
        // walk the pipe mask with a flood fill; inlet must reach outlet
        let n = 80;
        let p = crooked_pipe(n);
        let mesh = Mesh2D::serial(n, n, p.extent);
        let mut density = Field2D::new(n, n, 0);
        let mut energy = Field2D::new(n, n, 0);
        p.apply_states(&mesh, &mut density, &mut energy);
        let is_pipe = |j: isize, k: isize| -> bool { density.at(j, k) == PIPE_DENSITY };
        // find an inlet cell on the left edge
        let start_k = (0..n as isize)
            .find(|&k| is_pipe(0, k))
            .expect("pipe must touch the left edge");
        let mut seen = vec![false; n * n];
        let mut stack = vec![(0isize, start_k)];
        let mut reached_right = false;
        while let Some((j, k)) = stack.pop() {
            if j < 0 || k < 0 || j >= n as isize || k >= n as isize {
                continue;
            }
            let idx = k as usize * n + j as usize;
            if seen[idx] || !is_pipe(j, k) {
                continue;
            }
            seen[idx] = true;
            if j == n as isize - 1 {
                reached_right = true;
            }
            stack.extend([(j + 1, k), (j - 1, k), (j, k + 1), (j, k - 1)]);
        }
        assert!(reached_right, "crooked pipe must connect left to right");
    }

    #[test]
    fn later_states_override_earlier() {
        let p = crooked_pipe(100);
        let mesh = Mesh2D::serial(100, 100, p.extent);
        let mut density = Field2D::new(100, 100, 0);
        let mut energy = Field2D::new(100, 100, 0);
        p.apply_states(&mesh, &mut density, &mut energy);
        // the source rectangle overlaps the inlet leg; source must win
        assert_eq!(energy.at(2, 15), PIPE_SOURCE_ENERGY);
    }

    #[test]
    fn hot_square_is_symmetric() {
        let p = hot_square(16);
        p.validate().unwrap();
        let mesh = Mesh2D::serial(16, 16, p.extent);
        let mut density = Field2D::new(16, 16, 0);
        let mut energy = Field2D::new(16, 16, 0);
        p.apply_states(&mesh, &mut density, &mut energy);
        for k in 0..16isize {
            for j in 0..16isize {
                assert_eq!(energy.at(j, k), energy.at(15 - j, 15 - k));
                assert_eq!(energy.at(j, k), energy.at(k, j));
            }
        }
    }
}
