//! 3D mesh metadata and 7-point-stencil coefficients.
//!
//! The 3D variant of TeaLeaf uses a 7-point stencil; the paper reports 2D
//! results and states the 3D behaviour is similar. The 3D path here runs
//! single-tile (serial within a rank) — the scaling experiments are 2D, as
//! in the paper.

use crate::field3d::Field3D;
use crate::geometry::Coefficient;
use serde::{Deserialize, Serialize};

/// Physical bounding box of a 3D domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Extent3D {
    /// Minimum x.
    pub x_min: f64,
    /// Maximum x.
    pub x_max: f64,
    /// Minimum y.
    pub y_min: f64,
    /// Maximum y.
    pub y_max: f64,
    /// Minimum z.
    pub z_min: f64,
    /// Maximum z.
    pub z_max: f64,
}

impl Extent3D {
    /// Cube `[0,s]^3`.
    pub fn cube(s: f64) -> Self {
        assert!(s > 0.0);
        Extent3D {
            x_min: 0.0,
            x_max: s,
            y_min: 0.0,
            y_max: s,
            z_min: 0.0,
            z_max: s,
        }
    }
}

/// A serial 3D uniform mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh3D {
    nx: usize,
    ny: usize,
    nz: usize,
    extent: Extent3D,
    dx: f64,
    dy: f64,
    dz: f64,
}

impl Mesh3D {
    /// Builds an `nx * ny * nz` mesh over `extent`.
    pub fn new(nx: usize, ny: usize, nz: usize, extent: Extent3D) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        Mesh3D {
            nx,
            ny,
            nz,
            extent,
            dx: (extent.x_max - extent.x_min) / nx as f64,
            dy: (extent.y_max - extent.y_min) / ny as f64,
            dz: (extent.z_max - extent.z_min) / nz as f64,
        }
    }

    /// Cells in x.
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Cells in y.
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Cells in z.
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Spacing in x.
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Spacing in y.
    pub fn dy(&self) -> f64 {
        self.dy
    }

    /// Spacing in z.
    pub fn dz(&self) -> f64 {
        self.dz
    }

    /// Uniform cell volume.
    pub fn cell_volume(&self) -> f64 {
        self.dx * self.dy * self.dz
    }

    /// Centre of cell `(j, k, i)`.
    pub fn cell_center(&self, j: isize, k: isize, i: isize) -> (f64, f64, f64) {
        (
            self.extent.x_min + (j as f64 + 0.5) * self.dx,
            self.extent.y_min + (k as f64 + 0.5) * self.dy,
            self.extent.z_min + (i as f64 + 0.5) * self.dz,
        )
    }

    /// `(rx, ry, rz) = dt / d{x,y,z}^2`.
    pub fn timestep_scalings(&self, dt: f64) -> (f64, f64, f64) {
        assert!(dt > 0.0);
        (
            dt / (self.dx * self.dx),
            dt / (self.dy * self.dy),
            dt / (self.dz * self.dz),
        )
    }
}

/// Pre-scaled 3D face coefficients for the 7-point stencil.
#[derive(Debug, Clone, PartialEq)]
pub struct Coefficients3D {
    /// X faces (between `(j-1,k,i)` and `(j,k,i)`), scaled by `rx`.
    pub kx: Field3D,
    /// Y faces, scaled by `ry`.
    pub ky: Field3D,
    /// Z faces, scaled by `rz`.
    pub kz: Field3D,
}

impl Coefficients3D {
    /// Assembles 3D face coefficients analogously to the 2D
    /// [`crate::Coefficients::assemble`]: `K = mean(1/w)` per face, global
    /// boundary faces zeroed.
    pub fn assemble(
        mesh: &Mesh3D,
        density: &Field3D,
        kind: Coefficient,
        rx: f64,
        ry: f64,
        rz: f64,
        halo: usize,
    ) -> Self {
        assert!(density.halo() >= halo);
        let (nx, ny, nz) = (mesh.nx(), mesh.ny(), mesh.nz());
        let h = halo as isize;
        let mut kx = Field3D::new(nx, ny, nz, halo);
        let mut ky = Field3D::new(nx, ny, nz, halo);
        let mut kz = Field3D::new(nx, ny, nz, halo);
        let w_of = |j: isize, k: isize, i: isize| -> f64 {
            let d = density.at(j, k, i);
            debug_assert!(d > 0.0);
            match kind {
                Coefficient::Conductivity => d,
                Coefficient::RecipConductivity => 1.0 / d,
            }
        };
        let inside = |j: isize, k: isize, i: isize| -> bool {
            j >= 0 && j < nx as isize && k >= 0 && k < ny as isize && i >= 0 && i < nz as isize
        };
        for i in -h..nz as isize + h {
            for k in -h..ny as isize + h {
                for j in -h..nx as isize + h {
                    if j > -h && inside(j, k, i) && inside(j - 1, k, i) {
                        let (a, b) = (w_of(j - 1, k, i), w_of(j, k, i));
                        kx.set(j, k, i, rx * (a + b) / (2.0 * a * b));
                    }
                    if k > -h && inside(j, k, i) && inside(j, k - 1, i) {
                        let (a, b) = (w_of(j, k - 1, i), w_of(j, k, i));
                        ky.set(j, k, i, ry * (a + b) / (2.0 * a * b));
                    }
                    if i > -h && inside(j, k, i) && inside(j, k, i - 1) {
                        let (a, b) = (w_of(j, k, i - 1), w_of(j, k, i));
                        kz.set(j, k, i, rz * (a + b) / (2.0 * a * b));
                    }
                }
            }
        }
        Coefficients3D { kx, ky, kz }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_geometry() {
        let m = Mesh3D::new(10, 10, 5, Extent3D::cube(10.0));
        assert_eq!(m.dx(), 1.0);
        assert_eq!(m.dz(), 2.0);
        assert_eq!(m.cell_volume(), 2.0);
        assert_eq!(m.cell_center(0, 0, 0), (0.5, 0.5, 1.0));
        let (rx, _ry, rz) = m.timestep_scalings(0.5);
        assert_eq!(rx, 0.5);
        assert_eq!(rz, 0.125);
    }

    #[test]
    fn uniform_coefficients_and_boundaries() {
        let m = Mesh3D::new(4, 4, 4, Extent3D::cube(1.0));
        let density = Field3D::filled(4, 4, 4, 1, 2.0);
        let c = Coefficients3D::assemble(&m, &density, Coefficient::Conductivity, 1.0, 1.0, 1.0, 1);
        assert_eq!(c.kx.at(2, 2, 2), 0.5);
        assert_eq!(c.ky.at(2, 2, 2), 0.5);
        assert_eq!(c.kz.at(2, 2, 2), 0.5);
        // boundary faces zeroed
        assert_eq!(c.kx.at(0, 1, 1), 0.0);
        assert_eq!(c.ky.at(1, 0, 1), 0.0);
        assert_eq!(c.kz.at(1, 1, 0), 0.0);
    }

    #[test]
    fn recip_mode_inverts_material_contrast() {
        let m = Mesh3D::new(4, 4, 4, Extent3D::cube(1.0));
        let density = Field3D::filled(4, 4, 4, 1, 4.0);
        let cond =
            Coefficients3D::assemble(&m, &density, Coefficient::Conductivity, 1.0, 1.0, 1.0, 1);
        let recip = Coefficients3D::assemble(
            &m,
            &density,
            Coefficient::RecipConductivity,
            1.0,
            1.0,
            1.0,
            1,
        );
        assert_eq!(cond.kx.at(2, 2, 2), 0.25);
        assert_eq!(recip.kx.at(2, 2, 2), 4.0);
    }
}
