//! Halo-padded 3D scalar fields for the 7-point-stencil variant.
//!
//! TeaLeaf solves both 2D and 3D problems; the CLUSTER'17 paper reports 2D
//! results and notes the 3D behaviour is similar. [`Field3D`] follows the
//! same layout rules as [`crate::Field2D`] with an extra slowest-varying
//! `i` (z) dimension.

use std::fmt;

/// A dense 3D field of `f64` with `halo` ghost layers on every side.
///
/// Storage is x-fastest: flat offset of `(j, k, i)` is
/// `((i + h) * sy + (k + h)) * sx + (j + h)` with `sx = nx + 2h`,
/// `sy = ny + 2h`.
#[derive(Clone, PartialEq)]
pub struct Field3D {
    nx: usize,
    ny: usize,
    nz: usize,
    halo: usize,
    sx: usize,
    sy: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Field3D {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Field3D")
            .field("nx", &self.nx)
            .field("ny", &self.ny)
            .field("nz", &self.nz)
            .field("halo", &self.halo)
            .finish()
    }
}

impl Field3D {
    /// Creates a zero-filled `nx * ny * nz` field with `halo` ghost layers.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn new(nx: usize, ny: usize, nz: usize, halo: usize) -> Self {
        assert!(
            nx > 0 && ny > 0 && nz > 0,
            "field dimensions must be positive"
        );
        let sx = nx + 2 * halo;
        let sy = ny + 2 * halo;
        let sz = nz + 2 * halo;
        Field3D {
            nx,
            ny,
            nz,
            halo,
            sx,
            sy,
            data: vec![0.0; sx * sy * sz],
        }
    }

    /// Creates a field with every cell (ghosts included) set to `value`.
    pub fn filled(nx: usize, ny: usize, nz: usize, halo: usize, value: f64) -> Self {
        let mut f = Self::new(nx, ny, nz, halo);
        f.data.fill(value);
        f
    }

    /// Interior x extent.
    #[inline(always)]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior y extent.
    #[inline(always)]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Interior z extent.
    #[inline(always)]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Ghost depth per side.
    #[inline(always)]
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Number of interior cells.
    #[inline(always)]
    pub fn interior_len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Flat offset of signed index `(j, k, i)`.
    #[inline(always)]
    pub fn offset(&self, j: isize, k: isize, i: isize) -> usize {
        let h = self.halo as isize;
        debug_assert!(
            j >= -h && j < self.nx as isize + h,
            "x index {j} out of range"
        );
        debug_assert!(
            k >= -h && k < self.ny as isize + h,
            "y index {k} out of range"
        );
        debug_assert!(
            i >= -h && i < self.nz as isize + h,
            "z index {i} out of range"
        );
        ((i + h) as usize * self.sy + (k + h) as usize) * self.sx + (j + h) as usize
    }

    /// Value at signed index `(j, k, i)`.
    #[inline(always)]
    pub fn at(&self, j: isize, k: isize, i: isize) -> f64 {
        self.data[self.offset(j, k, i)]
    }

    /// Sets value at signed index `(j, k, i)`.
    #[inline(always)]
    pub fn set(&mut self, j: isize, k: isize, i: isize, v: f64) {
        let o = self.offset(j, k, i);
        self.data[o] = v;
    }

    /// Full backing slice.
    #[inline(always)]
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable full backing slice.
    #[inline(always)]
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row slice `[x_lo, x_hi)` at `(k, i)`.
    #[inline(always)]
    pub fn row(&self, k: isize, i: isize, x_lo: isize, x_hi: isize) -> &[f64] {
        let a = self.offset(x_lo, k, i);
        let b = a + (x_hi - x_lo) as usize;
        &self.data[a..b]
    }

    /// Mutable row slice `[x_lo, x_hi)` at `(k, i)`.
    #[inline(always)]
    pub fn row_mut(&mut self, k: isize, i: isize, x_lo: isize, x_hi: isize) -> &mut [f64] {
        let a = self.offset(x_lo, k, i);
        let b = a + (x_hi - x_lo) as usize;
        &mut self.data[a..b]
    }

    /// Fills interior cells only.
    pub fn fill_interior(&mut self, value: f64) {
        for i in 0..self.nz as isize {
            for k in 0..self.ny as isize {
                self.row_mut(k, i, 0, self.nx as isize).fill(value);
            }
        }
    }

    /// Serial deterministic interior sum.
    pub fn interior_sum(&self) -> f64 {
        let mut acc = 0.0;
        for i in 0..self.nz as isize {
            for k in 0..self.ny as isize {
                for &v in self.row(k, i, 0, self.nx as isize) {
                    acc += v;
                }
            }
        }
        acc
    }

    /// Serial deterministic interior dot product.
    pub fn interior_dot(&self, other: &Field3D) -> f64 {
        assert_eq!(self.nx, other.nx);
        assert_eq!(self.ny, other.ny);
        assert_eq!(self.nz, other.nz);
        let mut acc = 0.0;
        for i in 0..self.nz as isize {
            for k in 0..self.ny as isize {
                let a = self.row(k, i, 0, self.nx as isize);
                let b = other.row(k, i, 0, self.nx as isize);
                for (x, y) in a.iter().zip(b) {
                    acc += x * y;
                }
            }
        }
        acc
    }

    /// Euclidean norm over interior cells.
    pub fn interior_norm(&self) -> f64 {
        self.interior_dot(self).sqrt()
    }

    /// Reflects interior boundary cells into ghost layers up to `depth`,
    /// face by face (x, then y over x-extended range, then z over the full
    /// extended range), so corners and edges end up consistent.
    pub fn reflect_boundaries(&mut self, depth: usize) {
        assert!(depth <= self.halo, "reflection depth exceeds halo");
        let (nx, ny, nz) = (self.nx as isize, self.ny as isize, self.nz as isize);
        let d = depth as isize;
        for i in 0..nz {
            for k in 0..ny {
                for t in 0..d {
                    let l = self.at(t, k, i);
                    self.set(-1 - t, k, i, l);
                    let r = self.at(nx - 1 - t, k, i);
                    self.set(nx + t, k, i, r);
                }
            }
        }
        for i in 0..nz {
            for t in 0..d {
                for j in -d..nx + d {
                    let b = self.at(j, t, i);
                    self.set(j, -1 - t, i, b);
                    let u = self.at(j, ny - 1 - t, i);
                    self.set(j, ny + t, i, u);
                }
            }
        }
        for t in 0..d {
            for k in -d..ny + d {
                for j in -d..nx + d {
                    let b = self.at(j, k, t);
                    self.set(j, k, -1 - t, b);
                    let u = self.at(j, k, nz - 1 - t);
                    self.set(j, k, nz + t, u);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_and_indexing() {
        let mut f = Field3D::new(3, 4, 5, 2);
        assert_eq!(f.raw().len(), 7 * 8 * 9);
        f.set(-2, -2, -2, 1.5);
        f.set(4, 5, 6, 2.5);
        f.set(1, 2, 3, 3.5);
        assert_eq!(f.at(-2, -2, -2), 1.5);
        assert_eq!(f.at(4, 5, 6), 2.5);
        assert_eq!(f.at(1, 2, 3), 3.5);
    }

    #[test]
    fn interior_sum_ignores_ghosts() {
        let mut f = Field3D::filled(2, 2, 2, 1, 100.0);
        f.fill_interior(1.0);
        assert_eq!(f.interior_sum(), 8.0);
    }

    #[test]
    fn dot_matches_manual() {
        let mut a = Field3D::new(2, 2, 2, 0);
        let mut b = Field3D::new(2, 2, 2, 0);
        a.fill_interior(3.0);
        b.fill_interior(0.5);
        assert_eq!(a.interior_dot(&b), 12.0);
        assert!((a.interior_norm() - (8.0f64 * 9.0).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn reflect_faces_and_corners() {
        let mut f = Field3D::new(3, 3, 3, 1);
        for i in 0..3 {
            for k in 0..3 {
                for j in 0..3 {
                    f.set(j, k, i, (100 * i + 10 * k + j) as f64);
                }
            }
        }
        f.reflect_boundaries(1);
        assert_eq!(f.at(-1, 1, 1), f.at(0, 1, 1));
        assert_eq!(f.at(3, 1, 1), f.at(2, 1, 1));
        assert_eq!(f.at(1, -1, 1), f.at(1, 0, 1));
        assert_eq!(f.at(1, 1, 3), f.at(1, 1, 2));
        // full corner reflects through all three axes
        assert_eq!(f.at(-1, -1, -1), f.at(0, 0, 0));
    }

    #[test]
    fn row_slice_matches_at() {
        let mut f = Field3D::new(4, 3, 2, 1);
        for j in 0..4 {
            f.set(j, 1, 1, j as f64);
        }
        let r = f.row(1, 1, 0, 4);
        assert_eq!(r, &[0.0, 1.0, 2.0, 3.0]);
    }
}
