//! Domain decomposition of the global structured grid over ranks.
//!
//! TeaLeaf decomposes the global `nx x ny` cell grid into rectangular
//! subdomains, one per MPI rank, choosing the process-grid factorisation
//! that minimises the total cut surface (and therefore halo traffic).
//! Remainder cells are distributed to the lowest-coordinate tiles so no
//! two tiles differ by more than one cell per dimension.

use serde::{Deserialize, Serialize};

/// Cardinal neighbour directions of a 2D tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dir {
    /// Negative x neighbour.
    West,
    /// Positive x neighbour.
    East,
    /// Negative y neighbour.
    South,
    /// Positive y neighbour.
    North,
}

impl Dir {
    /// All four directions in TeaLeaf's exchange order (x pass then y pass).
    pub const ALL: [Dir; 4] = [Dir::West, Dir::East, Dir::South, Dir::North];

    /// The opposite direction (a message sent `East` arrives `West`).
    pub fn opposite(self) -> Dir {
        match self {
            Dir::West => Dir::East,
            Dir::East => Dir::West,
            Dir::South => Dir::North,
            Dir::North => Dir::South,
        }
    }

    /// Whether this is an x-axis direction.
    pub fn is_x(self) -> bool {
        matches!(self, Dir::West | Dir::East)
    }
}

/// One rank's rectangular tile of the global grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Subdomain {
    /// Owning rank.
    pub rank: usize,
    /// Tile coordinates in the process grid.
    pub coords: (usize, usize),
    /// Global cell offset of this tile's first interior cell.
    pub offset: (usize, usize),
    /// Interior cells in x.
    pub nx: usize,
    /// Interior cells in y.
    pub ny: usize,
}

impl Subdomain {
    /// Global index range covered in x: `[offset.0, offset.0 + nx)`.
    pub fn x_range(&self) -> std::ops::Range<usize> {
        self.offset.0..self.offset.0 + self.nx
    }

    /// Global index range covered in y.
    pub fn y_range(&self) -> std::ops::Range<usize> {
        self.offset.1..self.offset.1 + self.ny
    }

    /// Number of interior cells.
    pub fn cells(&self) -> usize {
        self.nx * self.ny
    }
}

/// A balanced 2D block decomposition of a global grid over `px * py` ranks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition2D {
    global_nx: usize,
    global_ny: usize,
    px: usize,
    py: usize,
}

/// Splits extent `n` into `parts` nearly equal pieces; piece `idx` gets
/// `(offset, len)`. The first `n % parts` pieces are one cell longer.
pub fn split_extent(n: usize, parts: usize, idx: usize) -> (usize, usize) {
    assert!(parts > 0, "cannot split into zero parts");
    assert!(idx < parts, "piece index out of range");
    let base = n / parts;
    let rem = n % parts;
    let len = base + usize::from(idx < rem);
    let offset = idx * base + idx.min(rem);
    (offset, len)
}

/// Enumerates all ordered factor pairs `(a, b)` with `a * b == p`.
pub fn factor_pairs(p: usize) -> Vec<(usize, usize)> {
    assert!(p > 0);
    let mut out = Vec::new();
    let mut a = 1;
    while a * a <= p {
        if p.is_multiple_of(a) {
            out.push((a, p / a));
            if a != p / a {
                out.push((p / a, a));
            }
        }
        a += 1;
    }
    out.sort_unstable();
    out
}

/// Chooses the process-grid shape `(px, py)` for `ranks` ranks over an
/// `nx x ny` grid by minimising the total interior cut length
/// `(px - 1) * ny + (py - 1) * nx`, i.e. the halo exchange surface.
/// Ties break towards the squarer grid (smaller `max(px, py)`),
/// then towards wider-than-tall (`px >= py`) to match TeaLeaf.
pub fn choose_process_grid(ranks: usize, nx: usize, ny: usize) -> (usize, usize) {
    assert!(ranks > 0);
    let mut best = (usize::MAX, usize::MAX, (ranks, 1));
    for (px, py) in factor_pairs(ranks) {
        if px > nx || py > ny {
            continue;
        }
        let cut = (px - 1) * ny + (py - 1) * nx;
        let sq = px.max(py);
        // deterministic lexicographic preference; px >= py wins ties because
        // factor_pairs is sorted and strict `<` keeps the first minimum
        let key = (cut, sq, (px, py));
        if key.0 < best.0 || (key.0 == best.0 && key.1 < best.1) {
            best = key;
        }
    }
    if best.0 == usize::MAX {
        // degenerate: more ranks than cells along each axis; fall back to a
        // column of ranks, clamped by the caller's validation
        (ranks.min(nx), 1)
    } else {
        best.2
    }
}

impl Decomposition2D {
    /// Builds a decomposition with an automatically chosen process grid.
    pub fn new(global_nx: usize, global_ny: usize, ranks: usize) -> Self {
        let (px, py) = choose_process_grid(ranks, global_nx, global_ny);
        Self::with_grid(global_nx, global_ny, px, py)
    }

    /// Builds a decomposition with an explicit `px x py` process grid.
    ///
    /// # Panics
    /// Panics if the grid is empty or has more ranks along an axis than
    /// cells.
    pub fn with_grid(global_nx: usize, global_ny: usize, px: usize, py: usize) -> Self {
        assert!(global_nx > 0 && global_ny > 0, "empty global grid");
        assert!(px > 0 && py > 0, "empty process grid");
        assert!(
            px <= global_nx,
            "more x ranks ({px}) than cells ({global_nx})"
        );
        assert!(
            py <= global_ny,
            "more y ranks ({py}) than cells ({global_ny})"
        );
        Decomposition2D {
            global_nx,
            global_ny,
            px,
            py,
        }
    }

    /// Global grid extent.
    pub fn global_cells(&self) -> (usize, usize) {
        (self.global_nx, self.global_ny)
    }

    /// Process-grid shape.
    pub fn grid(&self) -> (usize, usize) {
        (self.px, self.py)
    }

    /// Total rank count.
    pub fn ranks(&self) -> usize {
        self.px * self.py
    }

    /// Rank of process-grid coordinates (row-major: x fastest).
    pub fn rank_of(&self, cx: usize, cy: usize) -> usize {
        assert!(cx < self.px && cy < self.py, "coords out of process grid");
        cy * self.px + cx
    }

    /// Process-grid coordinates of `rank`.
    pub fn coords_of(&self, rank: usize) -> (usize, usize) {
        assert!(rank < self.ranks(), "rank out of range");
        (rank % self.px, rank / self.px)
    }

    /// The tile owned by `rank`.
    pub fn subdomain(&self, rank: usize) -> Subdomain {
        let (cx, cy) = self.coords_of(rank);
        let (x_off, nx) = split_extent(self.global_nx, self.px, cx);
        let (y_off, ny) = split_extent(self.global_ny, self.py, cy);
        Subdomain {
            rank,
            coords: (cx, cy),
            offset: (x_off, y_off),
            nx,
            ny,
        }
    }

    /// Neighbour rank of `rank` in direction `dir`, `None` at the domain
    /// boundary.
    pub fn neighbor(&self, rank: usize, dir: Dir) -> Option<usize> {
        let (cx, cy) = self.coords_of(rank);
        let (nx, ny) = (self.px, self.py);
        let (tx, ty) = match dir {
            Dir::West => (cx.checked_sub(1)?, cy),
            Dir::East => {
                if cx + 1 >= nx {
                    return None;
                }
                (cx + 1, cy)
            }
            Dir::South => (cx, cy.checked_sub(1)?),
            Dir::North => {
                if cy + 1 >= ny {
                    return None;
                }
                (cx, cy + 1)
            }
        };
        Some(self.rank_of(tx, ty))
    }

    /// Iterates every subdomain in rank order.
    pub fn subdomains(&self) -> impl Iterator<Item = Subdomain> + '_ {
        (0..self.ranks()).map(|r| self.subdomain(r))
    }

    /// Largest tile cell count (load-balance numerator).
    pub fn max_tile_cells(&self) -> usize {
        self.subdomains().map(|s| s.cells()).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_extent_covers_exactly() {
        for n in [1usize, 7, 16, 100, 4001] {
            for parts in 1..=n.min(13) {
                let mut covered = 0;
                let mut next = 0;
                for i in 0..parts {
                    let (off, len) = split_extent(n, parts, i);
                    assert_eq!(off, next, "pieces must be contiguous");
                    assert!(len >= n / parts && len <= n / parts + 1);
                    covered += len;
                    next = off + len;
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn factor_pairs_complete() {
        assert_eq!(factor_pairs(12).len(), 6);
        assert!(factor_pairs(12).contains(&(3, 4)));
        assert!(factor_pairs(12).contains(&(12, 1)));
        assert_eq!(factor_pairs(1), vec![(1, 1)]);
        assert_eq!(factor_pairs(7), vec![(1, 7), (7, 1)]);
    }

    #[test]
    fn square_grid_gets_square_process_grid() {
        assert_eq!(choose_process_grid(4, 100, 100), (2, 2));
        assert_eq!(choose_process_grid(16, 100, 100), (4, 4));
        assert_eq!(choose_process_grid(64, 4000, 4000), (8, 8));
    }

    #[test]
    fn elongated_grid_prefers_matching_split() {
        // 400 x 100 grid with 4 ranks: cutting x into 4 costs 3*100=300;
        // 2x2 costs 100+400=500; so (4,1) wins.
        assert_eq!(choose_process_grid(4, 400, 100), (4, 1));
        assert_eq!(choose_process_grid(4, 100, 400), (1, 4));
    }

    #[test]
    fn subdomains_tile_global_grid() {
        let d = Decomposition2D::new(101, 67, 6);
        let (px, py) = d.grid();
        assert_eq!(px * py, 6);
        let mut covered = vec![false; 101 * 67];
        for s in d.subdomains() {
            for gy in s.y_range() {
                for gx in s.x_range() {
                    let idx = gy * 101 + gx;
                    assert!(!covered[idx], "tiles overlap at ({gx},{gy})");
                    covered[idx] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "tiles must cover the grid");
    }

    #[test]
    fn neighbors_are_symmetric() {
        let d = Decomposition2D::with_grid(64, 64, 4, 2);
        for r in 0..d.ranks() {
            for dir in Dir::ALL {
                if let Some(n) = d.neighbor(r, dir) {
                    assert_eq!(d.neighbor(n, dir.opposite()), Some(r));
                }
            }
        }
    }

    #[test]
    fn boundary_tiles_have_no_outside_neighbors() {
        let d = Decomposition2D::with_grid(64, 64, 2, 2);
        assert_eq!(d.neighbor(0, Dir::West), None);
        assert_eq!(d.neighbor(0, Dir::South), None);
        assert_eq!(d.neighbor(3, Dir::East), None);
        assert_eq!(d.neighbor(3, Dir::North), None);
        assert_eq!(d.neighbor(0, Dir::East), Some(1));
        assert_eq!(d.neighbor(0, Dir::North), Some(2));
    }

    #[test]
    fn rank_coords_roundtrip() {
        let d = Decomposition2D::with_grid(100, 100, 5, 4);
        for r in 0..20 {
            let (cx, cy) = d.coords_of(r);
            assert_eq!(d.rank_of(cx, cy), r);
        }
    }

    #[test]
    fn dir_opposites() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
        assert!(Dir::West.is_x());
        assert!(!Dir::North.is_x());
    }

    #[test]
    #[should_panic]
    fn too_many_ranks_along_axis_panics() {
        let _ = Decomposition2D::with_grid(4, 4, 8, 1);
    }

    #[test]
    fn load_balance_within_one_row() {
        let d = Decomposition2D::new(4000, 4000, 32);
        let min = d.subdomains().map(|s| s.cells()).min().unwrap();
        let max = d.max_tile_cells();
        // tiles differ by at most one row/column
        assert!(max - min <= 4000 / 4 + 1);
        let total: usize = d.subdomains().map(|s| s.cells()).sum();
        assert_eq!(total, 4000 * 4000);
    }
}
