//! 3D problem geometry for the 7-point-stencil variant.
//!
//! TeaLeaf solves the heat equation in "two and three dimensions via
//! five and seven point finite difference stencils" (paper §II). The 3D
//! state machinery mirrors the 2D one: a background material plus shaped
//! overlays.

use crate::field3d::Field3D;
use crate::geometry::Coefficient;
use crate::mesh3d::{Extent3D, Mesh3D};
use serde::{Deserialize, Serialize};

/// Geometric region of a 3D material state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Shape3D {
    /// Applies everywhere; must be first.
    Background,
    /// Axis-aligned box `[x_min,x_max) × [y_min,y_max) × [z_min,z_max)`.
    Box {
        /// Lower x bound.
        x_min: f64,
        /// Lower y bound.
        y_min: f64,
        /// Lower z bound.
        z_min: f64,
        /// Upper x bound.
        x_max: f64,
        /// Upper y bound.
        y_max: f64,
        /// Upper z bound.
        z_max: f64,
    },
    /// Ball of `radius` centred at `(cx, cy, cz)`.
    Sphere {
        /// Centre x.
        cx: f64,
        /// Centre y.
        cy: f64,
        /// Centre z.
        cz: f64,
        /// Radius.
        radius: f64,
    },
}

impl Shape3D {
    /// Whether the cell centred at `(x, y, z)` belongs to this shape.
    pub fn contains(&self, x: f64, y: f64, z: f64) -> bool {
        match *self {
            Shape3D::Background => true,
            Shape3D::Box {
                x_min,
                y_min,
                z_min,
                x_max,
                y_max,
                z_max,
            } => x >= x_min && x < x_max && y >= y_min && y < y_max && z >= z_min && z < z_max,
            Shape3D::Sphere { cx, cy, cz, radius } => {
                let (dx, dy, dz) = (x - cx, y - cy, z - cz);
                dx * dx + dy * dy + dz * dz <= radius * radius
            }
        }
    }
}

/// A 3D material state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct State3D {
    /// Region.
    pub shape: Shape3D,
    /// Initial density.
    pub density: f64,
    /// Initial specific energy.
    pub energy: f64,
}

/// A complete 3D problem description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem3D {
    /// Cells in x.
    pub x_cells: usize,
    /// Cells in y.
    pub y_cells: usize,
    /// Cells in z.
    pub z_cells: usize,
    /// Physical bounding box.
    pub extent: Extent3D,
    /// Background state followed by overlays (later wins).
    pub states: Vec<State3D>,
    /// Coefficient recipe.
    pub coefficient: Coefficient,
}

impl Problem3D {
    /// Structural validation (mirrors the 2D `Problem::validate`).
    pub fn validate(&self) -> Result<(), String> {
        if self.x_cells == 0 || self.y_cells == 0 || self.z_cells == 0 {
            return Err("mesh must have at least one cell per axis".into());
        }
        match self.states.first() {
            None => return Err("at least a background state is required".into()),
            Some(s) if s.shape != Shape3D::Background => {
                return Err("first state must be the background".into())
            }
            _ => {}
        }
        for (i, s) in self.states.iter().enumerate() {
            if !s.density.is_finite() || s.density <= 0.0 {
                return Err(format!("state {i} has non-positive density"));
            }
            if !s.energy.is_finite() || s.energy < 0.0 {
                return Err(format!("state {i} has negative energy"));
            }
        }
        Ok(())
    }

    /// Initialises density and energy fields (interior + ghosts).
    pub fn apply_states(&self, mesh: &Mesh3D, density: &mut Field3D, energy: &mut Field3D) {
        assert_eq!(density.nx(), mesh.nx());
        assert_eq!(density.ny(), mesh.ny());
        assert_eq!(density.nz(), mesh.nz());
        let h = density.halo().min(energy.halo()) as isize;
        for i in -h..mesh.nz() as isize + h {
            for k in -h..mesh.ny() as isize + h {
                for j in -h..mesh.nx() as isize + h {
                    let (x, y, z) = mesh.cell_center(j, k, i);
                    for s in &self.states {
                        if s.shape.contains(x, y, z) {
                            density.set(j, k, i, s.density);
                            energy.set(j, k, i, s.energy);
                        }
                    }
                }
            }
        }
    }
}

/// A hot ball inside a uniform conducting cube — the 3D analogue of the
/// 2D `hot_square` test problem.
pub fn hot_ball(n: usize) -> Problem3D {
    Problem3D {
        x_cells: n,
        y_cells: n,
        z_cells: n,
        extent: Extent3D::cube(1.0),
        states: vec![
            State3D {
                shape: Shape3D::Background,
                density: 1.0,
                energy: 1.0,
            },
            State3D {
                shape: Shape3D::Sphere {
                    cx: 0.5,
                    cy: 0.5,
                    cz: 0.5,
                    radius: 0.2,
                },
                density: 1.0,
                energy: 10.0,
            },
        ],
        coefficient: Coefficient::Conductivity,
    }
}

/// A 3D crooked pipe: a conducting square-section channel with one kink
/// in y and one in z, crossing a dense insulating block — the 3D
/// counterpart of the paper's 2D workload.
pub fn crooked_pipe_3d(n: usize) -> Problem3D {
    let wall = State3D {
        shape: Shape3D::Background,
        density: 100.0,
        energy: 0.0001,
    };
    let pipe = |x0: f64, y0: f64, z0: f64, x1: f64, y1: f64, z1: f64| State3D {
        shape: Shape3D::Box {
            x_min: x0,
            y_min: y0,
            z_min: z0,
            x_max: x1,
            y_max: y1,
            z_max: z1,
        },
        density: 0.1,
        energy: 25.0,
    };
    let source = State3D {
        shape: Shape3D::Box {
            x_min: 0.0,
            y_min: 1.0,
            z_min: 1.0,
            x_max: 0.5,
            y_max: 2.0,
            z_max: 2.0,
        },
        density: 0.1,
        energy: 300.0,
    };
    Problem3D {
        x_cells: n,
        y_cells: n,
        z_cells: n,
        extent: Extent3D::cube(10.0),
        states: vec![
            wall,
            // inlet leg along x
            pipe(0.0, 1.0, 1.0, 4.0, 2.0, 2.0),
            // kink up in y
            pipe(3.0, 1.0, 1.0, 4.0, 6.0, 2.0),
            // run along x at high y, kink in z
            pipe(3.0, 5.0, 1.0, 7.0, 6.0, 2.0),
            pipe(6.0, 5.0, 1.0, 7.0, 6.0, 6.0),
            // exit leg to the +x face at high z
            pipe(6.0, 5.0, 5.0, 10.0, 6.0, 6.0),
            source,
        ],
        coefficient: Coefficient::Conductivity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_contain() {
        let b = Shape3D::Box {
            x_min: 0.0,
            y_min: 0.0,
            z_min: 0.0,
            x_max: 1.0,
            y_max: 1.0,
            z_max: 1.0,
        };
        assert!(b.contains(0.5, 0.5, 0.5));
        assert!(!b.contains(0.5, 0.5, 1.5));
        let s = Shape3D::Sphere {
            cx: 0.0,
            cy: 0.0,
            cz: 0.0,
            radius: 1.0,
        };
        assert!(s.contains(0.5, 0.5, 0.5));
        assert!(!s.contains(0.8, 0.8, 0.8));
    }

    #[test]
    fn problems_validate() {
        hot_ball(8).validate().unwrap();
        crooked_pipe_3d(16).validate().unwrap();
        let mut p = hot_ball(8);
        p.states[0].density = 0.0;
        assert!(p.validate().is_err());
        let mut p2 = hot_ball(8);
        p2.states.swap(0, 1);
        assert!(p2.validate().is_err());
    }

    #[test]
    fn apply_states_sets_ball() {
        let p = hot_ball(16);
        let mesh = Mesh3D::new(16, 16, 16, p.extent);
        let mut density = Field3D::new(16, 16, 16, 1);
        let mut energy = Field3D::new(16, 16, 16, 1);
        p.apply_states(&mesh, &mut density, &mut energy);
        // centre cell is hot, corner is background
        assert_eq!(energy.at(8, 8, 8), 10.0);
        assert_eq!(energy.at(0, 0, 0), 1.0);
        assert_eq!(density.at(0, 0, 0), 1.0);
    }

    #[test]
    fn pipe3d_spans_x() {
        let p = crooked_pipe_3d(20);
        let mesh = Mesh3D::new(20, 20, 20, p.extent);
        let mut density = Field3D::new(20, 20, 20, 0);
        let mut energy = Field3D::new(20, 20, 20, 0);
        p.apply_states(&mesh, &mut density, &mut energy);
        // inlet face: pipe material at (0, y~1.5, z~1.5)
        assert_eq!(density.at(0, 3, 3), 0.1);
        // exit face: pipe material at (last, y~5.5, z~5.5)
        assert_eq!(density.at(19, 11, 11), 0.1);
        // wall elsewhere
        assert_eq!(density.at(19, 1, 1), 100.0);
    }
}
