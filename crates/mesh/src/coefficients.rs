//! Face conduction coefficients `Kx`, `Ky`.
//!
//! Matches TeaLeaf's `tea_leaf_common` initialisation: a working array
//! `w` is formed from the density per [`Coefficient`], then face
//! coefficients are
//!
//! ```text
//! Kx(j,k) = (w(j-1,k) + w(j,k)) / (2 * w(j-1,k) * w(j,k))   (mean of 1/w)
//! Ky(j,k) = (w(j,k-1) + w(j,k)) / (2 * w(j,k-1) * w(j,k))
//! ```
//!
//! and finally scaled by `rx = dt/dx^2` (resp. `ry = dt/dy^2`) so the
//! matrix-free operator reads exactly like the paper's Listing 1 with no
//! extra multiplications. `Kx(j,k)` lives on the face between cells
//! `(j-1,k)` and `(j,k)`.
//!
//! Insulated (zero-flux) domain boundaries are imposed by zeroing every
//! face on or beyond the global boundary. This is algebraically identical
//! to the reference's reflective ghost exchange (the flux
//! `K*(u_in - u_ghost)` vanishes either way because reflection makes
//! `u_ghost = u_in`), but it makes the operator's SPD structure explicit
//! and spares every solver iteration a boundary-reflection pass.

use crate::field::{Field2, Field2D};
use crate::geometry::Coefficient;
use crate::mesh::Mesh2D;
use crate::scalar::Scalar;

/// The assembled, pre-scaled face-coefficient fields for one tile.
///
/// Both fields carry the same halo depth as requested at assembly so the
/// matrix-powers kernel can evaluate the stencil inside the halo region.
/// Assembly always happens in `f64`; reduced-precision operators are
/// derived by [`Coefficients::convert`].
#[derive(Debug, Clone, PartialEq)]
pub struct Coefficients<S: Scalar = f64> {
    /// X-face coefficients, pre-multiplied by `rx`.
    pub kx: Field2<S>,
    /// Y-face coefficients, pre-multiplied by `ry`.
    pub ky: Field2<S>,
}

impl Coefficients<f64> {
    /// Assembles coefficients for `mesh` from cell densities.
    ///
    /// `density` must carry at least `halo` ghost layers, already filled
    /// consistently with neighbouring tiles (e.g. by
    /// [`crate::geometry::Problem::apply_states`], which initialises
    /// ghosts geometrically). `rx`/`ry` are the `dt/dx^2` scalings.
    ///
    /// Faces on or outside the global domain boundary are zeroed
    /// (insulated boundary, see module docs). All interior faces are
    /// strictly positive for positive densities.
    pub fn assemble(
        mesh: &Mesh2D,
        density: &Field2D,
        kind: Coefficient,
        rx: f64,
        ry: f64,
        halo: usize,
    ) -> Self {
        assert!(
            density.halo() >= halo,
            "density halo {} shallower than requested {halo}",
            density.halo()
        );
        let (nx, ny) = (mesh.nx(), mesh.ny());
        let h = halo as isize;
        let mut kx = Field2D::new(nx, ny, halo);
        let mut ky = Field2D::new(nx, ny, halo);

        let w_of = |j: isize, k: isize| -> f64 {
            let d = density.at(j, k);
            debug_assert!(d > 0.0, "non-positive density at ({j},{k})");
            match kind {
                Coefficient::Conductivity => d,
                Coefficient::RecipConductivity => 1.0 / d,
            }
        };

        let (gnx, gny) = mesh.global_cells();
        let (x_off, y_off) = (
            mesh.subdomain().offset.0 as isize,
            mesh.subdomain().offset.1 as isize,
        );

        for k in -h..ny as isize + h {
            for j in -h..nx as isize + h {
                // face between (j-1,k) and (j,k): global face index x_off+j
                let gxf = x_off + j;
                let gyf = y_off + k;
                // a face is live only when both adjacent cells lie inside
                // the global domain
                let kx_live =
                    gxf >= 1 && gxf < gnx as isize && gyf >= 0 && gyf < gny as isize && j > -h; // need w(j-1,k) inside the allocation
                if kx_live {
                    let (a, b) = (w_of(j - 1, k), w_of(j, k));
                    kx.set(j, k, rx * (a + b) / (2.0 * a * b));
                }
                let ky_live =
                    gyf >= 1 && gyf < gny as isize && gxf >= 0 && gxf < gnx as isize && k > -h;
                if ky_live {
                    let (a, b) = (w_of(j, k - 1), w_of(j, k));
                    ky.set(j, k, ry * (a + b) / (2.0 * a * b));
                }
            }
        }
        Coefficients { kx, ky }
    }
}

impl<S: Scalar> Coefficients<S> {
    /// Halo depth the coefficient fields were assembled with.
    pub fn halo(&self) -> usize {
        self.kx.halo()
    }

    /// Converts both coefficient fields to scalar type `T` (rounding for
    /// narrower formats) — how the mixed-precision solvers derive their
    /// `f32` operator from the assembled `f64` one.
    pub fn convert<T: Scalar>(&self) -> Coefficients<T> {
        Coefficients {
            kx: self.kx.convert(),
            ky: self.ky.convert(),
        }
    }
}

/// Computes `rx = dt / dx^2` and `ry = dt / dy^2` for a mesh and time step.
pub fn timestep_scalings(mesh: &Mesh2D, dt: f64) -> (f64, f64) {
    assert!(dt > 0.0, "time step must be positive");
    (dt / (mesh.dx() * mesh.dx()), dt / (mesh.dy() * mesh.dy()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{crooked_pipe, Problem};
    use crate::mesh::Extent2D;
    use crate::Decomposition2D;

    fn uniform_density(n: usize, halo: usize, rho: f64) -> (Mesh2D, Field2D) {
        let mesh = Mesh2D::serial(n, n, Extent2D::unit());
        let density = Field2D::filled(n, n, halo, rho);
        (mesh, density)
    }

    #[test]
    fn uniform_density_gives_uniform_interior_faces() {
        let (mesh, density) = uniform_density(8, 2, 2.0);
        let c = Coefficients::assemble(&mesh, &density, Coefficient::Conductivity, 1.0, 1.0, 2);
        // interior face: mean of 1/w with w = 2 -> 0.5
        assert_eq!(c.kx.at(4, 4), 0.5);
        assert_eq!(c.ky.at(4, 4), 0.5);
        // recip mode: w = 0.5 -> mean of 1/w = 2
        let c2 =
            Coefficients::assemble(&mesh, &density, Coefficient::RecipConductivity, 1.0, 1.0, 2);
        assert_eq!(c2.kx.at(4, 4), 2.0);
    }

    #[test]
    fn boundary_faces_are_zeroed() {
        let (mesh, density) = uniform_density(8, 2, 1.0);
        let c = Coefficients::assemble(&mesh, &density, Coefficient::Conductivity, 1.0, 1.0, 2);
        for k in 0..8 {
            assert_eq!(c.kx.at(0, k), 0.0, "west boundary face must be zero");
            assert_eq!(c.kx.at(8, k), 0.0, "east boundary face must be zero");
            assert_eq!(c.ky.at(k, 0), 0.0, "south boundary face must be zero");
            assert_eq!(c.ky.at(k, 8), 0.0, "north boundary face must be zero");
        }
        // first interior face alive
        assert!(c.kx.at(1, 0) > 0.0);
        assert!(c.ky.at(0, 1) > 0.0);
    }

    #[test]
    fn rx_ry_scaling_applied() {
        let (mesh, density) = uniform_density(4, 1, 1.0);
        let c = Coefficients::assemble(&mesh, &density, Coefficient::Conductivity, 0.25, 4.0, 1);
        assert_eq!(c.kx.at(2, 2), 0.25);
        assert_eq!(c.ky.at(2, 2), 4.0);
    }

    #[test]
    fn timestep_scalings_match_definition() {
        let mesh = Mesh2D::serial(10, 20, Extent2D::square(10.0));
        let (rx, ry) = timestep_scalings(&mesh, 0.04);
        assert!((rx - 0.04 / 1.0).abs() < 1e-15);
        assert!((ry - 0.04 / 0.25).abs() < 1e-15);
    }

    #[test]
    fn face_values_harmonic_form() {
        // two-cell contrast: w = 1 and w = 3 -> K = (1+3)/(2*3) = 2/3
        let mesh = Mesh2D::serial(4, 4, Extent2D::unit());
        let mut density = Field2D::filled(4, 4, 1, 1.0);
        for k in -1..5 {
            for j in 2..5 {
                density.set(j, k, 3.0);
            }
        }
        let c = Coefficients::assemble(&mesh, &density, Coefficient::Conductivity, 1.0, 1.0, 1);
        assert!((c.kx.at(2, 1) - 2.0 / 3.0).abs() < 1e-15);
        // pure-material faces
        assert_eq!(c.kx.at(1, 1), 1.0);
        assert!((c.kx.at(3, 1) - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn tiles_agree_with_serial_assembly_on_shared_faces() {
        let n = 16;
        let problem: Problem = crooked_pipe(n);
        let halo = 2;

        // serial assembly
        let serial_mesh = Mesh2D::serial(n, n, problem.extent);
        let mut sd = Field2D::new(n, n, halo);
        let mut se = Field2D::new(n, n, halo);
        problem.apply_states(&serial_mesh, &mut sd, &mut se);
        let sc = Coefficients::assemble(&serial_mesh, &sd, problem.coefficient, 1.0, 1.0, halo);

        // 2x2 decomposed assembly
        let d = Decomposition2D::with_grid(n, n, 2, 2);
        for rank in 0..4 {
            let mesh = Mesh2D::new(&d, rank, problem.extent);
            let mut dd = Field2D::new(mesh.nx(), mesh.ny(), halo);
            let mut de = Field2D::new(mesh.nx(), mesh.ny(), halo);
            problem.apply_states(&mesh, &mut dd, &mut de);
            let dc = Coefficients::assemble(&mesh, &dd, problem.coefficient, 1.0, 1.0, halo);
            let (ox, oy) = mesh.subdomain().offset;
            for k in 0..mesh.ny() as isize {
                for j in 0..mesh.nx() as isize {
                    let (gj, gk) = (j + ox as isize, k + oy as isize);
                    assert_eq!(
                        dc.kx.at(j, k),
                        sc.kx.at(gj, gk),
                        "kx mismatch at global ({gj},{gk}) on rank {rank}"
                    );
                    assert_eq!(
                        dc.ky.at(j, k),
                        sc.ky.at(gj, gk),
                        "ky mismatch at global ({gj},{gk}) on rank {rank}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn shallow_density_halo_panics() {
        let (mesh, density) = uniform_density(4, 1, 1.0);
        let _ = Coefficients::assemble(&mesh, &density, Coefficient::Conductivity, 1.0, 1.0, 2);
    }
}
