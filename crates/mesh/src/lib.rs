//! # tea-mesh — structured meshes for TeaLeaf-rs
//!
//! The mesh substrate of the TeaLeaf reproduction: halo-padded dense
//! fields ([`Field2D`], [`Field3D`]), balanced rectangular domain
//! decomposition ([`Decomposition2D`]), physical mesh metadata
//! ([`Mesh2D`]), input-deck material states and the crooked-pipe problem
//! generator ([`geometry`]), and face conduction-coefficient assembly
//! ([`coefficients`]).
//!
//! Everything here is deliberately solver-agnostic: `tea-core` builds its
//! matrix-free operators on top of these types, and `tea-comms` moves
//! their halo rectangles between ranks.
//!
//! ## Example
//!
//! ```
//! use tea_mesh::{crooked_pipe, Coefficients, Field2D, Mesh2D};
//!
//! let problem = crooked_pipe(64);
//! let mesh = Mesh2D::serial(64, 64, problem.extent);
//! let mut density = Field2D::new(64, 64, 2);
//! let mut energy = Field2D::new(64, 64, 2);
//! problem.apply_states(&mesh, &mut density, &mut energy);
//! let (rx, ry) = tea_mesh::timestep_scalings(&mesh, 0.04);
//! let coeffs = Coefficients::assemble(&mesh, &density, problem.coefficient, rx, ry, 2);
//! assert!(coeffs.kx.at(32, 32) > 0.0);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coefficients;
pub mod decomp;
pub mod field;
pub mod field3d;
pub mod geometry;
pub mod geometry3d;
pub mod mesh;
pub mod mesh3d;
pub mod scalar;

pub use coefficients::{timestep_scalings, Coefficients};
pub use decomp::{
    choose_process_grid, factor_pairs, split_extent, Decomposition2D, Dir, Subdomain,
};
pub use field::{Field2, Field2D, Field2F};
pub use field3d::Field3D;
pub use geometry::{
    crooked_pipe, crooked_pipe_rect, hot_square, Coefficient, Problem, Shape, State,
};
pub use geometry3d::{crooked_pipe_3d, hot_ball, Problem3D, Shape3D, State3D};
pub use mesh::{Extent2D, Mesh2D};
pub use mesh3d::{Coefficients3D, Extent3D, Mesh3D};
pub use scalar::Scalar;
