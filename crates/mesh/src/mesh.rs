//! Mesh metadata: physical extents, spacing and per-rank tile geometry.
//!
//! TeaLeaf meshes are uniform rectangular grids. A [`Mesh2D`] couples the
//! global physical description (extent, cell counts) with one rank's
//! [`Subdomain`] so kernels can map local signed indices to global physical
//! coordinates, which is what the state/geometry initialisation needs.

use crate::decomp::{Decomposition2D, Subdomain};
use serde::{Deserialize, Serialize};

/// Physical bounding box of the global domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Extent2D {
    /// Minimum x coordinate.
    pub x_min: f64,
    /// Maximum x coordinate.
    pub x_max: f64,
    /// Minimum y coordinate.
    pub y_min: f64,
    /// Maximum y coordinate.
    pub y_max: f64,
}

impl Extent2D {
    /// A unit-square extent `[0,1] x [0,1]`.
    pub fn unit() -> Self {
        Extent2D {
            x_min: 0.0,
            x_max: 1.0,
            y_min: 0.0,
            y_max: 1.0,
        }
    }

    /// A square extent `[0,s] x [0,s]`.
    pub fn square(s: f64) -> Self {
        assert!(s > 0.0);
        Extent2D {
            x_min: 0.0,
            x_max: s,
            y_min: 0.0,
            y_max: s,
        }
    }

    /// Physical width.
    pub fn width(&self) -> f64 {
        self.x_max - self.x_min
    }

    /// Physical height.
    pub fn height(&self) -> f64 {
        self.y_max - self.y_min
    }
}

/// One rank's view of the global uniform mesh.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh2D {
    global_nx: usize,
    global_ny: usize,
    extent: Extent2D,
    sub: Subdomain,
    dx: f64,
    dy: f64,
}

impl Mesh2D {
    /// Builds the mesh view for `rank` of `decomp` over `extent`.
    pub fn new(decomp: &Decomposition2D, rank: usize, extent: Extent2D) -> Self {
        let (gnx, gny) = decomp.global_cells();
        let sub = decomp.subdomain(rank);
        Mesh2D {
            global_nx: gnx,
            global_ny: gny,
            extent,
            sub,
            dx: extent.width() / gnx as f64,
            dy: extent.height() / gny as f64,
        }
    }

    /// A serial (single-tile) mesh covering the whole domain.
    pub fn serial(nx: usize, ny: usize, extent: Extent2D) -> Self {
        let d = Decomposition2D::with_grid(nx, ny, 1, 1);
        Self::new(&d, 0, extent)
    }

    /// Global cell counts.
    pub fn global_cells(&self) -> (usize, usize) {
        (self.global_nx, self.global_ny)
    }

    /// Physical extent of the global domain.
    pub fn extent(&self) -> Extent2D {
        self.extent
    }

    /// This rank's tile.
    pub fn subdomain(&self) -> &Subdomain {
        &self.sub
    }

    /// Local interior cells in x.
    pub fn nx(&self) -> usize {
        self.sub.nx
    }

    /// Local interior cells in y.
    pub fn ny(&self) -> usize {
        self.sub.ny
    }

    /// Cell spacing in x.
    pub fn dx(&self) -> f64 {
        self.dx
    }

    /// Cell spacing in y.
    pub fn dy(&self) -> f64 {
        self.dy
    }

    /// Uniform cell volume (area in 2D).
    pub fn cell_volume(&self) -> f64 {
        self.dx * self.dy
    }

    /// Physical centre of local cell `(j, k)` (signed; ghosts allowed).
    pub fn cell_center(&self, j: isize, k: isize) -> (f64, f64) {
        let gx = self.sub.offset.0 as f64 + j as f64;
        let gy = self.sub.offset.1 as f64 + k as f64;
        (
            self.extent.x_min + (gx + 0.5) * self.dx,
            self.extent.y_min + (gy + 0.5) * self.dy,
        )
    }

    /// Physical coordinates of the lower-left vertex of local cell `(j, k)`.
    pub fn cell_vertex(&self, j: isize, k: isize) -> (f64, f64) {
        let gx = self.sub.offset.0 as f64 + j as f64;
        let gy = self.sub.offset.1 as f64 + k as f64;
        (
            self.extent.x_min + gx * self.dx,
            self.extent.y_min + gy * self.dy,
        )
    }

    /// Whether local cell `(j, k)` sits on the given global boundary.
    pub fn on_global_boundary(&self, j: isize, k: isize, dir: crate::Dir) -> bool {
        let gx = self.sub.offset.0 as isize + j;
        let gy = self.sub.offset.1 as isize + k;
        match dir {
            crate::Dir::West => gx == 0,
            crate::Dir::East => gx == self.global_nx as isize - 1,
            crate::Dir::South => gy == 0,
            crate::Dir::North => gy == self.global_ny as isize - 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dir;

    #[test]
    fn serial_mesh_geometry() {
        let m = Mesh2D::serial(10, 5, Extent2D::square(10.0));
        assert_eq!(m.dx(), 1.0);
        assert_eq!(m.dy(), 2.0);
        assert_eq!(m.cell_volume(), 2.0);
        assert_eq!(m.cell_center(0, 0), (0.5, 1.0));
        assert_eq!(m.cell_vertex(0, 0), (0.0, 0.0));
        assert_eq!(m.cell_center(9, 4), (9.5, 9.0));
    }

    #[test]
    fn decomposed_tiles_share_global_coordinates() {
        let d = Decomposition2D::with_grid(8, 8, 2, 2);
        let e = Extent2D::unit();
        let m0 = Mesh2D::new(&d, 0, e);
        let m1 = Mesh2D::new(&d, 1, e);
        // rank 1's first column is rank 0's column 4
        assert_eq!(m1.cell_center(0, 0), m0.cell_center(4, 0));
        // ghost of rank 1 at j=-1 coincides with rank 0 interior j=3
        assert_eq!(m1.cell_center(-1, 0), m0.cell_center(3, 0));
    }

    #[test]
    fn boundary_detection_uses_global_indices() {
        let d = Decomposition2D::with_grid(8, 8, 2, 1);
        let m0 = Mesh2D::new(&d, 0, Extent2D::unit());
        let m1 = Mesh2D::new(&d, 1, Extent2D::unit());
        assert!(m0.on_global_boundary(0, 0, Dir::West));
        assert!(!m0.on_global_boundary(3, 0, Dir::East));
        assert!(m1.on_global_boundary(3, 0, Dir::East));
        assert!(!m1.on_global_boundary(0, 0, Dir::West));
        assert!(m0.on_global_boundary(2, 0, Dir::South));
        assert!(m0.on_global_boundary(2, 7, Dir::North));
    }

    #[test]
    fn extent_helpers() {
        let e = Extent2D::square(4.0);
        assert_eq!(e.width(), 4.0);
        assert_eq!(e.height(), 4.0);
        let u = Extent2D::unit();
        assert_eq!(u.width(), 1.0);
    }
}
