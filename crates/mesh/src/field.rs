//! Halo-padded 2D scalar fields.
//!
//! TeaLeaf stores every mesh variable (`u`, `p`, `r`, `Kx`, …) as a dense
//! 2D array padded with ghost (halo) layers on all four sides, exactly like
//! the Fortran reference declares `u(x_min-2:x_max+2, y_min-2:y_max+2)`.
//! [`Field2`] reproduces that layout in row-major order with a
//! configurable halo depth so the matrix-powers kernel can request deep
//! halos (the paper uses up to 16).
//!
//! The element type is any [`Scalar`] — precision is a design-space axis.
//! [`Field2D`] (`f64`) is the default everywhere and keeps every
//! pre-existing call site source-compatible; [`Field2F`] (`f32`) is the
//! reduced-precision variant the mixed-precision solvers use.
//!
//! Interior cells are addressed by signed indices `(j, k)` with
//! `0 <= j < nx`, `0 <= k < ny`; ghost cells use negative indices or
//! indices `>= nx`/`ny`, mirroring the Fortran convention shifted to a
//! zero base.

use crate::scalar::Scalar;
use std::fmt;

/// The default double-precision field: what every solver, driver and
/// output path works in unless precision is explicitly lowered.
pub type Field2D = Field2<f64>;

/// The single-precision field variant, used by the `f32` and mixed
/// precision legs of the design space.
pub type Field2F = Field2<f32>;

/// A dense, row-major 2D field of [`Scalar`] values with `halo` ghost
/// layers on every side.
///
/// The allocation covers `(nx + 2*halo) * (ny + 2*halo)` cells. Signed
/// index `(j, k)` maps to flat offset `(k + halo) * stride + (j + halo)`.
#[derive(Clone, PartialEq)]
pub struct Field2<S: Scalar> {
    nx: usize,
    ny: usize,
    halo: usize,
    stride: usize,
    data: Vec<S>,
}

impl<S: Scalar> fmt::Debug for Field2<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Field2")
            .field("scalar", &S::NAME)
            .field("nx", &self.nx)
            .field("ny", &self.ny)
            .field("halo", &self.halo)
            .finish()
    }
}

impl<S: Scalar> Field2<S> {
    /// Creates a zero-filled field of `nx * ny` interior cells with `halo`
    /// ghost layers.
    ///
    /// # Panics
    /// Panics if `nx` or `ny` is zero.
    pub fn new(nx: usize, ny: usize, halo: usize) -> Self {
        assert!(nx > 0 && ny > 0, "field dimensions must be positive");
        let stride = nx + 2 * halo;
        let rows = ny + 2 * halo;
        Field2 {
            nx,
            ny,
            halo,
            stride,
            data: vec![S::ZERO; stride * rows],
        }
    }

    /// Creates a field with every cell (including ghosts) set to `value`.
    pub fn filled(nx: usize, ny: usize, halo: usize, value: S) -> Self {
        let mut f = Self::new(nx, ny, halo);
        f.data.fill(value);
        f
    }

    /// Interior extent in x (number of non-ghost columns).
    #[inline(always)]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Interior extent in y (number of non-ghost rows).
    #[inline(always)]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Ghost-layer depth on each side.
    #[inline(always)]
    pub fn halo(&self) -> usize {
        self.halo
    }

    /// Row stride of the underlying allocation (`nx + 2*halo`).
    #[inline(always)]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of interior cells.
    #[inline(always)]
    pub fn interior_len(&self) -> usize {
        self.nx * self.ny
    }

    /// Flat offset of signed cell index `(j, k)`.
    ///
    /// Debug-asserts the index is within the allocation (ghosts included).
    #[inline(always)]
    pub fn offset(&self, j: isize, k: isize) -> usize {
        let h = self.halo as isize;
        debug_assert!(
            j >= -h && j < self.nx as isize + h,
            "x index {j} out of range [{}, {})",
            -h,
            self.nx as isize + h
        );
        debug_assert!(
            k >= -h && k < self.ny as isize + h,
            "y index {k} out of range [{}, {})",
            -h,
            self.ny as isize + h
        );
        (k + h) as usize * self.stride + (j + h) as usize
    }

    /// Value at signed cell index `(j, k)` (ghosts allowed).
    #[inline(always)]
    pub fn at(&self, j: isize, k: isize) -> S {
        self.data[self.offset(j, k)]
    }

    /// Mutable reference at signed cell index `(j, k)` (ghosts allowed).
    #[inline(always)]
    pub fn at_mut(&mut self, j: isize, k: isize) -> &mut S {
        let o = self.offset(j, k);
        &mut self.data[o]
    }

    /// Sets the value at signed cell index `(j, k)`.
    #[inline(always)]
    pub fn set(&mut self, j: isize, k: isize, v: S) {
        let o = self.offset(j, k);
        self.data[o] = v;
    }

    /// Full backing slice including ghost cells.
    #[inline(always)]
    pub fn raw(&self) -> &[S] {
        &self.data
    }

    /// Mutable full backing slice including ghost cells.
    #[inline(always)]
    pub fn raw_mut(&mut self) -> &mut [S] {
        &mut self.data
    }

    /// A row slice spanning `x_lo..x_hi` (signed, ghosts allowed) of row `k`.
    ///
    /// Hot kernels grab neighbouring row slices once and then index with
    /// plain `usize`, which lets the compiler elide bounds checks in the
    /// inner loop.
    #[inline(always)]
    pub fn row(&self, k: isize, x_lo: isize, x_hi: isize) -> &[S] {
        debug_assert!(x_lo <= x_hi);
        let a = self.offset(x_lo, k);
        let b = a + (x_hi - x_lo) as usize;
        &self.data[a..b]
    }

    /// Mutable row slice spanning `x_lo..x_hi` of row `k`.
    #[inline(always)]
    pub fn row_mut(&mut self, k: isize, x_lo: isize, x_hi: isize) -> &mut [S] {
        debug_assert!(x_lo <= x_hi);
        let a = self.offset(x_lo, k);
        let b = a + (x_hi - x_lo) as usize;
        &mut self.data[a..b]
    }

    /// Fills every cell (ghosts included) with `value`.
    pub fn fill(&mut self, value: S) {
        self.data.fill(value);
    }

    /// Fills only interior cells, leaving ghost layers untouched.
    pub fn fill_interior(&mut self, value: S) {
        for k in 0..self.ny as isize {
            self.row_mut(k, 0, self.nx as isize).fill(value);
        }
    }

    /// Copies interior cells from `src` (must have identical interior
    /// extents; halos may differ).
    pub fn copy_interior_from(&mut self, src: &Field2<S>) {
        assert_eq!(self.nx, src.nx, "interior nx mismatch");
        assert_eq!(self.ny, src.ny, "interior ny mismatch");
        for k in 0..self.ny as isize {
            let d = self.row_mut(k, 0, src.nx as isize);
            let s = src.row(k, 0, src.nx as isize);
            d.copy_from_slice(s);
        }
    }

    /// Converts every cell (ghosts included) into a new field of scalar
    /// type `T`, rounding if `T` is narrower.
    pub fn convert<T: Scalar>(&self) -> Field2<T> {
        let mut out = Field2::<T>::new(self.nx, self.ny, self.halo);
        self.convert_into(&mut out);
        out
    }

    /// Converts every cell (ghosts included) into `dst`, which must have
    /// identical extents and halo. The allocation-free sibling of
    /// [`Field2::convert`] for per-iteration precision demotion/promotion
    /// in the mixed solvers.
    ///
    /// # Panics
    /// Panics on extent or halo mismatch.
    pub fn convert_into<T: Scalar>(&self, dst: &mut Field2<T>) {
        assert_eq!(self.nx, dst.nx, "convert: nx mismatch");
        assert_eq!(self.ny, dst.ny, "convert: ny mismatch");
        assert_eq!(self.halo, dst.halo, "convert: halo mismatch");
        for (d, &s) in dst.data.iter_mut().zip(&self.data) {
            *d = T::from_f64(s.to_f64());
        }
    }

    /// Sum of interior cells (serial, deterministic order).
    pub fn interior_sum(&self) -> S {
        let mut acc = S::ZERO;
        for k in 0..self.ny as isize {
            for &v in self.row(k, 0, self.nx as isize) {
                acc += v;
            }
        }
        acc
    }

    /// Dot product over interior cells with `other` (serial, deterministic).
    pub fn interior_dot(&self, other: &Field2<S>) -> S {
        assert_eq!(self.nx, other.nx);
        assert_eq!(self.ny, other.ny);
        let mut acc = S::ZERO;
        for k in 0..self.ny as isize {
            let a = self.row(k, 0, self.nx as isize);
            let b = other.row(k, 0, self.nx as isize);
            for (x, y) in a.iter().zip(b) {
                acc += *x * *y;
            }
        }
        acc
    }

    /// Worst per-cell relative difference from `other` over the
    /// interior, `max |a−b| / max(|b|, floor)` with a `1e-12` floor so
    /// near-zero cells compare absolutely — the agreement metric of the
    /// precision sweeps (`other` is the reference field).
    ///
    /// # Panics
    /// Panics on interior-extent mismatch.
    pub fn interior_max_rel_diff(&self, other: &Field2<S>) -> f64 {
        assert_eq!(self.nx, other.nx, "interior nx mismatch");
        assert_eq!(self.ny, other.ny, "interior ny mismatch");
        let mut worst = 0.0f64;
        for k in 0..self.ny as isize {
            let a = self.row(k, 0, self.nx as isize);
            let b = other.row(k, 0, self.nx as isize);
            for (x, y) in a.iter().zip(b) {
                let (x, y) = (x.to_f64(), y.to_f64());
                worst = worst.max((x - y).abs() / y.abs().max(1e-12));
            }
        }
        worst
    }

    /// Maximum absolute value over interior cells.
    pub fn interior_max_abs(&self) -> S {
        let mut m = S::ZERO;
        for k in 0..self.ny as isize {
            for &v in self.row(k, 0, self.nx as isize) {
                m = m.max(v.abs());
            }
        }
        m
    }

    /// Iterates `(j, k, value)` over interior cells in row-major order.
    pub fn iter_interior(&self) -> impl Iterator<Item = (usize, usize, S)> + '_ {
        (0..self.ny)
            .flat_map(move |k| (0..self.nx).map(move |j| (j, k, self.at(j as isize, k as isize))))
    }

    /// Extracts a rectangular patch `[x_lo, x_hi) x [y_lo, y_hi)` (signed,
    /// ghosts allowed) into a packed `Vec`, row-major. Used by halo packing.
    pub fn pack_rect(&self, x_lo: isize, x_hi: isize, y_lo: isize, y_hi: isize) -> Vec<S> {
        let w = (x_hi - x_lo).max(0) as usize;
        let h = (y_hi - y_lo).max(0) as usize;
        let mut out = Vec::with_capacity(w * h);
        for k in y_lo..y_hi {
            out.extend_from_slice(self.row(k, x_lo, x_hi));
        }
        out
    }

    /// Writes a packed row-major buffer back into the rectangle
    /// `[x_lo, x_hi) x [y_lo, y_hi)`. Inverse of [`Field2::pack_rect`].
    ///
    /// # Panics
    /// Panics if `buf` length does not match the rectangle area.
    pub fn unpack_rect(&mut self, buf: &[S], x_lo: isize, x_hi: isize, y_lo: isize, y_hi: isize) {
        let w = (x_hi - x_lo).max(0) as usize;
        let h = (y_hi - y_lo).max(0) as usize;
        assert_eq!(buf.len(), w * h, "packed buffer size mismatch");
        for (i, k) in (y_lo..y_hi).enumerate() {
            self.row_mut(k, x_lo, x_hi)
                .copy_from_slice(&buf[i * w..(i + 1) * w]);
        }
    }

    /// Reflects interior boundary cells into the ghost layers up to `depth`
    /// on all four sides (TeaLeaf's external-boundary `update_halo` for
    /// reflective/insulated boundaries).
    ///
    /// Left ghost column `-1-d` receives column `d`, etc. Corners are
    /// filled by applying x reflection first then y reflection over the
    /// already-reflected columns, matching the Fortran ordering.
    pub fn reflect_boundaries(&mut self, depth: usize) {
        assert!(depth <= self.halo, "reflection depth exceeds halo");
        let nx = self.nx as isize;
        let ny = self.ny as isize;
        let d = depth as isize;
        // X faces (interior rows only, then Y pass covers corners).
        for k in 0..ny {
            for i in 0..d {
                let left = self.at(i, k);
                self.set(-1 - i, k, left);
                let right = self.at(nx - 1 - i, k);
                self.set(nx + i, k, right);
            }
        }
        // Y faces including the freshly filled x-ghost columns.
        for i in 0..d {
            for j in -d..nx + d {
                let bottom = self.at(j, i);
                self.set(j, -1 - i, bottom);
                let top = self.at(j, ny - 1 - i);
                self.set(j, ny + i, top);
            }
        }
    }

    /// Euclidean norm over interior cells.
    pub fn interior_norm(&self) -> S {
        self.interior_dot(self).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed_with_padding() {
        let f = Field2D::new(4, 3, 2);
        assert_eq!(f.nx(), 4);
        assert_eq!(f.ny(), 3);
        assert_eq!(f.halo(), 2);
        assert_eq!(f.stride(), 8);
        assert_eq!(f.raw().len(), 8 * 7);
        assert!(f.raw().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn signed_indexing_reaches_ghosts() {
        let mut f = Field2D::new(3, 3, 1);
        f.set(-1, -1, 7.0);
        f.set(3, 3, 8.0);
        f.set(1, 1, 9.0);
        assert_eq!(f.at(-1, -1), 7.0);
        assert_eq!(f.at(3, 3), 8.0);
        assert_eq!(f.at(1, 1), 9.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics_in_debug() {
        let f = Field2D::new(3, 3, 1);
        // two past the interior with halo=1 is out of the allocation
        let _ = f.at(4, 0);
    }

    #[test]
    fn row_slices_match_at() {
        let mut f = Field2D::new(5, 4, 2);
        for k in 0..4 {
            for j in 0..5 {
                f.set(j, k, (j * 10 + k) as f64);
            }
        }
        let r = f.row(2, 0, 5);
        for (j, &v) in r.iter().enumerate() {
            assert_eq!(v, f.at(j as isize, 2));
        }
        // slice can span into ghosts
        let g = f.row(1, -2, 7);
        assert_eq!(g.len(), 9);
        assert_eq!(g[2], f.at(0, 1));
    }

    #[test]
    fn fill_interior_preserves_ghosts() {
        let mut f = Field2D::filled(3, 3, 1, 5.0);
        f.fill_interior(1.0);
        assert_eq!(f.at(0, 0), 1.0);
        assert_eq!(f.at(-1, 0), 5.0);
        assert_eq!(f.at(3, 2), 5.0);
        assert_eq!(f.interior_sum(), 9.0);
    }

    #[test]
    fn copy_interior_between_different_halos() {
        let mut a = Field2D::new(4, 4, 1);
        let mut b = Field2D::new(4, 4, 3);
        for k in 0..4 {
            for j in 0..4 {
                b.set(j, k, (j + k) as f64);
            }
        }
        a.copy_interior_from(&b);
        for k in 0..4 {
            for j in 0..4 {
                assert_eq!(a.at(j, k), (j + k) as f64);
            }
        }
    }

    #[test]
    fn dot_and_norm() {
        let mut a = Field2D::new(2, 2, 1);
        let mut b = Field2D::new(2, 2, 1);
        a.fill_interior(2.0);
        b.fill_interior(3.0);
        assert_eq!(a.interior_dot(&b), 24.0);
        assert_eq!(a.interior_norm(), 4.0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut f = Field2D::new(6, 5, 2);
        for k in -2..7isize {
            for j in -2..8isize {
                f.set(j, k, (j * 100 + k) as f64);
            }
        }
        let buf = f.pack_rect(-2, 2, 1, 4);
        assert_eq!(buf.len(), 4 * 3);
        let mut g = Field2D::new(6, 5, 2);
        g.unpack_rect(&buf, -2, 2, 1, 4);
        for k in 1..4isize {
            for j in -2..2isize {
                assert_eq!(g.at(j, k), f.at(j, k));
            }
        }
    }

    #[test]
    fn reflect_boundaries_mirrors_edges() {
        let mut f = Field2D::new(4, 3, 2);
        for k in 0..3 {
            for j in 0..4 {
                f.set(j, k, (1 + j + 10 * k) as f64);
            }
        }
        f.reflect_boundaries(2);
        // left ghosts mirror columns 0 and 1
        assert_eq!(f.at(-1, 1), f.at(0, 1));
        assert_eq!(f.at(-2, 1), f.at(1, 1));
        // right ghosts mirror columns 3 and 2
        assert_eq!(f.at(4, 0), f.at(3, 0));
        assert_eq!(f.at(5, 0), f.at(2, 0));
        // bottom/top
        assert_eq!(f.at(2, -1), f.at(2, 0));
        assert_eq!(f.at(2, 3), f.at(2, 2));
        assert_eq!(f.at(2, 4), f.at(2, 1));
        // corner: double reflection
        assert_eq!(f.at(-1, -1), f.at(0, 0));
    }

    #[test]
    fn max_rel_diff_uses_reference_scale_with_floor() {
        let mut a = Field2D::new(2, 2, 0);
        let mut b = Field2D::new(2, 2, 0);
        b.fill_interior(100.0);
        a.fill_interior(100.0);
        a.set(0, 0, 101.0); // 1% off the reference
        assert!((a.interior_max_rel_diff(&b) - 0.01).abs() < 1e-12);
        // a zero reference cell compares absolutely against the floor
        let mut c = Field2D::new(2, 2, 0);
        c.set(1, 1, 1e-13);
        let z = Field2D::new(2, 2, 0);
        assert!((c.interior_max_rel_diff(&z) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn max_abs() {
        let mut f = Field2D::new(3, 3, 0);
        f.set(1, 2, -9.5);
        f.set(0, 0, 4.0);
        assert_eq!(f.interior_max_abs(), 9.5);
    }

    #[test]
    fn iter_interior_visits_all_cells_once() {
        let mut f = Field2D::new(3, 2, 1);
        f.fill_interior(1.0);
        let cells: Vec<_> = f.iter_interior().collect();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0], (0, 0, 1.0));
        assert_eq!(cells[5], (2, 1, 1.0));
    }

    #[test]
    fn f32_fields_work_like_f64_fields() {
        let mut f = Field2F::new(4, 4, 1);
        f.set(1, 2, 3.5);
        f.set(-1, -1, 0.25);
        assert_eq!(f.at(1, 2), 3.5f32);
        assert_eq!(f.at(-1, -1), 0.25f32);
        assert_eq!(f.interior_sum(), 3.5f32);
        assert_eq!(f.interior_norm(), 3.5f32);
    }

    #[test]
    fn convert_roundtrip_and_rounding() {
        let mut f = Field2D::new(3, 3, 1);
        for k in -1..4isize {
            for j in -1..4isize {
                f.set(j, k, (j * 10 + k) as f64 + 0.5);
            }
        }
        let g: Field2F = f.convert();
        assert_eq!(g.halo(), 1);
        // dyadic values survive the round trip, ghosts included
        let back: Field2D = g.convert();
        assert_eq!(back, f);
        // non-dyadic values round
        let mut h = Field2D::new(2, 2, 0);
        h.set(0, 0, 1.0 + 1e-12);
        let h32: Field2F = h.convert();
        assert_eq!(h32.at(0, 0), 1.0f32);
    }

    #[test]
    #[should_panic]
    fn convert_into_rejects_mismatched_halo() {
        let f = Field2D::new(3, 3, 1);
        let mut g = Field2F::new(3, 3, 2);
        f.convert_into(&mut g);
    }
}
