//! The [`Scalar`] abstraction: the arithmetic precision of a field.
//!
//! TeaLeaf's kernels are memory-bandwidth bound, so arithmetic precision
//! is a first-class design-space axis: an `f32` sweep moves half the
//! bytes of an `f64` sweep. Every hot kernel (fields, vector ops, the
//! matrix-free operator, the preconditioners) is generic over this
//! trait, with `f64` as the default so existing call sites read
//! unchanged. The mixed-precision solvers in `tea-core::mixed` combine
//! both: `f32` preconditioning inside an `f64` outer recurrence.

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A floating-point scalar a field or kernel can be instantiated over.
///
/// Implemented for `f64` (the default everywhere) and `f32` (the
/// reduced-precision leg of the design space). The surface is exactly
/// what the kernels use: constants, conversions through `f64`, and the
/// handful of `std` float methods the solvers call.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + Default
    + PartialEq
    + PartialOrd
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Short type name for labels and JSON (`"f64"` / `"f32"`).
    const NAME: &'static str;
    /// Machine epsilon of the format.
    const EPSILON_: f64;
    /// Storage width in bytes (8 for `f64`, 4 for `f32`) — what one
    /// element of this format costs on the wire and in memory.
    const BYTES: usize;
    /// Lane count of the explicit-width vector kernels in
    /// `tea-core::vector` (4 for `f64`, 8 for `f32`): each lane group
    /// fills one 256-bit register, so both formats sweep 32 bytes per
    /// unrolled step and LLVM can keep the fixed-width chunks branchless.
    const LANES: usize;

    /// Converts from `f64` (rounding for narrower formats).
    fn from_f64(v: f64) -> Self;
    /// Widens to `f64` (exact for both implementors).
    fn to_f64(self) -> f64;
    /// Absolute value.
    fn abs(self) -> Self;
    /// Square root.
    fn sqrt(self) -> Self;
    /// IEEE maximum of two values.
    fn max(self, other: Self) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f64";
    const EPSILON_: f64 = f64::EPSILON;
    const BYTES: usize = std::mem::size_of::<f64>();
    const LANES: usize = 4;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f64::max(self, other)
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NAME: &'static str = "f32";
    const EPSILON_: f64 = f32::EPSILON as f64;
    const BYTES: usize = std::mem::size_of::<f32>();
    const LANES: usize = 8;

    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline(always)]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline(always)]
    fn sqrt(self) -> Self {
        f32::sqrt(self)
    }
    #[inline(always)]
    fn max(self, other: Self) -> Self {
        f32::max(self, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<S: Scalar>(v: f64) -> f64 {
        S::from_f64(v).to_f64()
    }

    #[test]
    fn constants_and_names() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(f32::ONE, 1.0);
        assert_eq!(f64::NAME, "f64");
        assert_eq!(f32::NAME, "f32");
        let (narrow, wide) = (f32::EPSILON_, f64::EPSILON_);
        assert!(narrow > wide, "f32 must be the coarser format");
        assert_eq!(<f64 as Scalar>::BYTES, 8);
        assert_eq!(<f32 as Scalar>::BYTES, 4);
        // both lane groups span one 256-bit register
        assert_eq!(<f64 as Scalar>::LANES * <f64 as Scalar>::BYTES, 32);
        assert_eq!(<f32 as Scalar>::LANES * <f32 as Scalar>::BYTES, 32);
    }

    #[test]
    fn f64_roundtrip_is_exact() {
        for v in [0.0, -1.5, 1e300, f64::MIN_POSITIVE] {
            assert_eq!(roundtrip::<f64>(v), v);
        }
    }

    #[test]
    fn f32_roundtrip_rounds() {
        assert_eq!(roundtrip::<f32>(0.5), 0.5, "dyadic values survive");
        let v = 1.0 + 1e-12; // below f32 resolution
        assert_eq!(roundtrip::<f32>(v), 1.0);
    }

    #[test]
    fn float_methods_dispatch() {
        assert_eq!(Scalar::abs(-2.0f32), 2.0);
        assert_eq!(Scalar::sqrt(9.0f64), 3.0);
        assert_eq!(Scalar::max(1.0f32, 2.0), 2.0);
    }
}
