//! # tea-serve — a batched multi-solve scheduler
//!
//! TeaLeaf's driver runs one deck at a time. Parameter sweeps,
//! ensemble studies and regression farms run *many* — most of them
//! near-duplicates — and the per-solve setup tax (workspace
//! allocation, preconditioner assembly, eigenvalue analysis) dominates
//! once the solves themselves are small. This crate adds the missing
//! middle layer: a work queue that drains independent solve jobs over
//! a pool of worker threads, checking reusable
//! [`tea_core::SolveSession`]s in and out of a keyed
//! [`tea_core::SetupCache`] so repeated setups skip preparation
//! entirely.
//!
//! Two entry points:
//!
//! * [`serve_with`] — the generic scheduler: any job type, any run
//!   function. The deck-serving layer in `tea-app` (and the `tealeaf
//!   --serve` CLI) is built on it.
//! * [`serve_requests`] — builder-style jobs: a [`SolveRequest`]
//!   carries an operator, a right-hand side and a
//!   [`tea_core::SessionSpec`]; the scheduler caches sessions across
//!   requests with equal [`tea_core::SetupKey`]s.
//!
//! Every serve returns a [`ServeReport`]: per-job outcomes in
//! submission order plus [`QueueStats`] — throughput, latency
//! percentiles, and the cache's hit/miss/prepare counters.
//!
//! A failing job (malformed problem, unknown solver) records an error
//! outcome and the queue moves on; one bad deck never takes down the
//! batch.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tea_core::{
    CacheStats, SessionSpec, SetupCache, SetupKey, SolveResult, SolveSession, TileOperator,
};
use tea_mesh::Field2D;

/// How a serve runs: worker count, kernel thread budget, caching.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Concurrent jobs in flight (worker threads draining the queue).
    /// `0` means one per available core.
    pub workers: usize,
    /// Kernel threads per job. The sweep thread pool is process-global,
    /// so this is applied once at serve start (not per job): with W
    /// workers each running T-thread sweeps, size `W × T` to the
    /// machine. `None` leaves the ambient configuration alone.
    pub threads_per_job: Option<usize>,
    /// Whether to pool sessions in a [`SetupCache`] across jobs.
    /// Disabling it makes every job build (and prepare) cold — the
    /// baseline the throughput bench compares against.
    pub cache: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 0,
            threads_per_job: None,
            cache: true,
        }
    }
}

impl ServeOptions {
    /// The worker count after resolving `0` to the core count.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// One job's result: payload or error, plus its wall-clock latency.
#[derive(Debug)]
pub struct JobOutcome<T> {
    /// Index of the job in the submitted list.
    pub job: usize,
    /// The job's payload, or why it failed.
    pub result: Result<T, String>,
    /// Seconds from checkout to completion.
    pub wall_s: f64,
}

/// Queue-level statistics for a completed serve.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueueStats {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that returned an error outcome.
    pub failed: usize,
    /// Wall-clock seconds for the whole drain.
    pub wall_s: f64,
    /// Completed jobs per second of drain time.
    pub jobs_per_sec: f64,
    /// Median per-job latency in seconds.
    pub p50_latency_s: f64,
    /// 99th-percentile per-job latency in seconds.
    pub p99_latency_s: f64,
    /// Setup-cache counters (hits/misses/prepares). With caching off,
    /// hits are zero and every job counts a prepare.
    pub cache: CacheStats,
}

/// Everything a serve returns: outcomes in submission order + stats.
#[derive(Debug)]
pub struct ServeReport<T> {
    /// Per-job outcomes, sorted by submission index.
    pub outcomes: Vec<JobOutcome<T>>,
    /// Queue-level statistics.
    pub stats: QueueStats,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Drains `jobs` through `run` on a pool of worker threads and reports
/// per-job outcomes plus queue statistics. `run` receives the job's
/// submission index and the job itself; returning `Err` records a
/// failed outcome without stopping the queue.
///
/// `cache_stats` (when given) is folded into the report's
/// [`QueueStats::cache`] — callers running their jobs over a
/// [`SetupCache`] pass its post-drain counters through this hook.
pub fn serve_with<J, T, F>(
    jobs: Vec<J>,
    opts: &ServeOptions,
    run: F,
    cache_stats: impl FnOnce() -> CacheStats,
) -> ServeReport<T>
where
    J: Send,
    T: Send,
    F: Fn(usize, J) -> Result<T, String> + Sync,
{
    if let Some(threads) = opts.threads_per_job {
        tea_core::set_num_threads(threads);
    }
    let total = jobs.len();
    let queue: Mutex<VecDeque<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let outcomes: Mutex<Vec<JobOutcome<T>>> = Mutex::new(Vec::with_capacity(total));
    let workers = opts.effective_workers().min(total.max(1));

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("job queue poisoned").pop_front();
                let Some((job, payload)) = next else {
                    break;
                };
                let job_started = Instant::now();
                let result = run(job, payload);
                let wall_s = job_started.elapsed().as_secs_f64();
                outcomes
                    .lock()
                    .expect("outcome list poisoned")
                    .push(JobOutcome {
                        job,
                        result,
                        wall_s,
                    });
            });
        }
    });
    let wall_s = started.elapsed().as_secs_f64();

    let mut outcomes = outcomes.into_inner().expect("outcome list poisoned");
    outcomes.sort_by_key(|o| o.job);
    let mut latencies: Vec<f64> = outcomes.iter().map(|o| o.wall_s).collect();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let failed = outcomes.iter().filter(|o| o.result.is_err()).count();

    let stats = QueueStats {
        jobs: total,
        failed,
        wall_s,
        jobs_per_sec: if wall_s > 0.0 {
            total as f64 / wall_s
        } else {
            0.0
        },
        p50_latency_s: percentile(&latencies, 50.0),
        p99_latency_s: percentile(&latencies, 99.0),
        cache: cache_stats(),
    };
    ServeReport { outcomes, stats }
}

/// A builder-style solve job: operator + right-hand side + session
/// spec. The warm start is `u = b`, matching the driver convention.
#[derive(Debug)]
pub struct SolveRequest {
    /// The assembled operator to solve against.
    pub op: TileOperator,
    /// Right-hand side (also the warm start).
    pub b: Field2D,
    /// Solver, precision, options and knobs for the session.
    pub spec: SessionSpec,
}

/// What a served [`SolveRequest`] returns.
#[derive(Debug)]
pub struct RequestOutput {
    /// The solve's result and protocol trace.
    pub result: SolveResult,
    /// The solution field.
    pub u: Field2D,
}

/// Serves builder-style [`SolveRequest`]s over a session pool: requests
/// whose `(op, spec)` produce equal [`SetupKey`]s share prepared
/// sessions (and memoised eigenvalue estimates), so repeated requests
/// skip the setup tax while returning bit-identical results.
pub fn serve_requests(
    requests: Vec<SolveRequest>,
    opts: &ServeOptions,
) -> ServeReport<RequestOutput> {
    let cache = SetupCache::new();
    let cold_prepares = AtomicU64::new(0);
    let use_cache = opts.cache;
    let run = |_job: usize, req: SolveRequest| -> Result<RequestOutput, String> {
        let SolveRequest { op, b, spec } = req;
        let mut session = if use_cache {
            let key = SetupKey::probe(&op, &spec).map_err(|e| e.to_string())?;
            match cache.checkout(&key) {
                Some(session) => session,
                None => SolveSession::build(op, &spec).map_err(|e| e.to_string())?,
            }
        } else {
            SolveSession::build(op, &spec).map_err(|e| e.to_string())?
        };
        session.reset_comm_stats();
        let mut u = b.clone();
        let result = session.solve(&mut u, &b);
        if use_cache {
            cache.checkin(session);
        } else {
            cold_prepares.fetch_add(session.prepare_count(), Ordering::Relaxed);
        }
        Ok(RequestOutput { result, u })
    };
    serve_with(requests, opts, run, || {
        let mut stats = cache.stats();
        stats.prepares += cold_prepares.load(Ordering::Relaxed);
        stats
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tea_core::crooked_pipe_system;

    fn requests(n_jobs: usize, distinct_sizes: &[usize]) -> Vec<SolveRequest> {
        (0..n_jobs)
            .map(|i| {
                let n = distinct_sizes[i % distinct_sizes.len()];
                let (op, b) = crooked_pipe_system(n, 0.04, 1);
                let mut spec = SessionSpec::solver("cg");
                spec.opts.eps = 1e-8;
                SolveRequest { op, b, spec }
            })
            .collect()
    }

    #[test]
    fn serves_all_jobs_and_counts_cache_traffic() {
        let report = serve_requests(
            requests(12, &[16, 20, 24]),
            &ServeOptions {
                workers: 4,
                ..Default::default()
            },
        );
        assert_eq!(report.outcomes.len(), 12);
        assert_eq!(report.stats.failed, 0);
        assert!(report.stats.jobs_per_sec > 0.0);
        assert!(report.stats.p99_latency_s >= report.stats.p50_latency_s);
        for (i, o) in report.outcomes.iter().enumerate() {
            assert_eq!(o.job, i, "outcomes must come back in submission order");
            assert!(o.result.as_ref().unwrap().result.converged);
        }
        let cache = report.stats.cache;
        // 3 distinct setups: 3 misses, 9 hits (modulo worker racing on
        // first touch, which can only add misses — never hits beyond 9)
        assert_eq!(cache.hits + cache.misses, 12);
        assert!(cache.hits > 0, "repeated setups must hit the cache");
        assert!(cache.misses >= 3);
        assert_eq!(cache.prepares, cache.misses, "hits must not re-prepare");
    }

    #[test]
    fn cache_off_prepares_every_job() {
        let report = serve_requests(
            requests(8, &[16, 20]),
            &ServeOptions {
                workers: 2,
                cache: false,
                ..Default::default()
            },
        );
        assert_eq!(report.stats.failed, 0);
        let cache = report.stats.cache;
        assert_eq!(cache.hits, 0);
        assert_eq!(cache.prepares, 8, "cold path prepares once per job");
    }

    #[test]
    fn cached_and_cold_runs_agree_bitwise() {
        let on = serve_requests(requests(9, &[16, 20, 24]), &ServeOptions::default());
        let off = serve_requests(
            requests(9, &[16, 20, 24]),
            &ServeOptions {
                cache: false,
                ..Default::default()
            },
        );
        for (a, b) in on.outcomes.iter().zip(&off.outcomes) {
            let (a, b) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(a.u, b.u, "cache must not change results");
            assert_eq!(a.result.iterations, b.result.iterations);
            assert_eq!(
                a.result.final_residual.to_bits(),
                b.result.final_residual.to_bits()
            );
        }
        assert!(on.stats.cache.prepares < off.stats.cache.prepares);
    }

    #[test]
    fn a_bad_job_fails_alone() {
        let mut jobs = requests(3, &[16]);
        jobs[1].spec.solver = "warp-drive".to_string();
        let report = serve_requests(jobs, &ServeOptions::default());
        assert_eq!(report.stats.failed, 1);
        assert!(report.outcomes[0].result.is_ok());
        let err = report.outcomes[1].result.as_ref().unwrap_err();
        assert!(err.contains("warp-drive"), "{err}");
        assert!(report.outcomes[2].result.is_ok(), "queue must keep going");
    }
}
